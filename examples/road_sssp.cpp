/**
 * @file
 * Road-network routing: single-source shortest paths over a weighted
 * grid graph — a low-degree, high-diameter workload that exercises the
 * convergence machinery (active source intervals pruning work across
 * iterations) and the weighted-edge datapath (Fig. 10a thread-state
 * memory).
 *
 * The dataset brings its OWN edge weights: the session detects that
 * and uses them as-is instead of synthesizing random ones.
 */

#include <cstdio>

#include "src/accel/session.hh"
#include "src/algo/golden.hh"
#include "src/graph/generator.hh"

using namespace gmoms;

int
main()
{
    // A 200x200 city grid; edge weights model travel times.
    const NodeId rows = 200, cols = 200;
    CooGraph grid = grid2d(rows, cols);
    addRandomWeights(grid, 11);
    std::printf("road network: %u intersections, %llu road segments\n",
                grid.numNodes(),
                static_cast<unsigned long long>(grid.numEdges()));

    const NodeId depot = 0;  // top-left corner

    // Borrow the grid (no copy) — it is still needed below for the
    // golden comparison. No preprocessing: grid labels are already
    // cache-friendly, and node ids stay meaningful coordinates.
    Session session =
        SessionBuilder()
            .datasetView(grid)
            .config(AccelConfig::preset(MomsConfig::twoLevel(8),
                                        /*pes=*/8, /*channels=*/2))
            .build();
    SessionResult res = session.sssp(depot, /*max_iterations=*/10'000);

    std::printf("converged in %u iterations, %llu cycles "
                "(%.2f GTEPS at %.0f MHz)\n",
                res.run.iterations,
                static_cast<unsigned long long>(res.run.cycles),
                res.gteps, res.fmax_mhz);
    std::printf("active-interval pruning: %llu edge traversals vs "
                "%llu for a naive %u-iteration sweep\n",
                static_cast<unsigned long long>(
                    res.run.edges_processed),
                static_cast<unsigned long long>(
                    static_cast<EdgeId>(res.run.iterations) *
                    grid.numEdges()),
                res.run.iterations);

    // Verify against the golden Bellman-Ford oracle.
    std::vector<std::uint32_t> golden = goldenSssp(grid, depot);
    std::uint64_t mismatches = 0;
    for (NodeId i = 0; i < grid.numNodes(); ++i)
        if (res.run.raw_values[i] != golden[i])
            ++mismatches;
    std::printf("verification vs Bellman-Ford oracle: %s\n",
                mismatches == 0 ? "exact match" : "MISMATCH");

    // A few travel times across the map.
    auto at = [&](NodeId r, NodeId c) { return r * cols + c; };
    std::printf("\ntravel times from the depot (corner):\n");
    std::printf("  to centre        (%3u,%3u): %u\n", rows / 2,
                cols / 2, res.run.raw_values[at(rows / 2, cols / 2)]);
    std::printf("  to opposite side (%3u,%3u): %u\n", rows - 1,
                cols - 1, res.run.raw_values[at(rows - 1, cols - 1)]);
    std::printf("  to east edge     (%3u,%3u): %u\n", 0u, cols - 1,
                res.run.raw_values[at(0, cols - 1)]);
    return 0;
}
