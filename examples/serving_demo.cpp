/**
 * @file
 * Multi-tenant serving walkthrough: three tenants share one
 * GraphService — batch (paused) mode so the dispatch order is the
 * scheduler's deterministic priority + fairness decision, visible in
 * the completion log. Along the way: a structurally invalid request
 * rejected with the complete problem list, an aggressive cycle-budget
 * deadline driving the retry -> degraded-fallback path, and the SLO
 * report (p50/p95/p99 latency, throughput, rejection rate) the service
 * exports.
 */

#include <cstdio>

#include "src/serve/service.hh"

using namespace gmoms;
using namespace gmoms::serve;

namespace
{

JobSpec
job(const char* tenant, const char* dataset, const char* algo,
    std::uint32_t priority)
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.dataset = dataset;
    spec.algo = algo;
    spec.priority = priority;
    // Small explicit machine so the demo runs in seconds; production
    // submissions would name a preset ("paper18x16") instead.
    spec.config = AccelConfig::preset(MomsConfig::twoLevel(4),
                                      /*pes=*/4, /*channels=*/2);
    spec.iterations = 3;
    return spec;
}

} // namespace

int
main()
{
    std::printf("=== gmoms serving demo: 3 tenants, 1 accelerator "
                "===\n\n");

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.start_paused = true;  // batch mode: deterministic dispatch
    GraphService service(cfg);

    // --- Admission: a broken request never reaches the queue. -------
    JobSpec broken = job("", "NOPE", "Dijkstra", 0);
    GraphService::Submitted rejected = service.submit(broken);
    std::printf("a malformed request is rejected with the full "
                "problem list:\n");
    for (const std::string& reason : rejected.rejected)
        std::printf("  - %s\n", reason.c_str());

    // --- A mixed workload: priorities beat submission order. --------
    struct Named
    {
        const char* who;
        JobId id;
    };
    std::vector<Named> submitted;
    auto add = [&](JobSpec spec) {
        const char* who = spec.tenant.c_str();
        GraphService::Submitted sub = service.submit(std::move(spec));
        if (sub.ok())
            submitted.push_back({who, sub.id});
    };
    add(job("analytics", "WT", "PageRank", /*priority=*/0));
    add(job("analytics", "WT", "SCC", /*priority=*/0));
    add(job("fraud", "DB", "BFS", /*priority=*/2));  // urgent
    add(job("fraud", "DB", "SSSP", /*priority=*/0));
    add(job("search", "WT", "PageRank", /*priority=*/1));

    // One job with an impossible deadline: 2000 simulated cycles.
    // The hardening layer aborts it, the service retries, then
    // degrades it to the small fallback preset instead of failing.
    JobSpec doomed = job("analytics", "WT", "PageRank", 0);
    doomed.cycle_budget = 2000;
    const JobId doomed_id = service.submit(doomed).id;

    std::printf("\nsubmitted %zu jobs; draining...\n\n",
                submitted.size() + 1);
    service.drain();

    std::printf("completion log (dispatch order — priority first, "
                "then per-tenant fairness, then FIFO):\n");
    for (JobId id : service.completionLog()) {
        const JobRecord rec = *service.poll(id);
        std::printf("  job %llu  %-9s prio %u  %-8s -> %s"
                    "%s  (%llu cycles, %.2f GTEPS)\n",
                    static_cast<unsigned long long>(rec.id),
                    rec.tenant.c_str(), rec.priority,
                    rec.algo.c_str(), jobStateName(rec.state),
                    rec.used_fallback ? " [fallback preset]" : "",
                    static_cast<unsigned long long>(rec.cycles),
                    rec.gteps);
    }

    const JobRecord doomed_rec = *service.poll(doomed_id);
    std::printf("\nthe deadline-doomed job: %u attempts on the "
                "requested config, then the fallback ->\n  state %s, "
                "last error: %s\n",
                doomed_rec.attempts - 1,
                jobStateName(doomed_rec.state),
                doomed_rec.error.c_str());

    const ServiceStats stats = service.stats();
    std::printf("\nSLO report:\n");
    std::printf("  submitted %llu, completed %llu, degraded %llu, "
                "failed %llu, rejected %llu (%.0f%%)\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.rejected),
                100.0 * stats.rejectionRate());
    std::printf("  total latency p50 %.3fs  p95 %.3fs  p99 %.3fs  "
                "(%.1f jobs/s)\n",
                stats.total.percentile(50), stats.total.percentile(95),
                stats.total.percentile(99), stats.jobsPerSecond());
    std::printf("  dataset cache: %llu hits, %llu misses, %llu "
                "evictions, %.1f MiB resident\n",
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses),
                static_cast<unsigned long long>(stats.cache.evictions),
                static_cast<double>(stats.cache.bytes) / (1 << 20));

    // The whole demo is wasted if something got lost: the terminal
    // accounting must balance.
    const bool balanced =
        stats.submitted == stats.rejected + stats.terminal();
    std::printf("\n%s\n",
                balanced ? "every submission reached a terminal state "
                           "(nothing lost)"
                         : "ACCOUNTING MISMATCH — jobs were lost");
    return balanced ? 0 : 1;
}
