/**
 * @file
 * Quickstart: run PageRank on the simulated MOMS graph accelerator.
 *
 * The three steps every gmoms application follows:
 *   1. build or load a COO graph,
 *   2. open a Session on it (preprocessing, partitioning and the
 *      accelerator configuration behind one builder),
 *   3. run algorithms and inspect results + performance counters.
 */

#include <cstdio>

#include "src/accel/session.hh"
#include "src/graph/generator.hh"

using namespace gmoms;

int
main()
{
    // 1. A small scale-free graph (64k nodes, 500k edges).
    CooGraph graph = rmat(16, 500'000, RmatParams{}, /*seed=*/42);
    std::printf("graph: %u nodes, %llu edges\n", graph.numNodes(),
                static_cast<unsigned long long>(graph.numEdges()));

    // 2. One Session = one preprocessed dataset on one accelerator
    //    configuration. Paper-default preprocessing (DBG then
    //    cache-line hashing) and the paper's best generic design:
    //    16 PEs, 4 DDR4 channels, two-level MOMS with 16 shared banks.
    Session session =
        SessionBuilder()
            .dataset(std::move(graph))
            .preprocessing(Preprocessing::DbgHash)
            .config(AccelConfig::preset(MomsConfig::twoLevel(16),
                                        /*pes=*/16))
            .build();
    const PartitionedGraph& pg = session.partition();
    std::printf("partitioned: %u x %u shards (Nd=%u, Ns=%u)\n",
                pg.qs(), pg.qd(), pg.nd(), pg.ns());

    // 3. PageRank, 10 iterations, with the normalized-score trick.
    SessionResult res = session.pageRank(10);

    std::printf("\nran %u iterations in %llu cycles\n",
                res.run.iterations,
                static_cast<unsigned long long>(res.run.cycles));
    std::printf("throughput: %.2f GTEPS at %.0f MHz\n", res.gteps,
                res.fmax_mhz);
    std::printf("MOMS: %.1f%% of reads merged as secondary misses, "
                "%.1f%% cache hits\n",
                100.0 * res.run.moms_secondary_misses /
                    std::max<std::uint64_t>(res.run.moms_requests, 1),
                100.0 * res.run.moms_hit_rate);
    std::printf("DRAM traffic: %.1f MB read, %.1f MB written\n",
                res.run.dram_bytes_read / 1e6,
                res.run.dram_bytes_written / 1e6);

    // Top-5 nodes by PageRank score (values are in internal label
    // space; translate back for reporting).
    const NodeId n = session.graph().numNodes();
    std::vector<NodeId> order(n);
    for (NodeId i = 0; i < n; ++i)
        order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](NodeId a, NodeId b) {
                          return res.values[a] > res.values[b];
                      });
    std::printf("\ntop 5 nodes by PageRank:\n");
    for (int i = 0; i < 5; ++i)
        std::printf("  node %-8u score %.3e\n",
                    session.originalId(order[i]),
                    res.values[order[i]]);
    return 0;
}
