/**
 * @file
 * Quickstart: run PageRank on the simulated MOMS graph accelerator.
 *
 * The five steps every gmoms application follows:
 *   1. build or load a COO graph,
 *   2. preprocess (reorder + partition into intervals/shards),
 *   3. pick an algorithm spec (Template 1 parameterization),
 *   4. pick an accelerator configuration (PEs, channels, MOMS shape),
 *   5. run and inspect results + performance counters.
 */

#include <cstdio>

#include "src/accel/accelerator.hh"
#include "src/accel/resource_model.hh"
#include "src/algo/spec.hh"
#include "src/graph/generator.hh"
#include "src/graph/reorder.hh"

using namespace gmoms;

int
main()
{
    // 1. A small scale-free graph (64k nodes, 500k edges).
    CooGraph graph = rmat(16, 500'000, RmatParams{}, /*seed=*/42);
    std::printf("graph: %u nodes, %llu edges\n", graph.numNodes(),
                static_cast<unsigned long long>(graph.numEdges()));

    // 2. Paper-default preprocessing: DBG then cache-line hashing,
    //    then O(M) partitioning into destination/source intervals.
    auto [nd, ns] = defaultIntervalsFor(graph.numNodes(),
                                        graph.numEdges());
    graph = applyPreprocessing(graph, Preprocessing::DbgHash, nd);
    PartitionedGraph pg(graph, nd, ns);
    std::printf("partitioned: %u x %u shards (Nd=%u, Ns=%u)\n",
                pg.qs(), pg.qd(), pg.nd(), pg.ns());

    // 3. PageRank, 10 iterations, with the normalized-score trick.
    AlgoSpec spec = AlgoSpec::pageRank(graph, 10);

    // 4. The paper's best generic design: 16 PEs, 4 DDR4 channels,
    //    two-level MOMS with 16 shared banks.
    AccelConfig cfg;
    cfg.num_pes = 16;
    cfg.num_channels = 4;
    cfg.moms = MomsConfig::twoLevel(16);
    cfg.nd = nd;
    cfg.ns = ns;

    // 5. Run and report.
    Accelerator accel(cfg, pg, spec);
    RunResult res = accel.run();
    const double fmax = modelFrequencyMhz(cfg, spec);

    std::printf("\nran %u iterations in %llu cycles\n", res.iterations,
                static_cast<unsigned long long>(res.cycles));
    std::printf("throughput: %.2f GTEPS at %.0f MHz\n", res.gteps(fmax),
                fmax);
    std::printf("MOMS: %.1f%% of reads merged as secondary misses, "
                "%.1f%% cache hits\n",
                100.0 * res.moms_secondary_misses /
                    std::max<std::uint64_t>(res.moms_requests, 1),
                100.0 * res.moms_hit_rate);
    std::printf("DRAM traffic: %.1f MB read, %.1f MB written\n",
                res.dram_bytes_read / 1e6, res.dram_bytes_written / 1e6);

    // Top-5 nodes by PageRank score.
    std::vector<NodeId> order(graph.numNodes());
    for (NodeId i = 0; i < graph.numNodes(); ++i)
        order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](NodeId a, NodeId b) {
                          return spec.finalValue(res.raw_values[a], a) >
                                 spec.finalValue(res.raw_values[b], b);
                      });
    std::printf("\ntop 5 nodes by PageRank:\n");
    for (int i = 0; i < 5; ++i)
        std::printf("  node %-8u score %.3e\n", order[i],
                    spec.finalValue(res.raw_values[order[i]],
                                    order[i]));
    return 0;
}
