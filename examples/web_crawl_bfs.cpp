/**
 * @file
 * Web-graph exploration: BFS reachability from a seed page over a
 * web-crawl-like graph (high label locality), comparing MOMS
 * organizations on a workload where private caches genuinely help —
 * the paper's IT/SK/UK observation (Section V-B).
 *
 * Demonstrates: the BFS extension kernel, per-workload architecture
 * choice (one shared dataset, one Session per candidate config), and
 * reading MOMS counters to explain performance.
 */

#include <cstdio>
#include <memory>

#include "src/accel/session.hh"
#include "src/algo/golden.hh"
#include "src/graph/datasets.hh"

using namespace gmoms;

int
main()
{
    // The uk-2005 stand-in: community-preserving crawl labeling. Hash
    // preprocessing only (the crawl order is already community-local),
    // applied once and shared across every candidate session.
    CooGraph g = buildDataset(datasetByTag("UK"));
    auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());
    auto dataset = std::make_shared<const CooGraph>(
        applyPreprocessing(g, Preprocessing::Hash, nd));
    std::printf("web graph 'UK': %u pages, %llu links\n",
                dataset->numNodes(),
                static_cast<unsigned long long>(dataset->numEdges()));

    struct Candidate
    {
        const char* name;
        MomsConfig moms;
    };
    const Candidate candidates[] = {
        {"two-level 16/16", MomsConfig::twoLevel(16)},
        {"private-only", MomsConfig::privateOnly()},
        {"shared-only 16", MomsConfig::shared(16)},
    };

    SessionResult best;
    double best_gteps = 0;
    const char* best_name = "";
    for (const Candidate& cand : candidates) {
        SessionResult res =
            SessionBuilder()
                .dataset(dataset)
                .config(AccelConfig::preset(cand.moms, /*pes=*/16))
                .algo("BFS")
                .source(0)
                .run();
        std::printf("  %-16s %.3f GTEPS  (hit %.1f%%, merged %.1f%%, "
                    "%.1f MB from DRAM)\n",
                    cand.name, res.gteps, 100 * res.run.moms_hit_rate,
                    100.0 * res.run.moms_secondary_misses /
                        std::max<std::uint64_t>(res.run.moms_requests,
                                                1),
                    res.run.dram_bytes_read / 1e6);
        if (res.gteps > best_gteps) {
            best_gteps = res.gteps;
            best = std::move(res);
            best_name = cand.name;
        }
    }
    std::printf("best architecture for this workload: %s\n\n",
                best_name);

    // Reachability census from the seed page.
    std::vector<std::uint32_t> golden = goldenBfs(*dataset, 0);
    std::uint64_t mismatch = 0, reached = 0;
    std::uint32_t max_depth = 0;
    for (NodeId i = 0; i < dataset->numNodes(); ++i) {
        if (best.run.raw_values[i] != golden[i])
            ++mismatch;
        if (best.run.raw_values[i] != kInfDist) {
            ++reached;
            max_depth = std::max(max_depth, best.run.raw_values[i]);
        }
    }
    std::printf("verification vs golden BFS: %s\n",
                mismatch == 0 ? "exact match" : "MISMATCH");
    std::printf("crawl frontier: %.1f%% of pages reachable from the "
                "seed, max depth %u\n",
                100.0 * reached / dataset->numNodes(), max_depth);
    return 0;
}
