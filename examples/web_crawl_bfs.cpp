/**
 * @file
 * Web-graph exploration: BFS reachability from a seed page over a
 * web-crawl-like graph (high label locality), comparing MOMS
 * organizations on a workload where private caches genuinely help —
 * the paper's IT/SK/UK observation (Section V-B).
 *
 * Demonstrates: the BFS extension kernel, per-workload architecture
 * choice, and reading MOMS counters to explain performance.
 */

#include <cstdio>

#include "src/accel/accelerator.hh"
#include "src/accel/resource_model.hh"
#include "src/algo/golden.hh"
#include "src/algo/spec.hh"
#include "src/graph/datasets.hh"
#include "src/graph/reorder.hh"

using namespace gmoms;

int
main()
{
    // The uk-2005 stand-in: community-preserving crawl labeling.
    CooGraph g = buildDataset(datasetByTag("UK"));
    auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());
    g = applyPreprocessing(g, Preprocessing::Hash, nd);
    std::printf("web graph 'UK': %u pages, %llu links\n", g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));

    PartitionedGraph pg(g, nd, ns);
    AlgoSpec bfs = AlgoSpec::bfs(/*source=*/0);

    struct Candidate
    {
        const char* name;
        MomsConfig moms;
    };
    const Candidate candidates[] = {
        {"two-level 16/16", MomsConfig::twoLevel(16)},
        {"private-only", MomsConfig::privateOnly()},
        {"shared-only 16", MomsConfig::shared(16)},
    };

    RunResult best_res;
    double best_gteps = 0;
    const char* best_name = "";
    for (const Candidate& cand : candidates) {
        AccelConfig cfg;
        cfg.num_pes = 16;
        cfg.num_channels = 4;
        cfg.moms = cand.moms;
        cfg.nd = nd;
        cfg.ns = ns;
        Accelerator accel(cfg, pg, bfs);
        RunResult res = accel.run();
        const double gteps = res.gteps(modelFrequencyMhz(cfg, bfs));
        std::printf("  %-16s %.3f GTEPS  (hit %.1f%%, merged %.1f%%, "
                    "%.1f MB from DRAM)\n",
                    cand.name, gteps, 100 * res.moms_hit_rate,
                    100.0 * res.moms_secondary_misses /
                        std::max<std::uint64_t>(res.moms_requests, 1),
                    res.dram_bytes_read / 1e6);
        if (gteps > best_gteps) {
            best_gteps = gteps;
            best_res = res;
            best_name = cand.name;
        }
    }
    std::printf("best architecture for this workload: %s\n\n",
                best_name);

    // Reachability census from the seed page.
    std::vector<std::uint32_t> golden = goldenBfs(g, 0);
    std::uint64_t mismatch = 0, reached = 0;
    std::uint32_t max_depth = 0;
    for (NodeId i = 0; i < g.numNodes(); ++i) {
        if (best_res.raw_values[i] != golden[i])
            ++mismatch;
        if (best_res.raw_values[i] != kInfDist) {
            ++reached;
            max_depth = std::max(max_depth, best_res.raw_values[i]);
        }
    }
    std::printf("verification vs golden BFS: %s\n",
                mismatch == 0 ? "exact match" : "MISMATCH");
    std::printf("crawl frontier: %.1f%% of pages reachable from the "
                "seed, max depth %u\n",
                100.0 * reached / g.numNodes(), max_depth);
    return 0;
}
