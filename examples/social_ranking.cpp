/**
 * @file
 * Social-network analytics: influence ranking plus community labels on
 * a Twitter-like graph — the workload class that motivates the paper's
 * introduction (skewed degrees, labels that scatter communities).
 *
 * Demonstrates: dataset profiles, the value of DBG reordering on
 * shuffled labelings, asynchronous min-label propagation (SCC kernel)
 * and running two algorithms on one preprocessed graph.
 */

#include <cstdio>
#include <map>

#include "src/accel/accelerator.hh"
#include "src/accel/resource_model.hh"
#include "src/algo/spec.hh"
#include "src/graph/datasets.hh"
#include "src/graph/generator.hh"
#include "src/graph/reorder.hh"

using namespace gmoms;

namespace
{

RunResult
run(const PartitionedGraph& pg, const AlgoSpec& spec,
    const AccelConfig& cfg, double* gteps)
{
    Accelerator accel(cfg, pg, spec);
    RunResult res = accel.run();
    *gteps = res.gteps(modelFrequencyMhz(cfg, spec));
    return res;
}

} // namespace

int
main()
{
    // The twitter_mpi stand-in: power-law, community-scattering labels.
    CooGraph raw = buildDataset(datasetByTag("MP"));
    std::printf("social graph 'MP': %u users, %llu follows\n",
                raw.numNodes(),
                static_cast<unsigned long long>(raw.numEdges()));

    AccelConfig cfg;
    cfg.num_pes = 16;
    cfg.num_channels = 4;
    cfg.moms = MomsConfig::twoLevel(16);

    auto [nd, ns] = defaultIntervalsFor(raw.numNodes(), raw.numEdges());
    cfg.nd = nd;
    cfg.ns = ns;

    // Show why preprocessing matters on this labeling (Fig. 13).
    std::printf("\n-- preprocessing comparison (PageRank, 3 iters) "
                "--\n");
    std::map<Preprocessing, CooGraph> variants;
    for (Preprocessing p :
         {Preprocessing::None, Preprocessing::DbgHash}) {
        CooGraph g = applyPreprocessing(raw, p, nd);
        PartitionedGraph pg(g, nd, ns);
        AlgoSpec pr = AlgoSpec::pageRank(g, 3);
        double gteps = 0;
        run(pg, pr, cfg, &gteps);
        std::printf("  %-10s %.3f GTEPS\n", preprocessingName(p),
                    gteps);
        variants.emplace(p, std::move(g));
    }

    // Full analysis on the preprocessed graph.
    const CooGraph& g = variants.at(Preprocessing::DbgHash);
    PartitionedGraph pg(g, nd, ns);

    std::printf("\n-- influence ranking (PageRank, 10 iterations) --\n");
    AlgoSpec pr = AlgoSpec::pageRank(g, 10);
    double pr_gteps = 0;
    RunResult pr_res = run(pg, pr, cfg, &pr_gteps);
    std::vector<NodeId> order(g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](NodeId a, NodeId b) {
                          return pr.finalValue(pr_res.raw_values[a], a) >
                                 pr.finalValue(pr_res.raw_values[b], b);
                      });
    for (int i = 0; i < 3; ++i)
        std::printf("  influencer #%d: user %u (score %.3e)\n", i + 1,
                    order[i],
                    pr.finalValue(pr_res.raw_values[order[i]],
                                  order[i]));
    std::printf("  throughput: %.3f GTEPS\n", pr_gteps);

    std::printf("\n-- reachability communities (min-label / SCC "
                "kernel) --\n");
    AlgoSpec scc = AlgoSpec::scc(g.numNodes());
    double scc_gteps = 0;
    RunResult scc_res = run(pg, scc, cfg, &scc_gteps);
    std::map<std::uint32_t, std::uint64_t> sizes;
    for (NodeId i = 0; i < g.numNodes(); ++i)
        ++sizes[scc_res.raw_values[i]];
    std::uint64_t biggest = 0;
    for (const auto& [label, count] : sizes)
        biggest = std::max(biggest, count);
    std::printf("  %zu components; largest holds %.1f%% of users "
                "(converged in %u iterations)\n",
                sizes.size(), 100.0 * biggest / g.numNodes(),
                scc_res.iterations);
    std::printf("  throughput: %.3f GTEPS\n", scc_gteps);
    return 0;
}
