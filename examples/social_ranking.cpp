/**
 * @file
 * Social-network analytics: influence ranking plus community labels on
 * a Twitter-like graph — the workload class that motivates the paper's
 * introduction (skewed degrees, labels that scatter communities).
 *
 * Demonstrates: dataset profiles, the value of DBG reordering on
 * shuffled labelings, asynchronous min-label propagation (SCC kernel)
 * and running two algorithms on one preprocessed Session.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "src/accel/session.hh"
#include "src/graph/datasets.hh"

using namespace gmoms;

int
main()
{
    // The twitter_mpi stand-in: power-law, community-scattering labels.
    auto dataset = std::make_shared<const CooGraph>(
        buildDataset(datasetByTag("MP")));
    std::printf("social graph 'MP': %u users, %llu follows\n",
                dataset->numNodes(),
                static_cast<unsigned long long>(dataset->numEdges()));

    const AccelConfig cfg =
        AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);

    // Show why preprocessing matters on this labeling (Fig. 13). The
    // dataset is shared: each session relabels its own view.
    std::printf("\n-- preprocessing comparison (PageRank, 3 iters) "
                "--\n");
    for (Preprocessing p :
         {Preprocessing::None, Preprocessing::DbgHash}) {
        SessionResult res = SessionBuilder()
                                .dataset(dataset)
                                .preprocessing(p)
                                .config(cfg)
                                .algo("PageRank")
                                .iterations(3)
                                .run();
        std::printf("  %-10s %.3f GTEPS\n", preprocessingName(p),
                    res.gteps);
    }

    // Full analysis: one Session, the preprocessing paid once, two
    // algorithms over it.
    Session session = SessionBuilder()
                          .dataset(dataset)
                          .preprocessing(Preprocessing::DbgHash)
                          .config(cfg)
                          .build();
    const NodeId users = session.graph().numNodes();

    std::printf("\n-- influence ranking (PageRank, 10 iterations) --\n");
    SessionResult pr = session.pageRank(10);
    std::vector<NodeId> order(users);
    for (NodeId i = 0; i < users; ++i)
        order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](NodeId a, NodeId b) {
                          return pr.values[a] > pr.values[b];
                      });
    for (int i = 0; i < 3; ++i)
        std::printf("  influencer #%d: user %u (score %.3e)\n", i + 1,
                    session.originalId(order[i]), pr.values[order[i]]);
    std::printf("  throughput: %.3f GTEPS\n", pr.gteps);

    std::printf("\n-- reachability communities (min-label / SCC "
                "kernel) --\n");
    SessionResult scc = session.scc();
    std::map<std::uint32_t, std::uint64_t> sizes;
    for (NodeId i = 0; i < users; ++i)
        ++sizes[scc.run.raw_values[i]];
    std::uint64_t biggest = 0;
    for (const auto& [label, count] : sizes)
        biggest = std::max(biggest, count);
    std::printf("  %zu components; largest holds %.1f%% of users "
                "(converged in %u iterations)\n",
                sizes.size(), 100.0 * biggest / users,
                scc.run.iterations);
    std::printf("  throughput: %.3f GTEPS\n", scc.gteps);
    return 0;
}
