/**
 * @file
 * Architecture explorer: a small CLI that sweeps MOMS organizations
 * for a workload you describe and reports throughput, frequency,
 * resources and power per design point — the "reprogrammability
 * dividend" of Section V-F's specialized configurations, as a tool.
 *
 * Usage:
 *   example_arch_explorer [algo] [dataset-tag] [--json]
 *                         [--telemetry] [--trace=FILE]
 *     algo:    PageRank | SCC | SSSP        (default SCC)
 *     dataset: WT DB UK IT SK MP RV FR WB 24 25 26  (default 24)
 *
 * --telemetry adds each design point's top bottleneck (stall group and
 * cause) to the report; --trace=FILE additionally writes all runs into
 * one Chrome trace-event JSON for https://ui.perfetto.dev.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/accel/resource_model.hh"
#include "src/accel/session.hh"
#include "src/algo/spec.hh"
#include "src/graph/datasets.hh"
#include "src/graph/generator.hh"
#include "src/obs/trace_export.hh"
#include "src/sim/parallel.hh"
#include "src/sim/report.hh"

using namespace gmoms;

namespace
{

/** Probe spec for the resource/frequency model (the actual run goes
 *  through the Session, which builds its own spec). */
AlgoSpec
makeSpec(const std::string& algo, const CooGraph& g)
{
    if (algo == "PageRank")
        return AlgoSpec::pageRank(g, 3);
    if (algo == "SSSP")
        return AlgoSpec::sssp(0, 4);
    return AlgoSpec::scc(g.numNodes(), 4);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string algo = "SCC";
    std::string tag = "24";
    bool json = false;
    bool telemetry = false;
    std::string trace_path;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (arg == "--telemetry")
            telemetry = true;
        else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
            telemetry = true;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() > 0)
        algo = positional[0];
    if (positional.size() > 1)
        tag = positional[1];

    // Preprocess once; every design point's session shares the graph
    // (SSSP sessions add their own deterministic weights, seed 7).
    CooGraph g = buildDataset(datasetByTag(tag));
    auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());
    auto dataset = std::make_shared<const CooGraph>(
        applyPreprocessing(g, Preprocessing::DbgHash, nd));
    const AlgoSpec probe = makeSpec(algo, *dataset);

    struct Candidate
    {
        const char* name;
        std::uint32_t pes;
        MomsConfig moms;
    };
    const Candidate candidates[] = {
        {"16/16 two-level", 16, MomsConfig::twoLevel(16)},
        {"18/16 two-level 2k", 18, MomsConfig::twoLevel(16, 2048)},
        {"20/8 two-level", 20, MomsConfig::twoLevel(8)},
        {"16/16 shared", 16, MomsConfig::shared(16)},
        {"20 private", 20, MomsConfig::privateOnly()},
        {"16/16 traditional", 16, MomsConfig::traditionalTwoLevel(16)},
    };

    if (!json)
        std::printf("exploring %zu design points for %s on '%s' "
                    "(%u nodes, %llu edges)\n\n",
                    std::size(candidates), algo.c_str(), tag.c_str(),
                    dataset->numNodes(),
                    static_cast<unsigned long long>(
                        dataset->numEdges()));

    // Run every design point on the worker pool (each session builds
    // its own Accelerator+Engine; the dataset is shared read-only),
    // buffering per-candidate output so it prints in candidate order.
    struct Explored
    {
        double gteps = 0;
        std::string line;
        std::shared_ptr<const TelemetrySummary> telemetry;
    };
    std::vector<Explored> results(std::size(candidates));
    std::vector<ThreadPool::Job> tasks;
    for (std::size_t i = 0; i < std::size(candidates); ++i)
        tasks.push_back([&, i] {
            const Candidate& cand = candidates[i];
            AccelConfig cfg =
                AccelConfig::preset(cand.moms, cand.pes);
            cfg.nd = nd;
            cfg.ns = ns;
            cfg.telemetry.enabled = telemetry;
            cfg.telemetry.label = std::string(cand.name) + " " + algo +
                                  " " + tag;
            SessionResult res = SessionBuilder()
                                    .dataset(dataset)
                                    .config(cfg)
                                    .weightSeed(7)
                                    .algo(algo)
                                    .iterations(algo == "PageRank" ? 3
                                                                   : 4)
                                    .run();
            results[i].telemetry = res.run.telemetry;
            std::string bottleneck;
            if (res.run.telemetry) {
                if (const auto* top = res.run.telemetry->topStall())
                    bottleneck = top->group + "/" +
                                 stallCauseName(top->cause);
                else
                    bottleneck = "none";
            }
            const ResourceBreakdown rb = estimateResources(cfg, probe);

            results[i].gteps = res.gteps;
            if (json) {
                JsonReport report;
                report.set("design", std::string(cand.name))
                    .set("algo", algo)
                    .set("dataset", tag)
                    .set("gteps", res.gteps)
                    .set("fmax_mhz", res.fmax_mhz)
                    .set("power_w", res.power_watts)
                    .set("lut_util", rb.lut_util)
                    .set("cycles", res.run.cycles)
                    .set("hit_rate", res.run.moms_hit_rate)
                    .set("dram_bytes_read", res.run.dram_bytes_read)
                    .set("discarded", res.fmax_mhz < kMinFrequencyMhz);
                if (!bottleneck.empty())
                    report.set("top_bottleneck", bottleneck);
                results[i].line = report.str() + "\n";
            } else {
                char buf[200];
                std::snprintf(buf, sizeof(buf),
                              "  %-20s %6.3f GTEPS  %3.0f MHz  %4.1f W"
                              "  LUT %4.1f%%  %6.2f MTEPS/W%s%s\n",
                              cand.name, res.gteps, res.fmax_mhz,
                              res.power_watts, 100 * rb.lut_util,
                              1000.0 * res.gteps / res.power_watts,
                              bottleneck.empty() ? "" : "  bottleneck ",
                              bottleneck.c_str());
                results[i].line = buf;
            }
        });
    ThreadPool::shared().runAll(std::move(tasks));

    double best = 0;
    const char* best_name = "";
    for (std::size_t i = 0; i < std::size(candidates); ++i) {
        if (json)
            std::cout << results[i].line;
        else
            std::fputs(results[i].line.c_str(), stdout);
        if (results[i].gteps > best) {
            best = results[i].gteps;
            best_name = candidates[i].name;
        }
    }
    if (!json)
        std::printf("\nbest design for this workload: %s "
                    "(%.3f GTEPS)\n",
                    best_name, best);

    if (!trace_path.empty()) {
        std::vector<TelemetrySummaryPtr> summaries;
        for (const Explored& r : results)
            summaries.push_back(r.telemetry);
        if (writeChromeTraceFile(trace_path, summaries)) {
            if (!json)
                std::printf("wrote Chrome trace: %s (open at "
                            "https://ui.perfetto.dev)\n",
                            trace_path.c_str());
        } else {
            std::fprintf(stderr, "could not write trace file %s\n",
                         trace_path.c_str());
            return 1;
        }
    }
    return 0;
}
