/**
 * @file
 * Architecture explorer: a small CLI that sweeps MOMS organizations
 * for a workload you describe and reports throughput, frequency,
 * resources and power per design point — the "reprogrammability
 * dividend" of Section V-F's specialized configurations, as a tool.
 *
 * Usage:
 *   example_arch_explorer [algo] [dataset-tag] [--json]
 *     algo:    PageRank | SCC | SSSP        (default SCC)
 *     dataset: WT DB UK IT SK MP RV FR WB 24 25 26  (default 24)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/accel/accelerator.hh"
#include "src/accel/resource_model.hh"
#include "src/algo/spec.hh"
#include "src/graph/datasets.hh"
#include "src/graph/generator.hh"
#include "src/graph/reorder.hh"
#include "src/sim/parallel.hh"
#include "src/sim/report.hh"

using namespace gmoms;

namespace
{

AlgoSpec
makeSpec(const std::string& algo, const CooGraph& g)
{
    if (algo == "PageRank")
        return AlgoSpec::pageRank(g, 3);
    if (algo == "SSSP")
        return AlgoSpec::sssp(0, 4);
    return AlgoSpec::scc(g.numNodes(), 4);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string algo = argc > 1 ? argv[1] : "SCC";
    std::string tag = argc > 2 ? argv[2] : "24";
    const bool json = argc > 3 && std::strcmp(argv[3], "--json") == 0;

    CooGraph g = buildDataset(datasetByTag(tag));
    auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());
    g = applyPreprocessing(g, Preprocessing::DbgHash, nd);
    if (algo == "SSSP")
        addRandomWeights(g, 7);
    PartitionedGraph pg(g, nd, ns);
    AlgoSpec spec = makeSpec(algo, g);

    struct Candidate
    {
        const char* name;
        std::uint32_t pes;
        MomsConfig moms;
    };
    const Candidate candidates[] = {
        {"16/16 two-level", 16, MomsConfig::twoLevel(16)},
        {"18/16 two-level 2k", 18, MomsConfig::twoLevel(16, 2048)},
        {"20/8 two-level", 20, MomsConfig::twoLevel(8)},
        {"16/16 shared", 16, MomsConfig::shared(16)},
        {"20 private", 20, MomsConfig::privateOnly()},
        {"16/16 traditional", 16, MomsConfig::traditionalTwoLevel(16)},
    };

    if (!json)
        std::printf("exploring %zu design points for %s on '%s' "
                    "(%u nodes, %llu edges)\n\n",
                    std::size(candidates), algo.c_str(), tag.c_str(),
                    g.numNodes(),
                    static_cast<unsigned long long>(g.numEdges()));

    // Run every design point on the worker pool (each builds its own
    // Accelerator+Engine; the partitioned graph is shared read-only),
    // buffering per-candidate output so it prints in candidate order.
    struct Explored
    {
        double gteps = 0;
        std::string line;
    };
    std::vector<Explored> results(std::size(candidates));
    std::vector<ThreadPool::Job> tasks;
    for (std::size_t i = 0; i < std::size(candidates); ++i)
        tasks.push_back([&, i] {
            const Candidate& cand = candidates[i];
            AccelConfig cfg;
            cfg.num_pes = cand.pes;
            cfg.num_channels = 4;
            cfg.moms = cand.moms;
            cfg.nd = nd;
            cfg.ns = ns;
            Accelerator accel(cfg, pg, spec);
            RunResult res = accel.run();
            const double fmax = modelFrequencyMhz(cfg, spec);
            const double gteps = res.gteps(fmax);
            const double watts = modelPowerWatts(cfg, spec);
            const ResourceBreakdown rb = estimateResources(cfg, spec);

            results[i].gteps = gteps;
            if (json) {
                JsonReport report;
                report.set("design", std::string(cand.name))
                    .set("algo", algo)
                    .set("dataset", tag)
                    .set("gteps", gteps)
                    .set("fmax_mhz", fmax)
                    .set("power_w", watts)
                    .set("lut_util", rb.lut_util)
                    .set("cycles", res.cycles)
                    .set("hit_rate", res.moms_hit_rate)
                    .set("dram_bytes_read", res.dram_bytes_read)
                    .set("discarded", fmax < kMinFrequencyMhz);
                results[i].line = report.str() + "\n";
            } else {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "  %-20s %6.3f GTEPS  %3.0f MHz  %4.1f W"
                              "  LUT %4.1f%%  %6.2f MTEPS/W\n",
                              cand.name, gteps, fmax, watts,
                              100 * rb.lut_util, 1000.0 * gteps / watts);
                results[i].line = buf;
            }
        });
    ThreadPool::shared().runAll(std::move(tasks));

    double best = 0;
    const char* best_name = "";
    for (std::size_t i = 0; i < std::size(candidates); ++i) {
        if (json)
            std::cout << results[i].line;
        else
            std::fputs(results[i].line.c_str(), stdout);
        if (results[i].gteps > best) {
            best = results[i].gteps;
            best_name = candidates[i].name;
        }
    }
    if (!json)
        std::printf("\nbest design for this workload: %s "
                    "(%.3f GTEPS)\n",
                    best_name, best);
    return 0;
}
