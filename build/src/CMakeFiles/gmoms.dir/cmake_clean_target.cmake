file(REMOVE_RECURSE
  "libgmoms.a"
)
