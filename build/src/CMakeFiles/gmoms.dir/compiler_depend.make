# Empty compiler generated dependencies file for gmoms.
# This may be replaced when dependencies are built.
