
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/CMakeFiles/gmoms.dir/accel/accelerator.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/accel/accelerator.cc.o.d"
  "/root/repo/src/accel/pe.cc" "src/CMakeFiles/gmoms.dir/accel/pe.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/accel/pe.cc.o.d"
  "/root/repo/src/accel/resource_model.cc" "src/CMakeFiles/gmoms.dir/accel/resource_model.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/accel/resource_model.cc.o.d"
  "/root/repo/src/accel/scheduler.cc" "src/CMakeFiles/gmoms.dir/accel/scheduler.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/accel/scheduler.cc.o.d"
  "/root/repo/src/accel/session.cc" "src/CMakeFiles/gmoms.dir/accel/session.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/accel/session.cc.o.d"
  "/root/repo/src/algo/golden.cc" "src/CMakeFiles/gmoms.dir/algo/golden.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/algo/golden.cc.o.d"
  "/root/repo/src/algo/reference.cc" "src/CMakeFiles/gmoms.dir/algo/reference.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/algo/reference.cc.o.d"
  "/root/repo/src/algo/spec.cc" "src/CMakeFiles/gmoms.dir/algo/spec.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/algo/spec.cc.o.d"
  "/root/repo/src/baseline/cpu_baseline.cc" "src/CMakeFiles/gmoms.dir/baseline/cpu_baseline.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/baseline/cpu_baseline.cc.o.d"
  "/root/repo/src/baseline/fabgraph_model.cc" "src/CMakeFiles/gmoms.dir/baseline/fabgraph_model.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/baseline/fabgraph_model.cc.o.d"
  "/root/repo/src/baseline/scratchpad_accel.cc" "src/CMakeFiles/gmoms.dir/baseline/scratchpad_accel.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/baseline/scratchpad_accel.cc.o.d"
  "/root/repo/src/baseline/traffic_models.cc" "src/CMakeFiles/gmoms.dir/baseline/traffic_models.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/baseline/traffic_models.cc.o.d"
  "/root/repo/src/cache/burst_assembler.cc" "src/CMakeFiles/gmoms.dir/cache/burst_assembler.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/burst_assembler.cc.o.d"
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/gmoms.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/moms_bank.cc" "src/CMakeFiles/gmoms.dir/cache/moms_bank.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/moms_bank.cc.o.d"
  "/root/repo/src/cache/moms_system.cc" "src/CMakeFiles/gmoms.dir/cache/moms_system.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/moms_system.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/gmoms.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/subentry_store.cc" "src/CMakeFiles/gmoms.dir/cache/subentry_store.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/subentry_store.cc.o.d"
  "/root/repo/src/cache/trace_harness.cc" "src/CMakeFiles/gmoms.dir/cache/trace_harness.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/cache/trace_harness.cc.o.d"
  "/root/repo/src/graph/coo.cc" "src/CMakeFiles/gmoms.dir/graph/coo.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/coo.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/gmoms.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/gmoms.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/CMakeFiles/gmoms.dir/graph/generator.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/generator.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/gmoms.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/gmoms.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/layout.cc" "src/CMakeFiles/gmoms.dir/graph/layout.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/layout.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/gmoms.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/partition.cc.o.d"
  "/root/repo/src/graph/reorder.cc" "src/CMakeFiles/gmoms.dir/graph/reorder.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/graph/reorder.cc.o.d"
  "/root/repo/src/mem/dram_channel.cc" "src/CMakeFiles/gmoms.dir/mem/dram_channel.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/mem/dram_channel.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/gmoms.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/gmoms.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/gmoms.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/gmoms.dir/sim/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
