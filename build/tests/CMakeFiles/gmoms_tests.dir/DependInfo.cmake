
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelerator.cc" "tests/CMakeFiles/gmoms_tests.dir/test_accelerator.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_accelerator.cc.o.d"
  "/root/repo/tests/test_algo.cc" "tests/CMakeFiles/gmoms_tests.dir/test_algo.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_algo.cc.o.d"
  "/root/repo/tests/test_bank_contention.cc" "tests/CMakeFiles/gmoms_tests.dir/test_bank_contention.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_bank_contention.cc.o.d"
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/gmoms_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_burst_assembler.cc" "tests/CMakeFiles/gmoms_tests.dir/test_burst_assembler.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_burst_assembler.cc.o.d"
  "/root/repo/tests/test_cache_parts.cc" "tests/CMakeFiles/gmoms_tests.dir/test_cache_parts.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_cache_parts.cc.o.d"
  "/root/repo/tests/test_csr_and_report.cc" "tests/CMakeFiles/gmoms_tests.dir/test_csr_and_report.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_csr_and_report.cc.o.d"
  "/root/repo/tests/test_determinism.cc" "tests/CMakeFiles/gmoms_tests.dir/test_determinism.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_determinism.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/gmoms_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_dram_calibration.cc" "tests/CMakeFiles/gmoms_tests.dir/test_dram_calibration.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_dram_calibration.cc.o.d"
  "/root/repo/tests/test_engine_skip.cc" "tests/CMakeFiles/gmoms_tests.dir/test_engine_skip.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_engine_skip.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/gmoms_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_graph_io.cc" "tests/CMakeFiles/gmoms_tests.dir/test_graph_io.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_graph_io.cc.o.d"
  "/root/repo/tests/test_layout.cc" "tests/CMakeFiles/gmoms_tests.dir/test_layout.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_layout.cc.o.d"
  "/root/repo/tests/test_moms_bank.cc" "tests/CMakeFiles/gmoms_tests.dir/test_moms_bank.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_moms_bank.cc.o.d"
  "/root/repo/tests/test_moms_crossbar.cc" "tests/CMakeFiles/gmoms_tests.dir/test_moms_crossbar.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_moms_crossbar.cc.o.d"
  "/root/repo/tests/test_moms_system.cc" "tests/CMakeFiles/gmoms_tests.dir/test_moms_system.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_moms_system.cc.o.d"
  "/root/repo/tests/test_pe_details.cc" "tests/CMakeFiles/gmoms_tests.dir/test_pe_details.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_pe_details.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/gmoms_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_resource_model.cc" "tests/CMakeFiles/gmoms_tests.dir/test_resource_model.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_resource_model.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/gmoms_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_session.cc" "tests/CMakeFiles/gmoms_tests.dir/test_session.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_session.cc.o.d"
  "/root/repo/tests/test_sim_kernel.cc" "tests/CMakeFiles/gmoms_tests.dir/test_sim_kernel.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_sim_kernel.cc.o.d"
  "/root/repo/tests/test_template_semantics.cc" "tests/CMakeFiles/gmoms_tests.dir/test_template_semantics.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_template_semantics.cc.o.d"
  "/root/repo/tests/test_trace_harness.cc" "tests/CMakeFiles/gmoms_tests.dir/test_trace_harness.cc.o" "gcc" "tests/CMakeFiles/gmoms_tests.dir/test_trace_harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gmoms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
