# Empty compiler generated dependencies file for gmoms_tests.
# This may be replaced when dependencies are built.
