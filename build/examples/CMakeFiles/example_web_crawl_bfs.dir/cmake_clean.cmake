file(REMOVE_RECURSE
  "CMakeFiles/example_web_crawl_bfs.dir/web_crawl_bfs.cpp.o"
  "CMakeFiles/example_web_crawl_bfs.dir/web_crawl_bfs.cpp.o.d"
  "example_web_crawl_bfs"
  "example_web_crawl_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_web_crawl_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
