# Empty dependencies file for example_web_crawl_bfs.
# This may be replaced when dependencies are built.
