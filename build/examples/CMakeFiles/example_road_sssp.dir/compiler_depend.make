# Empty compiler generated dependencies file for example_road_sssp.
# This may be replaced when dependencies are built.
