file(REMOVE_RECURSE
  "CMakeFiles/example_arch_explorer.dir/arch_explorer.cpp.o"
  "CMakeFiles/example_arch_explorer.dir/arch_explorer.cpp.o.d"
  "example_arch_explorer"
  "example_arch_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_arch_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
