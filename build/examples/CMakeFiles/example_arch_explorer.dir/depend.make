# Empty dependencies file for example_arch_explorer.
# This may be replaced when dependencies are built.
