# Empty dependencies file for example_social_ranking.
# This may be replaced when dependencies are built.
