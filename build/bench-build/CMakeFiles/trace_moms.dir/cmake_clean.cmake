file(REMOVE_RECURSE
  "../bench/trace_moms"
  "../bench/trace_moms.pdb"
  "CMakeFiles/trace_moms.dir/trace_moms.cc.o"
  "CMakeFiles/trace_moms.dir/trace_moms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_moms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
