# Empty dependencies file for trace_moms.
# This may be replaced when dependencies are built.
