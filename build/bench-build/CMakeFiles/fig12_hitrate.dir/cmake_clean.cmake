file(REMOVE_RECURSE
  "../bench/fig12_hitrate"
  "../bench/fig12_hitrate.pdb"
  "CMakeFiles/fig12_hitrate.dir/fig12_hitrate.cc.o"
  "CMakeFiles/fig12_hitrate.dir/fig12_hitrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
