file(REMOVE_RECURSE
  "../bench/fig14_channels"
  "../bench/fig14_channels.pdb"
  "CMakeFiles/fig14_channels.dir/fig14_channels.cc.o"
  "CMakeFiles/fig14_channels.dir/fig14_channels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
