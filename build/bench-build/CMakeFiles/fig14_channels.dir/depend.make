# Empty dependencies file for fig14_channels.
# This may be replaced when dependencies are built.
