file(REMOVE_RECURSE
  "../bench/ablation_dynaburst"
  "../bench/ablation_dynaburst.pdb"
  "CMakeFiles/ablation_dynaburst.dir/ablation_dynaburst.cc.o"
  "CMakeFiles/ablation_dynaburst.dir/ablation_dynaburst.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynaburst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
