# Empty compiler generated dependencies file for ablation_dynaburst.
# This may be replaced when dependencies are built.
