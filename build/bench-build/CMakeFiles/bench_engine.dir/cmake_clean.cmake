file(REMOVE_RECURSE
  "../bench/bench_engine"
  "../bench/bench_engine.pdb"
  "CMakeFiles/bench_engine.dir/bench_engine.cc.o"
  "CMakeFiles/bench_engine.dir/bench_engine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
