# Empty dependencies file for fig13_preprocessing.
# This may be replaced when dependencies are built.
