file(REMOVE_RECURSE
  "../bench/fig13_preprocessing"
  "../bench/fig13_preprocessing.pdb"
  "CMakeFiles/fig13_preprocessing.dir/fig13_preprocessing.cc.o"
  "CMakeFiles/fig13_preprocessing.dir/fig13_preprocessing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
