file(REMOVE_RECURSE
  "../bench/fig15_cache_impact"
  "../bench/fig15_cache_impact.pdb"
  "CMakeFiles/fig15_cache_impact.dir/fig15_cache_impact.cc.o"
  "CMakeFiles/fig15_cache_impact.dir/fig15_cache_impact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cache_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
