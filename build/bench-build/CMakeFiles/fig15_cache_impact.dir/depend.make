# Empty dependencies file for fig15_cache_impact.
# This may be replaced when dependencies are built.
