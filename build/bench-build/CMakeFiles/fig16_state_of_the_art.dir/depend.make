# Empty dependencies file for fig16_state_of_the_art.
# This may be replaced when dependencies are built.
