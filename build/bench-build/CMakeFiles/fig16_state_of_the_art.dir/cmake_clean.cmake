file(REMOVE_RECURSE
  "../bench/fig16_state_of_the_art"
  "../bench/fig16_state_of_the_art.pdb"
  "CMakeFiles/fig16_state_of_the_art.dir/fig16_state_of_the_art.cc.o"
  "CMakeFiles/fig16_state_of_the_art.dir/fig16_state_of_the_art.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_state_of_the_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
