file(REMOVE_RECURSE
  "../bench/fig17_resources"
  "../bench/fig17_resources.pdb"
  "CMakeFiles/fig17_resources.dir/fig17_resources.cc.o"
  "CMakeFiles/fig17_resources.dir/fig17_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
