# Empty compiler generated dependencies file for fig17_resources.
# This may be replaced when dependencies are built.
