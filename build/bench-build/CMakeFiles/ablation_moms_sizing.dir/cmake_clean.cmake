file(REMOVE_RECURSE
  "../bench/ablation_moms_sizing"
  "../bench/ablation_moms_sizing.pdb"
  "CMakeFiles/ablation_moms_sizing.dir/ablation_moms_sizing.cc.o"
  "CMakeFiles/ablation_moms_sizing.dir/ablation_moms_sizing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_moms_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
