# Empty dependencies file for ablation_moms_sizing.
# This may be replaced when dependencies are built.
