file(REMOVE_RECURSE
  "../bench/table3_preprocessing"
  "../bench/table3_preprocessing.pdb"
  "CMakeFiles/table3_preprocessing.dir/table3_preprocessing.cc.o"
  "CMakeFiles/table3_preprocessing.dir/table3_preprocessing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
