# Empty compiler generated dependencies file for table3_preprocessing.
# This may be replaced when dependencies are built.
