# Empty compiler generated dependencies file for table4_platforms.
# This may be replaced when dependencies are built.
