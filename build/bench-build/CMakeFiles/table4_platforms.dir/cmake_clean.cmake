file(REMOVE_RECURSE
  "../bench/table4_platforms"
  "../bench/table4_platforms.pdb"
  "CMakeFiles/table4_platforms.dir/table4_platforms.cc.o"
  "CMakeFiles/table4_platforms.dir/table4_platforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
