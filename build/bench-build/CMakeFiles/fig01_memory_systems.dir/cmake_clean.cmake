file(REMOVE_RECURSE
  "../bench/fig01_memory_systems"
  "../bench/fig01_memory_systems.pdb"
  "CMakeFiles/fig01_memory_systems.dir/fig01_memory_systems.cc.o"
  "CMakeFiles/fig01_memory_systems.dir/fig01_memory_systems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
