# Empty dependencies file for fig01_memory_systems.
# This may be replaced when dependencies are built.
