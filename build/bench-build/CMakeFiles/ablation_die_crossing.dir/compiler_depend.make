# Empty compiler generated dependencies file for ablation_die_crossing.
# This may be replaced when dependencies are built.
