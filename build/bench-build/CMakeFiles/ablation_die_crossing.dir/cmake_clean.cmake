file(REMOVE_RECURSE
  "../bench/ablation_die_crossing"
  "../bench/ablation_die_crossing.pdb"
  "CMakeFiles/ablation_die_crossing.dir/ablation_die_crossing.cc.o"
  "CMakeFiles/ablation_die_crossing.dir/ablation_die_crossing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_die_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
