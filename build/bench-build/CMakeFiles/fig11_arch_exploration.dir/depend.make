# Empty dependencies file for fig11_arch_exploration.
# This may be replaced when dependencies are built.
