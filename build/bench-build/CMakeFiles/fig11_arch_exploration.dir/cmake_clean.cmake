file(REMOVE_RECURSE
  "../bench/fig11_arch_exploration"
  "../bench/fig11_arch_exploration.pdb"
  "CMakeFiles/fig11_arch_exploration.dir/fig11_arch_exploration.cc.o"
  "CMakeFiles/fig11_arch_exploration.dir/fig11_arch_exploration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_arch_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
