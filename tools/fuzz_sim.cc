/**
 * @file
 * Seeded randomized hardening harness: every run draws a random graph
 * (R-MAT / power-law / uniform / grid / star), a random kernel and a
 * random extreme-but-legal AccelConfig, then simulates it under BOTH
 * engine modes with the full hardening layer enabled (conservation
 * checkers, quiescence watchdog, shadow functional memory) and demands
 *
 *   - bit-exact cycle counts and raw values between the idle-aware and
 *     the legacy full-tick engine,
 *   - agreement with the textbook golden oracle (exact for SCC, SSSP
 *     and BFS; fixed-point tolerance for PageRank),
 *   - no checker or watchdog firing on a healthy configuration.
 *
 * Usage:
 *   fuzz_sim [--runs=N] [--seed=S] [--smoke] [--dump=PATH]
 *
 * --smoke caps the run count (CI); --dump sets CheckConfig::dump_path
 * so a firing watchdog leaves its diagnostic on disk. Any failure
 * prints the reproducing seed and exits nonzero.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/accel/session.hh"
#include "src/algo/golden.hh"
#include "src/graph/generator.hh"

using namespace gmoms;

namespace
{

struct Options
{
    std::uint64_t runs = 200;
    std::uint64_t seed = 1;
    std::string dump_path;
};

template <typename T, std::size_t N>
const T&
pick(std::mt19937_64& rng, const T (&choices)[N])
{
    return choices[rng() % N];
}

CooGraph
drawGraph(std::mt19937_64& rng, std::string* desc)
{
    char buf[96];
    switch (rng() % 5) {
      case 0: {
        const std::uint32_t scale = 8 + rng() % 3;  // 256..1024 nodes
        const EdgeId edges = (EdgeId{1} << scale) * (3 + rng() % 8);
        const std::uint64_t s = rng();
        std::snprintf(buf, sizeof(buf), "rmat(scale=%u, edges=%llu)",
                      scale, static_cast<unsigned long long>(edges));
        *desc = buf;
        return rmat(scale, edges, RmatParams{}, s);
      }
      case 1: {
        const NodeId n = 256 + rng() % 3800;
        const EdgeId edges = n * (2 + rng() % 8);
        const double alpha = 1.8 + 0.2 * static_cast<double>(rng() % 6);
        const std::uint64_t s = rng();
        std::snprintf(buf, sizeof(buf),
                      "powerLaw(n=%u, edges=%llu, alpha=%.1f)", n,
                      static_cast<unsigned long long>(edges), alpha);
        *desc = buf;
        return powerLaw(n, edges, alpha, /*locality=*/0.5,
                        /*window=*/64, s);
      }
      case 2: {
        const NodeId n = 200 + rng() % 3000;
        const EdgeId edges = n * (2 + rng() % 10);
        const std::uint64_t s = rng();
        std::snprintf(buf, sizeof(buf), "uniform(n=%u, edges=%llu)", n,
                      static_cast<unsigned long long>(edges));
        *desc = buf;
        return uniformRandom(n, edges, s);
      }
      case 3: {
        const NodeId rows = 12 + rng() % 50, cols = 12 + rng() % 50;
        std::snprintf(buf, sizeof(buf), "grid2d(%u x %u)", rows, cols);
        *desc = buf;
        return grid2d(rows, cols);
      }
      default: {
        // Degenerate hub: every edge merges onto one node's sources.
        const NodeId n = 64 + rng() % 2000;
        std::snprintf(buf, sizeof(buf), "star(n=%u)", n);
        *desc = buf;
        return star(n);
      }
    }
}

void
mutateBank(std::mt19937_64& rng, MomsBankConfig& bank)
{
    static const std::uint32_t kMshrsPerTable[] = {1, 2, 16, 256};
    static const std::uint32_t kTables[] = {1, 2, 4};
    static const std::uint32_t kKicks[] = {1, 4, 8};
    static const std::uint32_t kSubentries[] = {2, 8, 64, 8192};
    static const std::uint32_t kDepth[] = {1, 2, 16};
    static const Cycle kLat[] = {1, 2, 4};
    bank.mshr_tables = pick(rng, kTables);
    // The cuckoo file partitions evenly across its ways.
    bank.num_mshrs = bank.mshr_tables * pick(rng, kMshrsPerTable);
    bank.max_kicks = pick(rng, kKicks);
    bank.num_subentries = pick(rng, kSubentries);
    bank.req_queue_depth = pick(rng, kDepth);
    bank.resp_queue_depth = pick(rng, kDepth);
    bank.req_latency = pick(rng, kLat);
    bank.resp_latency = pick(rng, kLat);
    if (rng() % 3 == 0) {
        bank.cache_bytes = 0;  // cache-less (Figs. 12/15 regime)
    } else if (bank.cache_bytes > 0) {
        static const std::uint32_t kWays[] = {1, 2, 4};
        bank.cache_ways = pick(rng, kWays);
    }
}

AccelConfig
drawConfig(std::mt19937_64& rng, const Options& opts,
           std::string* desc)
{
    static const std::uint32_t kPes[] = {1, 2, 3, 4, 8};
    static const std::uint32_t kChannels[] = {1, 2, 4};
    static const std::uint32_t kBankMult[] = {1, 2, 4};
    static const Cycle kCrossing[] = {1, 2, 4, 32};
    static const std::uint32_t kXbarDepth[] = {1, 2, 8, 32};
    static const std::uint32_t kThreads[] = {1, 4, 64, 1024};
    static const std::uint32_t kBurstLines[] = {1, 2, 8};
    static const std::uint32_t kBursts[] = {1, 2, 4};
    static const std::uint32_t kInitLines[] = {1, 4, 32};
    static const std::uint32_t kNodesPerCycle[] = {1, 4};

    // A quarter of the draws run on the HBM2 pseudo-channel substrate
    // (narrow buses, fine interleave): the functional plane must not
    // notice, so the engine-mode and golden oracles apply unchanged.
    static const std::uint32_t kPseudoChannels[] = {2, 4, 8};
    const bool hbm = rng() % 4 == 0;
    const std::uint32_t channels =
        hbm ? pick(rng, kPseudoChannels) : pick(rng, kChannels);
    const std::uint32_t banks = channels * pick(rng, kBankMult);
    MomsConfig moms;
    const char* shape;
    switch (rng() % 4) {
      case 0:
        moms = MomsConfig::twoLevel(banks,
                                    rng() % 2 ? 2048 : 0);
        shape = "two-level";
        break;
      case 1:
        moms = MomsConfig::shared(banks);
        shape = "shared";
        break;
      case 2:
        moms = MomsConfig::privateOnly();
        shape = "private";
        break;
      default:
        moms = MomsConfig::traditionalTwoLevel(banks);
        shape = "traditional";
        break;
    }
    moms.crossing_latency = pick(rng, kCrossing);
    moms.crossbar_queue_depth = pick(rng, kXbarDepth);
    mutateBank(rng, moms.shared_bank);
    mutateBank(rng, moms.private_bank);

    AccelConfig cfg = AccelConfig::preset(std::move(moms),
                                          pick(rng, kPes), channels);
    if (hbm)
        cfg.mem = MemSubstrateConfig::hbm2(channels);
    cfg.max_threads = pick(rng, kThreads);
    cfg.edge_burst_lines = pick(rng, kBurstLines);
    cfg.max_edge_bursts = pick(rng, kBursts);
    cfg.init_burst_lines = pick(rng, kInitLines);
    cfg.nodes_per_cycle = pick(rng, kNodesPerCycle);

    cfg.checks.enabled = true;
    cfg.checks.shadow_memory = true;
    cfg.checks.watchdog_interval = 200'000;
    cfg.checks.dump_path = opts.dump_path;

    // A third of the draws become multi-board clusters: the cluster
    // path must satisfy the same oracles as the single board (engine
    // modes bit-exact, golden agreement) for every topology and link
    // shape, including a starved link (1 credit, 500-cycle latency).
    if (rng() % 3 == 0) {
        static const std::uint32_t kBoards[] = {2, 3, 4, 8};
        static const std::uint32_t kLinkBytes[] = {4, 16, 64};
        static const Cycle kLinkLat[] = {8, 64, 500};
        static const std::uint32_t kCredits[] = {1, 4, 16};
        static const std::uint32_t kPacket[] = {24, 64, 1024};
        cfg.cluster.boards = pick(rng, kBoards);
        cfg.cluster.mode = rng() % 2 ? ClusterConfig::Mode::Async
                                     : ClusterConfig::Mode::Bsp;
        cfg.cluster.partitioner =
            rng() % 2 ? ClusterConfig::Partitioner::RoundRobin
                      : ClusterConfig::Partitioner::BlockEdges;
        cfg.cluster.link_bytes_per_cycle = pick(rng, kLinkBytes);
        cfg.cluster.link_latency = pick(rng, kLinkLat);
        cfg.cluster.link_credits = pick(rng, kCredits);
        cfg.cluster.link_max_packet_bytes = pick(rng, kPacket);
        // Boards park for long stretches at barriers / on ghost waits;
        // the quiescence watchdog would misread that as a hang (same
        // rule serve::validateJobSpec applies to boards > 1).
        cfg.checks.enabled = false;
        cfg.checks.shadow_memory = false;
    }

    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s %u pe / %u %s / %u banks",
                  shape, cfg.num_pes, cfg.mem.channels,
                  hbm ? "pc-hbm" : "ch-ddr4", banks);
    *desc = buf;
    if (cfg.cluster.enabled()) {
        std::snprintf(buf, sizeof(buf), " x %u boards (%s, %s)",
                      cfg.cluster.boards,
                      cfg.cluster.mode == ClusterConfig::Mode::Bsp
                          ? "bsp"
                          : "async",
                      cfg.cluster.partitioner ==
                              ClusterConfig::Partitioner::BlockEdges
                          ? "block-edges"
                          : "round-robin");
        *desc += buf;
    }
    return cfg;
}

/** One seeded run; returns false (after printing the repro line) on
 *  any disagreement. Checker aborts propagate as exceptions. */
bool
runOne(std::uint64_t seed, const Options& opts)
{
    std::mt19937_64 rng(seed);
    std::string graph_desc, cfg_desc;
    CooGraph g = drawGraph(rng, &graph_desc);
    AccelConfig cfg = drawConfig(rng, opts, &cfg_desc);

    static const char* kAlgos[] = {"PageRank", "SCC", "SSSP", "BFS"};
    const std::string algo = kAlgos[rng() % 4];
    const NodeId source =
        static_cast<NodeId>(rng() % g.numNodes());
    if (algo == "SSSP")
        addRandomWeights(g, rng());  // session uses the graph's weights

    // A quarter of the draws stream the packed half-word CSR. The base
    // relabeling stays identity, so the golden oracles compare in the
    // external id space exactly as for the plain encoding.
    const Preprocessing prep =
        rng() % 4 == 0 ? Preprocessing::Packed : Preprocessing::None;
    if (prep == Preprocessing::Packed)
        cfg_desc += " packed";

    cfg.validate();  // the draw must only ever produce legal configs
    if (std::getenv("FUZZ_VERBOSE"))
        std::fprintf(stderr, "seed %llu: %s | %s | %s\n",
                     static_cast<unsigned long long>(seed),
                     graph_desc.c_str(), cfg_desc.c_str(),
                     algo.c_str());

    auto fail = [&](const std::string& what) {
        std::fprintf(stderr,
                     "FUZZ FAILURE (seed %llu): %s\n"
                     "  graph:  %s\n  config: %s\n  algo:   %s "
                     "(source %u)\n",
                     static_cast<unsigned long long>(seed),
                     what.c_str(), graph_desc.c_str(),
                     cfg_desc.c_str(), algo.c_str(), source);
        return false;
    };

    auto runMode = [&](bool full_tick) {
        AccelConfig mode_cfg = cfg;
        mode_cfg.full_tick_engine = full_tick;
        return SessionBuilder()
            .datasetView(g)
            .config(mode_cfg)
            .preprocessing(prep)
            .algo(algo)
            .iterations(algo == "PageRank" ? 3 : 1000)
            .source(source)
            .run();
    };

    SessionResult idle = runMode(false);
    SessionResult full = runMode(true);

    if (idle.run.cycles != full.run.cycles)
        return fail("engine modes disagree on cycle count: idle " +
                    std::to_string(idle.run.cycles) + " vs full-tick " +
                    std::to_string(full.run.cycles));
    if (idle.run.raw_values != full.run.raw_values)
        return fail("engine modes disagree on result values");

    const auto& raw = idle.run.raw_values;
    if (algo == "PageRank") {
        const std::vector<double> golden = goldenPageRank(g, 3);
        for (NodeId i = 0; i < g.numNodes(); ++i)
            if (std::abs(idle.values[i] - golden[i]) >
                2e-4 * golden[i] + 1e-8)
                return fail("PageRank diverges from golden at node " +
                            std::to_string(i));
    } else if (algo == "SCC") {
        if (raw != goldenMinLabel(g))
            return fail("SCC labels differ from golden fixpoint");
    } else if (algo == "SSSP") {
        if (raw != goldenSssp(g, source))
            return fail("SSSP distances differ from Bellman-Ford");
    } else {
        if (raw != goldenBfs(g, source))
            return fail("BFS depths differ from golden");
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--runs=", 0) == 0)
            opts.runs = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--seed=", 0) == 0)
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--dump=", 0) == 0)
            opts.dump_path = arg.substr(7);
        else if (arg == "--smoke")
            opts.runs = 40;
        else {
            std::fprintf(stderr,
                         "usage: fuzz_sim [--runs=N] [--seed=S] "
                         "[--smoke] [--dump=PATH]\n");
            return 2;
        }
    }
    if (opts.runs == 0) {
        std::fprintf(stderr, "fuzz_sim: --runs must be positive\n");
        return 2;
    }

    std::printf("fuzz_sim: %llu runs from seed %llu "
                "(checkers + shadow memory on, both engine modes)\n",
                static_cast<unsigned long long>(opts.runs),
                static_cast<unsigned long long>(opts.seed));
    for (std::uint64_t r = 0; r < opts.runs; ++r) {
        const std::uint64_t seed = opts.seed + r;
        try {
            if (!runOne(seed, opts))
                return 1;
        } catch (const CheckError& e) {
            std::fprintf(stderr,
                         "FUZZ FAILURE (seed %llu): hardening layer "
                         "fired on a healthy run:\n%s\n",
                         static_cast<unsigned long long>(seed),
                         e.what());
            return 1;
        } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "FUZZ FAILURE (seed %llu): unexpected "
                         "exception: %s\n",
                         static_cast<unsigned long long>(seed),
                         e.what());
            return 1;
        }
        if ((r + 1) % 25 == 0 || r + 1 == opts.runs)
            std::printf("  %llu/%llu ok\n",
                        static_cast<unsigned long long>(r + 1),
                        static_cast<unsigned long long>(opts.runs));
    }
    std::printf("fuzz_sim: all runs passed\n");
    return 0;
}
