/**
 * @file
 * gmoms_serve: the serving layer as a process — JSON-lines over
 * stdin/stdout (one request object per line, one response object per
 * line), so external drivers and shell scripts can push jobs through
 * GraphService without linking the library.
 *
 * Requests ("op" selects the verb):
 *   {"op":"submit","tenant":"a","dataset":"WT","algo":"PageRank",
 *    "prep":"dbg+hash","iterations":10,"source":0,
 *    "preset":"paper18x16","priority":2,"cycle_budget":0,
 *    "max_retries":1,"checks":true,"telemetry":false}
 *   {"op":"poll","id":3}
 *   {"op":"stats"}
 *   {"op":"drain"}
 *   {"op":"quit"}
 *
 * Every response carries "op" (echo) and "ok". A rejected submit is
 * NOT a protocol error: it returns ok=false plus the full "rejected"
 * reason list, mirroring GraphService::Submitted. Malformed JSON or an
 * unknown op returns ok=false with "error".
 *
 * Flags: --workers N, --paused (batch mode: dispatch only on drain),
 * --queue-depth N, --quota N, --cache-mb N, --no-fallback,
 * --checkpoint-mb N, --no-checkpoints (cold-build every attempt).
 *
 * The stats response includes the checkpoint pool's hit/miss/fork/
 * eviction counts, resident bytes and memo hit/miss counters.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_check.hh"
#include "src/serve/service.hh"

using namespace gmoms;
using namespace gmoms::serve;

namespace
{

/** Serialize a reason list as a JSON array of strings. */
std::string
jsonStringArray(const std::vector<std::string>& items)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << ",";
        JsonReport::writeEscaped(os, items[i]);
    }
    os << "]";
    return os.str();
}

std::optional<Preprocessing>
prepByName(const std::string& name)
{
    if (name == "none")
        return Preprocessing::None;
    if (name == "hash")
        return Preprocessing::Hash;
    if (name == "dbg")
        return Preprocessing::Dbg;
    if (name == "dbg+hash")
        return Preprocessing::DbgHash;
    return std::nullopt;
}

/** A JobRecord as the flat JSON block of poll responses. */
JsonReport
recordReport(const JobRecord& rec)
{
    JsonReport r;
    r.set("id", static_cast<std::uint64_t>(rec.id))
        .set("tenant", rec.tenant)
        .set("dataset", rec.dataset)
        .set("algo", rec.algo)
        .set("priority", static_cast<std::uint64_t>(rec.priority))
        .set("state", std::string(jobStateName(rec.state)))
        .set("terminal", rec.terminal())
        .set("attempts", static_cast<std::uint64_t>(rec.attempts))
        .set("used_fallback", rec.used_fallback)
        .set("error", rec.error)
        .set("replay", rec.replay)
        .set("queue_seconds", rec.queue_seconds)
        .set("prep_seconds", rec.prep_seconds)
        .set("sim_seconds", rec.sim_seconds)
        .set("total_seconds", rec.total_seconds)
        .set("cycles", static_cast<std::uint64_t>(rec.cycles))
        .set("iterations", static_cast<std::uint64_t>(rec.iterations))
        .set("edges_processed",
             static_cast<std::uint64_t>(rec.edges_processed))
        .set("dram_bytes_read", rec.dram_bytes_read)
        .set("dram_bytes_written", rec.dram_bytes_written)
        .set("moms_hit_rate", rec.moms_hit_rate)
        .set("gteps", rec.gteps)
        .set("values_checksum", rec.values_checksum);
    return r;
}

void
respond(const JsonReport& r)
{
    std::cout << r.str() << "\n" << std::flush;
}

void
respondError(const std::string& op, const std::string& error)
{
    JsonReport r;
    r.set("op", op).set("ok", false).set("error", error);
    respond(r);
}

/** Numeric field helper: @p out unchanged when the key is absent. */
template <typename T>
bool
readNumber(const JsonValue& req, const std::string& key, T& out,
           std::string& error)
{
    const JsonValue* v = req.find(key);
    if (!v)
        return true;
    if (!v->isNumber() || v->number < 0) {
        error = "field \"" + key + "\" must be a non-negative number";
        return false;
    }
    out = static_cast<T>(v->number);
    return true;
}

bool
readString(const JsonValue& req, const std::string& key,
           std::string& out, std::string& error)
{
    const JsonValue* v = req.find(key);
    if (!v)
        return true;
    if (!v->isString()) {
        error = "field \"" + key + "\" must be a string";
        return false;
    }
    out = v->string;
    return true;
}

bool
readBool(const JsonValue& req, const std::string& key, bool& out,
         std::string& error)
{
    const JsonValue* v = req.find(key);
    if (!v)
        return true;
    if (v->kind != JsonValue::Kind::Bool) {
        error = "field \"" + key + "\" must be a boolean";
        return false;
    }
    out = v->boolean;
    return true;
}

void
handleSubmit(GraphService& service, const JsonValue& req)
{
    JobSpec spec;
    std::string prep = "dbg+hash";
    std::string error;
    bool ok = readString(req, "tenant", spec.tenant, error) &&
              readString(req, "dataset", spec.dataset, error) &&
              readString(req, "algo", spec.algo, error) &&
              readString(req, "preset", spec.preset, error) &&
              readString(req, "prep", prep, error) &&
              readNumber(req, "iterations", spec.iterations, error) &&
              readNumber(req, "source", spec.source, error) &&
              readNumber(req, "priority", spec.priority, error) &&
              readNumber(req, "cycle_budget", spec.cycle_budget,
                         error) &&
              readNumber(req, "max_retries", spec.max_retries, error) &&
              readBool(req, "checks", spec.checks, error) &&
              readBool(req, "telemetry", spec.telemetry, error);
    if (!ok) {
        respondError("submit", error);
        return;
    }
    const std::optional<Preprocessing> p = prepByName(prep);
    if (!p) {
        respondError("submit", "unknown preprocessing \"" + prep +
                                   "\" (none, hash, dbg, dbg+hash)");
        return;
    }
    spec.prep = *p;

    const GraphService::Submitted sub = service.submit(std::move(spec));
    JsonReport r;
    r.set("op", std::string("submit")).set("ok", sub.ok());
    if (sub.ok())
        r.set("id", static_cast<std::uint64_t>(sub.id));
    else
        r.set("rejected", JsonReport::Raw{jsonStringArray(sub.rejected)});
    respond(r);
}

void
handlePoll(GraphService& service, const JsonValue& req)
{
    const JsonValue* id = req.find("id");
    if (!id || !id->isNumber() || id->number < 1) {
        respondError("poll", "poll requires a positive numeric \"id\"");
        return;
    }
    const std::optional<JobRecord> rec =
        service.poll(static_cast<JobId>(id->number));
    if (!rec) {
        respondError("poll", "unknown job id");
        return;
    }
    JsonReport r;
    r.set("op", std::string("poll"))
        .set("ok", true)
        .set("job", JsonReport::Raw{recordReport(*rec).str()});
    respond(r);
}

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workers N] [--paused] [--queue-depth N]\n"
        "          [--quota N] [--cache-mb N] [--no-fallback]\n"
        "          [--checkpoint-mb N] [--no-checkpoints]\n"
        "JSON-lines serving front end; see the file header for the\n"
        "request protocol.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    ServiceConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--workers") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.workers = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--paused") {
            cfg.start_paused = true;
        } else if (arg == "--queue-depth") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.max_queue_depth =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--quota") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.per_tenant_quota =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--cache-mb") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.cache_budget_bytes =
                static_cast<std::uint64_t>(std::atoll(v)) << 20;
        } else if (arg == "--no-fallback") {
            cfg.enable_fallback = false;
        } else if (arg == "--checkpoint-mb") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.checkpoint_budget_bytes =
                static_cast<std::uint64_t>(std::atoll(v)) << 20;
        } else if (arg == "--no-checkpoints") {
            cfg.enable_checkpoints = false;
        } else {
            return usage(argv[0]);
        }
    }

    GraphService service(cfg);
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::string parse_error;
        const std::optional<JsonValue> req =
            parseJson(line, &parse_error);
        if (!req || !req->isObject()) {
            respondError("?", req ? "request must be a JSON object"
                                  : "bad JSON: " + parse_error);
            continue;
        }
        const JsonValue* op = req->find("op");
        if (!op || !op->isString()) {
            respondError("?", "request needs a string \"op\"");
            continue;
        }

        if (op->string == "submit") {
            handleSubmit(service, *req);
        } else if (op->string == "poll") {
            handlePoll(service, *req);
        } else if (op->string == "stats") {
            JsonReport r;
            r.set("op", std::string("stats"))
                .set("ok", true)
                .set("stats",
                     JsonReport::Raw{service.stats().report().str()});
            respond(r);
        } else if (op->string == "drain") {
            const std::uint64_t drained = service.drain();
            JsonReport r;
            r.set("op", std::string("drain"))
                .set("ok", true)
                .set("drained", drained);
            respond(r);
        } else if (op->string == "quit") {
            JsonReport r;
            r.set("op", std::string("quit")).set("ok", true);
            respond(r);
            break;
        } else {
            respondError(op->string, "unknown op \"" + op->string +
                                         "\" (submit, poll, stats, "
                                         "drain, quit)");
        }
    }
    // ~GraphService drains whatever is still in flight.
    return 0;
}
