/**
 * @file
 * gmoms_serve: the serving layer as a process. Two front ends over the
 * same protocol (src/serve/protocol.hh):
 *
 *   - stdin mode (default): JSON-lines over stdin/stdout, one request
 *     object per line, one response object per line — shell-scriptable,
 *     zero sockets;
 *   - TCP mode (--listen PORT): the epoll front end (src/net/) on
 *     --bind (loopback by default), any number of pipelining clients,
 *     graceful drain-and-exit on a quit request. The bound port is
 *     printed to stdout as `{"listening":PORT}` so drivers using an
 *     ephemeral port (--listen 0) can find it.
 *
 * Both speak v1 (PR 5 bare JSON-lines, answered bit-compatibly) and v2
 * (`"v":2` + `request_id`, tagged-union responses); see the protocol
 * header for the wire shapes and docs/MODEL.md for the schema.
 *
 * Service flags: --workers N, --paused (batch mode: dispatch only on
 * drain), --queue-depth N, --quota N, --cache-mb N, --no-fallback,
 * --checkpoint-mb N, --no-checkpoints, --result-cache-mb N,
 * --no-result-cache, --rate-hz R --rate-burst B (per-tenant token
 * bucket; 0 = unlimited).
 * Network flags: --listen PORT, --bind ADDR, --max-conns N.
 *
 * Stats responses include the admission/cache/checkpoint/result-cache/
 * rate-limiter block (ServiceStats::toJson) and, in TCP mode, the
 * server's connection counters under "net".
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/net/tcp_server.hh"
#include "src/serve/protocol.hh"
#include "src/serve/service.hh"

using namespace gmoms;
using namespace gmoms::serve;

namespace
{

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workers N] [--paused] [--queue-depth N]\n"
        "          [--quota N] [--cache-mb N] [--no-fallback]\n"
        "          [--checkpoint-mb N] [--no-checkpoints]\n"
        "          [--result-cache-mb N] [--no-result-cache]\n"
        "          [--rate-hz R] [--rate-burst B]\n"
        "          [--listen PORT] [--bind ADDR] [--max-conns N]\n"
        "JSON-lines serving front end (stdin by default, epoll TCP\n"
        "with --listen); see the file header for the protocol.\n",
        argv0);
    return 2;
}

int
runStdin(GraphService& service)
{
    std::string line;
    bool quit = false;
    while (!quit && std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::cout << handleRequestLine(service, line, quit) << "\n"
                  << std::flush;
    }
    // ~GraphService drains whatever is still in flight.
    return 0;
}

int
runTcp(GraphService& service, const net::TcpServerConfig& net_cfg)
{
    net::TcpServer server(net_cfg, [&](const std::string& line) {
        net::HandlerResult out;
        bool quit = false;
        // Stats requests get the server's own counters appended; one
        // snapshot per request keeps the handler allocation-light.
        const JsonReport net_json = server.stats().toJson();
        out.line = handleRequestLine(service, line, quit, &net_json);
        out.shutdown_server = quit;
        return out;
    });
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "gmoms_serve: %s\n", error.c_str());
        return 1;
    }
    std::cout << "{\"listening\":" << server.port() << "}\n"
              << std::flush;
    server.waitUntilStopped();
    const net::TcpServer::Stats net = server.stats();
    if (net.active != 0) {
        std::fprintf(stderr,
                     "gmoms_serve: %llu connection(s) leaked at exit\n",
                     static_cast<unsigned long long>(net.active));
        return 1;
    }
    // Drain admitted work before tearing the service down so the exit
    // code reflects a clean quiesce, not an abandoned queue.
    service.drain();
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    ServiceConfig cfg;
    net::TcpServerConfig net_cfg;
    bool tcp = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--workers") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.workers = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--paused") {
            cfg.start_paused = true;
        } else if (arg == "--queue-depth") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.max_queue_depth =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--quota") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.per_tenant_quota =
                static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--cache-mb") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.cache_budget_bytes =
                static_cast<std::uint64_t>(std::atoll(v)) << 20;
        } else if (arg == "--no-fallback") {
            cfg.enable_fallback = false;
        } else if (arg == "--checkpoint-mb") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.checkpoint_budget_bytes =
                static_cast<std::uint64_t>(std::atoll(v)) << 20;
        } else if (arg == "--no-checkpoints") {
            cfg.enable_checkpoints = false;
        } else if (arg == "--result-cache-mb") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.result_cache_budget_bytes =
                static_cast<std::uint64_t>(std::atoll(v)) << 20;
        } else if (arg == "--no-result-cache") {
            cfg.enable_result_cache = false;
        } else if (arg == "--rate-hz") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.rate_limit_hz = std::atof(v);
        } else if (arg == "--rate-burst") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            cfg.rate_limit_burst = std::atof(v);
        } else if (arg == "--listen") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            net_cfg.port = static_cast<std::uint16_t>(std::atoi(v));
            tcp = true;
        } else if (arg == "--bind") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            net_cfg.bind_address = v;
        } else if (arg == "--max-conns") {
            const char* v = next();
            if (!v)
                return usage(argv[0]);
            net_cfg.max_connections =
                static_cast<std::size_t>(std::atoll(v));
        } else {
            return usage(argv[0]);
        }
    }

    GraphService service(cfg);
    return tcp ? runTcp(service, net_cfg) : runStdin(service);
}
