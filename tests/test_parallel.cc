/**
 * @file
 * ThreadPool contract: completion of every job, deterministic
 * (lowest-index) exception propagation, inline nested batches, queue
 * backpressure and GMOMS_JOBS parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/sim/parallel.hh"

namespace gmoms
{
namespace
{

TEST(ThreadPool, RunAllWithNoJobsReturnsImmediately)
{
    ThreadPool pool(2);
    pool.runAll({});
}

TEST(ThreadPool, RunAllExecutesEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kJobs = 200;
    std::vector<std::atomic<int>> hits(kJobs);
    std::vector<ThreadPool::Job> jobs;
    for (std::size_t i = 0; i < kJobs; ++i)
        jobs.push_back([&hits, i] { ++hits[i]; });
    pool.runAll(std::move(jobs));
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResultsLandAtTheirJobIndex)
{
    // The sweep() pattern: each job writes results[i]; order of
    // execution must not matter for where results land.
    ThreadPool pool(8);
    constexpr std::size_t kJobs = 64;
    std::vector<int> results(kJobs, -1);
    std::vector<ThreadPool::Job> jobs;
    for (std::size_t i = 0; i < kJobs; ++i)
        jobs.push_back(
            [&results, i] { results[i] = static_cast<int>(i) * 3; });
    pool.runAll(std::move(jobs));
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_EQ(results[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, SingleWorkerRunsJobsInPostedOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<ThreadPool::Job> jobs;
    for (int i = 0; i < 32; ++i)
        jobs.push_back([&order, i] { order.push_back(i); });
    pool.runAll(std::move(jobs));
    std::vector<int> expected(32);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, RethrowsLowestIndexFailure)
{
    ThreadPool pool(4);
    // Every odd job fails; the batch must surface job 1's exception
    // regardless of which failing job finished first.
    std::vector<ThreadPool::Job> jobs;
    for (int i = 0; i < 40; ++i)
        jobs.push_back([i] {
            if (i % 2 == 1)
                throw std::runtime_error("job " + std::to_string(i));
        });
    try {
        pool.runAll(std::move(jobs));
        FAIL() << "expected runAll to rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "job 1");
    }
}

TEST(ThreadPool, AllJobsRunEvenWhenSomeThrow)
{
    ThreadPool pool(2);
    std::atomic<int> executed{0};
    std::vector<ThreadPool::Job> jobs;
    for (int i = 0; i < 20; ++i)
        jobs.push_back([&executed, i] {
            ++executed;
            if (i == 0)
                throw std::runtime_error("first");
        });
    EXPECT_THROW(pool.runAll(std::move(jobs)), std::runtime_error);
    EXPECT_EQ(executed.load(), 20);
}

TEST(ThreadPool, NestedRunAllFromWorkerExecutesInline)
{
    // A job that itself calls runAll() must not deadlock even when the
    // pool has a single worker (the nested batch runs on that worker).
    ThreadPool pool(1);
    std::atomic<int> inner_runs{0};
    pool.runAll({[&] {
        std::vector<ThreadPool::Job> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back([&inner_runs] { ++inner_runs; });
        pool.runAll(std::move(inner));
    }});
    EXPECT_EQ(inner_runs.load(), 8);
}

TEST(ThreadPool, SmallQueueBackpressuresWithoutDeadlock)
{
    // Queue of 2 slots, many more jobs: post() must block-and-resume
    // rather than drop or deadlock.
    ThreadPool pool(2, 2);
    std::atomic<int> runs{0};
    std::vector<ThreadPool::Job> jobs;
    for (int i = 0; i < 100; ++i)
        jobs.push_back([&runs] { ++runs; });
    pool.runAll(std::move(jobs));
    EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPool, ParseWorkersAcceptsOnlyPlainPositiveIntegers)
{
    EXPECT_EQ(ThreadPool::parseWorkers(nullptr), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers(""), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("abc"), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("4x"), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("-2"), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("0"), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("1"), 1u);
    EXPECT_EQ(ThreadPool::parseWorkers("16"), 16u);
}

TEST(ThreadPool, DefaultWorkersIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

TEST(ThreadPool, WorkerCountMatchesRequest)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3u);
}

} // namespace
} // namespace gmoms
