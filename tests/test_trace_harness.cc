/**
 * @file
 * Tests for the trace-driven MOMS characterization harness.
 */

#include <gtest/gtest.h>

#include "src/cache/trace_harness.hh"

namespace gmoms
{
namespace
{

TraceConfig
quick()
{
    TraceConfig cfg;
    cfg.num_clients = 4;
    cfg.num_channels = 2;
    cfg.requests_per_client = 4000;
    cfg.footprint_words = 1 << 18;
    return cfg;
}

TEST(TraceHarness, CompletesAndCountsEveryRequest)
{
    TraceConfig cfg = quick();
    TraceResult r = replayTrace(
        MomsConfig::twoLevel(2), cfg,
        patterns::uniform(cfg.footprint_words));
    EXPECT_EQ(r.requests,
              std::uint64_t{cfg.num_clients} * cfg.requests_per_client);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.lines_from_mem, 0u);
}

TEST(TraceHarness, ZipfMergesFarMoreThanUniform)
{
    // The skewed trace is the graph-workload proxy: hot words merge in
    // MSHRs, uniform traffic does not (Section II-C intuition).
    TraceConfig cfg = quick();
    MomsConfig moms = MomsConfig::twoLevel(2).withoutCacheArrays();
    TraceResult zipf = replayTrace(
        moms, cfg, patterns::zipf(cfg.footprint_words, 0.9));
    TraceResult uni = replayTrace(
        moms, cfg, patterns::uniform(cfg.footprint_words));
    EXPECT_GT(zipf.mergeRate(), 2.0 * uni.mergeRate());
    EXPECT_LT(zipf.lines_from_mem, uni.lines_from_mem);
}

TEST(TraceHarness, SkewedTraceFavorsMomsOverTraditional)
{
    // The FPGA'19 headline, reproduced standalone: on a skewed,
    // latency-insensitive read stream the MOMS sustains a higher
    // request rate than a same-cache traditional nonblocking cache.
    TraceConfig cfg = quick();
    TraceResult moms = replayTrace(
        MomsConfig::shared(2), cfg,
        patterns::zipf(cfg.footprint_words, 0.8));
    TraceResult trad = replayTrace(
        MomsConfig::traditionalShared(2), cfg,
        patterns::zipf(cfg.footprint_words, 0.8));
    EXPECT_GT(moms.requestsPerCycle(),
              1.2 * trad.requestsPerCycle());
}

TEST(TraceHarness, StridedSweepIsRowBufferFriendly)
{
    // Unit-stride sweep: sequential lines, high row locality, cache
    // hits within lines (16 words/line -> 15/16 secondary or hits).
    TraceConfig cfg = quick();
    TraceResult r = replayTrace(
        MomsConfig::twoLevel(2), cfg,
        patterns::strided(cfg.footprint_words, 1));
    EXPECT_GT(r.hitRate() + r.mergeRate(), 0.8);
}

TEST(TraceHarness, WindowLimitsOutstandingRequests)
{
    // A 1-deep client window serializes each client: the run takes at
    // least requests * round-trip-ish cycles; just assert it is far
    // slower than the wide-window run.
    TraceConfig wide = quick();
    wide.requests_per_client = 1000;
    TraceConfig narrow = wide;
    narrow.client_window = 1;
    MomsConfig moms = MomsConfig::twoLevel(2).withoutCacheArrays();
    TraceResult w = replayTrace(
        moms, wide, patterns::uniform(wide.footprint_words));
    TraceResult n = replayTrace(
        moms, narrow, patterns::uniform(narrow.footprint_words));
    EXPECT_GT(n.cycles, 5 * w.cycles)
        << "MLP is the point: no outstanding misses, no throughput";
}

} // namespace
} // namespace gmoms
