/**
 * @file
 * DRAM model calibration tests against the paper's measured numbers:
 * ~16 GB/s per channel on long bursts, ~8 GB/s on single 64 B reads
 * (Section V-A, the AWS shell behaviour). At the modelled 250 MHz
 * accelerator clock those are 64 and 32 bytes per cycle.
 */

#include <gtest/gtest.h>

#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"
#include "src/sim/rng.hh"

namespace gmoms
{
namespace
{

/** Stream @p count transactions of @p bytes and return bytes/cycle. */
double
streamBandwidth(std::uint32_t bytes, int count, bool random_addresses)
{
    Engine eng;
    DramConfig cfg;
    MemorySystem mem(eng, cfg, 1, 1);
    mem.store().resize(1 << 24);
    MemPort port = mem.port(0);
    Rng rng(9);
    int sent = 0, recvd = 0;
    Addr next = 0;
    const Cycle start = eng.now();
    eng.runUntil(
        [&] {
            while (sent < count) {
                Addr a;
                if (random_addresses) {
                    a = rng.below((1 << 24) / bytes) *
                        static_cast<Addr>(bytes);
                    a = alignDown(a, bytes);
                    // keep within one interleave unit
                    if (a % kInterleaveBytes + bytes > kInterleaveBytes)
                        a = alignDown(a, kInterleaveBytes);
                } else {
                    a = next;
                    next += bytes;
                }
                if (!port.send(MemReq{a, bytes, 0, false}))
                    break;
                ++sent;
            }
            while (port.receive())
                ++recvd;
            return recvd == count;
        },
        10'000'000);
    return static_cast<double>(bytes) * count /
           static_cast<double>(eng.now() - start);
}

TEST(DramCalibration, SequentialBurstsReachNearPeak)
{
    // 2 KiB bursts: >= 90% of the 64 B/cycle pin bandwidth.
    const double bw = streamBandwidth(2048, 300, false);
    EXPECT_GT(bw, 0.90 * 64);
    EXPECT_LE(bw, 64.01);
}

TEST(DramCalibration, RandomSingleReadsLandNearHalfPeak)
{
    // Random 64 B reads: the paper measured ~8 GB/s of 16 GB/s
    // (50%); with fully random rows our model gives ~33% (every
    // access row-misses, which the shell measurement partially
    // amortized). Accept 28-66% of peak.
    const double bw = streamBandwidth(64, 4000, true);
    EXPECT_GT(bw, 18.0);
    EXPECT_LT(bw, 42.0);
}

TEST(DramCalibration, SequentialSinglesBeatRandomSingles)
{
    // Row-buffer locality: sequential 64 B reads hit open rows.
    const double seq = streamBandwidth(64, 4000, false);
    const double rnd = streamBandwidth(64, 4000, true);
    EXPECT_GT(seq, rnd);
}

TEST(DramCalibration, LoadedLatencyIncludesQueueing)
{
    // Under backlog, the observed request latency must exceed the
    // unloaded latency — the queueing that feeds the MOMS merge window.
    Engine eng;
    DramConfig cfg;
    MemorySystem mem(eng, cfg, 1, 1);
    mem.store().resize(1 << 22);
    MemPort port = mem.port(0);

    // Fill the port queue, then time the LAST request end-to-end.
    int sent = 0;
    Rng rng(3);
    while (port.send(MemReq{rng.below(1 << 15) * 64, 64,
                            static_cast<std::uint64_t>(sent), false}))
        ++sent;
    const Cycle issue = eng.now();
    int recvd = 0;
    Cycle last_done = 0;
    eng.runUntil(
        [&] {
            while (auto r = port.receive()) {
                ++recvd;
                last_done = eng.now();
            }
            return recvd == sent;
        },
        100'000);
    EXPECT_EQ(recvd, sent);
    EXPECT_GT(last_done - issue,
              static_cast<Cycle>(2 * cfg.load_latency_cycles))
        << "queueing delay absent";
}

} // namespace
} // namespace gmoms
