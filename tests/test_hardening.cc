/**
 * @file
 * Regression tests for the hardening layer (ISSUE 4): config
 * validation, loud environment-variable parsing, the conservation
 * checkers under injected faults (MSHR leak, dropped crossbar token,
 * stuck response credit), the quiescence watchdog on a wedged
 * component, budget-overrun reporting, and the checks-on bit-exactness
 * contract. Fault injection uses the test-only hooks
 * (MomsSystem::FaultHooks, mshrsForTest), never production paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "src/accel/accelerator.hh"
#include "src/accel/session.hh"
#include "src/algo/golden.hh"
#include "src/check/check_config.hh"
#include "src/graph/generator.hh"
#include "src/sim/log.hh"
#include "src/sim/parallel.hh"

namespace gmoms
{
namespace
{

/** Set an environment variable for one scope, restoring on exit. */
class EnvGuard
{
  public:
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        if (old != nullptr) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~EnvGuard()
    {
        if (had_old_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char* name_;
    bool had_old_ = false;
    std::string old_;
};

/** Small shared-MOMS system: PEs talk to the banks through the
 *  request/response crossbars, which is where the fault hooks sit. */
AccelConfig
smallSharedConfig()
{
    AccelConfig cfg = AccelConfig::preset(MomsConfig::shared(4),
                                          /*pes=*/4, /*channels=*/2);
    cfg.moms.shared_bank.num_mshrs = 128;
    cfg.moms.shared_bank.num_subentries = 2048;
    cfg.moms.shared_bank.cache_bytes = 8192;
    cfg.max_threads = 64;
    return cfg;
}

CooGraph
smallGraph()
{
    return uniformRandom(600, 5000, 21);
}

/** what() of a CheckError (reason + dump) must mention @p needle. */
#define EXPECT_CHECK_ERROR(stmt, needle)                                 \
    do {                                                                 \
        bool threw_ = false;                                             \
        try {                                                            \
            stmt;                                                        \
        } catch (const CheckError& e_) {                                 \
            threw_ = true;                                               \
            EXPECT_NE(std::string(e_.what()).find(needle),               \
                      std::string::npos)                                 \
                << "diagnostic does not mention \"" << needle            \
                << "\":\n"                                               \
                << e_.what();                                            \
        }                                                                \
        EXPECT_TRUE(threw_) << "expected a CheckError";                  \
    } while (0)

// ---------------------------------------------------------------------
// AccelConfig::validate()
// ---------------------------------------------------------------------

TEST(Hardening, ValidateReportsEveryProblemAtOnce)
{
    AccelConfig cfg = smallSharedConfig();
    cfg.num_pes = 0;
    cfg.max_threads = 0;
    cfg.moms.crossbar_queue_depth = 0;
    cfg.moms.shared_bank.num_mshrs = 6;  // not a multiple of 4 tables
    try {
        cfg.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("num_pes must be > 0"), std::string::npos);
        EXPECT_NE(msg.find("max_threads must be > 0"),
                  std::string::npos);
        EXPECT_NE(msg.find("crossbar_queue_depth"), std::string::npos);
        EXPECT_NE(msg.find("multiple of mshr_tables"),
                  std::string::npos)
            << msg;
    }
}

TEST(Hardening, ValidateAcceptsDefaultsAndPresets)
{
    EXPECT_NO_THROW(AccelConfig{}.validate());
    EXPECT_NO_THROW(AccelConfig::paper18x16TwoLevel().validate());
    EXPECT_NO_THROW(AccelConfig::sharedMoms().validate());
    EXPECT_NO_THROW(AccelConfig::privateMoms().validate());
    EXPECT_NO_THROW(AccelConfig::traditionalNbc().validate());
}

TEST(Hardening, ValidateRejectsStraddlingIntervals)
{
    AccelConfig cfg = smallSharedConfig();
    cfg.nd = 300;
    cfg.ns = 700;  // not a multiple of nd
    EXPECT_THROW(cfg.validate(), FatalError);
}

// ---------------------------------------------------------------------
// Environment-variable parsing fails loudly
// ---------------------------------------------------------------------

TEST(Hardening, FullTickEnvRejectsGarbage)
{
    EnvGuard guard("GMOMS_FULL_TICK", "ture");
    EXPECT_THROW(Engine{}, FatalError);
}

TEST(Hardening, FullTickEnvAcceptsCanonicalValues)
{
    {
        EnvGuard guard("GMOMS_FULL_TICK", "1");
        EXPECT_TRUE(Engine{}.fullTick());
    }
    {
        EnvGuard guard("GMOMS_FULL_TICK", "0");
        EXPECT_FALSE(Engine{}.fullTick());
    }
    {
        EnvGuard guard("GMOMS_FULL_TICK", nullptr);
        EXPECT_NO_THROW(Engine{});
    }
}

TEST(Hardening, JobsParsing)
{
    EXPECT_EQ(ThreadPool::parseWorkers(nullptr), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers(""), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("8"), 8u);
    EXPECT_EQ(ThreadPool::parseWorkers("eight"), 0u);
    EXPECT_EQ(ThreadPool::parseWorkers("4x"), 0u);

    {
        EnvGuard guard("GMOMS_JOBS", "3");
        EXPECT_EQ(ThreadPool::defaultWorkers(), 3u);
    }
    {
        EnvGuard guard("GMOMS_JOBS", "eight");
        EXPECT_THROW(ThreadPool::defaultWorkers(), FatalError);
    }
    {
        EnvGuard guard("GMOMS_JOBS", nullptr);
        EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
    }
}

// ---------------------------------------------------------------------
// Conservation checkers under injected faults
// ---------------------------------------------------------------------

TEST(Hardening, MshrLeakIsCaughtByDrainAudit)
{
    CooGraph g = smallGraph();
    AccelConfig cfg = smallSharedConfig();
    cfg.checks.enabled = true;
    // Keep every watchdog checkpoint out of the run: the leak must be
    // reported by the post-drain audit, not as a wedge.
    cfg.checks.watchdog_interval = 50'000'000;
    PartitionedGraph pg(g, cfg.nd, cfg.ns);
    AlgoSpec spec = AlgoSpec::pageRank(g, 2);
    Accelerator accel(cfg, pg, spec);

    // Allocate an MSHR nobody will ever free: a line far outside the
    // graph layout, so no real request can merge into (or erase) it.
    MshrEntry* leaked = accel.momsForTest()
                            .sharedBanks()[0]
                            ->mshrsForTest()
                            .insert(Addr{0x7fffff00});
    ASSERT_NE(leaked, nullptr);

    EXPECT_CHECK_ERROR(accel.run(), "MSHR leak");
}

TEST(Hardening, DroppedCrossbarTokenTripsWatchdog)
{
    CooGraph g = smallGraph();
    AccelConfig cfg = smallSharedConfig();
    cfg.checks.enabled = true;
    cfg.checks.watchdog_interval = 20'000;
    PartitionedGraph pg(g, cfg.nd, cfg.ns);
    AlgoSpec spec = AlgoSpec::pageRank(g, 2);
    Accelerator accel(cfg, pg, spec);

    MomsSystem::FaultHooks hooks;
    hooks.drop_next_request = true;
    accel.momsForTest().setFaultHooks(&hooks);

    try {
        accel.run();
        FAIL() << "expected the watchdog to fire";
    } catch (const CheckError& e) {
        EXPECT_NE(e.reason().find("no forward progress"),
                  std::string::npos)
            << e.reason();
        EXPECT_NE(e.dump().find("request token(s) lost"),
                  std::string::npos)
            << e.dump();
    }
}

TEST(Hardening, StuckResponseCreditTripsWatchdog)
{
    CooGraph g = smallGraph();
    AccelConfig cfg = smallSharedConfig();
    cfg.checks.enabled = true;
    cfg.checks.watchdog_interval = 20'000;
    PartitionedGraph pg(g, cfg.nd, cfg.ns);
    AlgoSpec spec = AlgoSpec::pageRank(g, 2);
    Accelerator accel(cfg, pg, spec);

    MomsSystem::FaultHooks hooks;
    hooks.stuck_client = 0;  // client 0 never accepts a response again
    accel.momsForTest().setFaultHooks(&hooks);

    try {
        accel.run();
        FAIL() << "expected the watchdog to fire";
    } catch (const CheckError& e) {
        EXPECT_NE(e.reason().find("no forward progress"),
                  std::string::npos)
            << e.reason();
        EXPECT_NE(e.dump().find("stuck"), std::string::npos)
            << e.dump();
    }
}

// ---------------------------------------------------------------------
// Quiescence watchdog and budget overrun
// ---------------------------------------------------------------------

namespace
{

/** Always-active component that never makes progress. */
class WedgedComponent : public Component
{
  public:
    WedgedComponent() : Component("wedged") {}
    void tick() override {}
};

} // namespace

TEST(Hardening, WatchdogAbortsWedgedStandaloneComponent)
{
    Engine engine;
    WedgedComponent wedged;
    engine.add(&wedged);

    CheckConfig cfg;
    cfg.enabled = true;
    cfg.watchdog_interval = 1'000;
    CheckHarness harness(engine, cfg, CheckHarness::Wiring{});

    EXPECT_CHECK_ERROR(
        engine.runUntil([] { return false; }, 1'000'000,
                        Engine::Poll::EveryCycle),
        "no forward progress");
    // It must fire shortly after the second checkpoint, not at budget.
    EXPECT_LT(engine.now(), 10'000u);
}

TEST(Hardening, BudgetOverrunThrowsCheckErrorWithDump)
{
    CooGraph g = smallGraph();
    AccelConfig cfg = smallSharedConfig();
    cfg.checks.enabled = true;
    cfg.max_cycles = 500;  // far too small for a whole iteration
    const std::string dump_path =
        testing::TempDir() + "gmoms_watchdog_dump.txt";
    cfg.checks.dump_path = dump_path;
    PartitionedGraph pg(g, cfg.nd, cfg.ns);
    AlgoSpec spec = AlgoSpec::pageRank(g, 2);
    Accelerator accel(cfg, pg, spec);

    EXPECT_CHECK_ERROR(accel.run(), "cycle budget exceeded");

    std::ifstream f(dump_path);
    ASSERT_TRUE(f.good()) << "dump file not written: " << dump_path;
    std::string contents((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("hardening-layer diagnostic dump"),
              std::string::npos);
    EXPECT_NE(contents.find("cycle budget exceeded"),
              std::string::npos);
}

TEST(Hardening, BudgetOverrunWithoutChecksStaysFatalError)
{
    CooGraph g = smallGraph();
    AccelConfig cfg = smallSharedConfig();
    cfg.max_cycles = 500;
    PartitionedGraph pg(g, cfg.nd, cfg.ns);
    AlgoSpec spec = AlgoSpec::pageRank(g, 2);
    Accelerator accel(cfg, pg, spec);
    EXPECT_THROW(accel.run(), FatalError);
}

// ---------------------------------------------------------------------
// Cost contract: checks on never changes simulation results
// ---------------------------------------------------------------------

TEST(Hardening, ChecksOnIsBitIdenticalToChecksOff)
{
    CooGraph g = smallGraph();
    AlgoSpec spec = AlgoSpec::pageRank(g, 3);

    AccelConfig off = smallSharedConfig();
    PartitionedGraph pg_off(g, off.nd, off.ns);
    RunResult base = Accelerator(off, pg_off, spec).run();

    AccelConfig on = smallSharedConfig();
    on.checks.enabled = true;
    PartitionedGraph pg_on(g, on.nd, on.ns);
    RunResult checked = Accelerator(on, pg_on, spec).run();

    EXPECT_EQ(base.cycles, checked.cycles);
    EXPECT_EQ(base.iterations, checked.iterations);
    EXPECT_EQ(base.raw_values, checked.raw_values);
}

TEST(Hardening, HealthyRunPassesDrainAudit)
{
    CooGraph g = smallGraph();
    SessionResult res = SessionBuilder()
                            .dataset(smallGraph())
                            .config(smallSharedConfig())
                            .checks(true)
                            .algo("SCC")
                            .run();
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    ASSERT_EQ(res.run.raw_values.size(), golden.size());
    EXPECT_EQ(res.run.raw_values, golden);
}

// ---------------------------------------------------------------------
// SessionBuilder entry point
// ---------------------------------------------------------------------

TEST(Hardening, BuilderRunMatchesDirectSessionConstruction)
{
    CooGraph g = uniformRandom(400, 3000, 33);

    Session direct(std::make_shared<const CooGraph>(g),
                   smallSharedConfig(), Preprocessing::DbgHash);
    SessionResult via_direct = direct.pageRank(4);

    SessionResult via_builder =
        SessionBuilder()
            .dataset(std::move(g))
            .config(smallSharedConfig())
            .preprocessing(Preprocessing::DbgHash)
            .algo("PageRank")
            .iterations(4)
            .run();

    EXPECT_EQ(via_direct.run.cycles, via_builder.run.cycles);
    EXPECT_EQ(via_direct.run.raw_values, via_builder.run.raw_values);
}

TEST(Hardening, BuilderRejectsBadInput)
{
    // No dataset.
    EXPECT_THROW(SessionBuilder().algo("PageRank").run(), FatalError);
    // No algorithm selected.
    EXPECT_THROW(
        SessionBuilder().dataset(smallGraph()).run(), FatalError);
    // Unknown algorithm name.
    EXPECT_THROW(SessionBuilder()
                     .dataset(smallGraph())
                     .algo("PageRankk")
                     .run(),
                 FatalError);
    // Empty graph.
    EXPECT_THROW(SessionBuilder()
                     .dataset(CooGraph{})
                     .algo("PageRank")
                     .run(),
                 FatalError);
}

} // namespace
} // namespace gmoms
