/**
 * @file
 * Unit tests for the DRAM channel and multi-channel memory system.
 */

#include <gtest/gtest.h>

#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"

namespace gmoms
{
namespace
{

struct DramFixture : public ::testing::Test
{
    Engine eng;
    DramConfig cfg;

    std::unique_ptr<MemorySystem>
    make(std::uint32_t channels, std::uint32_t ports)
    {
        auto sys = std::make_unique<MemorySystem>(eng, cfg, channels,
                                                  ports);
        sys->store().resize(1 << 20);
        return sys;
    }

    /** Issue a read and run until its response pops; returns the cycle. */
    Cycle
    timeRead(MemorySystem& sys, MemPort& port, Addr addr,
             std::uint32_t bytes)
    {
        (void)sys;
        EXPECT_TRUE(port.send(MemReq{addr, bytes, 1, false}));
        std::optional<MemResp> resp;
        bool done = eng.runUntil(
            [&] {
                if (!resp)
                    resp = port.receive();
                return resp.has_value();
            },
            100000);
        EXPECT_TRUE(done);
        EXPECT_EQ(resp->addr, addr);
        EXPECT_EQ(resp->bytes, bytes);
        return eng.now();
    }
};

TEST_F(DramFixture, SingleReadLatency)
{
    auto sys = make(1, 1);
    MemPort port = sys->port(0);
    Cycle t0 = eng.now();
    Cycle t1 = timeRead(*sys, port, 0, 64);
    // 1 cycle queue in + service (1 data + 1 overhead + 3 row miss)
    // + load latency + 1 cycle queue out, plus polling slack.
    Cycle expect_min = cfg.load_latency_cycles + 5;
    EXPECT_GE(t1 - t0, expect_min);
    EXPECT_LE(t1 - t0, expect_min + 6);
    EXPECT_EQ(sys->channel(0).stats().reads, 1u);
    EXPECT_EQ(sys->channel(0).stats().bytes_read, 64u);
}

TEST_F(DramFixture, RowBufferHitIsFasterThanMiss)
{
    auto sys = make(1, 1);
    MemPort port = sys->port(0);
    timeRead(*sys, port, 0, 64);
    Cycle t0 = eng.now();
    timeRead(*sys, port, 64, 64);  // same 4 KiB row -> row hit
    Cycle hit_time = eng.now() - t0;
    t0 = eng.now();
    // Different row, same bank (row index + num_banks rows away).
    timeRead(*sys, port, Addr{cfg.row_bytes} * cfg.num_banks, 64);
    Cycle miss_time = eng.now() - t0;
    EXPECT_LT(hit_time, miss_time);
    EXPECT_EQ(sys->channel(0).stats().row_hits, 1u);
}

TEST_F(DramFixture, BurstsApproachPeakAndSinglesReachHalf)
{
    // Stream many 2 KiB bursts back-to-back; effective bandwidth should
    // be near bus_bytes_per_cycle. Then stream single 64 B reads; should
    // be near half of that (the paper's 8 vs 16 GB/s observation).
    auto sys = make(1, 1);
    MemPort port = sys->port(0);

    auto run_stream = [&](std::uint32_t bytes, int count) -> double {
        Cycle start = eng.now();
        int sent = 0, recvd = 0;
        Addr next = 0;
        eng.runUntil(
            [&] {
                while (sent < count &&
                       port.send(MemReq{next, bytes,
                                        static_cast<std::uint64_t>(sent),
                                        false})) {
                    next += bytes;
                    ++sent;
                }
                while (port.receive())
                    ++recvd;
                return recvd == count;
            },
            1000000);
        EXPECT_EQ(recvd, count);
        double cycles = static_cast<double>(eng.now() - start);
        return static_cast<double>(bytes) * count / cycles;
    };

    double burst_bw = run_stream(2048, 200);
    double single_bw = run_stream(64, 2000);
    EXPECT_GT(burst_bw, 0.85 * cfg.bus_bytes_per_cycle);
    EXPECT_LT(single_bw, 0.60 * cfg.bus_bytes_per_cycle);
    EXPECT_GT(single_bw, 0.35 * cfg.bus_bytes_per_cycle);
}

TEST_F(DramFixture, InterleavingMapsEvery2KiB)
{
    auto sys = make(4, 1);
    EXPECT_EQ(sys->channelOf(0), 0u);
    EXPECT_EQ(sys->channelOf(2047), 0u);
    EXPECT_EQ(sys->channelOf(2048), 1u);
    EXPECT_EQ(sys->channelOf(4096), 2u);
    EXPECT_EQ(sys->channelOf(6144), 3u);
    EXPECT_EQ(sys->channelOf(8192), 0u);
}

TEST_F(DramFixture, RequestCrossingInterleaveBoundaryPanics)
{
    auto sys = make(2, 1);
    MemPort port = sys->port(0);
    EXPECT_THROW(port.send(MemReq{2040, 64, 0, false}), PanicError);
}

TEST_F(DramFixture, MultiChannelScalesBandwidth)
{
    // A channel-interleaved single-request stream spread over 4 channels
    // should complete ~4x faster than on 1 channel. Row-buffer effects
    // are disabled so the comparison isolates bus bandwidth.
    cfg.row_miss_extra_cycles = 0;
    auto run_case = [&](std::uint32_t channels) -> Cycle {
        Engine local_eng;
        MemorySystem sys(local_eng, cfg, channels, 1);
        sys.store().resize(1 << 22);
        MemPort port = sys.port(0);
        const int count = 4000;
        int sent = 0, recvd = 0;
        local_eng.runUntil(
            [&] {
                while (sent < count) {
                    // Stride by the interleave unit so consecutive
                    // requests target different channels.
                    Addr a = (static_cast<Addr>(sent) * kInterleaveBytes +
                              static_cast<Addr>(sent / 32) * 64) %
                             (1 << 22);
                    if (!port.send(MemReq{a, 64,
                                          static_cast<std::uint64_t>(sent),
                                          false}))
                        break;
                    ++sent;
                }
                while (port.receive())
                    ++recvd;
                return recvd == count;
            },
            10000000);
        EXPECT_EQ(recvd, count);
        return local_eng.now();
    };

    Cycle one = run_case(1);
    Cycle four = run_case(4);
    EXPECT_GT(static_cast<double>(one) / four, 3.0);
}

TEST_F(DramFixture, ResponsesReturnInOrderPerChannel)
{
    auto sys = make(1, 1);
    MemPort port = sys->port(0);
    const int count = 50;
    int sent = 0;
    std::uint64_t expected = 0;
    eng.runUntil(
        [&] {
            while (sent < count &&
                   port.send(MemReq{static_cast<Addr>(sent) * 64, 64,
                                    static_cast<std::uint64_t>(sent),
                                    false}))
                ++sent;
            while (auto r = port.receive()) {
                EXPECT_EQ(r->tag, expected);
                ++expected;
            }
            return expected == count;
        },
        100000);
    EXPECT_EQ(expected, static_cast<std::uint64_t>(count));
}

TEST_F(DramFixture, PortsShareChannelFairly)
{
    auto sys = make(1, 2);
    MemPort p0 = sys->port(0);
    MemPort p1 = sys->port(1);
    int recv0 = 0, recv1 = 0, sent0 = 0, sent1 = 0;
    const int count = 500;
    eng.runUntil(
        [&] {
            while (sent0 < count &&
                   p0.send(MemReq{static_cast<Addr>(sent0) * 64, 64, 0,
                                  false}))
                ++sent0;
            while (sent1 < count &&
                   p1.send(MemReq{static_cast<Addr>(sent1) * 64, 64, 0,
                                  false}))
                ++sent1;
            while (p0.receive())
                ++recv0;
            while (p1.receive())
                ++recv1;
            return recv0 == count && recv1 == count;
        },
        1000000);
    EXPECT_EQ(recv0, count);
    EXPECT_EQ(recv1, count);
}

TEST_F(DramFixture, WritesProduceAcks)
{
    auto sys = make(1, 1);
    MemPort port = sys->port(0);
    ASSERT_TRUE(port.send(MemReq{128, 64, 9, true}));
    std::optional<MemResp> resp;
    eng.runUntil(
        [&] {
            if (!resp)
                resp = port.receive();
            return resp.has_value();
        },
        10000);
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->write);
    EXPECT_EQ(resp->tag, 9u);
    EXPECT_EQ(sys->channel(0).stats().writes, 1u);
}

TEST(BackingStore, ReadWriteRoundtrip)
{
    BackingStore store(256);
    store.write32(0, 0xdeadbeef);
    store.write64(8, 0x0123456789abcdefull);
    EXPECT_EQ(store.read32(0), 0xdeadbeefu);
    EXPECT_EQ(store.read64(8), 0x0123456789abcdefull);
    std::uint8_t buf[16] = {};
    store.readBytes(8, buf, 8);
    std::uint64_t v;
    std::memcpy(&v, buf, 8);
    EXPECT_EQ(v, 0x0123456789abcdefull);
}

TEST(BackingStore, OutOfRangePanics)
{
    BackingStore store(16);
    EXPECT_THROW(store.read32(14), PanicError);
    EXPECT_THROW(store.write64(9, 0), PanicError);
}

} // namespace
} // namespace gmoms
