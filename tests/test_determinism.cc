/**
 * @file
 * Determinism guarantees: identical configuration and graph must yield
 * bit-identical results AND identical cycle counts across runs — the
 * property that makes bench numbers reproducible and regressions
 * detectable.
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/baseline/scratchpad_accel.hh"
#include "src/graph/datasets.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

RunResult
runOnce(const CooGraph& g, Algorithm algo)
{
    AlgoSpec spec = algo == Algorithm::PageRank
                        ? AlgoSpec::pageRank(g, 3)
                        : AlgoSpec::scc(g.numNodes(), 4);
    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(4);
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, spec);
    return accel.run();
}

TEST(Determinism, IdenticalRunsProduceIdenticalCyclesAndValues)
{
    CooGraph g = rmat(11, 15000, RmatParams{}, 77);
    RunResult a = runOnce(g, Algorithm::Scc);
    RunResult b = runOnce(g, Algorithm::Scc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.edges_processed, b.edges_processed);
    EXPECT_EQ(a.dram_bytes_read, b.dram_bytes_read);
    EXPECT_EQ(a.raw_values, b.raw_values);
}

TEST(Determinism, PageRankBitsAreStableAcrossRuns)
{
    // Even floating-point results are bit-identical run-to-run because
    // the simulation schedule is deterministic.
    CooGraph g = uniformRandom(1000, 8000, 5);
    RunResult a = runOnce(g, Algorithm::PageRank);
    RunResult b = runOnce(g, Algorithm::PageRank);
    EXPECT_EQ(a.raw_values, b.raw_values);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Determinism, DatasetStandInsAreStable)
{
    CooGraph a = buildDataset(datasetByTag("WT"), 1);
    CooGraph b = buildDataset(datasetByTag("WT"), 1);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId i = 0; i < a.numEdges(); i += 997) {
        EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
        EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
    }
}

TEST(Determinism, ScratchpadModelIsPure)
{
    CooGraph g = uniformRandom(4096, 20000, 9);
    PartitionedGraph pg(g, 512, 1024);
    ScratchpadConfig cfg;
    auto a = runScratchpad(pg, cfg, 2, false);
    auto b = runScratchpad(pg, cfg, 2, false);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
}

} // namespace
} // namespace gmoms
