/**
 * @file
 * Behavioural tests of a single MOMS bank against a scripted downstream.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "src/cache/moms_bank.hh"
#include "src/sim/engine.hh"

namespace gmoms
{
namespace
{

/** Downstream stub with a fixed latency and request log. */
class FakeDownstream : public LineDownstream
{
  public:
    explicit FakeDownstream(const Engine& eng, Cycle latency = 20)
        : eng_(eng), latency_(latency) {}

    bool canSend(Addr) const override { return !blocked; }
    void
    send(Addr line) override
    {
        requests.push_back(line);
        pending_.push_back({line, eng_.now() + latency_});
    }
    std::optional<Addr>
    receive() override
    {
        if (!pending_.empty() && pending_.front().second <= eng_.now() &&
            !hold_responses) {
            Addr line = pending_.front().first;
            pending_.pop_front();
            return line;
        }
        return std::nullopt;
    }

    std::vector<Addr> requests;
    bool blocked = false;
    bool hold_responses = false;

  private:
    const Engine& eng_;
    Cycle latency_;
    std::deque<std::pair<Addr, Cycle>> pending_;
};

class MomsBankTest : public ::testing::Test
{
  protected:
    Engine eng;
    MomsBankConfig cfg;

    std::unique_ptr<MomsBank> bank;
    std::unique_ptr<FakeDownstream> down;

    void
    makeBank()
    {
        bank = std::make_unique<MomsBank>(eng, "bank", cfg);
        down = std::make_unique<FakeDownstream>(eng);
        bank->connectDownstream(down.get());
        eng.add(bank.get());
    }

    /** Push requests (one per cycle as accepted) and collect responses
     *  until @p expected arrive. */
    std::vector<ReadResp>
    runRequests(const std::vector<ReadReq>& reqs, std::size_t expected)
    {
        std::vector<ReadResp> resps;
        std::size_t sent = 0;
        bool done = eng.runUntil(
            [&] {
                if (sent < reqs.size() &&
                    bank->cpuReqIn().push(reqs[sent]))
                    ++sent;
                while (bank->cpuRespOut().canPop())
                    resps.push_back(bank->cpuRespOut().pop());
                return resps.size() >= expected;
            },
            200000);
        EXPECT_TRUE(done) << "bank did not produce enough responses";
        return resps;
    }
};

TEST_F(MomsBankTest, PrimaryMissFetchesExactlyOneLine)
{
    makeBank();
    auto resps = runRequests({ReadReq{0x1004, 7, 0}}, 1);
    EXPECT_EQ(resps[0].addr, 0x1004u);
    EXPECT_EQ(resps[0].tag, 7u);
    ASSERT_EQ(down->requests.size(), 1u);
    EXPECT_EQ(down->requests[0], 0x1000u);  // line-aligned
    EXPECT_EQ(bank->stats().primary_misses, 1u);
}

TEST_F(MomsBankTest, SecondaryMissesMergeIntoOneLineFetch)
{
    makeBank();
    std::vector<ReadReq> reqs;
    for (std::uint64_t i = 0; i < 10; ++i)
        reqs.push_back(ReadReq{0x2000 + 4 * i, i, 0});
    auto resps = runRequests(reqs, 10);
    EXPECT_EQ(down->requests.size(), 1u) << "all 10 must coalesce";
    EXPECT_EQ(bank->stats().primary_misses, 1u);
    EXPECT_EQ(bank->stats().secondary_misses, 9u);
    // Every tag must come back with its own address.
    std::map<std::uint64_t, Addr> seen;
    for (const ReadResp& r : resps)
        seen[r.tag] = r.addr;
    ASSERT_EQ(seen.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(seen[i], 0x2000 + 4 * i);
}

TEST_F(MomsBankTest, CacheArrayServesRepeats)
{
    makeBank();
    runRequests({ReadReq{0x3000, 1, 0}}, 1);
    auto resps = runRequests({ReadReq{0x3004, 2, 0}}, 1);
    EXPECT_EQ(down->requests.size(), 1u) << "second access must hit";
    EXPECT_EQ(bank->stats().hits, 1u);
    EXPECT_EQ(resps[0].tag, 2u);
}

TEST_F(MomsBankTest, CachelessBankRefetchesButStillMerges)
{
    cfg.cache_bytes = 0;
    makeBank();
    runRequests({ReadReq{0x3000, 1, 0}}, 1);
    runRequests({ReadReq{0x3004, 2, 0}}, 1);
    // No cache: the second (temporally separate) access refetches.
    EXPECT_EQ(down->requests.size(), 2u);
    EXPECT_EQ(bank->stats().hits, 0u);
}

TEST_F(MomsBankTest, InvalidateCacheForcesRefetch)
{
    makeBank();
    runRequests({ReadReq{0x3000, 1, 0}}, 1);
    bank->invalidateCache();
    runRequests({ReadReq{0x3000, 2, 0}}, 1);
    EXPECT_EQ(down->requests.size(), 2u);
}

TEST_F(MomsBankTest, PerMissSubentryCapStallsTraditionalBank)
{
    cfg.assoc_mshr = true;
    cfg.num_mshrs = 16;
    cfg.max_subentries_per_miss = 8;
    cfg.num_subentries = 128;
    cfg.cache_bytes = 0;  // so the overflow requests refetch, not hit
    makeBank();
    // 12 requests to the same line: first 8 merge, the rest must wait
    // for the drain; all 12 eventually complete but with stalls.
    std::vector<ReadReq> reqs;
    for (std::uint64_t i = 0; i < 12; ++i)
        reqs.push_back(ReadReq{0x4000 + 4 * i, i, 0});
    auto resps = runRequests(reqs, 12);
    EXPECT_EQ(resps.size(), 12u);
    EXPECT_GT(bank->stats().stall_subentry, 0u);
    EXPECT_GE(down->requests.size(), 2u);
}

TEST_F(MomsBankTest, MshrExhaustionStallsButRecovers)
{
    cfg.assoc_mshr = true;
    cfg.num_mshrs = 2;
    cfg.num_subentries = 64;
    cfg.max_subentries_per_miss = 8;
    makeBank();
    // 4 distinct lines with only 2 MSHRs: must still complete.
    std::vector<ReadReq> reqs;
    for (std::uint64_t i = 0; i < 4; ++i)
        reqs.push_back(ReadReq{0x8000 + kLineBytes * i, i, 0});
    auto resps = runRequests(reqs, 4);
    EXPECT_EQ(resps.size(), 4u);
    EXPECT_GT(bank->stats().stall_mshr, 0u);
}

TEST_F(MomsBankTest, DrainBlocksRequestPipeline)
{
    makeBank();
    // One line with many subentries: while draining, no new request is
    // accepted, so drain_busy cycles must be observed.
    std::vector<ReadReq> reqs;
    for (std::uint64_t i = 0; i < 16; ++i)
        reqs.push_back(ReadReq{0x5000 + 4 * i, i, 0});
    runRequests(reqs, 16);
    EXPECT_GE(bank->stats().drain_busy, 15u);
}

TEST_F(MomsBankTest, IdleAfterAllResponsesDelivered)
{
    makeBank();
    EXPECT_TRUE(bank->idle());
    runRequests({ReadReq{0x6000, 1, 0}, ReadReq{0x7000, 2, 0}}, 2);
    // A few settle cycles for queues to empty.
    eng.runUntil([&] { return bank->idle(); }, 100);
    EXPECT_TRUE(bank->idle());
}

TEST_F(MomsBankTest, BlockedDownstreamStallsPrimaryMisses)
{
    makeBank();
    down->blocked = true;
    bank->cpuReqIn().push(ReadReq{0x9000, 1, 0});
    for (int i = 0; i < 50; ++i)
        eng.tick();
    EXPECT_EQ(down->requests.size(), 0u);
    EXPECT_GT(bank->stats().stall_downstream, 0u);
    down->blocked = false;
    std::vector<ReadResp> resps;
    eng.runUntil(
        [&] {
            while (bank->cpuRespOut().canPop())
                resps.push_back(bank->cpuRespOut().pop());
            return resps.size() == 1;
        },
        10000);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_EQ(resps[0].tag, 1u);
}

TEST_F(MomsBankTest, ThroughputOneRequestPerCycleOnMerges)
{
    // With a single hot line, the bank should absorb ~1 req/cycle
    // (secondary misses never stall on anything).
    makeBank();
    const int n = 200;
    int sent = 0;
    Cycle start = eng.now();
    std::size_t got = 0;
    eng.runUntil(
        [&] {
            if (sent < n &&
                bank->cpuReqIn().push(
                    ReadReq{0xa000, static_cast<std::uint64_t>(sent), 0}))
                ++sent;
            while (bank->cpuRespOut().canPop()) {
                bank->cpuRespOut().pop();
                ++got;
            }
            return got >= static_cast<std::size_t>(n);
        },
        100000);
    // n requests + n drain cycles + latency slack.
    EXPECT_LT(eng.now() - start, static_cast<Cycle>(2.5 * n + 100));
}

} // namespace
} // namespace gmoms
