/**
 * @file
 * Integration tests: full MOMS organizations (shared / private /
 * two-level, MOMS and traditional) against the timed DRAM model.
 */

#include <gtest/gtest.h>

#include <map>

#include "src/cache/moms_system.hh"
#include "src/sim/engine.hh"
#include "src/sim/rng.hh"

namespace gmoms
{
namespace
{

struct Harness
{
    Engine eng;
    DramConfig dram_cfg;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<MomsSystem> moms;
    std::uint32_t num_pes;

    Harness(const MomsConfig& cfg, std::uint32_t pes,
            std::uint32_t channels = 2, Cycle load_latency = 60)
        : num_pes(pes)
    {
        dram_cfg.load_latency_cycles =
            static_cast<std::uint32_t>(load_latency);
        // Enough ports: worst case one per bank or PE.
        mem = std::make_unique<MemorySystem>(eng, dram_cfg, channels,
                                             pes + 32);
        mem->store().resize(1 << 22);
        // Fill memory with a recognizable pattern: word at addr holds
        // addr / 4.
        for (Addr a = 0; a < (1 << 22); a += 4)
            mem->store().write32(a, static_cast<std::uint32_t>(a / 4));
        moms = std::make_unique<MomsSystem>(eng, *mem, 0, pes, cfg);
    }

    /**
     * Each PE issues @p per_pe reads at addresses drawn by @p next_addr
     * and checks every response value against the pattern.
     * @return total cycles taken.
     */
    Cycle
    run(std::uint32_t per_pe, const std::function<Addr(Rng&)>& next_addr)
    {
        std::vector<Rng> rngs;
        std::vector<std::uint32_t> sent(num_pes, 0), done(num_pes, 0);
        for (std::uint32_t p = 0; p < num_pes; ++p)
            rngs.emplace_back(p + 1);
        const Cycle start = eng.now();
        bool ok = eng.runUntil(
            [&] {
                bool all_done = true;
                for (std::uint32_t p = 0; p < num_pes; ++p) {
                    SourcePort& port = moms->pePort(p);
                    if (sent[p] < per_pe && port.canSend()) {
                        const Addr a = next_addr(rngs[p]);
                        port.send(ReadReq{a, a, p});
                    ++sent[p];
                    }
                    while (auto r = port.receive()) {
                        // tag carries the address; value check:
                        EXPECT_EQ(r->addr, r->tag);
                        EXPECT_EQ(mem->store().read32(r->addr),
                                  static_cast<std::uint32_t>(r->addr / 4));
                        ++done[p];
                    }
                    all_done &= (done[p] == per_pe);
                }
                return all_done;
            },
            5'000'000);
        EXPECT_TRUE(ok) << "MOMS system deadlocked or too slow";
        return eng.now() - start;
    }
};

MomsConfig
smallBanks(MomsConfig cfg)
{
    // Shrink structures so tests exercise pressure paths quickly.
    cfg.shared_bank.num_mshrs = 64;
    cfg.shared_bank.num_subentries = 512;
    cfg.shared_bank.cache_bytes = 4096;
    cfg.private_bank.num_mshrs = 64;
    cfg.private_bank.num_subentries = 512;
    if (cfg.private_bank.cache_bytes)
        cfg.private_bank.cache_bytes = 4096;
    return cfg;
}

TEST(MomsSystem, SharedTopologyCompletesAndMerges)
{
    Harness h(smallBanks(MomsConfig::shared(4)), 4);
    // All PEs hammer a small hot region: massive merging expected.
    h.run(2000, [](Rng& r) { return Addr{r.below(64)} * 4; });
    EXPECT_EQ(h.moms->totalRequests(), 4u * 2000u);
    // 64 words = 16 lines: far fewer line fetches than requests.
    EXPECT_LT(h.moms->totalLinesFromMem(), 200u);
    EXPECT_GT(h.moms->totalHits() + h.moms->totalSecondaryMisses(), 7000u);
    EXPECT_TRUE(h.moms->idle());
}

TEST(MomsSystem, PrivateTopologyCompletes)
{
    Harness h(smallBanks(MomsConfig::privateOnly()), 4);
    h.run(1000, [](Rng& r) { return Addr{r.below(4096)} * 4; });
    EXPECT_EQ(h.moms->totalRequests(), 4u * 1000u);
    EXPECT_TRUE(h.moms->idle());
}

TEST(MomsSystem, TwoLevelTopologyCompletes)
{
    Harness h(smallBanks(MomsConfig::twoLevel(4)), 4);
    h.run(1000, [](Rng& r) { return Addr{r.below(4096)} * 4; });
    EXPECT_EQ(h.moms->totalRequests(), 4u * 1000u);
    EXPECT_TRUE(h.moms->idle());
}

TEST(MomsSystem, TraditionalTopologiesComplete)
{
    for (auto make : {&MomsConfig::traditionalShared,
                      &MomsConfig::traditionalTwoLevel}) {
        Harness h(make(4), 4);
        h.run(500, [](Rng& r) { return Addr{r.below(4096)} * 4; });
        EXPECT_EQ(h.moms->totalRequests(), 4u * 500u);
        EXPECT_TRUE(h.moms->idle());
    }
}

TEST(MomsSystem, SharedLevelCoalescesAcrossPesPrivateReplicates)
{
    // Section IV-B: "private MOMS banks ... may increase the overall
    // traffic to DRAM as no inter-PE request coalescing is performed".
    // A hot set that fits the aggregate shared capacity but not one
    // PE's private capacity: the shared MOMS serves it once, private
    // banks replicate it per PE and thrash.
    auto workload = [](Rng& r) { return Addr{r.below(2048)} * 4; };
    Harness hs(smallBanks(MomsConfig::shared(4)), 4);
    hs.run(8000, workload);
    Harness hp(smallBanks(MomsConfig::privateOnly()), 4);
    hp.run(8000, workload);

    EXPECT_LT(static_cast<double>(hs.moms->totalLinesFromMem()),
              0.7 * static_cast<double>(hp.moms->totalLinesFromMem()));
}

TEST(MomsSystem, TwoLevelReducesSharedLevelTraffic)
{
    // With private L1 banks in front, the shared level sees fewer
    // requests than the PE-facing total.
    Harness h(smallBanks(MomsConfig::twoLevel(4)), 4);
    h.run(2000, [](Rng& r) { return Addr{r.below(1024)} * 4; });
    std::uint64_t shared_reqs = 0;
    for (const auto& b : h.moms->sharedBanks())
        shared_reqs += b->stats().requests;
    EXPECT_LT(shared_reqs, h.moms->totalRequests());
    EXPECT_GT(shared_reqs, 0u);
}

TEST(MomsSystem, MomsToleratesManyMoreOutstandingMissesThanTraditional)
{
    // Uniform-random sweep over a large footprint (no reuse) against a
    // single high-latency channel: covering the bandwidth-delay product
    // needs ~60+ outstanding lines, far above the traditional cache's
    // 16 MSHRs, so the MOMS (512 MSHRs) must finish measurably faster.
    // This is the core claim of the paper (Section II).
    auto workload = [](Rng& r) { return Addr{r.below(1 << 19)} * 4; };
    Harness hm(smallBanks(MomsConfig::shared(1)).withoutCacheArrays(), 4,
               1, 200);
    Cycle moms_cycles = hm.run(3000, workload);
    Harness ht(MomsConfig::traditionalShared(1).withoutCacheArrays(), 4,
               1, 200);
    Cycle trad_cycles = ht.run(3000, workload);
    EXPECT_LT(static_cast<double>(moms_cycles),
              0.7 * static_cast<double>(trad_cycles));
}

TEST(MomsSystem, HitRateReflectsCacheArrays)
{
    auto workload = [](Rng& r) { return Addr{r.below(256)} * 4; };
    Harness with_cache(smallBanks(MomsConfig::shared(4)), 4);
    with_cache.run(2000, workload);
    Harness without(smallBanks(MomsConfig::shared(4)).withoutCacheArrays(),
                    4);
    without.run(2000, workload);
    EXPECT_GT(with_cache.moms->hitRate(), 0.3);
    EXPECT_EQ(without.moms->hitRate(), 0.0);
}

TEST(MomsSystem, InvalidateCachesForcesRefetch)
{
    Harness h(smallBanks(MomsConfig::shared(4)), 4);
    h.run(500, [](Rng& r) { return Addr{r.below(64)} * 4; });
    const std::uint64_t lines_before = h.moms->totalLinesFromMem();
    h.moms->invalidateCaches();
    h.run(500, [](Rng& r) { return Addr{r.below(64)} * 4; });
    EXPECT_GT(h.moms->totalLinesFromMem(), lines_before);
}

TEST(MomsSystem, BankCountMustDivideChannels)
{
    Engine eng;
    DramConfig dram_cfg;
    MemorySystem mem(eng, dram_cfg, 4, 8);
    EXPECT_THROW(MomsSystem(eng, mem, 0, 2, MomsConfig::shared(6)),
                 FatalError);
}

TEST(MomsSystem, MemPortsUsedMatchesTopology)
{
    {
        Harness h(smallBanks(MomsConfig::shared(4)), 3);
        EXPECT_EQ(h.moms->memPortsUsed(), 4u);
    }
    {
        Harness h(smallBanks(MomsConfig::privateOnly()), 3);
        EXPECT_EQ(h.moms->memPortsUsed(), 3u);
    }
    {
        Harness h(smallBanks(MomsConfig::twoLevel(4)), 3);
        EXPECT_EQ(h.moms->memPortsUsed(), 4u);
    }
}

TEST(MomsSystem, LabelsMatchPaperConvention)
{
    EXPECT_EQ(MomsConfig::twoLevel(16).label(16), "16/16 moms 0k");
    EXPECT_EQ(MomsConfig::twoLevel(16, 2048).label(18),
              "18/16 moms 2k");
    EXPECT_EQ(MomsConfig::shared(8).label(20), "20/8 shared-moms");
    EXPECT_EQ(MomsConfig::traditionalTwoLevel(8).label(20),
              "20/8 trad 1k");
}

} // namespace
} // namespace gmoms
