/**
 * @file
 * Tests of the algorithm kernels and the Template 1 reference executor
 * against independent golden implementations.
 */

#include <gtest/gtest.h>

#include "src/algo/golden.hh"
#include "src/algo/reference.hh"
#include "src/algo/spec.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

/** Run the reference executor with a given partition geometry. */
ReferenceResult
runRef(const CooGraph& g, const AlgoSpec& spec, std::uint32_t nd = 64,
       std::uint32_t ns = 128)
{
    PartitionedGraph pg(g, nd, ns);
    return runReference(pg, spec);
}

TEST(AlgoSpec, Table1Flags)
{
    CooGraph g = chain(10);
    AlgoSpec pr = AlgoSpec::pageRank(g);
    EXPECT_TRUE(pr.synchronous);
    EXPECT_TRUE(pr.always_active);
    EXPECT_FALSE(pr.use_local_src);
    EXPECT_TRUE(pr.has_const);
    EXPECT_EQ(pr.gather_latency, 4u);

    AlgoSpec scc = AlgoSpec::scc(10);
    EXPECT_FALSE(scc.synchronous);
    EXPECT_FALSE(scc.always_active);
    EXPECT_TRUE(scc.use_local_src);
    EXPECT_EQ(scc.gather_latency, 1u);

    AlgoSpec sssp = AlgoSpec::sssp(0);
    EXPECT_TRUE(sssp.weighted);
    EXPECT_TRUE(sssp.use_local_src);
}

TEST(AlgoSpec, SsspGatherSaturates)
{
    AlgoSpec s = AlgoSpec::sssp(0);
    // INF + weight must not wrap around.
    EXPECT_EQ(s.gather(kInfDist, kInfDist, 200), kInfDist);
    EXPECT_EQ(s.gather(10, kInfDist, 5), 15u);
    EXPECT_EQ(s.gather(10, 12, 5), 12u);
}

TEST(AlgoSpec, SccGatherIsMin)
{
    AlgoSpec s = AlgoSpec::scc(10);
    EXPECT_EQ(s.gather(3, 7, 0), 3u);
    EXPECT_EQ(s.gather(9, 7, 0), 7u);
    EXPECT_EQ(s.init(0, 42), 42u);
    EXPECT_EQ(s.apply(42), 42u);
}

TEST(Reference, PageRankMatchesGoldenOnRandomGraph)
{
    CooGraph g = uniformRandom(200, 2000, 3);
    AlgoSpec spec = AlgoSpec::pageRank(g, 10);
    ReferenceResult res = runRef(g, spec);
    EXPECT_EQ(res.iterations, 10u);
    std::vector<double> golden = goldenPageRank(g, 10);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_NEAR(res.value(spec, i), golden[i],
                    1e-4 * golden[i] + 1e-9)
            << "node " << i;
}

TEST(Reference, PageRankScoresSumNearOne)
{
    // Without dangling nodes the PR mass is conserved.
    CooGraph g = uniformRandom(500, 8000, 7);
    // Ensure no dangling nodes: add a self-loop where OD == 0.
    auto od = g.outDegrees();
    for (NodeId i = 0; i < g.numNodes(); ++i)
        if (od[i] == 0)
            g.addEdge(i, (i + 1) % g.numNodes());
    AlgoSpec spec = AlgoSpec::pageRank(g, 15);
    ReferenceResult res = runRef(g, spec, 128, 256);
    double sum = 0;
    for (NodeId i = 0; i < g.numNodes(); ++i)
        sum += res.value(spec, i);
    EXPECT_NEAR(sum, 1.0, 0.01);
}

TEST(Reference, SccMatchesGoldenMinLabel)
{
    CooGraph g = rmat(10, 6000, RmatParams{}, 9);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    ReferenceResult res = runRef(g, spec, 128, 256);
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]) << "node " << i;
    EXPECT_LT(res.iterations, spec.max_iterations);
}

TEST(Reference, SsspMatchesGoldenOnWeightedGraph)
{
    CooGraph g = uniformRandom(300, 3000, 11);
    addRandomWeights(g, 13);
    AlgoSpec spec = AlgoSpec::sssp(0);
    ReferenceResult res = runRef(g, spec);
    std::vector<std::uint32_t> golden = goldenSssp(g, 0);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]) << "node " << i;
}

TEST(Reference, SsspOnChainComputesPrefixSums)
{
    CooGraph g = chain(50);
    for (EdgeId i = 0; i < g.numEdges(); ++i)
        g.edges()[i].weight = static_cast<std::uint32_t>(i + 1);
    g.setWeighted(true);
    AlgoSpec spec = AlgoSpec::sssp(0);
    ReferenceResult res = runRef(g, spec, 16, 32);
    std::uint32_t expect = 0;
    for (NodeId i = 0; i < 50; ++i) {
        EXPECT_EQ(res.raw_values[i], expect);
        expect += static_cast<std::uint32_t>(i + 1);
    }
}

TEST(Reference, BfsMatchesGolden)
{
    CooGraph g = rmat(9, 3000, RmatParams{}, 21);
    AlgoSpec spec = AlgoSpec::bfs(1);
    ReferenceResult res = runRef(g, spec);
    std::vector<std::uint32_t> golden = goldenBfs(g, 1);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]);
}

TEST(Reference, WccConnectsUndirectedComponents)
{
    // Two disjoint chains; WCC must give two labels.
    CooGraph g(20);
    for (NodeId i = 0; i + 1 < 10; ++i)
        g.addEdge(i + 1, i);  // reversed chain: directed min-label would
                              // not propagate 0 upward
    for (NodeId i = 10; i + 1 < 20; ++i)
        g.addEdge(i, i + 1);
    CooGraph u = g.withReverseEdges();
    AlgoSpec spec = AlgoSpec::wcc(u.numNodes());
    ReferenceResult res = runRef(u, spec, 8, 16);
    for (NodeId i = 0; i < 10; ++i)
        EXPECT_EQ(res.raw_values[i], 0u);
    for (NodeId i = 10; i < 20; ++i)
        EXPECT_EQ(res.raw_values[i], 10u);
}

TEST(Reference, ConvergedRunSkipsInactiveShards)
{
    // After convergence the active flags empty out: total edge work is
    // less than iterations * M.
    CooGraph g = uniformRandom(200, 2000, 31);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    ReferenceResult res = runRef(g, spec);
    EXPECT_LT(res.edges_processed,
              static_cast<EdgeId>(res.iterations) * g.numEdges());
}

TEST(Reference, UseLocalSrcReducesRemoteReads)
{
    CooGraph g = uniformRandom(100, 5000, 41);
    AlgoSpec local = AlgoSpec::scc(g.numNodes());
    // Single destination interval covering the whole graph: every
    // source is local.
    PartitionedGraph pg_one(g, 128, 128);
    ReferenceResult res = runReference(pg_one, local);
    EXPECT_EQ(res.remote_src_reads, 0u);

    // Many intervals: most sources are remote.
    PartitionedGraph pg_many(g, 16, 32);
    ReferenceResult res2 = runReference(pg_many, local);
    EXPECT_GT(res2.remote_src_reads, res2.edges_processed / 2);
}

TEST(Reference, SyncAndAsyncSccReachSameFixpoint)
{
    CooGraph g = rmat(9, 2500, RmatParams{}, 17);
    AlgoSpec async_spec = AlgoSpec::scc(g.numNodes());
    AlgoSpec sync_spec = async_spec;
    sync_spec.synchronous = true;
    sync_spec.use_local_src = false;  // sync cannot read partial values
    ReferenceResult a = runRef(g, async_spec);
    ReferenceResult s = runRef(g, sync_spec);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(a.raw_values[i], s.raw_values[i]);
    // Async propagates within an iteration, so it converges at least
    // as fast.
    EXPECT_LE(a.iterations, s.iterations);
}

TEST(Golden, MinLabelOnCycleCollapsesToMinimum)
{
    CooGraph g(5);
    for (NodeId i = 0; i < 5; ++i)
        g.addEdge(i, (i + 1) % 5);
    auto label = goldenMinLabel(g);
    for (NodeId i = 0; i < 5; ++i)
        EXPECT_EQ(label[i], 0u);
}

TEST(Golden, SsspUnreachableStaysInf)
{
    CooGraph g(3);
    g.addEdge(0, 1, 5);
    g.setWeighted(true);
    auto dist = goldenSssp(g, 0);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], 5u);
    EXPECT_EQ(dist[2], kInfDist);
}

} // namespace
} // namespace gmoms
