/**
 * @file
 * Tests for the deterministic result cache (src/serve/result_cache.hh)
 * and its wiring into GraphService: hits return the bit-identical
 * values_checksum of the cold run across the engine-mode x tick-threads
 * matrix (configFingerprint deliberately ignores both knobs), eviction
 * under a tiny budget rebuilds correctly, distinct config fingerprints
 * never collide, cluster (boards > 1) jobs cache correctly, Degraded
 * results are never cached, and batch-mode duplicate bursts never hit
 * (lookups happen at submit time — determinism safety).
 */

#include <gtest/gtest.h>

#include <string>

#include "src/accel/checkpoint.hh"
#include "src/serve/result_cache.hh"
#include "src/serve/service.hh"

namespace gmoms::serve
{
namespace
{

AccelConfig
tinyConfig()
{
    return AccelConfig::preset(MomsConfig::twoLevel(4), 4, 2);
}

JobSpec
tinyJob(const std::string& tenant, const std::string& algo,
        std::uint32_t priority = 0)
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.dataset = "WT";
    spec.algo = algo;
    spec.iterations = 2;
    spec.config = tinyConfig();
    spec.priority = priority;
    return spec;
}

ResultCache::Entry
entryWithChecksum(std::uint64_t checksum)
{
    ResultCache::Entry e;
    e.cycles = 100;
    e.values_checksum = checksum;
    return e;
}

/** Cold-run a spec on a cache-less service: the checksum oracle. */
std::uint64_t
coldChecksum(const JobSpec& spec)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.enable_result_cache = false;
    GraphService service(cfg);
    const auto sub = service.submit(spec);
    EXPECT_TRUE(sub.ok());
    service.drain();
    const auto rec = service.poll(sub.id);
    EXPECT_TRUE(rec.has_value());
    EXPECT_EQ(rec->state, JobState::Completed);
    return rec->values_checksum;
}

// ---------------------------------------------------------------------
// Unit tests on the cache itself
// ---------------------------------------------------------------------

TEST(ResultCacheKey, CanonicalizesDefaultIterations)
{
    JobSpec implicit = tinyJob("a", "PageRank");
    implicit.iterations = 0;  // "algorithm default"
    JobSpec explicit_cap = tinyJob("a", "PageRank");
    explicit_cap.iterations = 10;  // PageRank's default, spelled out
    EXPECT_EQ(ResultCache::keyFor(implicit, 1),
              ResultCache::keyFor(explicit_cap, 1));

    JobSpec bfs = tinyJob("a", "BFS");
    bfs.iterations = 0;
    JobSpec bfs_cap = tinyJob("a", "BFS");
    bfs_cap.iterations = 1000;  // convergence-kernel default
    EXPECT_EQ(ResultCache::keyFor(bfs, 1),
              ResultCache::keyFor(bfs_cap, 1));
}

TEST(ResultCacheKey, SeparatesEveryInput)
{
    const JobSpec base = tinyJob("a", "BFS");
    const std::string key = ResultCache::keyFor(base, 7);

    JobSpec other = base;
    other.source = 5;
    EXPECT_NE(ResultCache::keyFor(other, 7), key);

    other = base;
    other.algo = "SSSP";
    EXPECT_NE(ResultCache::keyFor(other, 7), key);

    other = base;
    other.prep = Preprocessing::Hash;
    EXPECT_NE(ResultCache::keyFor(other, 7), key);

    other = base;
    other.iterations = 3;
    EXPECT_NE(ResultCache::keyFor(other, 7), key);

    // Same spec, different resolved-config fingerprint: never collide.
    EXPECT_NE(ResultCache::keyFor(base, 8), key);

    // Tenant is deliberately NOT part of the key: results are tenant-
    // agnostic (the simulation has no tenant input), so tenants share.
    other = base;
    other.tenant = "b";
    EXPECT_EQ(ResultCache::keyFor(other, 7), key);
}

TEST(ResultCacheUnit, MissThenHitAndStats)
{
    ResultCache cache(0);  // unbounded
    EXPECT_FALSE(cache.get("k1").has_value());
    cache.put("k1", entryWithChecksum(42));
    const auto hit = cache.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->values_checksum, 42u);
    EXPECT_EQ(hit->cycles, 100u);

    const ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(ResultCacheUnit, EvictsLruNeverTheJustInserted)
{
    // Budget fits roughly one entry: every insert evicts the LRU
    // survivor, never the entry being inserted.
    ResultCache probe(0);
    probe.put("k0", entryWithChecksum(0));
    const std::uint64_t one_entry = probe.stats().bytes;

    ResultCache cache(one_entry + one_entry / 2);
    cache.put("k1", entryWithChecksum(1));
    cache.put("k2", entryWithChecksum(2));  // evicts k1 (LRU)
    EXPECT_FALSE(cache.get("k1").has_value());
    ASSERT_TRUE(cache.get("k2").has_value());

    cache.put("k3", entryWithChecksum(3));  // evicts k2
    const auto k3 = cache.get("k3");
    ASSERT_TRUE(k3.has_value());
    EXPECT_EQ(k3->values_checksum, 3u);
    EXPECT_GE(cache.stats().evictions, 2u);
    EXPECT_LE(cache.stats().entries, 2u);
}

TEST(ResultCacheUnit, RefreshIsIdempotent)
{
    ResultCache cache(0);
    cache.put("k", entryWithChecksum(9));
    cache.put("k", entryWithChecksum(9));
    const ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.insertions, 2u);
    EXPECT_EQ(cache.get("k")->values_checksum, 9u);
}

// ---------------------------------------------------------------------
// Service integration: the bit-exactness contract
// ---------------------------------------------------------------------

TEST(ServiceResultCache, HitsAcrossEngineModeAndTickThreads)
{
    // configFingerprint() deliberately ignores full_tick_engine and
    // tick_threads (both pinned bit-identical by the engine-equivalence
    // tests), so one cold run must serve repeats under every mode.
    const std::uint64_t golden = coldChecksum(tinyJob("a", "PageRank"));

    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);

    // Cold run under the default engine (full_tick=false, threads=0).
    const auto cold = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold.from_cache);
    service.drain();

    const bool full_tick[] = {false, true, true, false};
    const unsigned threads[] = {0, 0, 2, 2};
    for (int i = 0; i < 4; ++i) {
        JobSpec spec = tinyJob("a", "PageRank");
        spec.config->full_tick_engine = full_tick[i];
        spec.config->tick_threads = threads[i];
        const auto sub = service.submit(spec);
        ASSERT_TRUE(sub.ok());
        EXPECT_TRUE(sub.from_cache)
            << "full_tick=" << full_tick[i] << " threads=" << threads[i];
        const auto rec = service.poll(sub.id);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->state, JobState::Completed);
        EXPECT_TRUE(rec->from_cache);
        EXPECT_EQ(rec->values_checksum, golden);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.result_cache.hits, 4u);
    EXPECT_EQ(stats.result_cache_completed, 4u);
    EXPECT_EQ(stats.completed, 5u);
    EXPECT_EQ(stats.submitted,
              stats.rejected + stats.completed + stats.degraded +
                  stats.failed);
}

TEST(ServiceResultCache, HitCopiesTheWholeResultSummary)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    const auto cold = service.submit(tinyJob("a", "BFS"));
    ASSERT_TRUE(cold.ok());
    service.drain();
    const auto cold_rec = service.poll(cold.id);
    ASSERT_TRUE(cold_rec.has_value());

    const auto hit = service.submit(tinyJob("b", "BFS"));
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.from_cache);
    const auto rec = service.poll(hit.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->cycles, cold_rec->cycles);
    EXPECT_EQ(rec->iterations, cold_rec->iterations);
    EXPECT_EQ(rec->edges_processed, cold_rec->edges_processed);
    EXPECT_EQ(rec->dram_bytes_read, cold_rec->dram_bytes_read);
    EXPECT_EQ(rec->dram_bytes_written, cold_rec->dram_bytes_written);
    EXPECT_EQ(rec->values_checksum, cold_rec->values_checksum);
    EXPECT_EQ(rec->replay, cold_rec->replay);
    // The hit appears in the completion log like any terminal job.
    const auto log = service.completionLog();
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.back(), hit.id);
}

TEST(ServiceResultCache, EvictionRebuildsCorrectly)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.result_cache_budget_bytes = 1;  // at most one entry survives
    GraphService service(cfg);

    const auto first = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(first.ok());
    service.drain();
    const std::uint64_t golden =
        service.poll(first.id)->values_checksum;

    // The BFS insertion blows the 1-byte budget and evicts the LRU
    // survivor — the PageRank entry (sequential drains make the
    // insertion order deterministic).
    const auto other = service.submit(tinyJob("a", "BFS"));
    ASSERT_TRUE(other.ok());
    service.drain();

    // The evicted repeat re-simulates and lands on the same checksum.
    const auto again = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.from_cache);
    service.drain();
    EXPECT_EQ(service.poll(again.id)->values_checksum, golden);
    EXPECT_GE(service.stats().result_cache.evictions, 1u);
}

TEST(ServiceResultCache, DifferentFingerprintsNeverCollide)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    const auto base = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(base.ok());
    service.drain();

    // A cycle budget folds into the resolved config's max_cycles, so
    // the fingerprint — and the key — differ: no hit.
    JobSpec budgeted = tinyJob("a", "PageRank");
    budgeted.cycle_budget = 1u << 24;  // generous: still completes
    const auto sub = service.submit(budgeted);
    ASSERT_TRUE(sub.ok());
    EXPECT_FALSE(sub.from_cache);
    service.drain();
    EXPECT_EQ(service.poll(sub.id)->state, JobState::Completed);

    // A genuinely different accelerator config (1 memory channel
    // instead of 2 — note the "degraded" preset IS tinyConfig(), so a
    // preset spelling of the same config would rightly hit) likewise
    // keys its own entry.
    JobSpec narrower = tinyJob("a", "PageRank");
    narrower.config = AccelConfig::preset(MomsConfig::twoLevel(4), 4, 1);
    const auto sub2 = service.submit(narrower);
    ASSERT_TRUE(sub2.ok());
    EXPECT_FALSE(sub2.from_cache);
    service.drain();
    EXPECT_EQ(service.stats().result_cache.hits, 0u);
}

TEST(ServiceResultCache, ClusterJobsCacheCorrectly)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);

    // BFS run to its fixpoint: the fixpoint of an integer kernel is
    // unique, so the cluster checksum equals the single-board one.
    // (A truncating iteration cap or PageRank's MOMS-arrival-order f32
    // sums would legitimately differ per board topology — and that is
    // fine, because the config fingerprint keys them separately.)
    JobSpec cluster = tinyJob("a", "BFS");
    cluster.iterations = 0;  // algorithm default: run to the fixpoint
    cluster.boards = 2;
    const auto cold = service.submit(cluster);
    ASSERT_TRUE(cold.ok());
    service.drain();
    const auto cold_rec = service.poll(cold.id);
    ASSERT_TRUE(cold_rec.has_value());
    EXPECT_EQ(cold_rec->state, JobState::Completed);

    const auto hit = service.submit(cluster);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.from_cache);
    EXPECT_EQ(service.poll(hit.id)->values_checksum,
              cold_rec->values_checksum);

    // Cluster determinism contract: boards=2 computes the same values
    // as boards=1, so the cached cluster checksum equals the
    // single-board cold run.
    JobSpec single = tinyJob("a", "BFS");
    single.iterations = 0;
    EXPECT_EQ(cold_rec->values_checksum, coldChecksum(single));
}

TEST(ServiceResultCache, DegradedResultsAreNeverCached)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);

    JobSpec doomed = tinyJob("a", "PageRank");
    doomed.cycle_budget = 2000;  // far below what the run needs
    doomed.max_retries = 0;
    const auto first = service.submit(doomed);
    ASSERT_TRUE(first.ok());
    service.drain();
    ASSERT_EQ(service.poll(first.id)->state, JobState::Degraded);

    // The fallback ran a different config than the keyed one: the
    // repeat must simulate again, not hit.
    const auto again = service.submit(doomed);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.from_cache);
    service.drain();
    EXPECT_EQ(service.stats().result_cache.hits, 0u);
    EXPECT_EQ(service.stats().result_cache.insertions, 0u);
}

TEST(ServiceResultCache, BatchModeBurstsNeverHit)
{
    // Lookups happen at submit time: in paused (batch) mode nothing has
    // finished when duplicates arrive, so all of them simulate and the
    // completion order stays the deterministic batch order.
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.start_paused = true;
    GraphService service(cfg);
    const auto a = service.submit(tinyJob("a", "PageRank"));
    const auto b = service.submit(tinyJob("a", "PageRank"));
    const auto c = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_FALSE(a.from_cache || b.from_cache || c.from_cache);
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.result_cache.hits, 0u);
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(service.poll(a.id)->values_checksum,
              service.poll(c.id)->values_checksum);

    // After the batch finished, a live repeat hits as usual.
    const auto live = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(live.ok());
    EXPECT_TRUE(live.from_cache);
}

TEST(ServiceResultCache, DisabledCacheNeverHits)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.enable_result_cache = false;
    GraphService service(cfg);
    EXPECT_EQ(service.resultCache(), nullptr);
    const auto a = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(a.ok());
    service.drain();
    const auto b = service.submit(tinyJob("a", "PageRank"));
    ASSERT_TRUE(b.ok());
    EXPECT_FALSE(b.from_cache);
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.result_cache.hits, 0u);
    EXPECT_EQ(stats.result_cache.misses, 0u);
    EXPECT_EQ(stats.result_cache_completed, 0u);
}

} // namespace
} // namespace gmoms::serve
