/**
 * @file
 * Tests for the baseline models: scratchpad/tiled accelerator, FabGraph
 * analytic model, CPU baseline and Fig. 1 traffic models.
 */

#include <gtest/gtest.h>

#include "src/algo/golden.hh"
#include "src/baseline/cpu_baseline.hh"
#include "src/baseline/fabgraph_model.hh"
#include "src/baseline/scratchpad_accel.hh"
#include "src/baseline/traffic_models.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

TEST(Scratchpad, NodeTrafficGrowsQuadraticallyWithIntervalCount)
{
    CooGraph g = uniformRandom(16384, 80000, 3);
    PartitionedGraph coarse(g, 4096, 8192);
    PartitionedGraph fine(g, 512, 1024);
    ScratchpadConfig cfg;
    auto rc = runScratchpad(coarse, cfg, 1, false);
    auto rf = runScratchpad(fine, cfg, 1, false);
    // 8x more intervals in each dimension: node traffic must blow up
    // while edge traffic stays identical.
    EXPECT_EQ(rc.edge_bytes, rf.edge_bytes);
    EXPECT_GT(rf.node_bytes, 4 * rc.node_bytes);
}

TEST(Scratchpad, ComputeBoundWhenBandwidthAmple)
{
    CooGraph g = uniformRandom(1024, 100000, 5);
    PartitionedGraph pg(g, 1024, 2048);  // single tile: minimal traffic
    ScratchpadConfig cfg;
    cfg.dram_bytes_per_cycle = 1e9;  // infinite bandwidth
    auto r = runScratchpad(pg, cfg, 1, false);
    EXPECT_NEAR(r.cycles,
                100000.0 / (cfg.num_pes * cfg.edges_per_pe_cycle), 1.0);
}

TEST(Scratchpad, WeightedEdgesDoubleEdgeBytes)
{
    CooGraph g = uniformRandom(4096, 20000, 7);
    PartitionedGraph pg(g, 1024, 2048);
    ScratchpadConfig cfg;
    auto ru = runScratchpad(pg, cfg, 1, false);
    auto rw = runScratchpad(pg, cfg, 1, true);
    EXPECT_EQ(rw.edge_bytes, 2 * ru.edge_bytes);
}

TEST(FabGraph, SmallGraphIsComputeBound)
{
    CooGraph g = uniformRandom(10000, 500000, 9);
    FabGraphConfig cfg;
    auto r = modelFabGraph(g, cfg);
    EXPECT_EQ(r.bound, FabGraphResult::Bound::Compute);
    EXPECT_GT(r.gteps, 0.0);
}

TEST(FabGraph, LargeGraphSaturatesOnInternalBandwidth)
{
    // Many more nodes than the L2 capacity: the internal quadratic
    // term dominates and extra channels stop helping (Fig. 14).
    CooGraph g(4'000'000);
    g.addEdge(0, 1);  // sizes matter, not content, for the model
    for (int i = 0; i < 100; ++i)
        g.addEdge(i, i + 1);
    FabGraphConfig one;
    one.num_channels = 1;
    FabGraphConfig four;
    four.num_channels = 4;
    auto r1 = modelFabGraph(g, one);
    auto r4 = modelFabGraph(g, four);
    EXPECT_EQ(r4.bound, FabGraphResult::Bound::Internal);
    // Internal bound is channel-independent: no 4x gain.
    EXPECT_LT(r4.gteps / r1.gteps, 1.5);
}

TEST(FabGraph, MoreChannelsHelpEdgeBoundGraphs)
{
    CooGraph g(100'000);
    for (int i = 0; i < 1000; ++i)
        g.addEdge(i, i + 1);
    // Fake a big M without materializing: use a dense uniform graph.
    CooGraph dense = uniformRandom(100'000, 3'000'000, 11);
    FabGraphConfig one;
    one.num_channels = 1;
    one.pipelines = 64;          // not compute-bound
    one.l1_tile_nodes = 16384;   // not internal-transfer-bound
    FabGraphConfig four = one;
    four.num_channels = 4;
    auto r1 = modelFabGraph(dense, one);
    auto r4 = modelFabGraph(dense, four);
    EXPECT_GT(r4.gteps / r1.gteps, 1.8);
}

TEST(CpuBaseline, PageRankMatchesGolden)
{
    CooGraph g = uniformRandom(500, 5000, 13);
    auto od = g.outDegrees();
    for (NodeId i = 0; i < g.numNodes(); ++i)
        if (od[i] == 0)
            g.addEdge(i, (i + 1) % g.numNodes());
    CpuResult r = cpuPageRank(g, 8, 2);
    std::vector<double> golden = goldenPageRank(g, 8);
    ASSERT_EQ(r.pagerank.size(), g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_NEAR(r.pagerank[i], golden[i], 1e-9);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_EQ(r.edges_processed, 8u * g.numEdges());
}

TEST(CpuBaseline, SccMatchesGolden)
{
    CooGraph g = rmat(10, 8000, RmatParams{}, 17);
    CpuResult r = cpuScc(g, 2);
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(r.values[i], golden[i]);
}

TEST(CpuBaseline, SsspMatchesGolden)
{
    CooGraph g = uniformRandom(1000, 10000, 19);
    addRandomWeights(g, 23);
    CpuResult r = cpuSssp(g, 0, 2);
    std::vector<std::uint32_t> golden = goldenSssp(g, 0);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(r.values[i], golden[i]);
}

TEST(TrafficModels, IdealIsLowerBoundAndTraditionalInBetween)
{
    // 2^14 nodes = 64 KiB of node data, far larger than the 8 KiB
    // cache, with the long reuse distances of shard-order streaming.
    CooGraph g = rmat(14, 60000, RmatParams{}, 29);
    PartitionedGraph pg(g, 512, 1024);
    const std::uint64_t ideal = idealCacheTraffic(pg);
    const std::uint64_t trad = traditionalCacheTraffic(pg, 8 * 1024);
    ScratchpadConfig scfg;
    const std::uint64_t tiles =
        runScratchpad(pg, scfg, 1, false).node_bytes;
    EXPECT_LE(ideal, trad);
    // On a skewed graph with long reuse distances the small cache
    // refetches far more than the ideal cache.
    EXPECT_GT(trad, 2 * ideal);
    // Tiles move every source interval per destination interval —
    // the most traffic of all (Fig. 1b).
    EXPECT_GT(tiles, trad);
}

TEST(TrafficModels, TraceCoversEveryEdgeOnce)
{
    CooGraph g = uniformRandom(256, 3000, 31);
    PartitionedGraph pg(g, 64, 128);
    std::uint64_t count = 0;
    forEachSourceRead(pg, [&](NodeId) { ++count; });
    EXPECT_EQ(count, g.numEdges());
}

} // namespace
} // namespace gmoms
