/**
 * @file
 * Parallel-sweep determinism: sweep() over the re-entrant core must
 * produce per-run results and formatted table rows byte-identical to
 * the serial loop, for every worker count. This is the contract that
 * lets bench binaries fan out across cores without changing a single
 * output byte (and the test ThreadSanitizer runs in CI).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hh"

namespace gmoms
{
namespace
{

using bench::RunOutcome;
using bench::fmt;
using bench::loadDataset;
using bench::runOn;
using bench::sweep;

struct SweepJob
{
    std::string algo;
    std::uint32_t pes;
    std::uint32_t banks;
};

std::vector<SweepJob>
smallJobs()
{
    // Small configs on the smallest dataset: enough jobs to overlap
    // on any pool size, fast enough for a unit test.
    return {
        {"PageRank", 4, 4}, {"SCC", 4, 4},  {"SSSP", 4, 4},
        {"PageRank", 8, 8}, {"SCC", 8, 8},  {"SSSP", 8, 8},
        {"SCC", 4, 8},      {"SCC", 8, 4},
    };
}

RunOutcome
runJob(const SweepJob& j)
{
    AccelConfig cfg;
    cfg.num_pes = j.pes;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(j.banks);
    return runOn(*loadDataset("WT"), j.algo, cfg);
}

/** The row a bench table would print for this outcome. */
std::string
formatRow(const SweepJob& j, const RunOutcome& out)
{
    return j.algo + "/" + std::to_string(j.pes) + "/" +
           std::to_string(j.banks) + " " + fmt(out.gteps, 3) + " " +
           fmt(out.result.moms_hit_rate * 100, 1) + " " +
           std::to_string(out.result.cycles);
}

class SweepDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Keep the EngineBenchRecorder's at-exit JSON out of the test
        // working directory.
        setenv("GMOMS_BENCH_ENGINE_JSON", "/dev/null", 1);
    }
};

TEST_F(SweepDeterminism, PoolsOfAnySizeMatchTheSerialLoopExactly)
{
    const std::vector<SweepJob> jobs = smallJobs();

    std::vector<RunOutcome> serial;
    std::vector<std::string> serial_rows;
    for (const SweepJob& j : jobs) {
        serial.push_back(runJob(j));
        serial_rows.push_back(formatRow(j, serial.back()));
    }

    for (unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ThreadPool pool(workers);
        const std::vector<RunOutcome> pooled =
            sweep(jobs, runJob, &pool);
        ASSERT_EQ(pooled.size(), serial.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("job=" + std::to_string(i));
            EXPECT_EQ(pooled[i].result.cycles, serial[i].result.cycles);
            EXPECT_EQ(pooled[i].result.edges_processed,
                      serial[i].result.edges_processed);
            EXPECT_EQ(pooled[i].result.dram_bytes_read,
                      serial[i].result.dram_bytes_read);
            EXPECT_EQ(pooled[i].result.raw_values,
                      serial[i].result.raw_values);
            EXPECT_EQ(pooled[i].result.moms_hit_rate,
                      serial[i].result.moms_hit_rate);
            EXPECT_EQ(pooled[i].gteps, serial[i].gteps);
            EXPECT_EQ(pooled[i].freq_mhz, serial[i].freq_mhz);
            EXPECT_EQ(formatRow(jobs[i], pooled[i]), serial_rows[i]);
        }
    }
}

TEST_F(SweepDeterminism, SharedDatasetHandleIsStableAcrossCallers)
{
    // The memo must hand every caller the same immutable graph (one
    // build per key, no copies) — including under concurrent access.
    const bench::DatasetPtr first = loadDataset("WT");
    std::vector<int> indices(16);
    const std::vector<bench::DatasetPtr> handles =
        sweep(indices, [](int) { return loadDataset("WT"); });
    for (const bench::DatasetPtr& h : handles)
        EXPECT_EQ(h.get(), first.get());
}

TEST_F(SweepDeterminism, SweepPropagatesJobFailures)
{
    const std::vector<int> jobs = {0, 1, 2, 3};
    EXPECT_THROW(sweep(jobs,
                       [](int i) -> int {
                           if (i == 2)
                               throw std::runtime_error("boom");
                           return i;
                       }),
                 std::runtime_error);
}

} // namespace
} // namespace gmoms
