/**
 * @file
 * End-to-end tests of the multi-board cluster: the determinism contract
 * (values identical to the single board across board counts, modes and
 * tick threads), the timed-plane report, checkpoint fingerprint
 * separation and the serving layer's board-topology validation.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/accel/checkpoint.hh"
#include "src/accel/session.hh"
#include "src/algo/reference.hh"
#include "src/cluster/cluster_engine.hh"
#include "src/graph/generator.hh"
#include "src/serve/job.hh"

namespace gmoms
{
namespace
{

AccelConfig
smallConfig()
{
    return AccelConfig::preset(MomsConfig::twoLevel(4), /*pes=*/4,
                               /*channels=*/2);
}

AccelConfig
clusterConfig(std::uint32_t boards, ClusterConfig::Mode mode,
              ClusterConfig::Partitioner part =
                  ClusterConfig::Partitioner::BlockEdges)
{
    AccelConfig cfg = smallConfig();
    cfg.cluster.boards = boards;
    cfg.cluster.mode = mode;
    cfg.cluster.partitioner = part;
    return cfg;
}

std::uint64_t
checksum(const SessionResult& res)
{
    return serve::valuesChecksum(res.run.raw_values);
}

SessionResult
runAlgo(const CooGraph& g, const AccelConfig& cfg,
        const std::string& algo)
{
    Session s = SessionBuilder()
                    .dataset(CooGraph(g))
                    .config(cfg)
                    .preprocessing(Preprocessing::DbgHash)
                    .build();
    if (algo == "PageRank")
        return s.pageRank(6);
    if (algo == "SSSP")
        return s.sssp(3);
    return s.bfs(3);
}

TEST(Cluster, ChecksumIdenticalToSingleBoardAcrossBoardsAndModes)
{
    const CooGraph g = rmat(10, 9000, RmatParams{}, 33);
    for (const std::string algo : {"BFS", "PageRank", "SSSP"}) {
        // Golden: the single-board run for the integer kernels (their
        // timed fixpoint is unique, so timed == functional bit-exact).
        // PageRank's single-board timed values are f32 sums in MOMS
        // arrival order; its canonical values are the functional
        // plane's, which is what the cluster returns (cluster_engine.hh).
        std::uint64_t want;
        if (algo == "PageRank") {
            Session golden = SessionBuilder()
                                 .dataset(CooGraph(g))
                                 .config(smallConfig())
                                 .preprocessing(Preprocessing::DbgHash)
                                 .build();
            const AlgoSpec spec =
                AlgoSpec::pageRank(golden.graph(), 6);
            want = serve::valuesChecksum(
                runReference(golden.partition(), spec).raw_values);
        } else {
            want = checksum(runAlgo(g, smallConfig(), algo));
        }
        for (std::uint32_t boards : {2u, 4u, 8u})
            for (auto mode : {ClusterConfig::Mode::Bsp,
                              ClusterConfig::Mode::Async}) {
                const SessionResult res = runAlgo(
                    g, clusterConfig(boards, mode), algo);
                EXPECT_EQ(checksum(res), want)
                    << algo << " on " << res.cluster->config.label();
                ASSERT_NE(res.cluster, nullptr);
                EXPECT_TRUE(res.cluster->timed_matches_reference);
            }
    }
}

TEST(Cluster, ChecksumInvariantUnderTickThreads)
{
    const CooGraph g = rmat(9, 5000, RmatParams{}, 41);
    std::uint64_t want = 0;
    for (unsigned threads : {1u, 2u, 8u}) {
        AccelConfig cfg =
            clusterConfig(4, ClusterConfig::Mode::Bsp);
        cfg.tick_threads = threads;
        const SessionResult res = runAlgo(g, cfg, "BFS");
        if (threads == 1)
            want = checksum(res);
        else
            EXPECT_EQ(checksum(res), want)
                << "tick_threads=" << threads;
    }
}

TEST(Cluster, IterationCapTruncationKeepsCanonicalValues)
{
    // An SSSP stopped by max_iterations before the wavefront settles
    // has no unique fixpoint: how far values got is schedule-dependent
    // (even the single board min-folds in place mid-iteration), so the
    // strict timed-vs-functional check must NOT fire. The user-facing
    // values stay the functional plane's — the capped synchronous
    // reference — identical across board counts and modes.
    const CooGraph g = rmat(10, 9000, RmatParams{}, 33);
    auto cappedSssp = [&](const AccelConfig& cfg) {
        Session s = SessionBuilder()
                        .dataset(CooGraph(g))
                        .config(cfg)
                        .preprocessing(Preprocessing::DbgHash)
                        .build();
        return s.sssp(3, /*max_iterations=*/2);
    };
    std::uint64_t want = 0;
    bool first = true;
    for (std::uint32_t boards : {2u, 4u, 8u})
        for (auto mode : {ClusterConfig::Mode::Bsp,
                          ClusterConfig::Mode::Async}) {
            const SessionResult res =
                cappedSssp(clusterConfig(boards, mode));
            ASSERT_NE(res.cluster, nullptr);
            if (first) {
                want = checksum(res);
                first = false;
            } else {
                EXPECT_EQ(checksum(res), want)
                    << boards << " boards, "
                    << res.cluster->config.label();
            }
        }
}

TEST(Cluster, TimedPlaneIsCycleDeterministic)
{
    // Same config, same graph: the timed plane must reproduce cycles
    // and traffic exactly (the partitioner and drivers are
    // deterministic).
    const CooGraph g = rmat(9, 4000, RmatParams{}, 7);
    const AccelConfig cfg =
        clusterConfig(3, ClusterConfig::Mode::Async);
    const SessionResult a = runAlgo(g, cfg, "SSSP");
    const SessionResult b = runAlgo(g, cfg, "SSSP");
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    ASSERT_NE(a.cluster, nullptr);
    ASSERT_NE(b.cluster, nullptr);
    EXPECT_EQ(a.cluster->link_wire_bytes, b.cluster->link_wire_bytes);
    EXPECT_EQ(a.cluster->link_packets, b.cluster->link_packets);
    EXPECT_EQ(a.cluster->supersteps, b.cluster->supersteps);
}

TEST(Cluster, ReportCarriesPerBoardAttribution)
{
    const CooGraph g = rmat(10, 8000, RmatParams{}, 13);
    AccelConfig cfg = clusterConfig(4, ClusterConfig::Mode::Bsp);
    cfg.telemetry.enabled = true;
    const SessionResult res = runAlgo(g, cfg, "PageRank");
    ASSERT_NE(res.cluster, nullptr);
    const ClusterReport& rep = *res.cluster;

    EXPECT_GT(rep.supersteps, 0u);
    EXPECT_GT(rep.cut_edges, 0u);
    EXPECT_GT(rep.ghost_count, 0u);
    EXPECT_GT(rep.link_wire_bytes, 0u);
    EXPECT_GE(rep.edge_balance, 1.0);
    EXPECT_LE(rep.max_rel_error, 1e-3);

    ASSERT_EQ(rep.boards.size(), 4u);
    NodeId owned = 0;
    EdgeId edges = 0;
    std::uint64_t wire = 0;
    for (const ClusterBoardReport& br : rep.boards) {
        owned += br.owned_nodes;
        edges += br.local_edges;
        wire += br.wire_bytes;
        EXPECT_GT(br.iterations, 0u);
        // Every board has telemetry with the board-link stall channel.
        ASSERT_NE(br.telemetry, nullptr);
    }
    EXPECT_EQ(owned, res.run.raw_values.size());
    EXPECT_EQ(wire, rep.link_wire_bytes);
    EXPECT_GT(edges, 0u);
    // PageRank runs every superstep everywhere: edges processed covers
    // every local edge each superstep.
    EXPECT_EQ(res.run.edges_processed,
              static_cast<EdgeId>(edges) * rep.supersteps);
}

TEST(Cluster, LinkWaitCyclesAreAttributed)
{
    // A deliberately skewed partition (round-robin, async) makes some
    // board wait on the link at some point; the sum over boards of
    // barrier/ghost waits must be visible in the report.
    const CooGraph g = rmat(10, 9000, RmatParams{}, 3);
    const AccelConfig cfg = clusterConfig(
        4, ClusterConfig::Mode::Bsp,
        ClusterConfig::Partitioner::RoundRobin);
    const SessionResult res = runAlgo(g, cfg, "BFS");
    ASSERT_NE(res.cluster, nullptr);
    std::uint64_t total_wait = 0;
    for (const ClusterBoardReport& br : res.cluster->boards)
        total_wait += br.link_wait_cycles;
    EXPECT_GT(total_wait, 0u)
        << "a BSP barrier always leaves someone waiting";
}

TEST(Cluster, FingerprintSeparatesBoardTopologies)
{
    const AccelConfig base = smallConfig();
    const std::uint64_t f1 = configFingerprint(base);

    AccelConfig two = base;
    two.cluster.boards = 2;
    const std::uint64_t f2 = configFingerprint(two);
    EXPECT_NE(f1, f2);

    AccelConfig four = base;
    four.cluster.boards = 4;
    EXPECT_NE(configFingerprint(four), f2);

    AccelConfig async = two;
    async.cluster.mode = ClusterConfig::Mode::Async;
    EXPECT_NE(configFingerprint(async), f2);

    AccelConfig rr = two;
    rr.cluster.partitioner = ClusterConfig::Partitioner::RoundRobin;
    EXPECT_NE(configFingerprint(rr), f2);

    AccelConfig slow = two;
    slow.cluster.link_latency = 999;
    EXPECT_NE(configFingerprint(slow), f2);

    // Single-board sessions ignore the link knobs entirely, so they
    // share checkpoints across them.
    AccelConfig single_slow = base;
    single_slow.cluster.link_latency = 999;
    EXPECT_EQ(configFingerprint(single_slow), f1);
}

TEST(Cluster, ConfigValidationAccumulatesClusterProblems)
{
    AccelConfig cfg = smallConfig();
    cfg.cluster.boards = 9;               // > kMaxBoards
    cfg.cluster.link_bytes_per_cycle = 0; // zero-cost wire
    cfg.cluster.link_latency = 0;
    cfg.cluster.link_credits = 0;
    cfg.cluster.link_max_packet_bytes = 4; // < one update
    const auto problems = cfg.validateProblems();
    int cluster_problems = 0;
    for (const std::string& p : problems)
        if (p.find("cluster.") != std::string::npos)
            ++cluster_problems;
    EXPECT_EQ(cluster_problems, 5) << "all cluster problems in one list";
    EXPECT_THROW(cfg.validate(), FatalError);

    // boards == 1 ignores the link fields: no cluster problems.
    AccelConfig single = smallConfig();
    single.cluster.link_bytes_per_cycle = 0;
    EXPECT_TRUE(single.validateProblems().empty());
}

TEST(Cluster, JobSpecCarriesBoardTopology)
{
    serve::JobSpec spec;
    spec.tenant = "t0";
    spec.dataset = "WT";
    spec.algo = "BFS";
    spec.boards = 4;
    spec.cluster_mode = "async";
    spec.cluster_partitioner = "round-robin";
    const serve::ValidatedJob ok = serve::validateJobSpec(spec);
    EXPECT_TRUE(ok.ok()) << (ok.problems.empty()
                                 ? ""
                                 : ok.problems.front());
    EXPECT_EQ(ok.config.cluster.boards, 4u);
    EXPECT_EQ(ok.config.cluster.mode, ClusterConfig::Mode::Async);
    EXPECT_EQ(ok.config.cluster.partitioner,
              ClusterConfig::Partitioner::RoundRobin);

    spec.boards = 12;
    spec.cluster_mode = "chaotic";
    spec.cluster_partitioner = "metis";
    const serve::ValidatedJob bad = serve::validateJobSpec(spec);
    EXPECT_FALSE(bad.ok());
    EXPECT_GE(bad.problems.size(), 3u)
        << "boards range + mode + partitioner problems accumulate";
}

TEST(Cluster, MemoizationSeparatesBoardCounts)
{
    // Two sessions, same dataset, different board counts: both memoize
    // under their own checkpoint (fingerprints differ), and replaying
    // from a checkpoint returns the cluster report too.
    const CooGraph g = rmat(9, 4000, RmatParams{}, 19);
    Session s = SessionBuilder()
                    .dataset(CooGraph(g))
                    .config(clusterConfig(2, ClusterConfig::Mode::Bsp))
                    .build();
    SessionCheckpoint cp = SessionCheckpoint::capture(s);
    const SessionResult first = s.bfs(3);
    Session forked = cp.restore();
    const SessionResult replay = forked.bfs(3);
    EXPECT_EQ(cp.memo()->hits(), 1u);
    EXPECT_EQ(checksum(first), checksum(replay));
    ASSERT_NE(replay.cluster, nullptr);
    EXPECT_EQ(replay.cluster->config.boards, 2u);
}

} // namespace
} // namespace gmoms
