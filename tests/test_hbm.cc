/**
 * @file
 * HBM2 pseudo-channel substrate: micro-level channel timing (narrow
 * bus, per-transaction overhead, same-bank turnaround gap, fine
 * interleave) and system-level guarantees (values identical to DDR4,
 * engine-mode and tick-thread bit-exactness, validate() rules).
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/graph/generator.hh"
#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"

namespace gmoms
{
namespace
{

struct HbmFixture : public ::testing::Test
{
    Engine eng;

    std::unique_ptr<MemorySystem>
    make(std::uint32_t pseudo_channels, std::uint32_t ports)
    {
        auto sys = std::make_unique<MemorySystem>(
            eng, MemSubstrateConfig::hbm2(pseudo_channels), ports);
        sys->store().resize(1 << 20);
        return sys;
    }

    Cycle
    timeRead(MemPort& port, Addr addr, std::uint32_t bytes)
    {
        EXPECT_TRUE(port.send(MemReq{addr, bytes, 1, false}));
        std::optional<MemResp> resp;
        bool done = eng.runUntil(
            [&] {
                if (!resp)
                    resp = port.receive();
                return resp.has_value();
            },
            100000);
        EXPECT_TRUE(done);
        EXPECT_EQ(resp->addr, addr);
        EXPECT_EQ(resp->bytes, bytes);
        return eng.now();
    }
};

TEST_F(HbmFixture, SingleReadLatency)
{
    const MemSubstrateConfig sub = MemSubstrateConfig::hbm2(1);
    auto sys = make(1, 1);
    MemPort port = sys->port(0);
    const Cycle t0 = eng.now();
    const Cycle t1 = timeRead(port, 0, 64);
    // 1 cycle queue in + service (2 data beats on the 32 B bus + 1
    // overhead + 2 row miss) + load latency + 1 queue out, plus
    // polling slack.
    const Cycle expect_min = sub.timing.load_latency_cycles + 6;
    EXPECT_GE(t1 - t0, expect_min);
    EXPECT_LE(t1 - t0, expect_min + 6);
    EXPECT_EQ(sys->channel(0).stats().reads, 1u);
    EXPECT_EQ(sys->channel(0).stats().bytes_read, 64u);
}

TEST_F(HbmFixture, NarrowBusSinglesWasteMoreThanBursts)
{
    // A scattered 64 B read (new row every time, the vertex-miss
    // pattern) spends 2 data slots against 5 charged bus cycles (40%
    // of peak); a full 256 B interleave-unit burst spends 8 of 11
    // (~73%). The inefficiency gap is the core of the HBM trade and
    // must be visible in busy_cycles.
    const MemSubstrateConfig sub = MemSubstrateConfig::hbm2(1);
    auto singles = make(1, 1);
    MemPort sp = singles->port(0);
    for (int i = 0; i < 8; ++i)
        timeRead(sp, static_cast<Addr>(i) * sub.timing.row_bytes, 64);
    const auto& st = singles->channel(0).stats();
    const double single_eff =
        static_cast<double>(st.bytes_read) / st.busy_cycles;

    auto bursts = make(1, 1);
    MemPort bp = bursts->port(0);
    for (int i = 0; i < 8; ++i)
        timeRead(bp, static_cast<Addr>(i) * 256, 256);
    const auto& bt = bursts->channel(0).stats();
    const double burst_eff =
        static_cast<double>(bt.bytes_read) / bt.busy_cycles;

    EXPECT_EQ(st.bytes_read, bt.bytes_read / 4);
    EXPECT_GT(burst_eff, single_eff * 1.4);
    // Absolute anchors: peak is 32 B/cycle.
    EXPECT_LT(single_eff, 0.5 * 32);
    EXPECT_GT(burst_eff, 0.6 * 32);
}

TEST_F(HbmFixture, SameBankBackToBackChargesGapCycle)
{
    const MemSubstrateConfig sub = MemSubstrateConfig::hbm2(1);
    // Different banks: rows 0 and 1 (bank = row % 8). Both row-miss.
    auto diff = make(1, 1);
    MemPort dp = diff->port(0);
    timeRead(dp, 0, 64);
    timeRead(dp, sub.timing.row_bytes, 64);

    // Same bank: rows 0 and num_banks map to bank 0. Both row-miss.
    auto same = make(1, 1);
    MemPort sp = same->port(0);
    timeRead(sp, 0, 64);
    timeRead(sp, Addr{sub.timing.row_bytes} * sub.timing.num_banks, 64);

    EXPECT_EQ(same->channel(0).stats().busy_cycles,
              diff->channel(0).stats().busy_cycles +
                  sub.timing.same_bank_gap_cycles);
    EXPECT_EQ(same->channel(0).stats().row_misses, 2u);
    EXPECT_EQ(diff->channel(0).stats().row_misses, 2u);
}

TEST_F(HbmFixture, FineInterleaveStripesAcrossPseudoChannels)
{
    auto sys = make(4, 1);
    EXPECT_EQ(sys->interleaveBytes(), 256u);
    EXPECT_EQ(sys->channelOf(0), 0u);
    EXPECT_EQ(sys->channelOf(255), 0u);
    EXPECT_EQ(sys->channelOf(256), 1u);
    EXPECT_EQ(sys->channelOf(512), 2u);
    EXPECT_EQ(sys->channelOf(768), 3u);
    EXPECT_EQ(sys->channelOf(1024), 0u);
    EXPECT_EQ(sys->channel(0).name(), "hbm.pc0");
    EXPECT_EQ(sys->channel(3).name(), "hbm.pc3");

    MemPort port = sys->port(0);
    for (int i = 0; i < 8; ++i)
        timeRead(port, static_cast<Addr>(i) * 256, 64);
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_EQ(sys->channel(c).stats().reads, 2u) << "pc" << c;
}

TEST_F(HbmFixture, RequestsMayNotCrossTheInterleaveUnit)
{
    auto sys = make(2, 1);
    MemPort port = sys->port(0);
    EXPECT_EQ(port.interleaveBytes(), 256u);
    // 192 + 128 straddles the 256 B boundary.
    EXPECT_THROW(port.send(MemReq{192, 128, 1, false}), PanicError);
}

// --- system level -------------------------------------------------------

RunResult
runAccel(const CooGraph& g, const AlgoSpec& spec, AccelConfig cfg,
         bool full_tick = false, unsigned tick_threads = 0)
{
    cfg.full_tick_engine = full_tick;
    cfg.tick_threads = tick_threads;
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, spec);
    return accel.run();
}

AccelConfig
smallHbm(std::uint32_t pcs = 4)
{
    AccelConfig cfg = AccelConfig::hbmTwoLevel(pcs, 4, 2048);
    return cfg;
}

TEST(HbmSystem, ValuesIdenticalToDdr4)
{
    // Same DRAM image (GraphLayout sections stay aligned at the
    // coarsest interleave), same functional plane: only timing may
    // move. SCC exercises min-gathers, PageRank float adds.
    const CooGraph g = rmat(10, 8000, RmatParams{}, 3);
    AccelConfig ddr = AccelConfig::preset(MomsConfig::twoLevel(4), 4);
    const RunResult a =
        runAccel(g, AlgoSpec::scc(g.numNodes(), 4), ddr);
    const RunResult b =
        runAccel(g, AlgoSpec::scc(g.numNodes(), 4), smallHbm());
    EXPECT_EQ(a.raw_values, b.raw_values);
    EXPECT_EQ(a.edges_processed, b.edges_processed);
    EXPECT_NE(a.cycles, 0u);
    EXPECT_NE(b.cycles, 0u);
}

TEST(HbmSystem, EngineModesBitExact)
{
    const CooGraph g = rmat(10, 6000, RmatParams{}, 17);
    const AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 3);
    const RunResult full = runAccel(g, spec, smallHbm(), true);
    const RunResult idle = runAccel(g, spec, smallHbm(), false);
    EXPECT_EQ(full.cycles, idle.cycles);
    EXPECT_EQ(full.raw_values, idle.raw_values);
    EXPECT_EQ(full.dram_bytes_read, idle.dram_bytes_read);
    EXPECT_EQ(full.dram_bytes_written, idle.dram_bytes_written);
    EXPECT_EQ(full.moms_requests, idle.moms_requests);
    EXPECT_EQ(full.pe_raw_stalls, idle.pe_raw_stalls);
}

TEST(HbmSystem, TickThreadsBitExact)
{
    CooGraph g = uniformRandom(900, 6000, 23);
    addRandomWeights(g, 5);
    const AlgoSpec spec = AlgoSpec::sssp(0, 6);
    const RunResult serial = runAccel(g, spec, smallHbm(), false, 1);
    for (unsigned threads : {2u, 4u}) {
        const RunResult par =
            runAccel(g, spec, smallHbm(), false, threads);
        EXPECT_EQ(serial.cycles, par.cycles)
            << "tick_threads=" << threads;
        EXPECT_EQ(serial.raw_values, par.raw_values)
            << "tick_threads=" << threads;
    }
}

TEST(HbmSystem, ValidateRules)
{
    auto problems = [](AccelConfig cfg) {
        return cfg.validateProblems();
    };
    auto mentions = [](const std::vector<std::string>& ps,
                       const char* needle) {
        for (const auto& p : ps)
            if (p.find(needle) != std::string::npos)
                return true;
        return false;
    };

    EXPECT_TRUE(problems(smallHbm()).empty());
    EXPECT_TRUE(problems(AccelConfig::hbmTwoLevel()).empty());

    AccelConfig one = smallHbm();
    one.mem.channels = 1;  // pseudo-channels come in pairs
    one.moms.num_shared_banks = 1;
    EXPECT_TRUE(mentions(problems(one), "mem.channels"));

    AccelConfig many = smallHbm();
    many.mem.channels = 64;
    EXPECT_TRUE(mentions(problems(many), "mem.channels"));
    // DDR4 has its own (tighter) channel bound.
    AccelConfig ddr = AccelConfig::preset(MomsConfig::twoLevel(16), 4);
    ddr.mem.channels = 16;
    EXPECT_TRUE(mentions(problems(ddr), "mem.channels"));

    AccelConfig il = smallHbm();
    il.mem.interleave_bytes = 96;  // not a power of two
    EXPECT_TRUE(mentions(problems(il), "interleave_bytes"));
    il.mem.interleave_bytes = 32;  // below one line
    EXPECT_TRUE(mentions(problems(il), "interleave_bytes"));

    AccelConfig row = smallHbm();
    row.mem.timing.row_bytes = 768;
    EXPECT_TRUE(mentions(problems(row), "row_bytes"));

    AccelConfig banks = smallHbm();
    banks.moms.num_shared_banks = 3;  // not a multiple of 4 channels
    EXPECT_TRUE(mentions(problems(banks), "bank-to-channel"));

    // Every rule accumulates into one list (one-FatalError style).
    AccelConfig multi = smallHbm();
    multi.mem.channels = 1;
    multi.mem.timing.row_bytes = 768;
    multi.mem.interleave_bytes = 96;
    EXPECT_GE(problems(multi).size(), 3u);
}

TEST(HbmSystem, LabelNamesTheSubstrate)
{
    EXPECT_NE(AccelConfig::hbmTwoLevel().label().find("16pc-hbm"),
              std::string::npos);
    EXPECT_NE(AccelConfig::paper18x16TwoLevel().label().find("@4ch"),
              std::string::npos);
}

} // namespace
} // namespace gmoms
