/**
 * @file
 * Tests for the DynaBurst burst assembler extension.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/accel/accelerator.hh"
#include "src/algo/golden.hh"
#include "src/cache/burst_assembler.hh"
#include "src/graph/generator.hh"
#include "src/sim/engine.hh"

namespace gmoms
{
namespace
{

struct AssemblerFixture : public ::testing::Test
{
    Engine eng;
    DramConfig dram_cfg;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<BurstAssembler> asm_;

    void
    make(BurstAssemblerConfig cfg = {})
    {
        mem = std::make_unique<MemorySystem>(eng, dram_cfg, 1, 1);
        mem->store().resize(1 << 20);
        asm_ = std::make_unique<BurstAssembler>(eng, "dynaburst", cfg,
                                                mem->port(0));
        eng.add(asm_.get());
    }

    std::set<Addr>
    collect(std::size_t expected)
    {
        std::set<Addr> lines;
        eng.runUntil(
            [&] {
                while (auto line = asm_->receive())
                    lines.insert(*line);
                return lines.size() >= expected;
            },
            100000);
        return lines;
    }
};

TEST_F(AssemblerFixture, AdjacentLinesShareOneBurst)
{
    make();
    for (Addr line : {0x1000, 0x1040, 0x1080})
        asm_->send(line);
    auto lines = collect(3);
    EXPECT_EQ(lines, (std::set<Addr>{0x1000, 0x1040, 0x1080}));
    EXPECT_EQ(asm_->stats().bursts, 1u);
    EXPECT_EQ(asm_->stats().lines_fetched, 3u);
    EXPECT_EQ(mem->channel(0).stats().reads, 1u);
    EXPECT_EQ(mem->channel(0).stats().bytes_read, 3u * 64);
}

TEST_F(AssemblerFixture, GapsAreFetchedAsFiller)
{
    make();
    asm_->send(0x2000);
    asm_->send(0x2000 + 3 * 64);  // lines 0 and 3: span of 4
    auto lines = collect(2);
    EXPECT_EQ(lines.size(), 2u);
    EXPECT_EQ(asm_->stats().bursts, 1u);
    EXPECT_EQ(asm_->stats().lines_fetched, 4u) << "span includes filler";
}

TEST_F(AssemblerFixture, DistantLinesUseSeparateBursts)
{
    make();
    asm_->send(0x0000);
    asm_->send(0x8000);
    collect(2);
    EXPECT_EQ(asm_->stats().bursts, 2u);
}

TEST_F(AssemblerFixture, WindowTimesOutWhenAlone)
{
    BurstAssemblerConfig cfg;
    cfg.wait_cycles = 5;
    make(cfg);
    asm_->send(0x3000);
    auto lines = collect(1);
    EXPECT_EQ(*lines.begin(), 0x3000u);
    EXPECT_EQ(asm_->stats().timeouts, 1u);
}

TEST_F(AssemblerFixture, FullWindowFlushesImmediately)
{
    BurstAssemblerConfig cfg;
    cfg.window_lines = 4;
    cfg.wait_cycles = 1000;  // would never time out in this test
    make(cfg);
    for (Addr i = 0; i < 4; ++i)
        asm_->send(0x4000 + i * 64);
    auto lines = collect(4);
    EXPECT_EQ(lines.size(), 4u);
    EXPECT_EQ(asm_->stats().timeouts, 0u);
}

TEST_F(AssemblerFixture, BackpressureRespectsMaxWindows)
{
    BurstAssemblerConfig cfg;
    cfg.max_open_windows = 2;
    cfg.wait_cycles = 1000;
    make(cfg);
    ASSERT_TRUE(asm_->canSend(0x0000));
    asm_->send(0x0000);
    ASSERT_TRUE(asm_->canSend(0x10000));
    asm_->send(0x10000);
    EXPECT_FALSE(asm_->canSend(0x20000)) << "third window refused";
    EXPECT_TRUE(asm_->canSend(0x0040)) << "existing window still open";
}

TEST_F(AssemblerFixture, RejectsBadWindowGeometry)
{
    EXPECT_THROW(
        BurstAssembler(eng, "x", BurstAssemblerConfig{0, 8, 16},
                       MemPort{}),
        FatalError);
    EXPECT_THROW(
        BurstAssembler(eng, "x", BurstAssemblerConfig{3, 8, 16},
                       MemPort{}),
        FatalError);
    EXPECT_THROW(
        BurstAssembler(eng, "x",
                       BurstAssemblerConfig{64, 8, 16}, MemPort{}),
        FatalError);
}

TEST(DynaBurstIntegration, AcceleratorStaysCorrectWithDynaBurst)
{
    CooGraph g = rmat(10, 8000, RmatParams{}, 5);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(4);
    cfg.moms.dynaburst = true;
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, spec);
    RunResult res = accel.run();
    EXPECT_EQ(res.raw_values, goldenMinLabel(g));
    // The assembler must actually have merged something.
    std::uint64_t bursts = 0, line_reqs = 0;
    // (stats are internal to the MomsSystem; verify via DRAM counters:
    // fewer read transactions than lines fetched.)
    for (std::uint32_t c = 0; c < 2; ++c) {
        bursts += accel.mem().channel(c).stats().reads;
        line_reqs += accel.mem().channel(c).stats().bytes_read / 64;
    }
    EXPECT_LT(bursts, line_reqs) << "some bursts span multiple lines";
}

} // namespace
} // namespace gmoms
