/**
 * @file
 * Bank-internal contention semantics (Section V-E): response priority
 * over requests, hit/drain competition at the response port, and the
 * drain-pending backlog cap.
 */

#include <gtest/gtest.h>

#include <deque>

#include "src/cache/moms_bank.hh"
#include "src/sim/engine.hh"

namespace gmoms
{
namespace
{

/** Downstream that releases responses only when told to. */
class GatedDownstream : public LineDownstream
{
  public:
    bool canSend(Addr) const override { return true; }
    void send(Addr line) override { pending.push_back(line); }
    std::optional<Addr>
    receive() override
    {
        if (release == 0 || pending.empty())
            return std::nullopt;
        --release;
        Addr line = pending.front();
        pending.pop_front();
        return line;
    }

    std::deque<Addr> pending;
    std::uint32_t release = 0;
};

TEST(BankContention, ReturningLinesHavePriorityOverRequests)
{
    Engine eng;
    MomsBankConfig cfg;
    cfg.cache_bytes = 0;
    MomsBank bank(eng, "bank", cfg);
    GatedDownstream down;
    bank.connectDownstream(&down);
    eng.add(&bank);

    // Issue two misses to distinct lines.
    bank.cpuReqIn().push(ReadReq{0x0000, 1, 0});
    bank.cpuReqIn().push(ReadReq{0x1000, 2, 0});
    eng.runUntil([&] { return down.pending.size() == 2; }, 100);

    // Release both lines and simultaneously offer a new request; the
    // line returns must be consumed on the cycles they are available
    // even though a request is waiting.
    down.release = 3;  // the two parked lines plus the upcoming one
    bank.cpuReqIn().push(ReadReq{0x2000, 3, 0});
    std::uint32_t got = 0;
    eng.runUntil(
        [&] {
            while (bank.cpuRespOut().canPop()) {
                bank.cpuRespOut().pop();
                ++got;
            }
            return got == 3;
        },
        1000);
    EXPECT_EQ(got, 3u);
    EXPECT_EQ(bank.stats().lines_from_mem, 3u);
}

TEST(BankContention, DrainBacklogIsBounded)
{
    // Park many completed lines downstream; the bank may only absorb
    // a handful (drain_pending cap 4) before it must drain them.
    Engine eng;
    MomsBankConfig cfg;
    cfg.cache_bytes = 0;
    MomsBank bank(eng, "bank", cfg);
    GatedDownstream down;
    bank.connectDownstream(&down);
    eng.add(&bank);

    const int lines = 12;
    for (int i = 0; i < lines; ++i)
        bank.cpuReqIn().push(
            ReadReq{static_cast<Addr>(i) * kLineBytes,
                    static_cast<std::uint64_t>(i), 0});
    eng.runUntil([&] { return down.pending.size() == lines; }, 1000);

    down.release = lines;  // all lines become available at once
    std::uint32_t got = 0;
    eng.runUntil(
        [&] {
            while (bank.cpuRespOut().canPop()) {
                bank.cpuRespOut().pop();
                ++got;
            }
            return got == lines;
        },
        1000);
    EXPECT_EQ(got, static_cast<std::uint32_t>(lines));
    EXPECT_TRUE(bank.idle());
}

TEST(BankContention, HitsStallWhileDrainHoldsTheResponsePort)
{
    // Warm a line into the cache, then create a long drain and stream
    // hits: stall_resp_out must fire (hit/drain contention).
    Engine eng;
    MomsBankConfig cfg;
    cfg.cache_bytes = 1024;
    MomsBank bank(eng, "bank", cfg);
    GatedDownstream down;
    bank.connectDownstream(&down);
    eng.add(&bank);

    // Warm line 0x0000.
    bank.cpuReqIn().push(ReadReq{0x0040, 0, 0});  // set 1: no alias with 0x4000
    eng.runUntil([&] { return down.pending.size() == 1; }, 100);
    down.release = 1;
    eng.runUntil([&] { return bank.cpuRespOut().canPop(); }, 100);
    bank.cpuRespOut().pop();

    // Build a 16-subentry drain on another line, then issue hits.
    for (int i = 0; i < 16; ++i)
        bank.cpuReqIn().push(
            ReadReq{0x4000 + 4u * i, 100u + i, 0});
    eng.runUntil([&] { return down.pending.size() == 1; }, 1000);
    down.release = 1;

    int hits_requested = 0, responses = 0;
    eng.runUntil(
        [&] {
            if (hits_requested < 12 &&
                bank.cpuReqIn().push(
                    ReadReq{0x0040, 200u + hits_requested, 0}))
                ++hits_requested;
            while (bank.cpuRespOut().canPop()) {
                bank.cpuRespOut().pop();
                ++responses;
            }
            return responses == 16 + 12;
        },
        5000);
    EXPECT_EQ(responses, 28);
    EXPECT_GT(bank.stats().stall_resp_out, 0u)
        << "hit data and drain data must contend for the output port";
}

} // namespace
} // namespace gmoms
