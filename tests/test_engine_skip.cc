/**
 * @file
 * Idle-aware engine tests: the wake calendar, queue wake hooks,
 * time-skip, registration guards, the TimedQueue ring buffer, and —
 * most importantly — bit-exact equivalence between the idle-aware
 * engine and the legacy full-tick engine on end-to-end accelerator
 * runs (cycles, results and every statistic must match).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/accel/accelerator.hh"
#include "src/graph/generator.hh"
#include "src/sim/engine.hh"
#include "src/sim/log.hh"
#include "src/sim/stats.hh"
#include "src/sim/timed_queue.hh"

namespace gmoms
{
namespace
{

// ---------------------------------------------------------------------
// Engine::add guards.
// ---------------------------------------------------------------------

class NopComponent : public Component
{
  public:
    NopComponent() : Component("nop") {}
    void tick() override {}
};

TEST(EngineAdd, RejectsNullComponent)
{
    Engine eng;
    EXPECT_THROW(eng.add(nullptr), FatalError);
    EXPECT_EQ(eng.numComponents(), 0u);
}

TEST(EngineAdd, RejectsDuplicateRegistration)
{
    Engine eng;
    NopComponent c;
    eng.add(&c);
    EXPECT_THROW(eng.add(&c), FatalError);
    EXPECT_EQ(eng.numComponents(), 1u);
}

TEST(EngineAdd, RejectsComponentOfAnotherEngine)
{
    Engine a, b;
    NopComponent c;
    a.add(&c);
    EXPECT_THROW(b.add(&c), FatalError);
    EXPECT_EQ(c.boundEngine(), &a);
}

// ---------------------------------------------------------------------
// Component skipping and the wake calendar.
// ---------------------------------------------------------------------

/** Always active (default nextActivity), counts its ticks. */
class BusyComponent : public Component
{
  public:
    BusyComponent() : Component("busy") {}
    void tick() override { ++ticks; }
    std::uint64_t ticks = 0;
};

/** Declares itself permanently blocked on a link. */
class BlockedComponent : public Component
{
  public:
    BlockedComponent() : Component("blocked") {}
    void tick() override { ++ticks; }
    Cycle nextActivity() const override { return kCycleNever; }
    std::uint64_t ticks = 0;
};

/** Sleeps for a fixed period between ticks (a timeout-style alarm). */
class AlarmComponent : public Component
{
  public:
    AlarmComponent(const Engine& eng, Cycle period)
        : Component("alarm"), eng_(eng), period_(period)
    {
    }
    void tick() override { tick_cycles.push_back(eng_.now()); }
    Cycle nextActivity() const override { return eng_.now() + period_; }
    std::vector<Cycle> tick_cycles;

  private:
    const Engine& eng_;
    Cycle period_;
};

TEST(EngineSkip, BlockedComponentsAreNotTicked)
{
    Engine eng;
    BusyComponent busy;
    BlockedComponent blocked;
    eng.add(&busy);
    eng.add(&blocked);
    eng.runUntil([] { return false; }, 50);
    // wakeAll() at runUntil entry gives the blocked component exactly
    // one observation tick; after that it sleeps.
    EXPECT_EQ(busy.ticks, 50u);
    EXPECT_EQ(blocked.ticks, 1u);
    EXPECT_EQ(eng.stats().ticks_executed, 51u);
    EXPECT_EQ(eng.stats().ticks_skipped, 49u);
    EXPECT_EQ(eng.stats().cycles_skipped, 0u);  // EveryCycle: no skips
}

TEST(EngineSkip, AlarmTicksExactlyOnItsPeriod)
{
    Engine eng;
    AlarmComponent alarm(eng, 10);
    eng.add(&alarm);
    eng.runUntil([] { return false; }, 35);
    EXPECT_EQ(alarm.tick_cycles, (std::vector<Cycle>{0, 10, 20, 30}));
}

TEST(EngineSkip, OnEventsFastForwardsTime)
{
    Engine eng;
    AlarmComponent alarm(eng, 100);
    eng.add(&alarm);
    const bool fired =
        eng.runUntil([] { return false; }, 1000, Engine::Poll::OnEvents);
    EXPECT_FALSE(fired);
    EXPECT_EQ(eng.now(), 1000u);
    EXPECT_EQ(alarm.tick_cycles.size(), 10u);  // 0, 100, ..., 900
    EXPECT_EQ(eng.stats().cycles, 1000u);
    EXPECT_EQ(eng.stats().cycles_skipped, 990u);
    EXPECT_EQ(eng.stats().ticks_executed, 10u);
}

TEST(EngineSkip, OnEventsHonorsDeadlineWhenEverythingSleeps)
{
    Engine eng;
    BlockedComponent blocked;
    eng.add(&blocked);
    const bool fired =
        eng.runUntil([] { return false; }, 50, Engine::Poll::OnEvents);
    EXPECT_FALSE(fired);
    EXPECT_EQ(eng.now(), 50u);
    EXPECT_EQ(blocked.ticks, 1u);
    EXPECT_EQ(eng.stats().cycles_skipped, 49u);
}

TEST(EngineSkip, OnEventsPanicsOnUnboundedDeadlock)
{
    Engine eng;
    BlockedComponent blocked;
    eng.add(&blocked);
    // Everything quiescent, no cycle limit, pure predicate that never
    // fires: the run could only spin forever. The engine must say so.
    EXPECT_THROW(eng.runUntil([] { return false; }, kCycleNever,
                              Engine::Poll::OnEvents),
                 PanicError);
}

// ---------------------------------------------------------------------
// TimedQueue wake hooks.
// ---------------------------------------------------------------------

/** Pops every token as soon as it arrives; sleeps on an empty queue. */
class SleepyConsumer : public Component
{
  public:
    SleepyConsumer(const Engine& eng, TimedQueue<int>& q)
        : Component("consumer"), eng_(eng), q_(q)
    {
    }
    void
    tick() override
    {
        ++ticks;
        while (q_.canPop())
            got.push_back({q_.pop(), eng_.now()});
    }
    Cycle nextActivity() const override { return q_.peekReadyCycle(); }

    std::uint64_t ticks = 0;
    std::vector<std::pair<int, Cycle>> got;

  private:
    const Engine& eng_;
    TimedQueue<int>& q_;
};

TEST(EngineSkip, PushWakesConsumerWhenTokenArrives)
{
    Engine eng;
    TimedQueue<int> q(eng, 4, 3);
    SleepyConsumer consumer(eng, q);
    eng.add(&consumer);
    q.setConsumer(&consumer);

    eng.runUntil(
        [&] {
            if (eng.now() == 10)
                q.push(7);
            return false;
        },
        20);

    // One observation tick at cycle 0, then exactly one tick at cycle
    // 13 when the token pushed in cycle 10 becomes visible.
    ASSERT_EQ(consumer.got.size(), 1u);
    EXPECT_EQ(consumer.got[0].first, 7);
    EXPECT_EQ(consumer.got[0].second, 13u);
    EXPECT_EQ(consumer.ticks, 2u);
}

/** Pushes a fixed number of tokens, retrying through backpressure;
 *  sleeps while the queue is full. */
class BackpressuredProducer : public Component
{
  public:
    BackpressuredProducer(TimedQueue<int>& q, int count)
        : Component("producer"), q_(q), remaining_(count)
    {
    }
    void
    tick() override
    {
        ++ticks;
        if (remaining_ > 0 && q_.push(next_)) {
            ++next_;
            --remaining_;
        }
    }
    Cycle
    nextActivity() const override
    {
        return remaining_ > 0 && q_.canPush() ? 0 : kCycleNever;
    }

    std::uint64_t ticks = 0;

  private:
    TimedQueue<int>& q_;
    int next_ = 1;
    int remaining_;
};

TEST(EngineSkip, PopOfFullQueueWakesProducer)
{
    Engine eng;
    TimedQueue<int> q(eng, 2, 1);
    BackpressuredProducer producer(q, 5);
    eng.add(&producer);
    q.setProducer(&producer);

    // Phase 1: nobody pops. The producer fills the queue in two ticks
    // and then sleeps on the full queue.
    eng.runUntil([] { return false; }, 10);
    EXPECT_EQ(producer.ticks, 2u);
    EXPECT_FALSE(q.canPush());

    // Phase 2: the predicate pops one token per cycle. Every pop frees
    // a slot of the full queue and must wake the producer, which
    // pushes the next token the same cycle (exactly as the legacy
    // engine, where it was ticked every cycle anyway).
    std::vector<int> popped;
    eng.runUntil(
        [&] {
            if (q.canPop())
                popped.push_back(q.pop());
            return popped.size() == 5u;
        },
        100);
    EXPECT_EQ(popped, (std::vector<int>{1, 2, 3, 4, 5}));
    // Ticks: one per remaining push (3, each unblocked by a pop), plus
    // one wake from the last full-queue pop with nothing left to send.
    EXPECT_EQ(producer.ticks, 6u);
}

// ---------------------------------------------------------------------
// TimedQueue ring-buffer mechanics.
// ---------------------------------------------------------------------

TEST(TimedQueue, PeekReadyCycleTracksHeadToken)
{
    Engine eng;
    TimedQueue<int> q(eng, 4, 2);
    EXPECT_EQ(q.peekReadyCycle(), kCycleNever);
    ASSERT_TRUE(q.push(1));
    EXPECT_EQ(q.peekReadyCycle(), 2u);
    eng.tick();
    ASSERT_TRUE(q.push(2));
    EXPECT_EQ(q.peekReadyCycle(), 2u);  // still the first token
    eng.tick();
    ASSERT_TRUE(q.canPop());
    q.pop();
    EXPECT_EQ(q.peekReadyCycle(), 3u);  // second token's arrival
    eng.tick();
    ASSERT_TRUE(q.canPop());
    q.pop();
    EXPECT_EQ(q.peekReadyCycle(), kCycleNever);
}

TEST(TimedQueue, RingWrapsManyTimesPreservingFifoOrder)
{
    Engine eng;
    TimedQueue<int> q(eng, 3, 1);
    // Head advances once per iteration: 100 laps through a 3-slot ring.
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(q.push(i));
        eng.tick();
        ASSERT_TRUE(q.canPop());
        EXPECT_EQ(q.pop(), i);
    }
    EXPECT_TRUE(q.empty());
    // And with the queue kept near capacity while cycling.
    int pushed = 0, expected = 0;
    for (; pushed < 3; ++pushed)
        ASSERT_TRUE(q.push(pushed));
    for (int i = 0; i < 50; ++i) {
        eng.tick();
        ASSERT_TRUE(q.canPop());
        EXPECT_EQ(q.pop(), expected++);
        ASSERT_TRUE(q.push(pushed++));
    }
}

// ---------------------------------------------------------------------
// End-to-end equivalence: idle-aware vs legacy full-tick.
// ---------------------------------------------------------------------

struct Snapshot
{
    RunResult result;
    std::string stats;  //!< full registry dump + per-PE counters
    Engine::Stats engine;
};

Snapshot
runSnapshot(const CooGraph& g, const AlgoSpec& spec, AccelConfig cfg,
            bool full_tick)
{
    cfg.full_tick_engine = full_tick;
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, spec);
    Snapshot s;
    s.result = accel.run();

    StatRegistry reg;
    accel.moms().registerStats(reg);
    for (std::uint32_t c = 0; c < accel.mem().numChannels(); ++c)
        accel.mem().channel(c).registerStats(reg);
    std::ostringstream ss;
    reg.dump(ss);
    for (const auto& pe : accel.pes()) {
        const Pe::Stats& p = pe->stats();
        ss << pe->name() << " = " << p.jobs << ' ' << p.edges_processed
           << ' ' << p.local_src_reads << ' ' << p.moms_reads << ' '
           << p.raw_stalls << ' ' << p.thread_stalls << ' '
           << p.moms_send_stalls << ' ' << p.busy_cycles << ' '
           << p.idle_cycles << '\n';
    }
    s.stats = ss.str();
    s.engine = accel.engine().stats();
    return s;
}

void
expectExactMatch(const CooGraph& g, const AlgoSpec& spec,
                 const AccelConfig& cfg)
{
    const Snapshot full = runSnapshot(g, spec, cfg, true);
    const Snapshot idle = runSnapshot(g, spec, cfg, false);
    EXPECT_EQ(full.result.cycles, idle.result.cycles);
    EXPECT_EQ(full.result.iterations, idle.result.iterations);
    EXPECT_EQ(full.result.edges_processed, idle.result.edges_processed);
    EXPECT_EQ(full.result.dram_bytes_read, idle.result.dram_bytes_read);
    EXPECT_EQ(full.result.dram_bytes_written,
              idle.result.dram_bytes_written);
    EXPECT_EQ(full.result.moms_requests, idle.result.moms_requests);
    EXPECT_EQ(full.result.moms_secondary_misses,
              idle.result.moms_secondary_misses);
    EXPECT_EQ(full.result.moms_lines_from_mem,
              idle.result.moms_lines_from_mem);
    EXPECT_EQ(full.result.pe_raw_stalls, idle.result.pe_raw_stalls);
    EXPECT_DOUBLE_EQ(full.result.moms_hit_rate,
                     idle.result.moms_hit_rate);
    EXPECT_EQ(full.result.raw_values, idle.result.raw_values);
    EXPECT_EQ(full.stats, idle.stats);
    // Same simulated time, and the legacy engine never skips.
    EXPECT_EQ(full.engine.cycles, idle.engine.cycles);
    EXPECT_EQ(full.engine.ticks_skipped, 0u);
    // The idle-aware engine must actually have skipped work, or this
    // test degenerates into comparing the same engine with itself.
    EXPECT_GT(idle.engine.ticks_skipped, 0u);
}

AccelConfig
smallConfig(MomsConfig moms)
{
    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = moms;
    return cfg;
}

TEST(EngineEquivalence, SccTwoLevel)
{
    const CooGraph g = rmat(10, 6000, RmatParams{}, 42);
    expectExactMatch(g, AlgoSpec::scc(g.numNodes(), 4),
                     smallConfig(MomsConfig::twoLevel(4)));
}

TEST(EngineEquivalence, SssWeightedShared)
{
    CooGraph g = uniformRandom(800, 5000, 7);
    addRandomWeights(g, 97);
    expectExactMatch(g, AlgoSpec::sssp(0, 4),
                     smallConfig(MomsConfig::shared(4)));
}

TEST(EngineEquivalence, PageRankPrivateOnly)
{
    const CooGraph g = uniformRandom(600, 4000, 5);
    expectExactMatch(g, AlgoSpec::pageRank(g, 2),
                     smallConfig(MomsConfig::privateOnly()));
}

TEST(EngineEquivalence, SccTraditionalTwoLevel)
{
    const CooGraph g = rmat(10, 5000, RmatParams{}, 11);
    expectExactMatch(g, AlgoSpec::scc(g.numNodes(), 3),
                     smallConfig(MomsConfig::traditionalTwoLevel(4)));
}

TEST(EngineEquivalence, SccDynaburstHighCrossingLatency)
{
    // The latency-bound corner the time-skip targets: long die-crossing
    // links and DynaBurst merging windows.
    const CooGraph g = rmat(10, 5000, RmatParams{}, 23);
    MomsConfig moms = MomsConfig::twoLevel(4);
    moms.dynaburst = true;
    moms.crossing_latency = 16;
    expectExactMatch(g, AlgoSpec::scc(g.numNodes(), 3),
                     smallConfig(moms));
}

TEST(EngineEquivalence, FullTickEnvOverrideForcesLegacyMode)
{
    // AccelConfig::full_tick_engine reaches the engine; the GMOMS_FULL_TICK
    // environment override takes the same path (Engine ctor), so a
    // direct setter check keeps this test hermetic.
    Engine eng;
    EXPECT_FALSE(eng.fullTick());
    eng.setFullTick(true);
    EXPECT_TRUE(eng.fullTick());
    BusyComponent busy;
    BlockedComponent blocked;
    eng.add(&busy);
    eng.add(&blocked);
    eng.runUntil([] { return false; }, 10);
    // Full tick: even "blocked" components are ticked every cycle.
    EXPECT_EQ(blocked.ticks, 10u);
    EXPECT_EQ(eng.stats().ticks_skipped, 0u);
}

} // namespace
} // namespace gmoms
