/**
 * @file
 * Tests for the FPGA resource and frequency models (Fig. 17 and the
 * frequency behaviour discussed with Figs. 11/14).
 */

#include <gtest/gtest.h>

#include "src/accel/resource_model.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

AccelConfig
config(std::uint32_t pes, std::uint32_t channels, MomsConfig moms)
{
    AccelConfig cfg;
    cfg.num_pes = pes;
    cfg.mem.channels = channels;
    cfg.moms = std::move(moms);
    return cfg;
}

AlgoSpec
spec(const char* name)
{
    CooGraph g = chain(100);
    if (std::string(name) == "PageRank")
        return AlgoSpec::pageRank(g, 10);
    if (std::string(name) == "SSSP")
        return AlgoSpec::sssp(0);
    return AlgoSpec::scc(g.numNodes());
}

TEST(ResourceModel, StandardDesignsLandInPaperBand)
{
    // The paper's shipped designs run between 196 and 227 MHz.
    for (const char* algo : {"PageRank", "SCC", "SSSP"}) {
        for (auto moms : {MomsConfig::twoLevel(16),
                          MomsConfig::shared(16),
                          MomsConfig::twoLevel(8)}) {
            const double f =
                modelFrequencyMhz(config(16, 4, moms), spec(algo));
            EXPECT_GE(f, kMinFrequencyMhz) << algo;
            EXPECT_LE(f, 250.0) << algo;
        }
    }
}

TEST(ResourceModel, MorePesLowerFrequency)
{
    const double f16 =
        modelFrequencyMhz(config(16, 4, MomsConfig::twoLevel(16)),
                          spec("SCC"));
    const double f24 =
        modelFrequencyMhz(config(24, 4, MomsConfig::twoLevel(16)),
                          spec("SCC"));
    EXPECT_GT(f16, f24);
}

TEST(ResourceModel, MoreChannelsLowerFrequency)
{
    // Fig. 14: 4-channel systems run slower than 2-channel ones due to
    // additional SLR crossings.
    const double f2 =
        modelFrequencyMhz(config(16, 2, MomsConfig::twoLevel(16)),
                          spec("PageRank"));
    const double f4 =
        modelFrequencyMhz(config(16, 4, MomsConfig::twoLevel(16)),
                          spec("PageRank"));
    EXPECT_GT(f2, f4);
}

TEST(ResourceModel, FloatingPointPageRankSlightlySlower)
{
    const AccelConfig cfg = config(16, 4, MomsConfig::twoLevel(16));
    EXPECT_LT(modelFrequencyMhz(cfg, spec("PageRank")),
              modelFrequencyMhz(cfg, spec("SCC")));
}

TEST(ResourceModel, LutsDominatedByInterconnectAndDspLow)
{
    // Fig. 17: LUTs mostly in the interconnect, DSPs underutilized.
    const ResourceBreakdown r = estimateResources(
        config(16, 4, MomsConfig::twoLevel(16)), spec("PageRank"));
    EXPECT_GT(r.interconnect.luts, r.pes.luts);
    EXPECT_GT(r.interconnect.luts, r.moms.luts);
    EXPECT_LT(r.dsp_util, 0.10);
    EXPECT_GT(r.lut_util, 0.30);
    EXPECT_LT(r.lut_util, 1.00);
}

TEST(ResourceModel, MemoriesLiveInPesAndMoms)
{
    const ResourceBreakdown r = estimateResources(
        config(16, 4, MomsConfig::twoLevel(16)), spec("SCC"));
    EXPECT_GT(r.pes.uram + r.moms.uram, r.interconnect.uram);
    EXPECT_GT(r.moms.bram36, 0);
}

TEST(ResourceModel, WeightedAlgorithmsNeedStateMemory)
{
    const AccelConfig cfg = config(16, 4, MomsConfig::twoLevel(16));
    const ResourceBreakdown sssp = estimateResources(cfg, spec("SSSP"));
    const ResourceBreakdown scc = estimateResources(cfg, spec("SCC"));
    EXPECT_GT(sssp.pes.bram36, scc.pes.bram36);
}

TEST(ResourceModel, TraditionalBanksCheaperInLogicRicherInNothing)
{
    const ResourceBreakdown moms = estimateResources(
        config(16, 4, MomsConfig::twoLevel(16)), spec("SCC"));
    const ResourceBreakdown trad = estimateResources(
        config(16, 4, MomsConfig::traditionalTwoLevel(16)),
        spec("SCC"));
    EXPECT_LT(trad.moms.luts, moms.moms.luts);
    EXPECT_LT(trad.moms.bram36, moms.moms.bram36);
}

TEST(ResourceModel, CachelessMomsSavesMemoryBits)
{
    // Fig. 15: the cache-less MOMS uses ~25% fewer memory bits.
    const AccelConfig full = config(20, 4, MomsConfig::twoLevel(8, 1024));
    AccelConfig bare = full;
    bare.moms = bare.moms.withoutCacheArrays();
    const ResourceBreakdown rf =
        estimateResources(full, spec("SCC"));
    const ResourceBreakdown rb =
        estimateResources(bare, spec("SCC"));
    EXPECT_LT(rb.moms.uram, rf.moms.uram);
}

} // namespace
} // namespace gmoms
