/**
 * @file
 * Telemetry subsystem tests: sampler windowing and decimation, stall
 * attribution exactness across engine modes, observation-only contract
 * (telemetry on/off bit-exactness), queue probes, and the Chrome
 * trace-event export (validated with the strict JSON parser).
 */

#include <gtest/gtest.h>

#include <set>

#include "src/accel/accelerator.hh"
#include "src/graph/generator.hh"
#include "src/obs/json_check.hh"
#include "src/obs/telemetry.hh"
#include "src/obs/trace_export.hh"
#include "src/sim/queue_probe.hh"

namespace gmoms
{
namespace
{

// ---------------------------------------------------------------------
// QueueProbe
// ---------------------------------------------------------------------

TEST(QueueProbe, TimeWeightedDepthHistogram)
{
    QueueProbe probe("q", 4);
    // Depth 0 for cycles [0,10), 1 for [10,14), 4 (full) for [14,20).
    probe.onChange(10, 1);
    probe.onChange(14, 4);
    probe.finalize(20);
    EXPECT_EQ(probe.highWater(), 4u);
    ASSERT_GE(probe.cyclesAtDepth().size(), 5u);
    EXPECT_EQ(probe.cyclesAtDepth()[0], 10u);
    EXPECT_EQ(probe.cyclesAtDepth()[1], 4u);
    EXPECT_EQ(probe.cyclesAtDepth()[4], 6u);
    EXPECT_EQ(probe.timeAtFull(), 6u);
    EXPECT_NEAR(probe.avgDepth(), (10 * 0 + 4 * 1 + 6 * 4) / 20.0,
                1e-12);
    // finalize() is idempotent.
    probe.finalize(20);
    EXPECT_EQ(probe.cyclesAtDepth()[4], 6u);
}

TEST(QueueProbe, SameCycleChangesCollapse)
{
    QueueProbe probe("q", 0);  // growable: no fixed capacity
    probe.onChange(5, 1);
    probe.onChange(5, 2);  // push+push within one cycle
    probe.onChange(5, 1);  // and a pop: only the last size persists
    probe.finalize(9);
    EXPECT_EQ(probe.cyclesAtDepth()[0], 5u);
    EXPECT_EQ(probe.cyclesAtDepth()[1], 4u);
    EXPECT_EQ(probe.timeAtFull(), 0u);  // growable: "full" undefined
    EXPECT_EQ(probe.highWater(), 2u);
}

// ---------------------------------------------------------------------
// Sampler: windows, decimation
// ---------------------------------------------------------------------

/** A component that bumps a counter on every tick. */
class Worker : public Component
{
  public:
    Worker() : Component("worker") {}
    void tick() override { ++work; }
    std::uint64_t work = 0;
};

TEST(Telemetry, WindowDeltasSumToCounterTotal)
{
    Engine eng;
    Worker w;
    eng.add(&w);
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.window_cycles = 16;
    Telemetry tele(eng, cfg);
    tele.addCounter("work", &w.work);
    for (int i = 0; i < 100; ++i)
        eng.tick();
    auto s = tele.finalize();
    ASSERT_EQ(s->series.size(), 1u);
    EXPECT_EQ(s->series[0], "work");
    EXPECT_DOUBLE_EQ(s->series_totals[0], 100.0);
    EXPECT_DOUBLE_EQ(s->total("work"), 100.0);
    double sum = 0;
    Cycle prev_end = 0;
    for (const auto& win : s->windows) {
        EXPECT_EQ(win.begin, prev_end);  // contiguous coverage
        prev_end = win.end;
        sum += win.values[0];
    }
    EXPECT_EQ(prev_end, 100u);  // last (partial) window closes at end
    EXPECT_DOUBLE_EQ(sum, 100.0);
}

TEST(Telemetry, DecimationBoundsWindowsAndPreservesSums)
{
    Engine eng;
    Worker w;
    eng.add(&w);
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.window_cycles = 4;
    cfg.max_windows = 8;
    Telemetry tele(eng, cfg);
    tele.addCounter("work", &w.work);
    for (int i = 0; i < 1000; ++i)
        eng.tick();
    auto s = tele.finalize();
    EXPECT_LE(s->windows.size(), 8u);
    EXPECT_GT(s->window_cycles, 4u);  // width doubled at least once
    double sum = 0;
    for (const auto& win : s->windows)
        sum += win.values[0];
    EXPECT_DOUBLE_EQ(sum, 1000.0);
    EXPECT_EQ(s->total_cycles, 1000u);
}

TEST(Telemetry, LevelSeriesSampleInstantaneousValues)
{
    Engine eng;
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.window_cycles = 10;
    // Registered before the worker so the boundary sample reads the
    // value as of the window close, before this cycle's work.
    Telemetry tele(eng, cfg);
    Worker w;
    eng.add(&w);
    // The level tracks the worker's cumulative count: each window must
    // record the value at its close, not a delta.
    tele.addLevel("level", [&] {
        return static_cast<double>(w.work);
    });
    for (int i = 0; i < 35; ++i)
        eng.tick();
    auto s = tele.finalize();
    ASSERT_GE(s->windows.size(), 3u);
    EXPECT_DOUBLE_EQ(s->windows[0].values[0], 10.0);
    EXPECT_DOUBLE_EQ(s->windows[1].values[0], 20.0);
    EXPECT_DOUBLE_EQ(s->windows[2].values[0], 30.0);
}

// ---------------------------------------------------------------------
// Whole-accelerator contracts
// ---------------------------------------------------------------------

AccelConfig
smallConfig(MomsConfig moms)
{
    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = moms;
    cfg.moms.shared_bank.num_mshrs = 128;
    cfg.moms.shared_bank.num_subentries = 2048;
    cfg.moms.shared_bank.cache_bytes = 8192;
    cfg.moms.private_bank.num_mshrs = 128;
    cfg.moms.private_bank.num_subentries = 2048;
    cfg.max_threads = 256;
    return cfg;
}

RunResult
runSmall(const CooGraph& g, AccelConfig cfg)
{
    AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 4);
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, spec);
    return accel.run();
}

TEST(Telemetry, CollectionDoesNotPerturbResults)
{
    const CooGraph g = rmat(10, 6000, RmatParams{}, 42);
    for (MomsConfig moms :
         {MomsConfig::twoLevel(4), MomsConfig::shared(4),
          MomsConfig::privateOnly()}) {
        AccelConfig off = smallConfig(moms);
        AccelConfig on = smallConfig(moms);
        on.telemetry.enabled = true;
        on.telemetry.window_cycles = 512;
        const RunResult base = runSmall(g, off);
        const RunResult instr = runSmall(g, on);
        EXPECT_EQ(base.cycles, instr.cycles);
        EXPECT_EQ(base.raw_values, instr.raw_values);
        EXPECT_EQ(base.telemetry, nullptr);
        ASSERT_NE(instr.telemetry, nullptr);
        EXPECT_EQ(instr.telemetry->total_cycles, instr.cycles);
    }
}

TEST(Telemetry, StallTotalsMatchAcrossEngineModes)
{
    const CooGraph g = rmat(10, 6000, RmatParams{}, 43);
    AccelConfig idle = smallConfig(MomsConfig::twoLevel(4));
    idle.telemetry.enabled = true;
    AccelConfig full = idle;
    full.full_tick_engine = true;
    const RunResult i = runSmall(g, idle);
    const RunResult f = runSmall(g, full);
    ASSERT_NE(i.telemetry, nullptr);
    ASSERT_NE(f.telemetry, nullptr);
    EXPECT_EQ(i.cycles, f.cycles);
    ASSERT_EQ(i.telemetry->stalls.size(), f.telemetry->stalls.size());
    for (std::size_t k = 0; k < i.telemetry->stalls.size(); ++k) {
        EXPECT_EQ(i.telemetry->stalls[k].group,
                  f.telemetry->stalls[k].group);
        EXPECT_EQ(i.telemetry->stalls[k].cause,
                  f.telemetry->stalls[k].cause);
        EXPECT_EQ(i.telemetry->stalls[k].cycles,
                  f.telemetry->stalls[k].cycles)
            << i.telemetry->stalls[k].group << "/"
            << stallCauseName(i.telemetry->stalls[k].cause);
    }
    // Sampling happens at identical cycles in both modes.
    ASSERT_EQ(i.telemetry->windows.size(),
              f.telemetry->windows.size());
    for (std::size_t wdx = 0; wdx < i.telemetry->windows.size(); ++wdx) {
        EXPECT_EQ(i.telemetry->windows[wdx].begin,
                  f.telemetry->windows[wdx].begin);
        EXPECT_EQ(i.telemetry->windows[wdx].end,
                  f.telemetry->windows[wdx].end);
    }
}

TEST(Telemetry, AttributionCoversKnownContentionPoints)
{
    const CooGraph g = rmat(10, 6000, RmatParams{}, 44);
    AccelConfig cfg = smallConfig(MomsConfig::shared(4));
    cfg.telemetry.enabled = true;
    const RunResult res = runSmall(g, cfg);
    ASSERT_NE(res.telemetry, nullptr);
    const TelemetrySummary& s = *res.telemetry;
    // A shared MOMS on an RMAT graph must observe crossbar bank
    // conflicts and DRAM row misses; phases must tile the run.
    EXPECT_GT(s.stallCycles("moms.xbar", StallCause::BankConflict), 0u);
    EXPECT_GT(s.stallCycles("dram", StallCause::RowMiss), 0u);
    EXPECT_GT(s.totalStallCycles(), 0u);
    ASSERT_NE(s.topStall(), nullptr);
    ASSERT_FALSE(s.phases.empty());
    EXPECT_EQ(s.phases.front().name, "iter0");
    EXPECT_EQ(s.phases.back().name, "drain");
    for (std::size_t p = 1; p < s.phases.size(); ++p)
        EXPECT_EQ(s.phases[p].begin, s.phases[p - 1].end);
    // Queue probes saw traffic.
    ASSERT_FALSE(s.queues.empty());
    bool any_nonempty = false;
    for (const auto& q : s.queues)
        any_nonempty |= q.high_water > 0;
    EXPECT_TRUE(any_nonempty);
    // The human-readable report names the heaviest cause.
    const std::string report = bottleneckReport(s);
    EXPECT_NE(report.find(stallCauseName(s.topStall()->cause)),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------

TEST(Telemetry, ChromeTraceIsValidAndWellFormed)
{
    const CooGraph g = rmat(9, 3000, RmatParams{}, 45);
    AccelConfig cfg = smallConfig(MomsConfig::twoLevel(4));
    cfg.telemetry.enabled = true;
    cfg.telemetry.label = "trace-test";
    const RunResult res = runSmall(g, cfg);
    ASSERT_NE(res.telemetry, nullptr);

    const std::string trace =
        chromeTraceString({res.telemetry, nullptr, res.telemetry});
    std::string error;
    const auto parsed = parseJson(trace, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_TRUE(parsed->isObject());
    const JsonValue* events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->array.empty());

    std::set<std::string> phs;
    std::set<double> pids;
    bool found_label = false;
    for (const JsonValue& ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        const JsonValue* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        phs.insert(ph->string);
        ASSERT_NE(ev.find("pid"), nullptr);
        pids.insert(ev.find("pid")->number);
        if (ph->string == "M") {
            const JsonValue* args = ev.find("args");
            ASSERT_NE(args, nullptr);
            if (args->find("name") &&
                args->find("name")->string == "trace-test")
                found_label = true;
        }
        if (ph->string == "C") {
            const JsonValue* args = ev.find("args");
            ASSERT_NE(args, nullptr);
            ASSERT_NE(args->find("value"), nullptr);
            EXPECT_TRUE(args->find("value")->isNumber());
        }
        if (ph->string == "X") {
            EXPECT_NE(ev.find("ts"), nullptr);
            EXPECT_NE(ev.find("dur"), nullptr);
        }
    }
    // Metadata, phase and counter events all present; the null run was
    // skipped, so exactly pids 1 and 3 appear.
    EXPECT_TRUE(phs.count("M"));
    EXPECT_TRUE(phs.count("X"));
    EXPECT_TRUE(phs.count("C"));
    EXPECT_TRUE(found_label);
    EXPECT_EQ(pids, (std::set<double>{1.0, 3.0}));
}

TEST(Telemetry, EmptyTraceIsStillValidJson)
{
    const std::string trace = chromeTraceString({});
    std::string error;
    const auto parsed = parseJson(trace, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue* events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_TRUE(events->array.empty());
}

} // namespace
} // namespace gmoms
