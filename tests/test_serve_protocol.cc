/**
 * @file
 * Tests for serve::Protocol (src/serve/protocol.hh): the v1 round-trip
 * compatibility contract (PR-5 bare JSON-lines clients keep working,
 * answered in the v1 wire shape), the v2 tagged-union response forms
 * (ok / error{code, problems[]} / result{...}) with echoed request_id,
 * accumulated-problems decoding and rejection, the 429 rate-limited
 * error with its retry_after_seconds hint, and request encode/decode
 * round trips (the bench client and the server share exactly this one
 * parser/serializer).
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/obs/json_check.hh"
#include "src/serve/protocol.hh"
#include "src/serve/service.hh"

namespace gmoms::serve
{
namespace
{

/** A wire-expressible (preset-based) job that runs in milliseconds. */
JobSpec
wireJob(const std::string& algo = "PageRank")
{
    JobSpec spec;
    spec.tenant = "t";
    spec.dataset = "WT";
    spec.algo = algo;
    spec.iterations = 2;
    spec.preset = "degraded";
    return spec;
}

JsonValue
parsed(const std::string& line)
{
    std::string error;
    const std::optional<JsonValue> v = parseJson(line, &error);
    EXPECT_TRUE(v.has_value()) << error << " in: " << line;
    return v ? *v : JsonValue{};
}

bool
hasKey(const JsonValue& obj, const std::string& key)
{
    return obj.find(key) != nullptr;
}

// ---------------------------------------------------------------------
// v1 compatibility: the PR-5 wire shape, bit-for-bit
// ---------------------------------------------------------------------

TEST(ProtocolV1, SubmitPollDrainQuitRoundTripCompat)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    bool quit = false;

    // A PR-5 client's literal submit line: no "v", no "request_id".
    const std::string resp = handleRequestLine(
        service,
        R"({"op":"submit","tenant":"a","dataset":"WT",)"
        R"("algo":"PageRank","preset":"degraded","iterations":2})",
        quit);
    const JsonValue sub = parsed(resp);
    EXPECT_EQ(sub.find("op")->string, "submit");
    EXPECT_TRUE(sub.find("ok")->boolean);
    const JobId id = sub.find("id")->asUint64();
    EXPECT_GE(id, 1u);
    // The v1 shape must not grow v2 fields.
    EXPECT_FALSE(hasKey(sub, "v"));
    EXPECT_FALSE(hasKey(sub, "type"));
    EXPECT_FALSE(hasKey(sub, "request_id"));

    const JsonValue drain =
        parsed(handleRequestLine(service, R"({"op":"drain"})", quit));
    EXPECT_TRUE(drain.find("ok")->boolean);
    EXPECT_EQ(drain.find("drained")->asUint64(), 1u);

    const JsonValue poll = parsed(handleRequestLine(
        service, R"({"op":"poll","id":)" + std::to_string(id) + "}",
        quit));
    EXPECT_TRUE(poll.find("ok")->boolean);
    const JsonValue* job = poll.find("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->find("state")->string, "completed");
    EXPECT_NE(job->find("values_checksum")->asUint64(), 0u);

    const JsonValue stats =
        parsed(handleRequestLine(service, R"({"op":"stats"})", quit));
    EXPECT_TRUE(stats.find("ok")->boolean);
    EXPECT_EQ(stats.find("stats")->find("submitted")->asUint64(), 1u);

    EXPECT_FALSE(quit);
    const JsonValue q =
        parsed(handleRequestLine(service, R"({"op":"quit"})", quit));
    EXPECT_TRUE(quit);
    EXPECT_TRUE(q.find("ok")->boolean);
}

TEST(ProtocolV1, ErrorShapes)
{
    GraphService service{ServiceConfig{}};
    bool quit = false;

    // Malformed JSON: op "?" + joined "error" string, ok=false.
    const JsonValue bad =
        parsed(handleRequestLine(service, "{\"broken", quit));
    EXPECT_EQ(bad.find("op")->string, "?");
    EXPECT_FALSE(bad.find("ok")->boolean);
    EXPECT_TRUE(hasKey(bad, "error"));

    // Unknown op echoes the op text.
    const JsonValue unk =
        parsed(handleRequestLine(service, R"({"op":"zap"})", quit));
    EXPECT_EQ(unk.find("op")->string, "zap");
    EXPECT_FALSE(unk.find("ok")->boolean);

    // A rejected v1 submit is NOT a protocol error: ok=false plus the
    // full "rejected" reason array (the PR-5 contract).
    const JsonValue rej = parsed(handleRequestLine(
        service,
        R"({"op":"submit","tenant":"a","dataset":"NOPE",)"
        R"("algo":"Nope"})",
        quit));
    EXPECT_FALSE(rej.find("ok")->boolean);
    const JsonValue* reasons = rej.find("rejected");
    ASSERT_NE(reasons, nullptr);
    EXPECT_GE(reasons->array.size(), 2u);  // bad dataset AND bad algo
    EXPECT_FALSE(quit);
}

// ---------------------------------------------------------------------
// v2: tagged union + request_id echo
// ---------------------------------------------------------------------

TEST(ProtocolV2, ResultErrorOkForms)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    bool quit = false;

    const JsonValue sub = parsed(handleRequestLine(
        service,
        R"({"v":2,"request_id":"q-1","op":"submit","tenant":"a",)"
        R"("dataset":"WT","algo":"PageRank","preset":"degraded",)"
        R"("iterations":2})",
        quit));
    EXPECT_EQ(sub.find("v")->asUint64(), 2u);
    EXPECT_EQ(sub.find("request_id")->string, "q-1");
    EXPECT_EQ(sub.find("type")->string, "result");
    const JsonValue* result = sub.find("result");
    ASSERT_NE(result, nullptr);
    const JobId id = result->find("id")->asUint64();
    EXPECT_GE(id, 1u);
    EXPECT_FALSE(result->find("from_cache")->boolean);
    service.drain();

    // Unknown id -> tagged error with code "not_found".
    const JsonValue nf = parsed(handleRequestLine(
        service,
        R"({"v":2,"request_id":"q-2","op":"poll","id":999})", quit));
    EXPECT_EQ(nf.find("type")->string, "error");
    EXPECT_EQ(nf.find("request_id")->string, "q-2");
    EXPECT_EQ(nf.find("error")->find("code")->string, "not_found");

    // Quit -> bare "ok" (no payload).
    const JsonValue ok = parsed(handleRequestLine(
        service, R"({"v":2,"request_id":"q-3","op":"quit"})", quit));
    EXPECT_TRUE(quit);
    EXPECT_EQ(ok.find("type")->string, "ok");
}

TEST(ProtocolV2, RequestIdIsRequired)
{
    GraphService service{ServiceConfig{}};
    bool quit = false;
    const JsonValue resp = parsed(
        handleRequestLine(service, R"({"v":2,"op":"stats"})", quit));
    EXPECT_EQ(resp.find("type")->string, "error");
    EXPECT_EQ(resp.find("error")->find("code")->string, "bad_request");
}

TEST(ProtocolV2, DecodeProblemsAccumulate)
{
    // Three independent defects -> one bad_request listing all three.
    const DecodedRequest d = decodeRequestLine(
        R"({"v":2,"request_id":7,"op":"submit","iterations":-3,)"
        R"("prep":"zip"})");
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.problems.size(), 3u)
        << "expected bad request_id + bad iterations + bad prep";
    // The version is still salvaged so the error response is v2.
    EXPECT_EQ(d.req.v, kProtocolV2);
}

TEST(ProtocolV2, RejectionAccumulatesValidationProblems)
{
    GraphService service{ServiceConfig{}};
    bool quit = false;
    const JsonValue resp = parsed(handleRequestLine(
        service,
        R"({"v":2,"request_id":"r","op":"submit","tenant":"a",)"
        R"("dataset":"NOPE","algo":"Nope","preset":"degraded"})",
        quit));
    EXPECT_EQ(resp.find("type")->string, "error");
    EXPECT_EQ(resp.find("error")->find("code")->string, "rejected");
    EXPECT_GE(resp.find("error")->find("problems")->array.size(), 2u);
}

// ---------------------------------------------------------------------
// Rate limiting on the wire: the 429 contract in both versions
// ---------------------------------------------------------------------

TEST(ProtocolRateLimit, V2RateLimitedCarriesRetryAfter)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.rate_limit_hz = 0.001;  // one token ~every 1000 s
    cfg.rate_limit_burst = 1;
    GraphService service(cfg);
    bool quit = false;

    const std::string submit =
        R"({"v":2,"request_id":"s","op":"submit","tenant":"a",)"
        R"("dataset":"WT","algo":"PageRank","preset":"degraded",)"
        R"("iterations":2})";
    const JsonValue first =
        parsed(handleRequestLine(service, submit, quit));
    EXPECT_EQ(first.find("type")->string, "result");

    const JsonValue second =
        parsed(handleRequestLine(service, submit, quit));
    EXPECT_EQ(second.find("type")->string, "error");
    const JsonValue* err = second.find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->find("code")->string, "rate_limited");
    ASSERT_NE(err->find("retry_after_seconds"), nullptr);
    EXPECT_GT(err->find("retry_after_seconds")->number, 0.0);

    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rate_limited, 1u);
    EXPECT_EQ(stats.rejected, 1u);  // 429s are a subset of rejected
    EXPECT_EQ(stats.submitted,
              stats.rejected + stats.completed + stats.degraded +
                  stats.failed);
}

TEST(ProtocolRateLimit, V1RateLimitedStaysARejection)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.rate_limit_hz = 0.001;
    cfg.rate_limit_burst = 1;
    GraphService service(cfg);
    bool quit = false;

    const std::string submit =
        R"({"op":"submit","tenant":"a","dataset":"WT",)"
        R"("algo":"PageRank","preset":"degraded","iterations":2})";
    parsed(handleRequestLine(service, submit, quit));
    const JsonValue second =
        parsed(handleRequestLine(service, submit, quit));
    // v1 has no error codes: a 429 renders as the PR-5 rejection shape
    // plus the retry hint.
    EXPECT_FALSE(second.find("ok")->boolean);
    ASSERT_NE(second.find("rejected"), nullptr);
    EXPECT_GT(second.find("retry_after_seconds")->number, 0.0);
    service.drain();
}

// ---------------------------------------------------------------------
// Request encode/decode round trip (the client half)
// ---------------------------------------------------------------------

TEST(ProtocolCodec, SubmitRequestRoundTripsEveryField)
{
    Request req;
    req.v = kProtocolV2;
    req.request_id = "abc-123";
    req.verb = Verb::Submit;
    req.spec = wireJob("SSSP");
    req.spec.prep = Preprocessing::Hash;
    req.spec.source = 17;
    req.spec.priority = 2;
    req.spec.cycle_budget = 5000;
    req.spec.max_retries = 3;
    req.spec.checks = false;
    req.spec.telemetry = true;
    req.spec.boards = 2;
    req.spec.cluster_mode = "async";
    req.spec.cluster_partitioner = "round-robin";

    const DecodedRequest d =
        decodeRequestLine(encodeRequestLine(req));
    ASSERT_TRUE(d.ok()) << (d.problems.empty() ? ""
                                               : d.problems.front());
    EXPECT_EQ(d.req.v, kProtocolV2);
    EXPECT_EQ(d.req.request_id, "abc-123");
    EXPECT_EQ(d.req.verb, Verb::Submit);
    const JobSpec& s = d.req.spec;
    EXPECT_EQ(s.tenant, "t");
    EXPECT_EQ(s.dataset, "WT");
    EXPECT_EQ(s.algo, "SSSP");
    EXPECT_EQ(s.prep, Preprocessing::Hash);
    EXPECT_EQ(s.iterations, 2u);
    EXPECT_EQ(s.source, 17u);
    EXPECT_EQ(s.preset, "degraded");
    EXPECT_EQ(s.priority, 2u);
    EXPECT_EQ(s.cycle_budget, 5000u);
    EXPECT_EQ(s.max_retries, 3u);
    EXPECT_FALSE(s.checks);
    EXPECT_TRUE(s.telemetry);
    EXPECT_EQ(s.boards, 2u);
    EXPECT_EQ(s.cluster_mode, "async");
    EXPECT_EQ(s.cluster_partitioner, "round-robin");
}

TEST(ProtocolCodec, V1RequestsOmitVersioning)
{
    Request req;
    req.verb = Verb::Poll;
    req.poll_id = 42;
    const std::string line = encodeRequestLine(req);
    const JsonValue obj = parsed(line);
    EXPECT_FALSE(hasKey(obj, "v"));
    EXPECT_FALSE(hasKey(obj, "request_id"));
    const DecodedRequest d = decodeRequestLine(line);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.req.v, kProtocolV1);
    EXPECT_EQ(d.req.poll_id, 42u);
}

} // namespace
} // namespace gmoms::serve
