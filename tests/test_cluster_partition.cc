/**
 * @file
 * Tests for the cluster edge-cut partitioner: invariants of the
 * board-local id spaces, owner/ghost translation, export lists, and the
 * adversarial shapes (empty shards, isolated vertices, all-edges-cut
 * graphs) the driver must survive.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/cluster/partitioner.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

ClusterConfig
cluster(std::uint32_t boards,
        ClusterConfig::Partitioner part =
            ClusterConfig::Partitioner::BlockEdges)
{
    ClusterConfig cc;
    cc.boards = boards;
    cc.partitioner = part;
    return cc;
}

/** Every structural invariant the rest of the subsystem leans on. */
void
checkInvariants(const CooGraph& g, std::uint32_t nd,
                const ClusterPartition& cp)
{
    const std::uint32_t boards = cp.boards();
    EdgeId edges_seen = 0;
    NodeId owned_seen = 0;

    for (std::uint32_t b = 0; b < boards; ++b) {
        const BoardShard& sh = cp.shard(b);
        edges_seen += sh.local_edges;
        owned_seen += sh.num_owned;

        // Owned intervals are ascending and nd-aligned locally; only
        // the globally-last interval may be short.
        for (std::size_t k = 0; k + 1 < sh.intervals.size(); ++k)
            EXPECT_LT(sh.intervals[k], sh.intervals[k + 1]);
        if (sh.num_ghosts > 0) {
            EXPECT_EQ(sh.ghost_base % nd, 0u);
            EXPECT_GE(sh.ghost_base, sh.num_owned);
        }

        // Id maps round-trip: owned and ghost slots carry real global
        // ids; padding slots carry none.
        EXPECT_EQ(sh.to_global.size(), sh.ghost_base + sh.num_ghosts);
        for (NodeId local = 0; local < sh.to_global.size(); ++local) {
            const NodeId global = sh.to_global[local];
            if (local >= sh.num_owned && local < sh.ghost_base) {
                EXPECT_EQ(global, kNoGlobalId);
                continue;
            }
            ASSERT_NE(global, kNoGlobalId);
            EXPECT_EQ(cp.localId(b, global), local);
            EXPECT_EQ(cp.globalId(b, local), global);
            if (local < sh.num_owned)
                EXPECT_EQ(cp.ownerOfNode(global), b);
            else
                EXPECT_NE(cp.ownerOfNode(global), b);
        }

        // The local graph's edges: destination owned, source owned or
        // ghost (never padding), cut iff the source is a ghost.
        EdgeId cut = 0;
        for (const Edge& e : sh.local.edges()) {
            EXPECT_LT(e.dst, sh.num_owned);
            EXPECT_NE(sh.to_global[e.src], kNoGlobalId);
            if (e.src >= sh.ghost_base)
                ++cut;
            else
                EXPECT_LT(e.src, sh.num_owned);
        }
        EXPECT_EQ(cut, sh.cut_edges);
        EXPECT_EQ(sh.local.numEdges(), sh.local_edges);
    }

    // Edge conservation and node coverage.
    EXPECT_EQ(edges_seen, g.numEdges());
    EXPECT_EQ(owned_seen, g.numNodes());

    // Export lists mirror the ghost sets exactly.
    NodeId ghosts_seen = 0;
    for (std::uint32_t p = 0; p < boards; ++p) {
        const BoardShard& sh = cp.shard(p);
        ghosts_seen += sh.num_ghosts;
        std::set<NodeId> ghosts;
        for (NodeId local = sh.ghost_base;
             local < sh.ghost_base + sh.num_ghosts; ++local)
            ghosts.insert(sh.to_global[local]);
        std::set<NodeId> exported;
        for (std::uint32_t b = 0; b < boards; ++b) {
            for (NodeId global : cp.exportsTo(b, p)) {
                EXPECT_EQ(cp.ownerOfNode(global), b);
                EXPECT_TRUE(exported.insert(global).second)
                    << "node exported twice to board " << p;
            }
        }
        EXPECT_EQ(exported, ghosts) << "board " << p;
    }
    EXPECT_EQ(ghosts_seen, cp.totalGhosts());
}

TEST(ClusterPartition, RandomGraphInvariantsAcrossShapes)
{
    const CooGraph g = rmat(10, 8000, RmatParams{}, 21);
    for (std::uint32_t boards : {2u, 3u, 4u, 8u})
        for (auto part : {ClusterConfig::Partitioner::BlockEdges,
                          ClusterConfig::Partitioner::RoundRobin}) {
            const ClusterPartition cp(g, 128, cluster(boards, part));
            checkInvariants(g, 128, cp);
        }
}

TEST(ClusterPartition, TinyGraphLeavesLateBoardsEmpty)
{
    // One destination interval total: boards 1..7 own nothing.
    CooGraph g(50);
    for (NodeId i = 0; i + 1 < 50; ++i)
        g.addEdge(i, i + 1);
    const ClusterPartition cp(g, 128, cluster(8));
    checkInvariants(g, 128, cp);
    EXPECT_FALSE(cp.shard(0).empty());
    EXPECT_EQ(cp.shard(0).num_owned, 50u);
    EXPECT_EQ(cp.shard(0).num_ghosts, 0u);
    for (std::uint32_t b = 1; b < 8; ++b) {
        EXPECT_TRUE(cp.shard(b).empty());
        EXPECT_EQ(cp.shard(b).local_edges, 0u);
    }
}

TEST(ClusterPartition, IsolatedVerticesAreOwnedButNeverGhosted)
{
    // Edges only among the first 64 nodes; the rest are isolated and
    // must still be owned by exactly one board (value arrays cover
    // them) without ever appearing in an export list.
    CooGraph g(1000);
    for (NodeId i = 0; i < 64; ++i)
        g.addEdge(i, (i * 7 + 1) % 64);
    const ClusterPartition cp(g, 64, cluster(4));
    checkInvariants(g, 64, cp);
    for (NodeId n = 64; n < 1000; ++n) {
        const std::uint32_t owner = cp.ownerOfNode(n);
        for (std::uint32_t b = 0; b < 4; ++b)
            if (b != owner)
                EXPECT_EQ(cp.localId(b, n), kNoLocalId);
    }
    EXPECT_EQ(cp.totalGhosts(), 0u)
        << "edges stay inside interval-0 neighborhoods";
}

TEST(ClusterPartition, AllEdgesCutAdversarialGraph)
{
    // Round-robin over nd-sized intervals with every edge crossing an
    // interval boundary: no edge may stay local.
    const std::uint32_t nd = 32;
    CooGraph g(4 * nd);
    for (NodeId i = 0; i < nd; ++i)
        for (std::uint32_t j = 1; j < 4; ++j)
            g.addEdge(i, j * nd + i);
    const ClusterPartition cp(
        g, nd, cluster(4, ClusterConfig::Partitioner::RoundRobin));
    checkInvariants(g, nd, cp);
    EXPECT_EQ(cp.totalCutEdges(), g.numEdges());
    for (std::uint32_t b = 1; b < 4; ++b)
        EXPECT_EQ(cp.shard(b).cut_edges, cp.shard(b).local_edges);
}

TEST(ClusterPartition, ShortLastIntervalPadsGhostBase)
{
    // 3 intervals of nd=64 plus a short tail of 10 nodes. Round-robin
    // on 2 boards puts intervals {0,2} on board 0 and {1,3-short} on
    // board 1; cross edges force ghosts on both.
    const std::uint32_t nd = 64;
    CooGraph g(3 * nd + 10);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        g.addEdge(i, (i + nd) % g.numNodes());
    const ClusterPartition cp(
        g, nd, cluster(2, ClusterConfig::Partitioner::RoundRobin));
    checkInvariants(g, nd, cp);
    const BoardShard& tail = cp.shard(1);
    ASSERT_GT(tail.num_ghosts, 0u);
    // Owned 64 + 10 = 74 nodes; ghosts must start at the next interval
    // boundary (128), leaving padding slots in between.
    EXPECT_EQ(tail.num_owned, 74u);
    EXPECT_EQ(tail.ghost_base, 128u);
}

TEST(ClusterPartition, BlockEdgesBalancesBetterThanWorstCase)
{
    // A skewed rmat: block-edges must keep the per-board edge load
    // within a sane factor of perfect balance.
    const CooGraph g = rmat(11, 30000, RmatParams{}, 5);
    const ClusterPartition cp(g, 128, cluster(4));
    checkInvariants(g, 128, cp);
    EXPECT_LT(cp.edgeBalance(), 2.5);
    EXPECT_GE(cp.edgeBalance(), 1.0);
}

TEST(ClusterPartition, WeightsSurviveIntoLocalGraphs)
{
    CooGraph g = uniformRandom(600, 4000, 9);
    addRandomWeights(g, 123);
    const ClusterPartition cp(g, 64, cluster(3));
    checkInvariants(g, 64, cp);
    // Sum of weights is conserved (every edge lands exactly once).
    std::uint64_t want = 0, got = 0;
    for (const Edge& e : g.edges())
        want += e.weight;
    for (std::uint32_t b = 0; b < 3; ++b) {
        EXPECT_TRUE(cp.shard(b).local.weighted());
        for (const Edge& e : cp.shard(b).local.edges())
            got += e.weight;
    }
    EXPECT_EQ(got, want);
}

} // namespace
} // namespace gmoms
