/**
 * @file
 * FlatMap and RingDeque — the hot-path replacements for
 * std::unordered_map and std::deque — pinned against the standard
 * containers they replaced, including the capacity-boundary,
 * wraparound and erase-reinsert regimes the simulator exercises.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/sim/flat_map.hh"
#include "src/sim/ring_deque.hh"
#include "src/sim/rng.hh"

namespace gmoms
{
namespace
{

// ---------------------------------------------------------------- FlatMap

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> map(4);
    EXPECT_TRUE(map.empty());
    auto [v, inserted] = map.tryEmplace(42, 7);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, 7);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.contains(42));
    EXPECT_FALSE(map.contains(43));

    auto [v2, inserted2] = map.tryEmplace(42, 99);
    EXPECT_FALSE(inserted2);  // existing value is kept
    EXPECT_EQ(*v2, 7);

    EXPECT_TRUE(map.erase(42));
    EXPECT_FALSE(map.erase(42));
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap, OperatorBracketDefaultConstructs)
{
    FlatMap<int, std::uint64_t> map;
    EXPECT_EQ(map[5], 0u);
    map[5] = 17;
    EXPECT_EQ(map[5], 17u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, FillToSizingHintDoesNotGrow)
{
    // The PE sizes edge_pending_ at max_edge_bursts; filling exactly
    // that many entries must not reallocate (steady-state guarantee).
    FlatMap<std::uint64_t, int> map(16);
    const std::size_t cap = map.capacity();
    ASSERT_GE(cap, 16u);
    for (std::uint64_t k = 0; k < 16; ++k)
        map.tryEmplace(k * 0x10000, static_cast<int>(k));
    EXPECT_EQ(map.capacity(), cap);
    for (std::uint64_t k = 0; k < 16; ++k) {
        const int* v = map.find(k * 0x10000);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, static_cast<int>(k));
    }
}

TEST(FlatMap, GrowsPastTheHintWithoutLosingEntries)
{
    FlatMap<std::uint32_t, std::uint32_t> map(4);
    for (std::uint32_t k = 0; k < 1000; ++k)
        map.tryEmplace(k, k * k);
    EXPECT_EQ(map.size(), 1000u);
    for (std::uint32_t k = 0; k < 1000; ++k) {
        const std::uint32_t* v = map.find(k);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k * k);
    }
}

TEST(FlatMap, EraseReinsertChurnAtFixedCapacity)
{
    // The burst-tag regime: monotonically increasing keys, bounded
    // live set — erase and reinsert must never corrupt probe chains.
    FlatMap<std::uint64_t, std::uint64_t> map(8);
    std::uint64_t next_key = 0;
    std::vector<std::uint64_t> live;
    for (int round = 0; round < 5000; ++round) {
        if (live.size() < 8) {
            map.tryEmplace(next_key, next_key * 3);
            live.push_back(next_key);
            ++next_key;
        }
        if (live.size() == 8 || round % 3 == 0) {
            if (!live.empty()) {
                EXPECT_TRUE(map.erase(live.front()));
                live.erase(live.begin());
            }
        }
        EXPECT_EQ(map.size(), live.size());
        for (std::uint64_t k : live) {
            const std::uint64_t* v = map.find(k);
            ASSERT_NE(v, nullptr);
            EXPECT_EQ(*v, k * 3);
        }
    }
}

TEST(FlatMap, RandomizedParityWithUnorderedMap)
{
    FlatMap<std::uint32_t, std::uint32_t> map(8);
    std::unordered_map<std::uint32_t, std::uint32_t> ref;
    Rng rng(1234);
    for (int op = 0; op < 20000; ++op) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(rng.below(256));
        switch (rng.below(3)) {
          case 0: {  // tryEmplace
            const std::uint32_t value =
                static_cast<std::uint32_t>(rng.next());
            auto [v, inserted] = map.tryEmplace(key, value);
            auto [it, ref_inserted] = ref.try_emplace(key, value);
            EXPECT_EQ(inserted, ref_inserted);
            EXPECT_EQ(*v, it->second);
            break;
          }
          case 1:  // erase
            EXPECT_EQ(map.erase(key), ref.erase(key) == 1);
            break;
          default: {  // find
            const std::uint32_t* v = map.find(key);
            auto it = ref.find(key);
            EXPECT_EQ(v != nullptr, it != ref.end());
            if (v != nullptr && it != ref.end()) {
                EXPECT_EQ(*v, it->second);
            }
            break;
          }
        }
        EXPECT_EQ(map.size(), ref.size());
    }
    // Final sweep: forEach visits every entry exactly once.
    std::map<std::uint32_t, std::uint32_t> seen;
    map.forEach([&](std::uint32_t k, std::uint32_t v) {
        EXPECT_TRUE(seen.emplace(k, v).second);
    });
    EXPECT_EQ(seen.size(), ref.size());
    for (const auto& [k, v] : seen)
        EXPECT_EQ(ref.at(k), v);
}

TEST(FlatMap, ClearEmptiesAndStaysUsable)
{
    FlatMap<int, int> map;
    for (int k = 0; k < 50; ++k)
        map.tryEmplace(k, k);
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(7));
    map.tryEmplace(7, 70);
    EXPECT_EQ(*map.find(7), 70);
}

// -------------------------------------------------------------- RingDeque

TEST(RingDeque, FifoBasics)
{
    RingDeque<int> q;
    EXPECT_TRUE(q.empty());
    q.push_back(1);
    q.push_back(2);
    q.emplace_back(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    EXPECT_EQ(q[1], 2);
    q.pop_front();
    EXPECT_EQ(q.front(), 2);
    q.pop_front();
    q.pop_front();
    EXPECT_TRUE(q.empty());
}

TEST(RingDeque, WraparoundAtFixedCapacityDoesNotGrow)
{
    RingDeque<int> q(4);
    const std::size_t cap = q.capacity();
    // Push/pop churn far past the capacity: head wraps repeatedly but
    // the buffer never reallocates while size stays <= capacity.
    for (int i = 0; i < 1000; ++i) {
        q.push_back(i);
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_EQ(q.capacity(), cap);
    EXPECT_TRUE(q.empty());
}

TEST(RingDeque, GrowsMidWrapPreservingOrder)
{
    RingDeque<int> q(4);
    // Misalign head first, then force growth with a wrapped layout.
    q.push_back(-1);
    q.push_back(-2);
    q.pop_front();
    q.pop_front();
    for (int i = 0; i < 37; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 37u);
    for (int i = 0; i < 37; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
}

TEST(RingDeque, RandomizedParityWithStdDeque)
{
    RingDeque<std::uint64_t> q(2);
    std::deque<std::uint64_t> ref;
    Rng rng(99);
    for (int op = 0; op < 20000; ++op) {
        if (ref.empty() || rng.below(2) == 0) {
            const std::uint64_t v = rng.next();
            q.push_back(v);
            ref.push_back(v);
        } else {
            q.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(q.size(), ref.size());
        if (!ref.empty()) {
            EXPECT_EQ(q.front(), ref.front());
            EXPECT_EQ(q.back(), ref.back());
            const std::size_t i = rng.below(ref.size());
            EXPECT_EQ(q[i], ref[i]);
        }
    }
}

TEST(RingDeque, ClearEmptiesAndStaysUsable)
{
    RingDeque<int> q;
    for (int i = 0; i < 20; ++i)
        q.push_back(i);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push_back(5);
    EXPECT_EQ(q.front(), 5);
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace gmoms
