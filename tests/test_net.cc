/**
 * @file
 * Tests for the epoll TCP front end (src/net/tcp_server.hh) and its
 * blocking client (src/net/line_client.hh): accept/serve/shutdown on an
 * ephemeral port, the full serve protocol over a socket (v1 and v2),
 * pipelined requests answered in order, the structured over-limit
 * refusal, oversized-frame kill of a single connection, graceful
 * drain-and-exit on a quit request, and the per-layer latency
 * breakdown. Skipped on non-Linux hosts where start() reports the
 * stubbed backend.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/net/line_client.hh"
#include "src/net/tcp_server.hh"
#include "src/obs/json_check.hh"
#include "src/serve/protocol.hh"
#include "src/serve/service.hh"

namespace gmoms::net
{
namespace
{

using serve::GraphService;
using serve::ServiceConfig;

/** start() the server or skip the test on stubbed (non-Linux) builds. */
#define START_OR_SKIP(server)                                          \
    do {                                                               \
        std::string error_;                                            \
        if (!(server).start(&error_))                                  \
            GTEST_SKIP() << error_;                                    \
    } while (0)

TcpServerConfig
loopback(std::size_t max_conns = 256)
{
    TcpServerConfig cfg;
    cfg.port = 0;  // ephemeral
    cfg.max_connections = max_conns;
    return cfg;
}

/** The gmoms_serve TCP handler, minus main(): one shared protocol. */
TcpServer::Handler
serviceHandler(GraphService& service)
{
    return [&service](const std::string& line) {
        HandlerResult out;
        bool quit = false;
        out.line = serve::handleRequestLine(service, line, quit);
        out.shutdown_server = quit;
        return out;
    };
}

JsonValue
parsed(const std::optional<std::string>& line)
{
    EXPECT_TRUE(line.has_value()) << "connection closed unexpectedly";
    if (!line)
        return JsonValue{};
    std::string error;
    const std::optional<JsonValue> v = parseJson(*line, &error);
    EXPECT_TRUE(v.has_value()) << error << " in: " << *line;
    return v ? *v : JsonValue{};
}

const std::string kSubmitV2Prefix =
    R"({"v":2,"op":"submit","tenant":"t","dataset":"WT",)"
    R"("algo":"PageRank","preset":"degraded","iterations":2,)"
    R"("request_id":)";

std::string
submitLine(const std::string& request_id)
{
    return kSubmitV2Prefix + "\"" + request_id + "\"}";
}

TEST(TcpServer, EchoRoundTripAndStats)
{
    TcpServer server(loopback(), [](const std::string& line) {
        HandlerResult out;
        out.line = "echo:" + line;
        return out;
    });
    START_OR_SKIP(server);
    ASSERT_NE(server.port(), 0);
    EXPECT_TRUE(server.running());

    LineClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    EXPECT_EQ(client.roundTrip("hello").value_or(""), "echo:hello");
    EXPECT_EQ(client.roundTrip("again").value_or(""), "echo:again");
    client.close();

    server.shutdown(/*drain=*/true);
    server.waitUntilStopped();
    EXPECT_FALSE(server.running());

    const TcpServer::Stats stats = server.stats();
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.responses, 2u);
    EXPECT_EQ(stats.active, 0u);
    EXPECT_EQ(stats.peak_active, 1u);
    EXPECT_GT(stats.bytes_in, 0u);
    EXPECT_GT(stats.bytes_out, 0u);
    // Every handled request recorded a net_handle latency sample.
    const LatencyStats* handle = stats.latency.find("net_handle");
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(handle->count(), 2u);
}

TEST(TcpServer, ServesTheProtocolV2)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    TcpServer server(loopback(), serviceHandler(service));
    START_OR_SKIP(server);

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    const JsonValue sub = parsed(client.roundTrip(submitLine("q0")));
    EXPECT_EQ(sub.find("type")->string, "result");
    EXPECT_EQ(sub.find("request_id")->string, "q0");
    const serve::JobId id = sub.find("result")->find("id")->asUint64();

    const JsonValue drain = parsed(client.roundTrip(
        R"({"v":2,"request_id":"q1","op":"drain"})"));
    EXPECT_EQ(drain.find("type")->string, "result");

    const JsonValue poll = parsed(client.roundTrip(
        R"({"v":2,"request_id":"q2","op":"poll","id":)" +
        std::to_string(id) + "}"));
    EXPECT_EQ(poll.find("type")->string, "result");
    const JsonValue* job = poll.find("result")->find("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->find("state")->string, "completed");
    EXPECT_NE(job->find("values_checksum")->asUint64(), 0u);
}

TEST(TcpServer, ServesV1ClientsUnchanged)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    TcpServer server(loopback(), serviceHandler(service));
    START_OR_SKIP(server);

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    const JsonValue resp = parsed(client.roundTrip(
        R"({"op":"submit","tenant":"t","dataset":"WT",)"
        R"("algo":"PageRank","preset":"degraded","iterations":2})"));
    EXPECT_EQ(resp.find("op")->string, "submit");
    EXPECT_TRUE(resp.find("ok")->boolean);
    EXPECT_EQ(resp.find("v"), nullptr);
    EXPECT_EQ(resp.find("type"), nullptr);
    service.drain();
}

TEST(TcpServer, PipelinedRequestsAnswerInOrder)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    TcpServer server(loopback(), serviceHandler(service));
    START_OR_SKIP(server);

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    // The whole burst goes out before any response is read: framing
    // must slice the shared byte stream back into per-request lines,
    // answered in arrival order.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(client.sendLine(submitLine("q" + std::to_string(i))));
    for (int i = 0; i < 8; ++i) {
        const JsonValue resp = parsed(client.recvLine());
        EXPECT_EQ(resp.find("request_id")->string,
                  "q" + std::to_string(i));
        EXPECT_EQ(resp.find("type")->string, "result");
    }
    service.drain();
    EXPECT_EQ(server.stats().requests, 8u);
}

TEST(TcpServer, OverLimitConnectionGetsStructuredRefusal)
{
    TcpServer server(loopback(/*max_conns=*/1),
                     [](const std::string&) {
                         HandlerResult out;
                         out.line = "{}";
                         return out;
                     });
    START_OR_SKIP(server);

    LineClient first;
    ASSERT_TRUE(first.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(first.roundTrip("x").has_value());  // definitely accepted

    LineClient second;
    ASSERT_TRUE(second.connect("127.0.0.1", server.port()));
    const JsonValue refusal = parsed(second.recvLine());
    EXPECT_EQ(refusal.find("type")->string, "error");
    EXPECT_EQ(refusal.find("error")->find("code")->string,
              "overloaded");
    EXPECT_FALSE(second.recvLine().has_value());  // then EOF

    // The first connection is unaffected.
    EXPECT_TRUE(first.roundTrip("y").has_value());
    const TcpServer::Stats stats = server.stats();
    EXPECT_EQ(stats.rejected_over_limit, 1u);
    EXPECT_EQ(stats.accepted, 1u);
}

TEST(TcpServer, OversizedFrameKillsOnlyThatConnection)
{
    TcpServerConfig cfg = loopback();
    cfg.max_line_bytes = 64;
    TcpServer server(cfg, [](const std::string&) {
        HandlerResult out;
        out.line = "{}";
        return out;
    });
    START_OR_SKIP(server);

    LineClient good;
    ASSERT_TRUE(good.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(good.roundTrip("ok").has_value());

    LineClient flood;
    ASSERT_TRUE(flood.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(flood.sendLine(std::string(1024, 'x')));
    EXPECT_FALSE(flood.recvLine().has_value());  // killed, no response

    EXPECT_TRUE(good.roundTrip("still fine").has_value());
    const TcpServer::Stats stats = server.stats();
    EXPECT_EQ(stats.frame_overruns, 1u);
    EXPECT_EQ(stats.requests, 2u);  // the flood never became a request
}

TEST(TcpServer, QuitDrainsAndExitsClean)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);
    TcpServer server(loopback(), serviceHandler(service));
    START_OR_SKIP(server);

    LineClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(client.sendLine(submitLine("q" + std::to_string(i))));
    ASSERT_TRUE(
        client.sendLine(R"({"v":2,"request_id":"bye","op":"quit"})"));
    // Every pipelined response, including the quit ack, reaches the
    // client before the server closes the connection.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(parsed(client.recvLine()).find("type")->string,
                  "result");
    const JsonValue bye = parsed(client.recvLine());
    EXPECT_EQ(bye.find("request_id")->string, "bye");
    EXPECT_EQ(bye.find("type")->string, "ok");

    server.waitUntilStopped();
    EXPECT_FALSE(server.running());
    const TcpServer::Stats stats = server.stats();
    EXPECT_EQ(stats.active, 0u);
    EXPECT_EQ(stats.requests, stats.responses);
    EXPECT_EQ(stats.requests, 4u);

    // The admitted jobs survive the front end going away.
    service.drain();
    const auto log = service.completionLog();
    EXPECT_EQ(log.size(), 3u);
}

TEST(LineClient, ConnectFailureReportsError)
{
    LineClient client;
    std::string error;
    // Port 1 on loopback: nothing listens there in the sandbox.
    EXPECT_FALSE(client.connect("127.0.0.1", 1, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(client.connected());
}

} // namespace
} // namespace gmoms::net
