/**
 * @file
 * Property-based and stress tests: correctness must survive any
 * combination of partition geometry, topology, structure sizes (down
 * to pathological minima) and random seeds. These are the
 * failure-injection tests: tiny queues, tiny MSHR files and tiny
 * subentry pools force every stall path to fire while results must
 * remain exact.
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/algo/golden.hh"
#include "src/algo/reference.hh"
#include "src/graph/generator.hh"
#include "src/graph/reorder.hh"

namespace gmoms
{
namespace
{

// ---------------------------------------------------------------------
// Reference executor: geometry invariance.
// ---------------------------------------------------------------------

struct Geometry
{
    std::uint32_t nd, ns;
};

class GeometryInvariance : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(GeometryInvariance, SccFixpointIndependentOfPartitioning)
{
    CooGraph g = rmat(10, 5000, RmatParams{}, 99);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    PartitionedGraph pg(g, GetParam().nd, GetParam().ns);
    ReferenceResult res = runReference(pg, spec);
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    EXPECT_EQ(res.raw_values, golden);
}

TEST_P(GeometryInvariance, PageRankIndependentOfPartitioning)
{
    CooGraph g = uniformRandom(700, 4000, 41);
    AlgoSpec spec = AlgoSpec::pageRank(g, 6);
    PartitionedGraph pg(g, GetParam().nd, GetParam().ns);
    ReferenceResult res = runReference(pg, spec);
    std::vector<double> golden = goldenPageRank(g, 6);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_NEAR(res.value(spec, i), golden[i],
                    1e-4 * golden[i] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryInvariance,
    ::testing::Values(Geometry{64, 64}, Geometry{64, 128},
                      Geometry{128, 512}, Geometry{1024, 2048},
                      Geometry{100, 300}, Geometry{32768, 65536}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
        return "nd" + std::to_string(info.param.nd) + "_ns" +
               std::to_string(info.param.ns);
    });

// ---------------------------------------------------------------------
// Relabeling invariance: a permutation must permute results.
// ---------------------------------------------------------------------

TEST(Properties, SsspInvariantUnderRelabeling)
{
    CooGraph g = uniformRandom(400, 4000, 7);
    addRandomWeights(g, 9);
    auto perm = randomPermutation(g.numNodes(), 21);
    CooGraph r = g.relabeled(perm);

    auto dist_g = goldenSssp(g, 5);
    auto dist_r = goldenSssp(r, perm[5]);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(dist_g[i], dist_r[perm[i]]);

    // And the reference executor agrees on the relabeled graph.
    PartitionedGraph pg(r, 64, 128);
    AlgoSpec spec = AlgoSpec::sssp(perm[5]);
    ReferenceResult res = runReference(pg, spec);
    EXPECT_EQ(res.raw_values, dist_r);
}

TEST(Properties, PageRankMassConservedUnderPreprocessing)
{
    CooGraph g = uniformRandom(600, 6000, 13);
    auto od = g.outDegrees();
    for (NodeId i = 0; i < g.numNodes(); ++i)
        if (od[i] == 0)
            g.addEdge(i, (i + 7) % g.numNodes());
    for (Preprocessing p : {Preprocessing::None, Preprocessing::Hash,
                            Preprocessing::Dbg,
                            Preprocessing::DbgHash}) {
        CooGraph r = applyPreprocessing(g, p, 128);
        AlgoSpec spec = AlgoSpec::pageRank(r, 8);
        PartitionedGraph pg(r, 128, 256);
        ReferenceResult res = runReference(pg, spec);
        double sum = 0;
        for (NodeId i = 0; i < r.numNodes(); ++i)
            sum += res.value(spec, i);
        EXPECT_NEAR(sum, 1.0, 0.01) << preprocessingName(p);
    }
}

// ---------------------------------------------------------------------
// Failure injection: pathologically small structures.
// ---------------------------------------------------------------------

struct TinyConfig
{
    const char* name;
    std::uint32_t mshrs;
    std::uint32_t subentries;
    std::uint32_t queue_depth;
    std::uint32_t max_threads;
};

class TinyStructures : public ::testing::TestWithParam<TinyConfig>
{
};

TEST_P(TinyStructures, AcceleratorStaysCorrectUnderExtremePressure)
{
    const TinyConfig& tc = GetParam();
    CooGraph g = rmat(9, 4000, RmatParams{}, 31);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());

    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(2);
    for (MomsBankConfig* b :
         {&cfg.moms.shared_bank, &cfg.moms.private_bank}) {
        b->num_mshrs = tc.mshrs;
        b->mshr_tables = 2;
        b->num_subentries = tc.subentries;
        b->req_queue_depth = tc.queue_depth;
        b->resp_queue_depth = tc.queue_depth;
        b->cache_bytes = 0;
    }
    cfg.max_threads = tc.max_threads;
    cfg.max_edge_bursts = 1;

    PartitionedGraph pg(g, 128, 256);
    Accelerator accel(cfg, pg, spec);
    RunResult res = accel.run();
    EXPECT_EQ(res.raw_values, goldenMinLabel(g)) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, TinyStructures,
    ::testing::Values(
        TinyConfig{"tiny_mshr", 4, 64, 4, 64},
        TinyConfig{"tiny_subentries", 64, 8, 4, 64},
        TinyConfig{"tiny_queues", 64, 64, 1, 64},
        TinyConfig{"single_thread_slots", 64, 64, 4, 2},
        TinyConfig{"everything_tiny", 4, 8, 1, 2}),
    [](const ::testing::TestParamInfo<TinyConfig>& info) {
        return info.param.name;
    });

// ---------------------------------------------------------------------
// Seed sweeps: many random graphs through the full timed system.
// ---------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, TimedSsspMatchesGolden)
{
    CooGraph g = uniformRandom(600, 5000, GetParam());
    addRandomWeights(g, GetParam() ^ 0x5555);
    AlgoSpec spec = AlgoSpec::sssp(static_cast<NodeId>(GetParam() % 600));
    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(4);
    PartitionedGraph pg(g, 128, 256);
    Accelerator accel(cfg, pg, spec);
    RunResult res = accel.run();
    EXPECT_EQ(res.raw_values,
              goldenSssp(g, static_cast<NodeId>(GetParam() % 600)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// Degenerate graphs.
// ---------------------------------------------------------------------

TEST(Properties, EmptyEdgeSetConvergesImmediately)
{
    CooGraph g(100);  // no edges at all
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    PartitionedGraph pg(g, 64, 128);
    AccelConfig cfg;
    cfg.num_pes = 2;
    cfg.mem.channels = 1;
    cfg.moms = MomsConfig::twoLevel(1);
    Accelerator accel(cfg, pg, spec);
    RunResult res = accel.run();
    EXPECT_EQ(res.iterations, 1u);
    for (NodeId i = 0; i < 100; ++i)
        EXPECT_EQ(res.raw_values[i], i);
}

TEST(Properties, SelfLoopsAndDuplicateEdgesAreHarmless)
{
    CooGraph g(50);
    for (NodeId i = 0; i < 50; ++i) {
        g.addEdge(i, i);          // self loop
        g.addEdge(i, (i + 1) % 50);
        g.addEdge(i, (i + 1) % 50);  // duplicate
    }
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    PartitionedGraph pg(g, 32, 64);
    ReferenceResult res = runReference(pg, spec);
    for (NodeId i = 0; i < 50; ++i)
        EXPECT_EQ(res.raw_values[i], 0u);  // ring collapses to 0
}

TEST(Properties, SingleNodeGraph)
{
    CooGraph g(1);
    g.addEdge(0, 0);
    AlgoSpec spec = AlgoSpec::pageRank(g, 3);
    PartitionedGraph pg(g, 16, 32);
    ReferenceResult res = runReference(pg, spec);
    EXPECT_NEAR(res.value(spec, 0), 1.0, 1e-5);
}

} // namespace
} // namespace gmoms
