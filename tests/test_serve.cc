/**
 * @file
 * Tests for the serving layer (src/serve/): admission-control
 * rejection paths, deterministic scheduling (identical completion
 * order and bit-identical per-job results under worker counts 1/2/8 —
 * the GMOMS_JOBS values the CI matrix pins), the deadline -> retry ->
 * degraded-fallback policy, dataset-cache LRU eviction correctness
 * (a rebuilt dataset gives bit-identical results), and TSan-clean
 * concurrent submit/poll.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/accel/checkpoint.hh"
#include "src/obs/latency.hh"
#include "src/serve/dataset_cache.hh"
#include "src/serve/scheduler.hh"
#include "src/serve/service.hh"

namespace gmoms::serve
{
namespace
{

/** Small machine so a unit test's jobs run in milliseconds. */
AccelConfig
tinyConfig()
{
    return AccelConfig::preset(MomsConfig::twoLevel(4), /*pes=*/4,
                               /*channels=*/2);
}

JobSpec
tinyJob(const std::string& tenant, const std::string& algo,
        std::uint32_t priority = 0)
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.dataset = "WT";
    spec.algo = algo;
    spec.iterations = 2;
    spec.priority = priority;
    spec.config = tinyConfig();
    return spec;
}

bool
anyContains(const std::vector<std::string>& reasons,
            const std::string& needle)
{
    for (const std::string& r : reasons)
        if (r.find(needle) != std::string::npos)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// AdmissionQueue policy (pure, no threads)
// ---------------------------------------------------------------------

TEST(AdmissionQueue, PriorityThenFairnessThenFifo)
{
    AdmissionQueue q(/*max_queue_depth=*/16, /*per_tenant_quota=*/16);
    // Tenant a floods at priority 0; tenant b arrives later at the
    // same priority; one urgent job at priority 2 jumps everything.
    EXPECT_TRUE(q.tryAdmit(1, "a", 0).empty());
    EXPECT_TRUE(q.tryAdmit(2, "a", 0).empty());
    EXPECT_TRUE(q.tryAdmit(3, "a", 0).empty());
    EXPECT_TRUE(q.tryAdmit(4, "b", 0).empty());
    EXPECT_TRUE(q.tryAdmit(5, "b", 2).empty());

    // Highest priority first.
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(5));
    // b has 1 dispatch, a has 0: fairness picks a's oldest.
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(1));
    // Tie (1 each): b's remaining job has... b dispatched 1, a
    // dispatched 1 -> tie on fairness, lowest id wins: job 2 (a).
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(2));
    // a at 2 dispatches, b at 1: b's job 4 next.
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(4));
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(3));
    EXPECT_EQ(q.pop(), std::nullopt);

    EXPECT_EQ(q.running(), 5u);
    for (JobId id = 1; id <= 5; ++id)
        q.complete(id);
    EXPECT_TRUE(q.idle());
}

TEST(AdmissionQueue, BoundedQueueAndTenantQuotaRejectWithReasons)
{
    AdmissionQueue q(/*max_queue_depth=*/2, /*per_tenant_quota=*/2);
    EXPECT_TRUE(q.tryAdmit(1, "a", 0).empty());
    EXPECT_TRUE(q.tryAdmit(2, "b", 0).empty());
    // Queue full.
    EXPECT_TRUE(anyContains(q.tryAdmit(3, "c", 0), "queue saturated"));

    // Tenant quota counts running jobs too: dispatch a's job, admit
    // another for a (1 running + 1 queued = quota), then reject.
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(1));
    EXPECT_TRUE(q.tryAdmit(4, "a", 0).empty());
    EXPECT_TRUE(anyContains(q.tryAdmit(5, "a", 0), "at quota"));
    // Completion frees the tenant's quota slot (drain the queue first
    // so the depth bound doesn't mask the quota decision).
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(2));
    EXPECT_EQ(q.pop(), std::make_optional<JobId>(4));
    q.complete(1);
    q.complete(4);
    EXPECT_TRUE(q.tryAdmit(6, "a", 0).empty());
}

// ---------------------------------------------------------------------
// LatencyStats
// ---------------------------------------------------------------------

TEST(LatencyStats, NearestRankPercentiles)
{
    LatencyStats s;
    EXPECT_EQ(s.percentile(99), 0.0);
    for (int i = 100; i >= 1; --i)  // unsorted insert order
        s.add(i);
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

// ---------------------------------------------------------------------
// Structured up-front validation
// ---------------------------------------------------------------------

TEST(JobValidation, AllProblemsReportedInOneRejection)
{
    JobSpec spec;
    spec.tenant = "";
    spec.dataset = "NOPE";
    spec.algo = "Dijkstra";
    ValidatedJob v = validateJobSpec(spec);
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(anyContains(v.problems, "tenant"));
    EXPECT_TRUE(anyContains(v.problems, "dataset"));
    EXPECT_TRUE(anyContains(v.problems, "algorithm"));
    EXPECT_GE(v.problems.size(), 3u);
}

TEST(JobValidation, ResolvedConfigProblemsAreIncluded)
{
    JobSpec spec = tinyJob("t", "PageRank");
    spec.config->num_pes = 0;        // two config-level problems the
    spec.config->max_threads = 0;    // admission path must surface
    ValidatedJob v = validateJobSpec(spec);
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(anyContains(v.problems, "config: num_pes"));
    EXPECT_TRUE(anyContains(v.problems, "config: max_threads"));
}

TEST(JobValidation, SourceBoundsCheckedAgainstDatasetProfile)
{
    JobSpec spec = tinyJob("t", "BFS");
    spec.source = 1'000'000'000;
    ValidatedJob v = validateJobSpec(spec);
    EXPECT_TRUE(anyContains(v.problems, "source node"));
    // PageRank ignores the source: same spec is fine.
    spec.algo = "PageRank";
    EXPECT_TRUE(validateJobSpec(spec).ok());
}

TEST(JobValidation, UnknownPresetListsKnownNames)
{
    JobSpec spec = tinyJob("t", "PageRank");
    spec.config.reset();
    spec.preset = "warp9";
    ValidatedJob v = validateJobSpec(spec);
    EXPECT_TRUE(anyContains(v.problems, "unknown accelerator preset"));
    EXPECT_TRUE(anyContains(v.problems, "paper18x16"));
}

// ---------------------------------------------------------------------
// DatasetCache
// ---------------------------------------------------------------------

TEST(DatasetCacheTest, SharesOneBuildUnderAmpleBudget)
{
    DatasetCache cache(/*budget=*/1ull << 30);
    const DatasetPtr a = cache.get("WT");
    const DatasetPtr b = cache.get("WT");
    EXPECT_EQ(a.get(), b.get());
    const DatasetCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);
}

TEST(DatasetCacheTest, LruEvictionUnderByteBudgetRebuildsBitIdentical)
{
    // Budget fits exactly one WT-sized entry: the second key must
    // evict the first (LRU), and a later reload must rebuild a graph
    // bit-identical to the evicted one.
    DatasetCache probe(0);
    const DatasetPtr wt = probe.get("WT", Preprocessing::DbgHash);
    const std::uint64_t one = datasetBytes(*wt);

    DatasetCache cache(one + one / 2);
    const DatasetPtr first = cache.get("WT", Preprocessing::DbgHash);
    cache.get("WT", Preprocessing::None);  // second key: evicts first
    EXPECT_EQ(cache.stats().evictions, 1u);

    const DatasetPtr rebuilt = cache.get("WT", Preprocessing::DbgHash);
    EXPECT_NE(rebuilt.get(), first.get());  // really was evicted
    ASSERT_EQ(rebuilt->numNodes(), first->numNodes());
    ASSERT_EQ(rebuilt->numEdges(), first->numEdges());
    const std::vector<Edge>& ea = first->edges();
    const std::vector<Edge>& eb = rebuilt->edges();
    for (std::size_t i = 0; i < ea.size(); ++i) {
        ASSERT_EQ(ea[i].src, eb[i].src) << "edge " << i;
        ASSERT_EQ(ea[i].dst, eb[i].dst) << "edge " << i;
        ASSERT_EQ(ea[i].weight, eb[i].weight) << "edge " << i;
    }
    // The evicted handle stayed valid the whole time (shared
    // ownership): eviction dropped the cache's reference only.
    EXPECT_EQ(first->numEdges(), wt->numEdges());
}

TEST(DatasetCacheTest, SingleOversizedEntryStaysUsable)
{
    DatasetCache cache(/*budget=*/1);  // smaller than any dataset
    const DatasetPtr a = cache.get("WT");
    ASSERT_TRUE(a);
    // Newest entry is never evicted by its own insertion...
    EXPECT_EQ(cache.stats().entries, 1u);
    // ...but the next insertion evicts it.
    cache.get("WT", Preprocessing::None);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---------------------------------------------------------------------
// GraphService: deterministic scheduling across worker counts
// ---------------------------------------------------------------------

std::vector<JobSpec>
mixedJobs()
{
    // Three tenants, mixed priorities and algorithms: enough structure
    // that priority, fairness and FIFO tie-breaks all matter.
    std::vector<JobSpec> jobs;
    jobs.push_back(tinyJob("alice", "PageRank", 0));
    jobs.push_back(tinyJob("bob", "SCC", 1));
    jobs.push_back(tinyJob("alice", "BFS", 1));
    jobs.push_back(tinyJob("carol", "PageRank", 2));
    jobs.push_back(tinyJob("bob", "PageRank", 0));
    jobs.push_back(tinyJob("alice", "SCC", 2));
    jobs.push_back(tinyJob("carol", "BFS", 0));
    jobs.push_back(tinyJob("bob", "BFS", 2));
    return jobs;
}

TEST(ServeDeterminism, CompletionOrderAndResultsMatchAcrossWorkers)
{
    // Batch mode (start_paused): submit everything, then drain. The
    // completion log and every job record must be identical whether
    // the pool has 1, 2 or 8 workers (the GMOMS_JOBS CI matrix).
    std::vector<std::vector<JobId>> logs;
    std::vector<std::vector<JobRecord>> records;

    for (unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.start_paused = true;
        GraphService service(cfg);
        std::vector<JobId> ids;
        for (const JobSpec& spec : mixedJobs()) {
            GraphService::Submitted sub = service.submit(spec);
            ASSERT_TRUE(sub.ok());
            ids.push_back(sub.id);
        }
        EXPECT_EQ(service.drain(), ids.size());
        logs.push_back(service.completionLog());
        std::vector<JobRecord> recs;
        for (JobId id : ids) {
            std::optional<JobRecord> rec = service.poll(id);
            ASSERT_TRUE(rec.has_value());
            EXPECT_EQ(rec->state, JobState::Completed);
            recs.push_back(*rec);
        }
        records.push_back(std::move(recs));
    }

    for (std::size_t w = 1; w < logs.size(); ++w) {
        EXPECT_EQ(logs[w], logs[0]) << "completion order diverged";
        for (std::size_t i = 0; i < records[0].size(); ++i) {
            const JobRecord& a = records[0][i];
            const JobRecord& b = records[w][i];
            EXPECT_EQ(a.cycles, b.cycles) << "job " << a.id;
            EXPECT_EQ(a.iterations, b.iterations) << "job " << a.id;
            EXPECT_EQ(a.edges_processed, b.edges_processed)
                << "job " << a.id;
            EXPECT_EQ(a.dram_bytes_read, b.dram_bytes_read)
                << "job " << a.id;
            EXPECT_EQ(a.values_checksum, b.values_checksum)
                << "job " << a.id;
            EXPECT_EQ(a.gteps, b.gteps) << "job " << a.id;
        }
    }

    // The dispatch policy itself: strictly by priority band — all
    // priority-2 jobs {4, 6, 8} complete before the priority-1 jobs
    // {2, 3}, which complete before the priority-0 jobs {1, 5, 7}.
    // (Order within a band is the fairness/FIFO tie-break, covered by
    // the AdmissionQueue unit test.)
    const std::vector<JobId>& log = logs[0];
    ASSERT_EQ(log.size(), 8u);
    const std::vector<JobId> band2(log.begin(), log.begin() + 3);
    const std::vector<JobId> band1(log.begin() + 3, log.begin() + 5);
    const std::vector<JobId> band0(log.begin() + 5, log.end());
    EXPECT_EQ(std::set<JobId>(band2.begin(), band2.end()),
              (std::set<JobId>{4, 6, 8}));
    EXPECT_EQ(std::set<JobId>(band1.begin(), band1.end()),
              (std::set<JobId>{2, 3}));
    EXPECT_EQ(std::set<JobId>(band0.begin(), band0.end()),
              (std::set<JobId>{1, 5, 7}));
}

// ---------------------------------------------------------------------
// GraphService: admission-control rejection paths
// ---------------------------------------------------------------------

TEST(ServeAdmission, SaturatedQueueAndQuotaRejectStructured)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.start_paused = true;  // nothing dispatches: queue fills
    cfg.max_queue_depth = 2;
    cfg.per_tenant_quota = 2;
    // Quota binds on *in-flight* jobs: the repeats below must actually
    // simulate (not replay a memoized checkpoint result in
    // microseconds, nor complete at submit time from the result cache)
    // for the queue to stay occupied across submits.
    cfg.enable_checkpoints = false;
    cfg.enable_result_cache = false;
    GraphService service(cfg);

    EXPECT_TRUE(service.submit(tinyJob("a", "PageRank")).ok());
    EXPECT_TRUE(service.submit(tinyJob("b", "PageRank")).ok());
    GraphService::Submitted full =
        service.submit(tinyJob("c", "PageRank"));
    EXPECT_FALSE(full.ok());
    EXPECT_TRUE(anyContains(full.rejected, "queue saturated"));

    // Invalid specs are rejected with the full problem list and never
    // consume queue slots.
    JobSpec bad = tinyJob("", "Dijkstra");
    bad.dataset = "NOPE";
    GraphService::Submitted rej = service.submit(bad);
    EXPECT_FALSE(rej.ok());
    EXPECT_GE(rej.rejected.size(), 3u);

    EXPECT_EQ(service.drain(), 2u);
    // Queue drained: admission opens again, quota now binds per
    // tenant.
    EXPECT_TRUE(service.submit(tinyJob("a", "PageRank")).ok());
    EXPECT_TRUE(service.submit(tinyJob("a", "PageRank")).ok());
    GraphService::Submitted quota =
        service.submit(tinyJob("a", "PageRank"));
    EXPECT_FALSE(quota.ok());
    EXPECT_TRUE(anyContains(quota.rejected, "at quota"));
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 7u);
    EXPECT_EQ(stats.rejected, 3u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.rejected + stats.terminal(), stats.submitted);
}

// ---------------------------------------------------------------------
// GraphService: deadline -> retry -> degraded fallback
// ---------------------------------------------------------------------

TEST(ServeDeadline, BudgetOverrunRetriesThenDegrades)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    GraphService service(cfg);

    JobSpec doomed = tinyJob("a", "PageRank");
    doomed.cycle_budget = 2000;  // far below what the run needs
    doomed.max_retries = 1;
    GraphService::Submitted sub = service.submit(doomed);
    ASSERT_TRUE(sub.ok());
    service.drain();

    std::optional<JobRecord> rec = service.poll(sub.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->state, JobState::Degraded);
    EXPECT_TRUE(rec->used_fallback);
    // 1 try + 1 retry on the requested config, then the fallback run.
    EXPECT_EQ(rec->attempts, 3u);
    EXPECT_FALSE(rec->error.empty());  // why it degraded
    EXPECT_GT(rec->cycles, 2000u);     // the fallback really ran
    EXPECT_GT(rec->values_checksum, 0u);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.degraded, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.fallback_runs, 1u);
}

TEST(ServeDeadline, FallbackDisabledFailsTerminally)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.enable_fallback = false;
    GraphService service(cfg);

    JobSpec doomed = tinyJob("a", "SCC");
    doomed.cycle_budget = 2000;
    doomed.max_retries = 0;
    GraphService::Submitted sub = service.submit(doomed);
    ASSERT_TRUE(sub.ok());
    service.drain();

    std::optional<JobRecord> rec = service.poll(sub.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->state, JobState::Failed);
    EXPECT_EQ(rec->attempts, 1u);
    EXPECT_FALSE(rec->error.empty());
    EXPECT_EQ(service.stats().failed, 1u);
    // Terminal accounting still balances: nothing lost.
    EXPECT_EQ(service.stats().terminal() + service.stats().rejected,
              service.stats().submitted);
}

// ---------------------------------------------------------------------
// GraphService: eviction-transparent results
// ---------------------------------------------------------------------

TEST(ServeCache, EvictedDatasetRebuildsToIdenticalJobResults)
{
    // A cache too small to hold both keys: every alternation evicts.
    // Job results must not care.
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.cache_budget_bytes = 1;
    GraphService service(cfg);

    JobSpec a = tinyJob("t", "PageRank");
    JobSpec b = tinyJob("t", "PageRank");
    b.prep = Preprocessing::None;  // second cache key

    const JobId a1 = service.submit(a).id;
    const JobId b1 = service.submit(b).id;
    const JobId a2 = service.submit(a).id;
    service.drain();

    EXPECT_GE(service.datasetCache().stats().evictions, 1u);
    const JobRecord ra1 = *service.poll(a1);
    const JobRecord ra2 = *service.poll(a2);
    EXPECT_EQ(ra1.state, JobState::Completed);
    EXPECT_EQ(ra2.state, JobState::Completed);
    EXPECT_EQ(ra1.cycles, ra2.cycles);
    EXPECT_EQ(ra1.values_checksum, ra2.values_checksum);
    EXPECT_EQ(service.poll(b1)->state, JobState::Completed);
}

// ---------------------------------------------------------------------
// GraphService: warm-session checkpoint pool
// ---------------------------------------------------------------------

TEST(ServeCheckpoint, RepeatJobsForkThePoolWithIdenticalResults)
{
    ServiceConfig cold_cfg;
    cold_cfg.workers = 1;
    cold_cfg.enable_checkpoints = false;
    GraphService cold(cold_cfg);
    const JobId ref = cold.submit(tinyJob("t", "PageRank")).id;
    cold.drain();

    ServiceConfig cfg;
    cfg.workers = 1;
    GraphService service(cfg);
    const JobId j1 = service.submit(tinyJob("t", "PageRank")).id;
    const JobId j2 = service.submit(tinyJob("t", "PageRank")).id;
    const JobId j3 = service.submit(tinyJob("t", "PageRank")).id;
    service.drain();

    // Checkpoint-forked (and memo-replayed) jobs are bit-identical to
    // the cold-built run.
    const std::uint64_t want = cold.poll(ref)->values_checksum;
    for (JobId id : {j1, j2, j3}) {
        const JobRecord rec = *service.poll(id);
        EXPECT_EQ(rec.state, JobState::Completed);
        EXPECT_EQ(rec.values_checksum, want);
        EXPECT_EQ(rec.cycles, cold.poll(ref)->cycles);
        EXPECT_FALSE(rec.replay.empty());
        EXPECT_TRUE(ReplayDescriptor::parse(rec.replay).has_value());
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.checkpoints.misses, 1u);  // first job built it
    EXPECT_EQ(stats.checkpoints.hits, 2u);
    EXPECT_EQ(stats.checkpoints.forks, 3u);
    EXPECT_EQ(stats.checkpoints.memo_hits, 2u);
    EXPECT_GT(stats.checkpoints.resident_bytes, 0u);
    // The disabled service never touched a pool.
    EXPECT_EQ(cold.stats().checkpoints.forks, 0u);
}

TEST(ServeCheckpoint, FailedJobsCarryAParseableReplayDescriptor)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.enable_fallback = false;
    GraphService service(cfg);
    JobSpec doomed = tinyJob("t", "PageRank");
    doomed.cycle_budget = 50;  // nothing finishes in 50 cycles
    doomed.max_retries = 0;
    const JobId id = service.submit(doomed).id;
    service.drain();

    const JobRecord rec = *service.poll(id);
    ASSERT_EQ(rec.state, JobState::Failed);
    const std::optional<ReplayDescriptor> rd =
        ReplayDescriptor::parse(rec.replay);
    ASSERT_TRUE(rd.has_value());
    EXPECT_EQ(rd->dataset, "WT");
    EXPECT_EQ(rd->algo, "PageRank");
    EXPECT_EQ(rd->iterations, 2u);
}

// ---------------------------------------------------------------------
// GraphService: concurrent submit/poll (ThreadSanitizer coverage)
// ---------------------------------------------------------------------

TEST(ServeConcurrency, ConcurrentSubmitPollDrainIsClean)
{
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.max_queue_depth = 64;
    GraphService service(cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 4;
    std::atomic<std::uint64_t> ok_submits{0};
    std::vector<std::thread> submitters;
    std::vector<std::vector<JobId>> ids(kThreads);
    for (int t = 0; t < kThreads; ++t)
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                JobSpec spec = tinyJob(
                    "tenant" + std::to_string(t),
                    i % 2 ? "PageRank" : "BFS",
                    static_cast<std::uint32_t>(i % 3));
                GraphService::Submitted sub =
                    service.submit(std::move(spec));
                if (sub.ok()) {
                    ids[t].push_back(sub.id);
                    ++ok_submits;
                }
            }
        });

    // A poller hammering poll()/stats()/completionLog() while jobs run.
    std::atomic<bool> stop{false};
    std::thread poller([&] {
        while (!stop.load()) {
            for (JobId id = 1; id <= kThreads * kPerThread; ++id)
                (void)service.poll(id);
            (void)service.stats();
            (void)service.completionLog();
        }
    });

    for (std::thread& t : submitters)
        t.join();
    service.drain();
    stop = true;
    poller.join();

    // Zero lost jobs: every admitted id is terminal, counters balance.
    std::uint64_t terminal = 0;
    for (const std::vector<JobId>& batch : ids)
        for (JobId id : batch) {
            std::optional<JobRecord> rec = service.poll(id);
            ASSERT_TRUE(rec.has_value());
            EXPECT_TRUE(rec->terminal()) << "job " << id;
            ++terminal;
        }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(terminal, ok_submits.load());
    EXPECT_EQ(stats.terminal(), ok_submits.load());
    EXPECT_EQ(stats.submitted, stats.rejected + stats.terminal());
    EXPECT_EQ(service.completionLog().size(), stats.terminal());
}

} // namespace
} // namespace gmoms::serve
