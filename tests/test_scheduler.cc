/**
 * @file
 * Tests for the dynamic job scheduler and PE load balancing
 * (Section IV-E: dynamic pulls make hash relabeling sufficient).
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/accel/scheduler.hh"
#include "src/algo/spec.hh"
#include "src/graph/generator.hh"
#include "src/graph/layout.hh"
#include "src/graph/reorder.hh"

namespace gmoms
{
namespace
{

struct SchedulerFixture : public ::testing::Test
{
    CooGraph g = uniformRandom(1000, 5000, 3);
    PartitionedGraph pg{g, 128, 256};
    GraphLayout layout{pg, options()};

    static GraphLayout::Options
    options()
    {
        GraphLayout::Options o;
        o.init_value = [](NodeId n) { return n; };
        return o;
    }
};

TEST_F(SchedulerFixture, HandsOutEveryIntervalOnce)
{
    Scheduler sched(pg, layout);
    sched.startIteration();
    std::vector<bool> seen(pg.qd(), false);
    while (auto job = sched.pull()) {
        EXPECT_FALSE(seen[job->d]);
        seen[job->d] = true;
        EXPECT_EQ(job->base, pg.dstIntervalBase(job->d));
        EXPECT_EQ(job->count, pg.dstIntervalNodes(job->d));
        EXPECT_EQ(job->qs, pg.qs());
        EXPECT_EQ(job->ptr_base, layout.ptrAddr(0, job->d));
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST_F(SchedulerFixture, IterationCompletesOnlyWhenAllJobsComplete)
{
    Scheduler sched(pg, layout);
    sched.startIteration();
    std::vector<Job> jobs;
    while (auto job = sched.pull())
        jobs.push_back(*job);
    EXPECT_FALSE(sched.iterationDone());
    for (std::size_t i = 0; i + 1 < jobs.size(); ++i)
        sched.complete(jobs[i].d, false);
    EXPECT_FALSE(sched.iterationDone());
    sched.complete(jobs.back().d, true);
    EXPECT_TRUE(sched.iterationDone());
    EXPECT_TRUE(sched.anyUpdated());
    EXPECT_TRUE(sched.updatedFlags()[jobs.back().d]);
    EXPECT_FALSE(sched.updatedFlags()[jobs.front().d]);
}

TEST_F(SchedulerFixture, RestartWhileOutstandingPanics)
{
    Scheduler sched(pg, layout);
    sched.startIteration();
    (void)sched.pull();
    EXPECT_THROW(sched.startIteration(), PanicError);
}

TEST_F(SchedulerFixture, JobBasesFollowArraySwap)
{
    CooGraph g2 = uniformRandom(500, 2000, 5);
    PartitionedGraph pg2(g2, 128, 256);
    GraphLayout::Options o;
    o.synchronous = true;
    o.init_value = [](NodeId n) { return n; };
    GraphLayout swap_layout(pg2, o);
    Scheduler sched(pg2, swap_layout);
    sched.startIteration();
    Job before = *sched.pull();
    while (auto j = sched.pull())
        sched.complete(j->d, false);
    sched.complete(before.d, false);

    swap_layout.swapInOut();
    sched.startIteration();
    Job after = *sched.pull();
    EXPECT_EQ(before.v_in_base, after.v_out_base);
    EXPECT_EQ(before.v_out_base, after.v_in_base);
}

TEST(PeLoadBalance, DynamicPullsBalanceSkewedJobs)
{
    // Skewed job sizes (no hashing): dynamic pulls should still keep
    // every PE busy within ~3x of the mean edge work.
    CooGraph g = rmat(13, 60000, RmatParams{}, 5);
    auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());
    CooGraph balanced =
        g.relabeled(hashCacheLines(g.numNodes(), nd));
    PartitionedGraph pg(balanced, nd, ns);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 2);
    AccelConfig cfg;
    cfg.num_pes = 8;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(8);
    cfg.nd = nd;
    cfg.ns = ns;
    Accelerator accel(cfg, pg, spec);
    accel.run();

    std::uint64_t total = 0, max_pe = 0;
    for (const auto& pe : accel.pes()) {
        total += pe->stats().edges_processed;
        max_pe = std::max(max_pe, pe->stats().edges_processed);
        EXPECT_GT(pe->stats().jobs, 0u) << "every PE pulled work";
    }
    const double mean = static_cast<double>(total) / cfg.num_pes;
    EXPECT_LT(static_cast<double>(max_pe), 3.0 * mean);
}

} // namespace
} // namespace gmoms
