/**
 * @file
 * Unit tests for COO graphs, generators, partitioning and reordering.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/graph/coo.hh"
#include "src/sim/log.hh"
#include "src/graph/datasets.hh"
#include "src/graph/generator.hh"
#include "src/graph/graph_stats.hh"
#include "src/graph/partition.hh"
#include "src/graph/reorder.hh"

namespace gmoms
{
namespace
{

TEST(CooGraph, DegreesAndReverseEdges)
{
    CooGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(3, 0);
    auto out = g.outDegrees();
    auto in = g.inDegrees();
    EXPECT_EQ(out[0], 2u);
    EXPECT_EQ(out[3], 1u);
    EXPECT_EQ(in[0], 1u);
    EXPECT_EQ(in[1], 1u);
    CooGraph u = g.withReverseEdges();
    EXPECT_EQ(u.numEdges(), 6u);
    EXPECT_EQ(u.outDegrees()[1], 1u);
}

TEST(CooGraph, RelabelPreservesStructure)
{
    CooGraph g(3);
    g.addEdge(0, 1, 7);
    g.addEdge(1, 2, 9);
    std::vector<NodeId> perm = {2, 0, 1};
    CooGraph r = g.relabeled(perm);
    EXPECT_EQ(r.edges()[0].src, 2u);
    EXPECT_EQ(r.edges()[0].dst, 0u);
    EXPECT_EQ(r.edges()[0].weight, 7u);
    EXPECT_EQ(r.edges()[1].src, 0u);
    EXPECT_EQ(r.edges()[1].dst, 1u);
}

TEST(Generator, RmatHasRequestedSizeAndSkew)
{
    CooGraph g = rmat(14, 100000, RmatParams{}, 42);
    EXPECT_EQ(g.numNodes(), 1u << 14);
    EXPECT_EQ(g.numEdges(), 100000u);
    GraphStats s = computeGraphStats(g);
    // RMAT is skewed: top 1% of nodes should own far more than 1% of
    // edges (uniform graphs give ~0.01-0.03 here).
    EXPECT_GT(s.top1pct_edge_share, 0.10);
}

TEST(Generator, RmatIsDeterministic)
{
    CooGraph a = rmat(10, 5000, RmatParams{}, 7);
    CooGraph b = rmat(10, 5000, RmatParams{}, 7);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId i = 0; i < a.numEdges(); ++i) {
        EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
        EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
    }
}

TEST(Generator, PowerLawLocalityKnobWorks)
{
    CooGraph local = powerLaw(20000, 100000, 0.7, 0.9, 512, 3);
    CooGraph scattered = powerLaw(20000, 100000, 0.7, 0.0, 512, 3);
    GraphStats sl = computeGraphStats(local);
    GraphStats ss = computeGraphStats(scattered);
    EXPECT_GT(sl.local_edge_fraction, ss.local_edge_fraction + 0.2);
}

TEST(Generator, GridHasExpectedEdges)
{
    CooGraph g = grid2d(3, 4);
    EXPECT_EQ(g.numNodes(), 12u);
    // 2*(rows*(cols-1) + cols*(rows-1)) directed edges.
    EXPECT_EQ(g.numEdges(), 2u * (3 * 3 + 4 * 2));
}

TEST(Generator, WeightsInRange)
{
    CooGraph g = uniformRandom(100, 1000, 5);
    addRandomWeights(g, 9);
    EXPECT_TRUE(g.weighted());
    for (const Edge& e : g.edges())
        EXPECT_LT(e.weight, 256u);
}

TEST(Generator, RandomPermutationIsPermutation)
{
    auto p = randomPermutation(1000, 11);
    EXPECT_TRUE(isPermutation(p));
}

TEST(Partition, EveryEdgeLandsInItsShard)
{
    CooGraph g = uniformRandom(1000, 20000, 17);
    PartitionedGraph pg(g, 128, 256);
    EXPECT_EQ(pg.qd(), 8u);
    EXPECT_EQ(pg.qs(), 4u);
    EXPECT_EQ(pg.numEdges(), g.numEdges());
    EdgeId total = 0;
    for (std::uint32_t d = 0; d < pg.qd(); ++d) {
        for (std::uint32_t s = 0; s < pg.qs(); ++s) {
            for (const Edge& e : pg.shardEdges(s, d)) {
                EXPECT_EQ(pg.srcIntervalOf(e.src), s);
                EXPECT_EQ(pg.dstIntervalOf(e.dst), d);
            }
            total += pg.shardSize(s, d);
        }
    }
    EXPECT_EQ(total, g.numEdges());
}

TEST(Partition, PreservesIntraShardEdgeOrder)
{
    CooGraph g(64);
    // Three edges in the same shard; order must be preserved.
    g.addEdge(1, 2, 100);
    g.addEdge(5, 9, 200);
    g.addEdge(3, 7, 300);
    PartitionedGraph pg(g, 32, 32);
    auto shard = pg.shardEdges(0, 0);
    ASSERT_EQ(shard.size(), 3u);
    EXPECT_EQ(shard[0].weight, 100u);
    EXPECT_EQ(shard[1].weight, 200u);
    EXPECT_EQ(shard[2].weight, 300u);
}

TEST(Partition, LastIntervalMayBeShort)
{
    CooGraph g(100);
    g.addEdge(99, 99);
    PartitionedGraph pg(g, 64, 64);
    EXPECT_EQ(pg.qd(), 2u);
    EXPECT_EQ(pg.dstIntervalNodes(0), 64u);
    EXPECT_EQ(pg.dstIntervalNodes(1), 36u);
    EXPECT_EQ(pg.shardSize(1, 1), 1u);
}

TEST(Partition, RejectsOversizedIntervals)
{
    CooGraph g(10);
    g.addEdge(0, 1);
    EXPECT_THROW(PartitionedGraph(g, 1 << 16, 256), FatalError);
    EXPECT_THROW(PartitionedGraph(g, 256, 1 << 17), FatalError);
}

TEST(Partition, JobSizesSumToEdgeCount)
{
    CooGraph g = rmat(12, 30000, RmatParams{}, 23);
    PartitionedGraph pg(g, 512, 1024);
    auto sizes = pg.jobSizes();
    EdgeId total = 0;
    for (EdgeId s : sizes)
        total += s;
    EXPECT_EQ(total, g.numEdges());
}

TEST(Reorder, HashNodeIntervalsBalancesInEdges)
{
    // A clustered graph: all edges target the first interval.
    CooGraph g(1024);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        g.addEdge(static_cast<NodeId>(rng.below(1024)),
                  static_cast<NodeId>(rng.below(128)));
    const std::uint32_t nd = 128;
    auto perm = hashNodeIntervals(g.numNodes(), nd);
    EXPECT_TRUE(isPermutation(perm));
    CooGraph r = g.relabeled(perm);
    PartitionedGraph pg(r, nd, 256);
    auto sizes = pg.jobSizes();
    // After hashing, no interval should hold more than ~3x the mean.
    const double mean =
        static_cast<double>(g.numEdges()) / sizes.size();
    for (EdgeId s : sizes)
        EXPECT_LT(static_cast<double>(s), 3.0 * mean);
}

TEST(Reorder, HashCacheLinesKeepsLinesIntact)
{
    const NodeId n = 4096;
    const std::uint32_t nd = 256;
    auto perm = hashCacheLines(n, nd);
    EXPECT_TRUE(isPermutation(perm));
    // Nodes sharing an old 16-node line must share a new line.
    for (NodeId i = 0; i < n; i += 16) {
        const NodeId new_line = perm[i] / 16;
        for (NodeId j = i; j < i + 16; ++j) {
            EXPECT_EQ(perm[j] / 16, new_line);
            EXPECT_EQ(perm[j] % 16, j % 16);  // intra-line order kept
        }
    }
}

TEST(Reorder, HashCacheLinesBalancesIntervals)
{
    CooGraph g(4096);
    Rng rng(4);
    for (int i = 0; i < 20000; ++i)
        g.addEdge(static_cast<NodeId>(rng.below(4096)),
                  static_cast<NodeId>(rng.below(256)));
    const std::uint32_t nd = 256;
    CooGraph r = g.relabeled(hashCacheLines(g.numNodes(), nd));
    PartitionedGraph pg(r, nd, 512);
    auto sizes = pg.jobSizes();
    const double mean =
        static_cast<double>(g.numEdges()) / sizes.size();
    for (EdgeId s : sizes)
        EXPECT_LT(static_cast<double>(s), 3.0 * mean);
}

TEST(Reorder, DbgGroupsHighDegreeFirst)
{
    // Node 9 has huge out-degree; after DBG it must get a low label.
    CooGraph g(100);
    for (int i = 0; i < 64; ++i)
        g.addEdge(9, static_cast<NodeId>(i % 100));
    g.addEdge(0, 1);
    g.addEdge(5, 2);
    auto perm = dbgReorder(g);
    EXPECT_TRUE(isPermutation(perm));
    EXPECT_LT(perm[9], 3u);
    // Zero-degree nodes keep relative order in the last group.
    EXPECT_LT(perm[1], perm[2]);
}

TEST(Reorder, ComposeAppliesInOrder)
{
    std::vector<NodeId> a = {1, 2, 0};
    std::vector<NodeId> b = {2, 0, 1};
    auto c = composePermutations(a, b);
    // node 0 -> a: 1 -> b: 0
    EXPECT_EQ(c[0], 0u);
    EXPECT_EQ(c[1], 1u);
    EXPECT_EQ(c[2], 2u);
}

TEST(Reorder, ApplyPreprocessingVariants)
{
    CooGraph g = rmat(10, 4000, RmatParams{}, 5);
    for (Preprocessing p : {Preprocessing::None, Preprocessing::Hash,
                            Preprocessing::Dbg, Preprocessing::DbgHash}) {
        CooGraph r = applyPreprocessing(g, p, 128);
        EXPECT_EQ(r.numNodes(), g.numNodes());
        EXPECT_EQ(r.numEdges(), g.numEdges());
    }
}

TEST(Datasets, RegistryMatchesTable2)
{
    const auto& profiles = table2Profiles();
    ASSERT_EQ(profiles.size(), 12u);
    EXPECT_EQ(profiles[0].tag, "WT");
    EXPECT_EQ(profiles[0].paper_nodes, 2'390'000u);
    EXPECT_EQ(profiles[11].tag, "26");
    EXPECT_EQ(datasetByTag("UK").paper_edges, 936'000'000u);
    EXPECT_THROW(datasetByTag("XX"), FatalError);
}

TEST(Datasets, StandInsHaveScaledSizes)
{
    const DatasetProfile& wt = datasetByTag("WT");
    CooGraph g = buildDataset(wt, 1);
    EXPECT_EQ(g.numNodes(), wt.nodes());
    EXPECT_EQ(g.numEdges(), wt.edges());
    // Edge targets must be in range.
    for (const Edge& e : g.edges()) {
        EXPECT_LT(e.src, g.numNodes());
        EXPECT_LT(e.dst, g.numNodes());
    }
}

TEST(Datasets, WebKeepsLocalitySocialDoesNot)
{
    GraphStats web = computeGraphStats(buildDataset(datasetByTag("DB")));
    GraphStats soc = computeGraphStats(buildDataset(datasetByTag("MP")));
    EXPECT_GT(web.local_edge_fraction, soc.local_edge_fraction);
}

TEST(Datasets, AllProfilesBuildWithinBudget)
{
    for (const DatasetProfile& p : table2Profiles()) {
        EXPECT_LE(p.edges(), DatasetProfile::kEdgeCap) << p.tag;
        EXPECT_GE(p.edges(), 15'000u) << p.tag;
        EXPECT_LE(p.nodes(), 500'000u) << p.tag;
        // Uniform node scaling: N ratios to cache capacity match the
        // paper (DESIGN.md section 5).
        EXPECT_EQ(p.scale_divisor, 256u) << p.tag;
        EXPECT_EQ(p.nodes(), p.paper_nodes / 256) << p.tag;
    }
}

} // namespace
} // namespace gmoms
