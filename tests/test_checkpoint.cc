/**
 * @file
 * Warm-session checkpoint/restore tests: a restored session must
 * reproduce the original bit-for-bit (the simulator is deterministic,
 * so the snapshot only needs the inputs), the config fingerprint must
 * separate result-relevant configs and ignore result-neutral engine
 * knobs, the shared memo must replay only successful runs, and a
 * ReplayDescriptor must round-trip through its wire form.
 */

#include <gtest/gtest.h>

#include "src/accel/checkpoint.hh"
#include "src/accel/session.hh"
#include "src/check/check_config.hh"
#include "src/graph/generator.hh"
#include "src/serve/job.hh"

namespace gmoms
{
namespace
{

AccelConfig
smallConfig()
{
    return AccelConfig::preset(MomsConfig::twoLevel(4), /*pes=*/4,
                               /*channels=*/2);
}

Session
makeSession(const CooGraph& g, const AccelConfig& cfg)
{
    return SessionBuilder()
        .dataset(CooGraph(g))
        .config(cfg)
        .preprocessing(Preprocessing::DbgHash)
        .build();
}

// ---------------------------------------------------------------------
// Checkpoint -> restore -> run bit-exactness
// ---------------------------------------------------------------------

TEST(Checkpoint, RestoredSessionReproducesColdRunBitForBit)
{
    const CooGraph g = rmat(10, 6000, RmatParams{}, 13);
    // The matrix that matters: both engine modes x observability
    // on/off. Telemetry and checks change what a run *records* (and so
    // the fingerprint), never its results — the restored session must
    // agree under every combination.
    for (const bool full_tick : {false, true}) {
        for (const bool tlm : {false, true}) {
            for (const bool chk : {false, true}) {
                AccelConfig cfg = smallConfig();
                cfg.full_tick_engine = full_tick;
                cfg.telemetry.enabled = tlm;
                cfg.checks.enabled = chk;
                const std::string label =
                    std::string(full_tick ? "full" : "idle") +
                    (tlm ? "+tlm" : "") + (chk ? "+chk" : "");

                Session cold = makeSession(g, cfg);
                const SessionResult base = cold.pageRank(2);

                Session warm = makeSession(g, cfg);
                const SessionCheckpoint cp =
                    SessionCheckpoint::capture(warm);
                Session forked = cp.restore();
                const SessionResult res = forked.pageRank(2);

                EXPECT_EQ(base.run.cycles, res.run.cycles) << label;
                EXPECT_EQ(base.run.raw_values, res.run.raw_values)
                    << label;
                EXPECT_EQ(
                    serve::valuesChecksum(base.run.raw_values),
                    serve::valuesChecksum(res.run.raw_values))
                    << label;
            }
        }
    }
}

TEST(Checkpoint, SecondForkReplaysTheMemoizedResult)
{
    const CooGraph g = rmat(9, 4000, RmatParams{}, 19);
    Session warm = makeSession(g, smallConfig());
    const SessionCheckpoint cp = SessionCheckpoint::capture(warm);

    Session first = cp.restore();
    const SessionResult a = first.pageRank(3);
    ASSERT_TRUE(cp.memo());
    EXPECT_EQ(cp.memo()->hits(), 0u);
    EXPECT_EQ(cp.memo()->misses(), 1u);

    Session second = cp.restore();
    const SessionResult b = second.pageRank(3);
    EXPECT_EQ(cp.memo()->hits(), 1u);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.raw_values, b.run.raw_values);

    // Different arguments are a different key: simulated, not replayed.
    Session third = cp.restore();
    const SessionResult c = third.pageRank(4);
    EXPECT_EQ(cp.memo()->misses(), 2u);
    EXPECT_NE(a.run.cycles, c.run.cycles);
}

TEST(Checkpoint, RestorePreservesIdMappingAndWeights)
{
    const CooGraph g = rmat(9, 4000, RmatParams{}, 7);
    Session warm = makeSession(g, smallConfig());
    const SessionCheckpoint cp = SessionCheckpoint::capture(warm);
    Session forked = cp.restore();
    for (NodeId n = 0; n < g.numNodes(); n += 53) {
        EXPECT_EQ(forked.internalId(n), warm.internalId(n));
        EXPECT_EQ(forked.originalId(forked.internalId(n)), n);
    }
    // SSSP uses the synthetic-weight seed captured in the snapshot.
    const SessionResult a = warm.sssp(3, 4);
    const SessionResult b = forked.sssp(3, 4);
    EXPECT_EQ(a.run.raw_values, b.run.raw_values);
}

TEST(Checkpoint, FailedRunsAreNeverMemoized)
{
    const CooGraph g = rmat(9, 4000, RmatParams{}, 11);
    AccelConfig cfg = smallConfig();
    cfg.checks.enabled = true;
    cfg.max_cycles = 50;  // no run can finish: budget CheckError
    Session warm = makeSession(g, cfg);
    const SessionCheckpoint cp = SessionCheckpoint::capture(warm);

    Session first = cp.restore();
    EXPECT_THROW(first.pageRank(2), CheckError);
    EXPECT_EQ(cp.memo()->bytes(), 0u);

    // The repeat re-simulates (and fails identically) instead of
    // replaying a poisoned result.
    Session second = cp.restore();
    EXPECT_THROW(second.pageRank(2), CheckError);
    EXPECT_EQ(cp.memo()->hits(), 0u);
}

// ---------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------

TEST(Fingerprint, SeparatesResultRelevantConfigs)
{
    const AccelConfig base = smallConfig();
    const std::uint64_t h = configFingerprint(base);

    auto differs = [&](auto mutate, const std::string& what) {
        AccelConfig cfg = smallConfig();
        mutate(cfg);
        EXPECT_NE(configFingerprint(cfg), h) << what;
    };
    differs([](AccelConfig& c) { c.num_pes = 8; }, "num_pes");
    differs([](AccelConfig& c) { c.mem.channels = 4; },
            "mem.channels");
    differs([](AccelConfig& c) { c.max_cycles /= 2; }, "max_cycles");
    differs([](AccelConfig& c) { c.moms.num_shared_banks = 2; },
            "num_shared_banks");
    differs([](AccelConfig& c) { c.moms.shared_bank.cache_bytes *= 2; },
            "cache_bytes");
    differs([](AccelConfig& c) { c.moms.crossing_latency += 1; },
            "crossing_latency");
    differs([](AccelConfig& c) { c.mem.timing.load_latency_cycles += 1; },
            "load_latency");
    differs([](AccelConfig& c) { c.telemetry.enabled = true; },
            "telemetry.enabled");
    differs([](AccelConfig& c) { c.checks.enabled = true; },
            "checks.enabled");
}

TEST(Fingerprint, IgnoresBitExactEngineKnobs)
{
    // tick_threads and full_tick_engine are bit-exact by contract
    // (pinned by test_tick_parallel and test_engine_skip), so two
    // configs differing only there must pool together.
    const std::uint64_t h = configFingerprint(smallConfig());
    AccelConfig threads = smallConfig();
    threads.tick_threads = 8;
    EXPECT_EQ(configFingerprint(threads), h);
    AccelConfig full = smallConfig();
    full.full_tick_engine = true;
    EXPECT_EQ(configFingerprint(full), h);
    // The watchdog interval only matters while checks run.
    AccelConfig wd = smallConfig();
    wd.checks.watchdog_interval *= 2;
    EXPECT_EQ(configFingerprint(wd), h);
    AccelConfig wd_on = wd;
    wd_on.checks.enabled = true;
    AccelConfig on = smallConfig();
    on.checks.enabled = true;
    EXPECT_NE(configFingerprint(wd_on), configFingerprint(on));
}

// ---------------------------------------------------------------------
// Replay descriptors
// ---------------------------------------------------------------------

TEST(Replay, DescriptorRoundTripsThroughItsWireForm)
{
    ReplayDescriptor d;
    d.dataset = "WT";
    d.prep = "dbg+hash";
    d.algo = "SSSP";
    d.iterations = 42;
    d.source = 7;
    d.preset = "paper18x16";
    d.config_fingerprint = 0xDEADBEEFCAFEF00Dull;
    d.fail_cycle = 123456;

    const std::optional<ReplayDescriptor> p =
        ReplayDescriptor::parse(d.serialize());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->dataset, d.dataset);
    EXPECT_EQ(p->prep, d.prep);
    EXPECT_EQ(p->algo, d.algo);
    EXPECT_EQ(p->iterations, d.iterations);
    EXPECT_EQ(p->source, d.source);
    EXPECT_EQ(p->preset, d.preset);
    EXPECT_EQ(p->config_fingerprint, d.config_fingerprint);
    EXPECT_EQ(p->fail_cycle, d.fail_cycle);
}

TEST(Replay, ParserIsForwardCompatibleAndRejectsGarbage)
{
    ReplayDescriptor d;
    d.dataset = "DB";
    d.algo = "PageRank";
    const std::string wire = d.serialize() + " future_key=whatever";
    const std::optional<ReplayDescriptor> p =
        ReplayDescriptor::parse(wire);
    ASSERT_TRUE(p.has_value());  // unknown keys are ignored
    EXPECT_EQ(p->dataset, "DB");

    EXPECT_FALSE(ReplayDescriptor::parse("not a descriptor"));
    EXPECT_FALSE(ReplayDescriptor::parse("gmoms-replay v999 x=y"));
}

} // namespace
} // namespace gmoms
