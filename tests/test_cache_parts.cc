/**
 * @file
 * Unit tests for cache array, MSHR files and subentry store.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/cache/cache_array.hh"
#include "src/cache/mshr.hh"
#include "src/cache/subentry_store.hh"
#include "src/sim/log.hh"
#include "src/sim/rng.hh"

namespace gmoms
{
namespace
{

TEST(CacheArray, DirectMappedConflict)
{
    // 4 KiB direct-mapped: 64 sets; lines 64 sets apart conflict.
    CacheArray c(4096, 1);
    EXPECT_FALSE(c.lookup(0));
    c.fill(0);
    EXPECT_TRUE(c.lookup(0));
    const Addr conflicting = 64ull * kLineBytes;
    c.fill(conflicting);
    EXPECT_TRUE(c.lookup(conflicting));
    EXPECT_FALSE(c.lookup(0));  // evicted
}

TEST(CacheArray, SetAssociativeLru)
{
    // 2 sets x 2 ways. Lines 0, 2, 4 map to set 0.
    CacheArray c(4 * kLineBytes, 2);
    auto line = [](Addr i) { return i * kLineBytes; };
    c.fill(line(0));
    c.fill(line(2));
    EXPECT_TRUE(c.lookup(line(0)));  // 0 most recent
    c.fill(line(4));                 // evicts 2 (LRU)
    EXPECT_TRUE(c.contains(line(0)));
    EXPECT_FALSE(c.contains(line(2)));
    EXPECT_TRUE(c.contains(line(4)));
}

TEST(CacheArray, DisabledAlwaysMisses)
{
    CacheArray c(0, 1);
    EXPECT_TRUE(c.disabled());
    c.fill(0);
    EXPECT_FALSE(c.lookup(0));
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheArray, InvalidateAllDropsEverything)
{
    CacheArray c(4096, 1);
    for (Addr i = 0; i < 16; ++i)
        c.fill(i * kLineBytes);
    c.invalidateAll();
    for (Addr i = 0; i < 16; ++i)
        EXPECT_FALSE(c.contains(i * kLineBytes));
}

TEST(CacheArray, FillIsIdempotent)
{
    CacheArray c(4 * kLineBytes, 2);
    c.fill(0);
    c.fill(0);
    c.fill(2 * kLineBytes);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(2 * kLineBytes));
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(100, 1), FatalError);     // not line multiple
    EXPECT_THROW(CacheArray(3 * 64, 2), FatalError);  // lines % ways
    EXPECT_THROW(CacheArray(4096, 0), FatalError);
}

template <typename T>
class MshrFileTest : public ::testing::Test
{
  public:
    static std::unique_ptr<MshrFile> make();
};

template <>
std::unique_ptr<MshrFile>
MshrFileTest<CuckooMshr>::make()
{
    return std::make_unique<CuckooMshr>(64, 4, 8);
}

template <>
std::unique_ptr<MshrFile>
MshrFileTest<AssocMshr>::make()
{
    return std::make_unique<AssocMshr>(16);
}

using MshrImpls = ::testing::Types<CuckooMshr, AssocMshr>;
TYPED_TEST_SUITE(MshrFileTest, MshrImpls);

TYPED_TEST(MshrFileTest, InsertFindErase)
{
    auto file = TestFixture::make();
    EXPECT_EQ(file->find(0x1000), nullptr);
    MshrEntry* e = file->insert(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->line, 0x1000u);
    EXPECT_EQ(file->find(0x1000), e);
    EXPECT_EQ(file->occupancy(), 1u);
    file->erase(0x1000);
    EXPECT_EQ(file->find(0x1000), nullptr);
    EXPECT_EQ(file->occupancy(), 0u);
}

TYPED_TEST(MshrFileTest, ManyDistinctLines)
{
    auto file = TestFixture::make();
    std::set<Addr> inserted;
    Rng rng(5);
    // Fill to half capacity; every line must remain findable.
    while (inserted.size() < file->capacity() / 2) {
        const Addr line = rng.below(1 << 20) * kLineBytes;
        if (inserted.count(line))
            continue;
        if (file->insert(line) != nullptr)
            inserted.insert(line);
    }
    for (Addr line : inserted)
        EXPECT_NE(file->find(line), nullptr);
    for (Addr line : inserted)
        file->erase(line);
    EXPECT_EQ(file->occupancy(), 0u);
}

TEST(AssocMshr, FailsWhenFull)
{
    AssocMshr file(4);
    for (Addr i = 0; i < 4; ++i)
        ASSERT_NE(file.insert(i * kLineBytes), nullptr);
    EXPECT_EQ(file.insert(100 * kLineBytes), nullptr);
    EXPECT_EQ(file.stats().insert_failures, 1u);
    file.erase(0);
    EXPECT_NE(file.insert(100 * kLineBytes), nullptr);
}

TEST(CuckooMshr, KicksRelocateWithoutLosingEntries)
{
    // Small file forces kicks at moderate load.
    CuckooMshr file(16, 2, 16);
    std::set<Addr> inserted;
    Rng rng(11);
    while (inserted.size() < 10) {
        const Addr line = rng.below(1 << 16) * kLineBytes;
        if (inserted.count(line))
            continue;
        if (file.insert(line) != nullptr)
            inserted.insert(line);
    }
    for (Addr line : inserted)
        EXPECT_NE(file.find(line), nullptr) << line;
}

TEST(CuckooMshr, FailedInsertIsFullyUndone)
{
    // Fill a tiny file until an insert fails, then verify every
    // previously inserted line is still findable (the kick chain must
    // have been unwound).
    CuckooMshr file(8, 2, 4);
    std::set<Addr> inserted;
    Rng rng(13);
    bool failed = false;
    for (int attempts = 0; attempts < 10000 && !failed; ++attempts) {
        const Addr line = rng.below(1 << 18) * kLineBytes;
        if (inserted.count(line))
            continue;
        if (MshrEntry* e = file.insert(line)) {
            e->subentry_count = static_cast<std::uint32_t>(line);
            inserted.insert(line);
        } else {
            failed = true;
            EXPECT_EQ(file.find(line), nullptr);
        }
    }
    ASSERT_TRUE(failed) << "test did not exercise the failure path";
    EXPECT_EQ(file.occupancy(), inserted.size());
    for (Addr line : inserted) {
        MshrEntry* e = file.find(line);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->subentry_count, static_cast<std::uint32_t>(line));
    }
}

TEST(CuckooMshr, RejectsBadGeometry)
{
    EXPECT_THROW(CuckooMshr(10, 4, 8), FatalError);  // not divisible
    EXPECT_THROW(CuckooMshr(12, 4, 8), FatalError);  // 3 not pow2
    EXPECT_THROW(CuckooMshr(16, 0, 8), FatalError);
}

TEST(SubentryStore, AppendsPreserveFifoOrder)
{
    SubentryStore store(16);
    MshrEntry entry;
    entry.valid = true;
    for (std::uint64_t t = 0; t < 5; ++t)
        ASSERT_TRUE(store.append(entry, t, 0,
                                 static_cast<std::uint16_t>(4 * t)));
    EXPECT_EQ(entry.subentry_count, 5u);
    std::uint32_t cursor = store.head(entry);
    for (std::uint64_t t = 0; t < 5; ++t) {
        ASSERT_NE(cursor, kNoSubentry);
        EXPECT_EQ(store.at(cursor).tag, t);
        EXPECT_EQ(store.at(cursor).line_offset, 4 * t);
        cursor = store.free(cursor);
    }
    EXPECT_EQ(cursor, kNoSubentry);
    EXPECT_EQ(store.occupancy(), 0u);
}

TEST(SubentryStore, ExhaustionAndRecycling)
{
    SubentryStore store(4);
    MshrEntry a, b;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(store.append(a, i, 0, 0));
    EXPECT_TRUE(store.full());
    EXPECT_FALSE(store.append(b, 99, 0, 0));
    EXPECT_EQ(store.stats().alloc_failures, 1u);
    // Free one; the slot must be reusable.
    std::uint32_t head = store.head(a);
    store.free(head);
    EXPECT_FALSE(store.full());
    EXPECT_TRUE(store.append(b, 99, 0, 0));
    EXPECT_EQ(store.at(store.head(b)).tag, 99u);
}

TEST(SubentryStore, TracksPeakOccupancy)
{
    SubentryStore store(8);
    MshrEntry e;
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(store.append(e, i, 0, 0));
    std::uint32_t cursor = store.head(e);
    for (int i = 0; i < 6; ++i)
        cursor = store.free(cursor);
    EXPECT_EQ(store.stats().peak_occupancy, 6u);
    EXPECT_EQ(store.occupancy(), 0u);
}

} // namespace
} // namespace gmoms
