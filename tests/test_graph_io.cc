/**
 * @file
 * Tests for COO edge-list and binary graph I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/graph/generator.hh"
#include "src/graph/io.hh"
#include "src/sim/log.hh"

namespace gmoms
{
namespace
{

struct TempFile
{
    std::string path;
    explicit TempFile(const char* name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

TEST(GraphIo, TextRoundtripUnweighted)
{
    TempFile f("gmoms_text.txt");
    CooGraph g = uniformRandom(100, 500, 3);
    saveEdgeList(g, f.path);
    CooGraph r = loadEdgeList(f.path, 100);
    ASSERT_EQ(r.numEdges(), g.numEdges());
    EXPECT_EQ(r.numNodes(), 100u);
    EXPECT_FALSE(r.weighted());
    for (EdgeId i = 0; i < g.numEdges(); ++i) {
        EXPECT_EQ(r.edges()[i].src, g.edges()[i].src);
        EXPECT_EQ(r.edges()[i].dst, g.edges()[i].dst);
    }
}

TEST(GraphIo, TextRoundtripWeighted)
{
    TempFile f("gmoms_textw.txt");
    CooGraph g = uniformRandom(50, 200, 7);
    addRandomWeights(g, 9);
    saveEdgeList(g, f.path);
    CooGraph r = loadEdgeList(f.path);
    ASSERT_TRUE(r.weighted());
    for (EdgeId i = 0; i < g.numEdges(); ++i)
        EXPECT_EQ(r.edges()[i].weight, g.edges()[i].weight);
}

TEST(GraphIo, SnapStyleCommentsSkipped)
{
    TempFile f("gmoms_snap.txt");
    {
        std::ofstream out(f.path);
        out << "# Directed graph from SNAP\n";
        out << "% KONECT-style comment\n";
        out << "0 1\n2 3\n";
    }
    CooGraph g = loadEdgeList(f.path);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.numNodes(), 4u);  // max id + 1
}

TEST(GraphIo, MalformedLineFails)
{
    TempFile f("gmoms_bad.txt");
    {
        std::ofstream out(f.path);
        out << "0 notanumber\n";
    }
    EXPECT_THROW(loadEdgeList(f.path), FatalError);
}

TEST(GraphIo, MissingFileFails)
{
    EXPECT_THROW(loadEdgeList("/nonexistent/graph.txt"), FatalError);
    EXPECT_THROW(loadBinary("/nonexistent/graph.bin"), FatalError);
}

TEST(GraphIo, BinaryRoundtripExact)
{
    TempFile f("gmoms_bin.bin");
    CooGraph g = rmat(10, 3000, RmatParams{}, 5);
    addRandomWeights(g, 6);
    saveBinary(g, f.path);
    CooGraph r = loadBinary(f.path);
    EXPECT_EQ(r.numNodes(), g.numNodes());
    EXPECT_TRUE(r.weighted());
    ASSERT_EQ(r.numEdges(), g.numEdges());
    for (EdgeId i = 0; i < g.numEdges(); ++i) {
        EXPECT_EQ(r.edges()[i].src, g.edges()[i].src);
        EXPECT_EQ(r.edges()[i].dst, g.edges()[i].dst);
        EXPECT_EQ(r.edges()[i].weight, g.edges()[i].weight);
    }
}

TEST(GraphIo, BinaryRejectsWrongMagic)
{
    TempFile f("gmoms_notbin.bin");
    {
        std::ofstream out(f.path, std::ios::binary);
        out << "this is not a gmoms graph";
    }
    EXPECT_THROW(loadBinary(f.path), FatalError);
}

} // namespace
} // namespace gmoms
