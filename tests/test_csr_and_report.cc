/**
 * @file
 * Tests for the CSR substrate and the JSON report writer.
 */

#include <gtest/gtest.h>

#include "src/graph/csr.hh"
#include "src/graph/generator.hh"
#include "src/sim/report.hh"

namespace gmoms
{
namespace
{

TEST(Csr, RoundtripPreservesEdgesRowMajor)
{
    CooGraph g = uniformRandom(200, 2000, 3);
    addRandomWeights(g, 5);
    CsrGraph csr(g);
    EXPECT_EQ(csr.numNodes(), g.numNodes());
    EXPECT_EQ(csr.numEdges(), g.numEdges());

    // Every COO edge appears under its source row with its weight.
    std::vector<std::multiset<std::pair<NodeId, std::uint32_t>>>
        expected(g.numNodes());
    for (const Edge& e : g.edges())
        expected[e.src].insert({e.dst, e.weight});
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        auto nbrs = csr.neighbors(n);
        auto w = csr.weights(n);
        ASSERT_EQ(nbrs.size(), expected[n].size());
        std::multiset<std::pair<NodeId, std::uint32_t>> got;
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            got.insert({nbrs[i], w[i]});
        EXPECT_EQ(got, expected[n]);
    }

    CooGraph back = csr.toCoo();
    EXPECT_EQ(back.numEdges(), g.numEdges());
    EXPECT_EQ(back.outDegrees(), g.outDegrees());
    EXPECT_EQ(back.inDegrees(), g.inDegrees());
}

TEST(Csr, DegreesMatchCoo)
{
    CooGraph g = rmat(11, 20000, RmatParams{}, 9);
    CsrGraph csr(g);
    auto deg = g.outDegrees();
    for (NodeId n = 0; n < g.numNodes(); ++n)
        EXPECT_EQ(csr.outDegree(n), deg[n]);
}

TEST(Csr, UnweightedHasEmptyWeightSpans)
{
    CooGraph g = uniformRandom(50, 300, 1);
    CsrGraph csr(g);
    EXPECT_FALSE(csr.weighted());
    EXPECT_TRUE(csr.weights(0).empty());
}

TEST(Csr, EmptyRowsHandled)
{
    CooGraph g(10);
    g.addEdge(3, 7);
    CsrGraph csr(g);
    EXPECT_TRUE(csr.neighbors(0).empty());
    ASSERT_EQ(csr.neighbors(3).size(), 1u);
    EXPECT_EQ(csr.neighbors(3)[0], 7u);
    EXPECT_TRUE(csr.neighbors(9).empty());
}

TEST(JsonReport, SerializesAllValueKinds)
{
    JsonReport r;
    r.set("name", std::string("two-level"))
        .set("gteps", 1.25)
        .set("cycles", std::uint64_t{12345})
        .set("discarded", false);
    EXPECT_EQ(r.str(), "{\"name\":\"two-level\",\"gteps\":1.25,"
                       "\"cycles\":12345,\"discarded\":false}");
}

TEST(JsonReport, EscapesStrings)
{
    JsonReport r;
    r.set("msg", std::string("a\"b\\c\nd"));
    EXPECT_EQ(r.str(), "{\"msg\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonReport, NonFiniteNumbersBecomeNull)
{
    JsonReport r;
    r.set("bad", std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.str(), "{\"bad\":null}");
}

} // namespace
} // namespace gmoms
