/**
 * @file
 * Tests for the CSR substrate and the JSON report writer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/graph/csr.hh"
#include "src/graph/generator.hh"
#include "src/obs/json_check.hh"
#include "src/sim/report.hh"

namespace gmoms
{
namespace
{

TEST(Csr, RoundtripPreservesEdgesRowMajor)
{
    CooGraph g = uniformRandom(200, 2000, 3);
    addRandomWeights(g, 5);
    CsrGraph csr(g);
    EXPECT_EQ(csr.numNodes(), g.numNodes());
    EXPECT_EQ(csr.numEdges(), g.numEdges());

    // Every COO edge appears under its source row with its weight.
    std::vector<std::multiset<std::pair<NodeId, std::uint32_t>>>
        expected(g.numNodes());
    for (const Edge& e : g.edges())
        expected[e.src].insert({e.dst, e.weight});
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        auto nbrs = csr.neighbors(n);
        auto w = csr.weights(n);
        ASSERT_EQ(nbrs.size(), expected[n].size());
        std::multiset<std::pair<NodeId, std::uint32_t>> got;
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            got.insert({nbrs[i], w[i]});
        EXPECT_EQ(got, expected[n]);
    }

    CooGraph back = csr.toCoo();
    EXPECT_EQ(back.numEdges(), g.numEdges());
    EXPECT_EQ(back.outDegrees(), g.outDegrees());
    EXPECT_EQ(back.inDegrees(), g.inDegrees());
}

TEST(Csr, DegreesMatchCoo)
{
    CooGraph g = rmat(11, 20000, RmatParams{}, 9);
    CsrGraph csr(g);
    auto deg = g.outDegrees();
    for (NodeId n = 0; n < g.numNodes(); ++n)
        EXPECT_EQ(csr.outDegree(n), deg[n]);
}

TEST(Csr, UnweightedHasEmptyWeightSpans)
{
    CooGraph g = uniformRandom(50, 300, 1);
    CsrGraph csr(g);
    EXPECT_FALSE(csr.weighted());
    EXPECT_TRUE(csr.weights(0).empty());
}

TEST(Csr, EmptyRowsHandled)
{
    CooGraph g(10);
    g.addEdge(3, 7);
    CsrGraph csr(g);
    EXPECT_TRUE(csr.neighbors(0).empty());
    ASSERT_EQ(csr.neighbors(3).size(), 1u);
    EXPECT_EQ(csr.neighbors(3)[0], 7u);
    EXPECT_TRUE(csr.neighbors(9).empty());
}

TEST(JsonReport, SerializesAllValueKinds)
{
    JsonReport r;
    r.set("name", std::string("two-level"))
        .set("gteps", 1.25)
        .set("cycles", std::uint64_t{12345})
        .set("discarded", false);
    EXPECT_EQ(r.str(), "{\"name\":\"two-level\",\"gteps\":1.25,"
                       "\"cycles\":12345,\"discarded\":false}");
}

TEST(JsonReport, EscapesStrings)
{
    JsonReport r;
    r.set("msg", std::string("a\"b\\c\nd"));
    EXPECT_EQ(r.str(), "{\"msg\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonReport, NonFiniteNumbersBecomeNull)
{
    JsonReport r;
    r.set("bad", std::numeric_limits<double>::infinity());
    EXPECT_EQ(r.str(), "{\"bad\":null}");
    JsonReport n;
    n.set("nan", std::nan(""));
    EXPECT_EQ(n.str(), "{\"nan\":null}");
}

TEST(JsonReport, EscapesControlCharacters)
{
    JsonReport r;
    r.set("msg", std::string("cr\r bs\b ff\f nul") +
                     std::string(1, '\0') + "esc\x1b!");
    EXPECT_EQ(r.str(),
              "{\"msg\":\"cr\\r bs\\b ff\\f nul\\u0000esc\\u001b!\"}");
}

TEST(JsonReport, EscapedOutputParsesBack)
{
    // Round-trip through the strict parser: every byte below 0x20 plus
    // the quote/backslash cases must come back intact.
    std::string nasty = "q\" b\\ nl\n tab\t cr\r";
    for (int c = 0; c < 0x20; ++c)
        nasty.push_back(static_cast<char>(c));
    JsonReport r;
    r.set("k", nasty);
    std::string error;
    const auto parsed = parseJson(r.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue* v = parsed->find("k");
    ASSERT_NE(v, nullptr);
    ASSERT_TRUE(v->isString());
    EXPECT_EQ(v->string, nasty);
}

TEST(JsonReport, BenchRecordRoundTrips)
{
    // The shape bench binaries emit (arch_explorer --json / the
    // BENCH_engine.json payload) must parse back with types intact.
    JsonReport r;
    r.set("design", std::string("16/16 two-level"))
        .set("gteps", 1.25)
        .set("cycles", std::uint64_t{123456789})
        .set("discarded", false)
        .set("nested", JsonReport::Raw{"{\"value\":42}"});
    std::string error;
    const auto parsed = parseJson(r.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_TRUE(parsed->isObject());
    EXPECT_EQ(parsed->find("design")->string, "16/16 two-level");
    EXPECT_DOUBLE_EQ(parsed->find("gteps")->number, 1.25);
    EXPECT_DOUBLE_EQ(parsed->find("cycles")->number, 123456789.0);
    ASSERT_NE(parsed->find("discarded"), nullptr);
    EXPECT_FALSE(parsed->find("discarded")->boolean);
    const JsonValue* nested = parsed->find("nested");
    ASSERT_NE(nested, nullptr);
    ASSERT_TRUE(nested->isObject());
    EXPECT_DOUBLE_EQ(nested->find("value")->number, 42.0);
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    EXPECT_FALSE(parseJson("{\"a\":}").has_value());
    EXPECT_FALSE(parseJson("{\"a\":1,}").has_value());
    EXPECT_FALSE(parseJson("{} trailing").has_value());
    EXPECT_FALSE(parseJson("\"raw\tcontrol\"").has_value());
    EXPECT_TRUE(parseJson("{\"a\":[1,2,{\"b\":null}]}").has_value());
}

} // namespace
} // namespace gmoms
