/**
 * @file
 * Unit tests for the simulation kernel: engine, timed queues, RNG, stats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/engine.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"
#include "src/sim/timed_queue.hh"
#include "src/sim/types.hh"

namespace gmoms
{
namespace
{

class CounterComponent : public Component
{
  public:
    CounterComponent() : Component("counter") {}
    void tick() override { ++ticks; }
    std::uint64_t ticks = 0;
};

TEST(Engine, TicksEveryComponentOncePerCycle)
{
    Engine eng;
    CounterComponent a, b;
    eng.add(&a);
    eng.add(&b);
    for (int i = 0; i < 10; ++i)
        eng.tick();
    EXPECT_EQ(eng.now(), 10u);
    EXPECT_EQ(a.ticks, 10u);
    EXPECT_EQ(b.ticks, 10u);
}

TEST(Engine, RunUntilStopsOnPredicate)
{
    Engine eng;
    CounterComponent a;
    eng.add(&a);
    bool ok = eng.runUntil([&] { return a.ticks >= 5; }, 100);
    EXPECT_TRUE(ok);
    EXPECT_EQ(a.ticks, 5u);
}

TEST(Engine, RunUntilHonorsCycleLimit)
{
    Engine eng;
    bool ok = eng.runUntil([] { return false; }, 42);
    EXPECT_FALSE(ok);
    EXPECT_EQ(eng.now(), 42u);
}

TEST(TimedQueue, TokenInvisibleBeforeLatencyElapses)
{
    Engine eng;
    TimedQueue<int> q(eng, 4, 3);
    ASSERT_TRUE(q.push(7));
    EXPECT_FALSE(q.canPop());
    eng.tick();
    eng.tick();
    EXPECT_FALSE(q.canPop());
    eng.tick();
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 7);
}

TEST(TimedQueue, CapacityBackpressure)
{
    Engine eng;
    TimedQueue<int> q(eng, 2, 1);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.canPush());
    EXPECT_FALSE(q.push(3));
    eng.tick();
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.push(3));
}

TEST(TimedQueue, PreservesFifoOrder)
{
    Engine eng;
    TimedQueue<int> q(eng, 8, 2);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.push(i));
    eng.tick();
    eng.tick();
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.canPop());
        EXPECT_EQ(q.pop(), i);
    }
    EXPECT_TRUE(q.empty());
}

TEST(TimedQueue, InterleavedPushPopKeepsPerTokenLatency)
{
    Engine eng;
    TimedQueue<Cycle> q(eng, 16, 4);
    // Push one token per cycle stamped with its push cycle; verify each
    // pops exactly 4 cycles later.
    std::uint64_t popped = 0;
    for (Cycle c = 0; c < 40; ++c) {
        if (c < 20) {
            ASSERT_TRUE(q.push(eng.now()));
        }
        if (q.canPop()) {
            Cycle pushed = q.pop();
            EXPECT_EQ(eng.now(), pushed + 4);
            ++popped;
        }
        eng.tick();
    }
    EXPECT_EQ(popped, 20u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng r(99);
    double mn = 1.0, mx = 0.0, sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        mn = std::min(mn, u);
        mx = std::max(mx, u);
        sum += u;
    }
    EXPECT_GE(mn, 0.0);
    EXPECT_LT(mx, 1.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(StatRegistry, RegistersAndReads)
{
    StatRegistry reg;
    std::uint64_t c = 42;
    double g = 2.5;
    reg.addCounter("a.b.count", &c);
    reg.addGauge("a.b.gauge", &g);
    EXPECT_TRUE(reg.has("a.b.count"));
    EXPECT_FALSE(reg.has("missing"));
    ASSERT_TRUE(reg.tryValue("a.b.count").has_value());
    EXPECT_DOUBLE_EQ(*reg.tryValue("a.b.count"), 42.0);
    EXPECT_DOUBLE_EQ(*reg.tryValue("a.b.gauge"), 2.5);
    c = 43;
    EXPECT_DOUBLE_EQ(*reg.tryValue("a.b.count"), 43.0);
}

TEST(StatRegistry, StrictLookupsDistinguishMissingFromZero)
{
    StatRegistry reg;
    std::uint64_t zero = 0;
    reg.addCounter("present.zero", &zero);
    EXPECT_TRUE(reg.tryValue("present.zero").has_value());
    EXPECT_FALSE(reg.tryValue("absent").has_value());
    EXPECT_DOUBLE_EQ(reg.valueOr("present.zero", -1.0), 0.0);
    EXPECT_DOUBLE_EQ(reg.valueOr("absent", -1.0), -1.0);
    // The legacy lookup keeps its silent-zero contract.
    EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
}

TEST(StatRegistry, RemoveAndRemovePrefix)
{
    StatRegistry reg;
    std::uint64_t a = 1, b = 2, c = 3;
    reg.addCounter("pe0.edges", &a);
    reg.addCounter("pe0.jobs", &b);
    reg.addCounter("pe1.edges", &c);
    EXPECT_TRUE(reg.remove("pe0.jobs"));
    EXPECT_FALSE(reg.remove("pe0.jobs"));
    EXPECT_EQ(reg.removePrefix("pe0."), 1u);
    EXPECT_FALSE(reg.has("pe0.edges"));
    EXPECT_TRUE(reg.has("pe1.edges"));
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, EraserUnregistersWhenComponentDiesFirst)
{
    StatRegistry reg;
    {
        std::uint64_t doomed = 7;
        StatRegistry::Eraser eraser = reg.scopedPrefix("tmp.");
        reg.addCounter("tmp.count", &doomed);
        EXPECT_TRUE(reg.has("tmp.count"));
        // eraser and doomed leave scope together: the entry must go
        // before the pointer dangles.
    }
    EXPECT_FALSE(reg.has("tmp.count"));
    EXPECT_EQ(reg.size(), 0u);
    // dump() over the now-empty registry must not touch freed memory
    // (run under ASan in CI).
    std::ostringstream os;
    reg.dump(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(StatRegistry, EraserSafeWhenRegistryDiesFirst)
{
    std::uint64_t counter = 1;
    StatRegistry::Eraser survivor;
    {
        StatRegistry reg;
        reg.addCounter("x.count", &counter);
        survivor = reg.scopedPrefix("x.");
    }
    survivor.release();  // registry is gone: must be a quiet no-op
}

TEST(Types, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_FALSE(isPow2(0));
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

} // namespace
} // namespace gmoms
