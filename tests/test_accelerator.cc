/**
 * @file
 * End-to-end tests: the timed accelerator must compute the same results
 * as the functional Template 1 executor and the golden algorithms, for
 * every algorithm and MOMS organization.
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/algo/golden.hh"
#include "src/algo/reference.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

AccelConfig
smallConfig(std::uint32_t pes = 4, std::uint32_t channels = 2,
            MomsConfig moms = MomsConfig::twoLevel(4))
{
    AccelConfig cfg;
    cfg.num_pes = pes;
    cfg.mem.channels = channels;
    cfg.moms = moms;
    cfg.moms.shared_bank.num_mshrs = 128;
    cfg.moms.shared_bank.num_subentries = 2048;
    cfg.moms.shared_bank.cache_bytes = 8192;
    cfg.moms.private_bank.num_mshrs = 128;
    cfg.moms.private_bank.num_subentries = 2048;
    cfg.max_threads = 256;
    return cfg;
}

RunResult
runAccel(const CooGraph& g, const AlgoSpec& spec, AccelConfig cfg,
         std::uint32_t nd = 256, std::uint32_t ns = 512)
{
    PartitionedGraph pg(g, nd, ns);
    Accelerator accel(cfg, pg, spec);
    return accel.run();
}

TEST(Accelerator, SccMatchesGoldenOnRmat)
{
    CooGraph g = rmat(11, 10000, RmatParams{}, 77);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    RunResult res = runAccel(g, spec, smallConfig());
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    ASSERT_EQ(res.raw_values.size(), g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]) << "node " << i;
    EXPECT_GT(res.edges_processed, 0u);
    EXPECT_GT(res.cycles, 0u);
}

TEST(Accelerator, PageRankMatchesGoldenWithinTolerance)
{
    CooGraph g = uniformRandom(2000, 20000, 5);
    AlgoSpec spec = AlgoSpec::pageRank(g, 5);
    RunResult res = runAccel(g, spec, smallConfig());
    std::vector<double> golden = goldenPageRank(g, 5);
    EXPECT_EQ(res.iterations, 5u);
    for (NodeId i = 0; i < g.numNodes(); ++i) {
        const double got = spec.finalValue(res.raw_values[i], i);
        EXPECT_NEAR(got, golden[i], 2e-4 * golden[i] + 1e-8)
            << "node " << i;
    }
}

TEST(Accelerator, SsspMatchesGoldenOnWeightedGraph)
{
    CooGraph g = uniformRandom(1500, 15000, 15);
    addRandomWeights(g, 8);
    AlgoSpec spec = AlgoSpec::sssp(0);
    RunResult res = runAccel(g, spec, smallConfig());
    std::vector<std::uint32_t> golden = goldenSssp(g, 0);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]) << "node " << i;
}

TEST(Accelerator, BfsMatchesGolden)
{
    CooGraph g = rmat(10, 6000, RmatParams{}, 33);
    AlgoSpec spec = AlgoSpec::bfs(3);
    RunResult res = runAccel(g, spec, smallConfig());
    std::vector<std::uint32_t> golden = goldenBfs(g, 3);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]) << "node " << i;
}

TEST(Accelerator, WccMatchesReferenceExecutor)
{
    CooGraph g = uniformRandom(800, 3000, 21).withReverseEdges();
    AlgoSpec spec = AlgoSpec::wcc(g.numNodes());
    RunResult res = runAccel(g, spec, smallConfig());
    PartitionedGraph pg(g, 256, 512);
    ReferenceResult ref = runReference(pg, spec);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], ref.raw_values[i]);
}

struct TopologyParam
{
    const char* name;
    MomsConfig config;
};

class AcceleratorTopology
    : public ::testing::TestWithParam<TopologyParam>
{
};

TEST_P(AcceleratorTopology, SccCorrectOnEveryMomsOrganization)
{
    CooGraph g = rmat(10, 8000, RmatParams{}, 55);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    RunResult res =
        runAccel(g, spec, smallConfig(4, 2, GetParam().config));
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        ASSERT_EQ(res.raw_values[i], golden[i])
            << GetParam().name << " node " << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, AcceleratorTopology,
    ::testing::Values(
        TopologyParam{"shared", MomsConfig::shared(4)},
        TopologyParam{"private", MomsConfig::privateOnly()},
        TopologyParam{"two_level", MomsConfig::twoLevel(4)},
        TopologyParam{"two_level_pcache",
                      MomsConfig::twoLevel(4, 8192)},
        TopologyParam{"cacheless",
                      MomsConfig::twoLevel(4).withoutCacheArrays()},
        TopologyParam{"trad_shared", MomsConfig::traditionalShared(4)},
        TopologyParam{"trad_two_level",
                      MomsConfig::traditionalTwoLevel(4)}),
    [](const ::testing::TestParamInfo<TopologyParam>& info) {
        return info.param.name;
    });

TEST(Accelerator, EdgeWorkMatchesReferenceExecutor)
{
    // The timed machine must process exactly the edges the functional
    // executor processes when convergence behaviour matches, which is
    // guaranteed for synchronous execution.
    CooGraph g = uniformRandom(1000, 8000, 9);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    spec.synchronous = true;
    spec.use_local_src = false;
    RunResult res = runAccel(g, spec, smallConfig());
    PartitionedGraph pg(g, 256, 512);
    ReferenceResult ref = runReference(pg, spec);
    EXPECT_EQ(res.iterations, ref.iterations);
    EXPECT_EQ(res.edges_processed, ref.edges_processed);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], ref.raw_values[i]);
}

TEST(Accelerator, ConvergenceSkipsWork)
{
    // SCC on a long chain converges slowly but the active-shard
    // mechanism must prune work: total processed edges << iters * M.
    CooGraph g = chain(2000);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 100);
    RunResult res = runAccel(g, spec, smallConfig(), 256, 512);
    EXPECT_GT(res.iterations, 2u);
    EXPECT_LT(res.edges_processed,
              static_cast<EdgeId>(res.iterations) * g.numEdges());
    std::vector<std::uint32_t> golden = goldenMinLabel(g);
    for (NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_EQ(res.raw_values[i], golden[i]);
}

TEST(Accelerator, MemoryBoundRunScalesWithChannels)
{
    // A scattered, cache-less workload is DRAM-bound; adding channels
    // must help substantially (Fig. 14's memory-bound benchmarks). Small
    // compute-bound runs may even degrade slightly (worse row locality),
    // which matches the paper's own caveats, so we test the
    // memory-bound regime.
    CooGraph g = uniformRandom(1 << 16, 100000, 3);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 2);
    spec.use_local_src = false;
    MomsConfig moms = MomsConfig::shared(8).withoutCacheArrays();
    RunResult one = runAccel(g, spec, smallConfig(8, 1, moms));
    RunResult four = runAccel(g, spec, smallConfig(8, 4, moms));
    EXPECT_LT(static_cast<double>(four.cycles),
              0.7 * static_cast<double>(one.cycles));
}

TEST(Accelerator, SkewedGraphBenefitsFromMerging)
{
    // A star graph: every edge reads the same source node. The MOMS
    // must coalesce nearly all of those reads.
    CooGraph g = star(4000);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 3);
    spec.use_local_src = false;  // force every read through the MOMS
    RunResult res = runAccel(g, spec, smallConfig());
    EXPECT_GT(res.moms_requests, 3000u);
    EXPECT_LT(res.moms_lines_from_mem, res.moms_requests / 10);
}

TEST(Accelerator, RawStallsOnlyWithDeepPipelines)
{
    CooGraph g = uniformRandom(500, 8000, 70);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes());
    RunResult r1 = runAccel(g, scc, smallConfig());
    EXPECT_EQ(r1.pe_raw_stalls, 0u) << "combinational gather never "
                                       "stalls";
    AlgoSpec pr = AlgoSpec::pageRank(g, 2);
    RunResult r2 = runAccel(g, pr, smallConfig());
    // A dense-ish graph into few intervals: some RAW conflicts occur.
    EXPECT_GT(r2.pe_raw_stalls, 0u);
}

TEST(Accelerator, DramTrafficAccounted)
{
    CooGraph g = uniformRandom(1000, 10000, 44);
    AlgoSpec spec = AlgoSpec::scc(g.numNodes());
    RunResult res = runAccel(g, spec, smallConfig());
    // At minimum the edges and node arrays moved once.
    EXPECT_GT(res.dram_bytes_read, 4ull * g.numEdges());
    EXPECT_GT(res.dram_bytes_written, 0u);
}

TEST(Accelerator, GtepsComputation)
{
    RunResult r;
    r.cycles = 1000;
    r.edges_processed = 200'000;
    // 200k edges in 1000 cycles at 200 MHz = 40 GTEPS.
    EXPECT_NEAR(r.gteps(200.0), 40.0, 1e-9);
}

} // namespace
} // namespace gmoms
