/**
 * @file
 * Template 1 semantics tests: active-shard bookkeeping, synchronous
 * array swapping and the always_active behaviour, checked both on the
 * reference executor and through the timed accelerator's counters.
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/algo/reference.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

TEST(TemplateSemantics, AlwaysActiveProcessesEveryEdgeEveryIteration)
{
    CooGraph g = uniformRandom(300, 3000, 3);
    AlgoSpec pr = AlgoSpec::pageRank(g, 4);
    PartitionedGraph pg(g, 64, 128);
    ReferenceResult res = runReference(pg, pr);
    EXPECT_EQ(res.iterations, 4u);
    EXPECT_EQ(res.edges_processed, 4u * g.numEdges());
}

TEST(TemplateSemantics, ConvergedAlgorithmStopsEarly)
{
    // A star: one iteration propagates the minimum, a second confirms
    // no change (plus template bookkeeping).
    CooGraph g = star(100);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes(), 50);
    PartitionedGraph pg(g, 32, 64);
    ReferenceResult res = runReference(pg, scc);
    EXPECT_LE(res.iterations, 3u);
    for (NodeId i = 0; i < 100; ++i)
        EXPECT_EQ(res.raw_values[i], 0u);
}

TEST(TemplateSemantics, InactiveSourceIntervalsSkipTheirEdges)
{
    // Two disconnected halves. A SSSP from a source in the first half
    // never activates the second half's source intervals after the
    // first iteration.
    const NodeId half = 512;
    CooGraph g(2 * half);
    for (NodeId i = 0; i + 1 < half; ++i)
        g.addEdge(i, i + 1, 1);
    for (NodeId i = half; i + 1 < 2 * half; ++i)
        g.addEdge(i, i + 1, 1);
    g.setWeighted(true);
    AlgoSpec sssp = AlgoSpec::sssp(0, 1000);
    PartitionedGraph pg(g, 128, 256);  // halves in separate intervals
    ReferenceResult res = runReference(pg, sssp);
    // The reachable half converges; unreachable stays INF.
    for (NodeId i = 0; i < half; ++i)
        EXPECT_EQ(res.raw_values[i], i);
    for (NodeId i = half; i < 2 * half; ++i)
        EXPECT_EQ(res.raw_values[i], kInfDist);
    // Work bound: the second half never updates, so from iteration 2
    // on its shards are inactive — strictly less than iters * M, and
    // at most M (full first sweep) plus half per later iteration.
    EXPECT_LT(res.edges_processed,
              static_cast<EdgeId>(res.iterations) * g.numEdges());
    EXPECT_LE(res.edges_processed,
              g.numEdges() + static_cast<EdgeId>(res.iterations) *
                                 g.numEdges() / 2);
}

TEST(TemplateSemantics, TimedAcceleratorSkipsInactiveShards)
{
    // Same structure through the timed machine: DRAM edge traffic in
    // late iterations should shrink, visible as total read bytes well
    // below iterations * edge bytes.
    const NodeId half = 512;
    CooGraph g(2 * half);
    for (NodeId i = 0; i + 1 < half; ++i)
        g.addEdge(i, i + 1, 1);
    for (NodeId i = half; i + 1 < 2 * half; ++i)
        g.addEdge(i, i + 1, 1);
    g.setWeighted(true);
    AlgoSpec sssp = AlgoSpec::sssp(0, 1000);
    AccelConfig cfg;
    cfg.num_pes = 2;
    cfg.mem.channels = 1;
    cfg.moms = MomsConfig::twoLevel(1);
    PartitionedGraph pg(g, 128, 256);
    Accelerator accel(cfg, pg, sssp);
    RunResult res = accel.run();
    for (NodeId i = 0; i < half; ++i)
        EXPECT_EQ(res.raw_values[i], i);
    EXPECT_LT(static_cast<double>(res.edges_processed),
              0.8 * static_cast<double>(res.iterations) *
                  static_cast<double>(g.numEdges()));
}

TEST(TemplateSemantics, SynchronousSwapIsolatesIterations)
{
    // In synchronous mode, values written in iteration t must not be
    // visible within iteration t. A chain seeded at node 0 propagates
    // exactly one hop per synchronous iteration.
    CooGraph g = chain(10);
    AlgoSpec bfs = AlgoSpec::bfs(0, 3);  // capped at 3 iterations
    bfs.synchronous = true;
    bfs.use_local_src = false;
    PartitionedGraph pg(g, 16, 32);
    ReferenceResult res = runReference(pg, bfs);
    EXPECT_EQ(res.raw_values[1], 1u);
    EXPECT_EQ(res.raw_values[2], 2u);
    EXPECT_EQ(res.raw_values[3], 3u);
    EXPECT_EQ(res.raw_values[4], kInfDist) << "one hop per iteration";
}

TEST(TemplateSemantics, AsynchronousPropagatesWithinIteration)
{
    // Asynchronous + use_local_src: within one destination interval a
    // whole chain collapses in a single iteration (partial values are
    // read from BRAM).
    CooGraph g = chain(10);
    AlgoSpec bfs = AlgoSpec::bfs(0, 1);
    PartitionedGraph pg(g, 16, 32);  // whole chain in one interval
    ReferenceResult res = runReference(pg, bfs);
    EXPECT_EQ(res.raw_values[9], 9u)
        << "async local propagation finishes in one iteration";
}

TEST(TemplateSemantics, UpdatedFlagIgnoredWhenAlwaysActive)
{
    // PageRank marks every processed edge as an update (always_active,
    // Template 1 line 16), so it runs exactly max_iterations even when
    // scores are already at their fixpoint.
    CooGraph g(64);
    for (NodeId i = 0; i < 64; ++i)
        g.addEdge(i, (i + 1) % 64);  // symmetric ring: PR is uniform
    AlgoSpec pr = AlgoSpec::pageRank(g, 5);
    PartitionedGraph pg(g, 32, 64);
    ReferenceResult res = runReference(pg, pr);
    EXPECT_EQ(res.iterations, 5u);
    EXPECT_EQ(res.edges_processed, 5u * g.numEdges());
}

TEST(TemplateSemantics, EdgelessGraphConvergesImmediatelyEvenForPr)
{
    // Template 1's continue flag is only raised inside the edge loop,
    // so a graph with no edges stops after one iteration regardless of
    // always_active — a faithful corner of the model.
    CooGraph g(64);
    AlgoSpec pr = AlgoSpec::pageRank(g, 5);
    PartitionedGraph pg(g, 32, 64);
    ReferenceResult res = runReference(pg, pr);
    EXPECT_EQ(res.iterations, 1u);
}

} // namespace
} // namespace gmoms
