/**
 * @file
 * Unit tests for the Fig. 4 DRAM layout: edge compression, pointer
 * packing, section placement and active-flag handling.
 */

#include <gtest/gtest.h>

#include "src/graph/generator.hh"
#include "src/sim/log.hh"
#include "src/graph/layout.hh"
#include "src/graph/partition.hh"

namespace gmoms
{
namespace
{

TEST(EdgeWord, PackUnpackRoundtrip)
{
    for (std::uint32_t src : {0u, 1u, 65535u, 1234u}) {
        for (std::uint32_t dst : {0u, 1u, 32767u, 999u}) {
            const std::uint32_t w = edgeword::pack(src, dst);
            EXPECT_FALSE(edgeword::isTerminating(w));
            EXPECT_EQ(edgeword::srcOff(w), src);
            EXPECT_EQ(edgeword::dstOff(w), dst);
        }
    }
    EXPECT_TRUE(edgeword::isTerminating(edgeword::kTerminating));
}

TEST(EdgePtr, PackUnpackRoundtrip)
{
    const std::uint64_t p = edgeptr::pack(0x123456789aull, 0x7ffffful,
                                          true);
    EXPECT_TRUE(edgeptr::isActive(p));
    EXPECT_EQ(edgeptr::startWord(p), 0x123456789aull);
    EXPECT_EQ(edgeptr::sizeWords(p), 0x7fffffull);
    const std::uint64_t q = edgeptr::pack(5, 16, false);
    EXPECT_FALSE(edgeptr::isActive(q));
}

class LayoutFixture : public ::testing::Test
{
  protected:
    GraphLayout::Options
    options(bool has_const, bool synchronous)
    {
        GraphLayout::Options o;
        o.has_const = has_const;
        o.synchronous = synchronous;
        o.init_value = [](NodeId n) { return n * 10; };
        o.const_value = [](NodeId n) { return n + 1000; };
        return o;
    }
};

TEST_F(LayoutFixture, NodeArraysArePopulated)
{
    CooGraph g = uniformRandom(300, 2000, 9);
    PartitionedGraph pg(g, 64, 128);
    GraphLayout layout(pg, options(true, true));
    BackingStore store;
    layout.build(pg, store);

    for (NodeId n = 0; n < 300; n += 37) {
        EXPECT_EQ(store.read32(layout.vInAddr(n)), n * 10);
        EXPECT_EQ(store.read32(layout.vConstAddr(n)), n + 1000);
        EXPECT_EQ(store.read32(layout.vOutAddr(n)), n * 10);
    }
    EXPECT_NE(layout.vInBase(), layout.vOutBase());
}

TEST_F(LayoutFixture, AsyncAliasesInAndOut)
{
    CooGraph g = uniformRandom(100, 500, 9);
    PartitionedGraph pg(g, 64, 128);
    GraphLayout layout(pg, options(false, false));
    EXPECT_EQ(layout.vInBase(), layout.vOutBase());
}

TEST_F(LayoutFixture, EveryShardDecodesBackToItsEdges)
{
    CooGraph g = uniformRandom(500, 5000, 21);
    PartitionedGraph pg(g, 128, 256);
    GraphLayout layout(pg, options(false, false));
    BackingStore store;
    layout.build(pg, store);

    for (std::uint32_t d = 0; d < pg.qd(); ++d) {
        for (std::uint32_t s = 0; s < pg.qs(); ++s) {
            const std::uint64_t ptr = store.read64(layout.ptrAddr(s, d));
            EXPECT_TRUE(edgeptr::isActive(ptr));
            const Addr base = 4 * edgeptr::startWord(ptr);
            EXPECT_EQ(base % kLineBytes, 0u) << "shards 64B-aligned";
            auto expect = pg.shardEdges(s, d);
            std::size_t i = 0;
            for (std::uint64_t w = 0; w < edgeptr::sizeWords(ptr); ++w) {
                const std::uint32_t word = store.read32(base + 4 * w);
                if (edgeword::isTerminating(word))
                    break;
                ASSERT_LT(i, expect.size());
                EXPECT_EQ(edgeword::srcOff(word),
                          expect[i].src - s * pg.ns());
                EXPECT_EQ(edgeword::dstOff(word),
                          expect[i].dst - d * pg.nd());
                ++i;
            }
            EXPECT_EQ(i, expect.size());
        }
    }
}

TEST_F(LayoutFixture, WeightedEdgesCarryWeights)
{
    CooGraph g = uniformRandom(200, 1000, 13);
    addRandomWeights(g, 31);
    PartitionedGraph pg(g, 64, 128);
    GraphLayout layout(pg, options(false, false));
    BackingStore store;
    layout.build(pg, store);

    const std::uint64_t ptr = store.read64(layout.ptrAddr(0, 0));
    const Addr base = 4 * edgeptr::startWord(ptr);
    auto expect = pg.shardEdges(0, 0);
    ASSERT_GT(expect.size(), 0u);
    std::size_t i = 0;
    for (std::uint64_t w = 0; w + 1 < edgeptr::sizeWords(ptr); w += 2) {
        const std::uint32_t word = store.read32(base + 4 * w);
        if (edgeword::isTerminating(word))
            break;
        EXPECT_EQ(store.read32(base + 4 * (w + 1)), expect[i].weight);
        ++i;
    }
    EXPECT_EQ(i, expect.size());
}

TEST_F(LayoutFixture, PaddingCarriesTerminatingFlag)
{
    // A shard with exactly 16 payload words would otherwise leave a
    // full extra line; verify every trailing word terminates.
    CooGraph g(64);
    for (int i = 0; i < 15; ++i)
        g.addEdge(static_cast<NodeId>(i % 8), static_cast<NodeId>(i % 8));
    PartitionedGraph pg(g, 64, 64);
    GraphLayout layout(pg, options(false, false));
    BackingStore store;
    layout.build(pg, store);
    const std::uint64_t ptr = store.read64(layout.ptrAddr(0, 0));
    const Addr base = 4 * edgeptr::startWord(ptr);
    // Words 15..end must all be terminating.
    for (std::uint64_t w = 15; w < edgeptr::sizeWords(ptr); ++w)
        EXPECT_TRUE(edgeword::isTerminating(store.read32(base + 4 * w)));
}

TEST_F(LayoutFixture, ActiveFlagToggles)
{
    CooGraph g = uniformRandom(100, 300, 3);
    PartitionedGraph pg(g, 64, 128);
    GraphLayout layout(pg, options(false, false));
    BackingStore store;
    layout.build(pg, store);
    EXPECT_TRUE(layout.isActive(store, 0, 0));
    layout.setActive(store, 0, 0, false);
    EXPECT_FALSE(layout.isActive(store, 0, 0));
    // Size/start fields must be untouched.
    layout.setActive(store, 0, 0, true);
    EXPECT_TRUE(layout.isActive(store, 0, 0));
}

TEST_F(LayoutFixture, SwapInOutOnlyWhenSynchronous)
{
    CooGraph g = uniformRandom(100, 300, 3);
    PartitionedGraph pg(g, 64, 128);
    GraphLayout sync_layout(pg, options(false, true));
    const Addr in0 = sync_layout.vInBase();
    const Addr out0 = sync_layout.vOutBase();
    sync_layout.swapInOut();
    EXPECT_EQ(sync_layout.vInBase(), out0);
    EXPECT_EQ(sync_layout.vOutBase(), in0);

    GraphLayout async_layout(pg, options(false, false));
    EXPECT_THROW(async_layout.swapInOut(), PanicError);
}

TEST_F(LayoutFixture, SectionsDoNotOverlap)
{
    CooGraph g = uniformRandom(1000, 8000, 77);
    PartitionedGraph pg(g, 256, 512);
    GraphLayout layout(pg, options(true, true));
    EXPECT_LT(layout.vInBase(), layout.vConstBase());
    EXPECT_LT(layout.vConstBase(), layout.vOutBase());
    EXPECT_LT(layout.vOutBase(), layout.edgeBase());
    EXPECT_LT(layout.edgeBase(), layout.ptrBase());
    EXPECT_LE(layout.ptrBase() + 8ull * pg.qs() * pg.qd(),
              layout.totalBytes());
}

} // namespace
} // namespace gmoms
