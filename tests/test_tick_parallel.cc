/**
 * @file
 * Determinism tests for phase-parallel ticking (tick groups on the
 * barrier-synchronized TickTeam): results, telemetry stall attribution
 * and check signatures must be bit-identical at ANY tick_threads value
 * — in both the idle-aware and the legacy full-tick engine, with
 * observability on or off. The contract is documented in docs/MODEL.md
 * "Deterministic parallel ticking & checkpoints".
 */

#include <gtest/gtest.h>

#include "src/accel/session.hh"
#include "src/graph/generator.hh"
#include "src/obs/telemetry.hh"
#include "src/serve/job.hh"
#include "src/sim/engine.hh"

namespace gmoms
{
namespace
{

/** Wide enough that both hazard-free groups form real parallel spans:
 *  4 DRAM channels and 8+8 cache banks clear kMinParallelSpan. */
AccelConfig
wideConfig()
{
    return AccelConfig::preset(MomsConfig::twoLevel(8), /*pes=*/8,
                               /*channels=*/4);
}

struct TickRun
{
    SessionResult res;
    std::uint64_t checksum = 0;
    std::string stalls;  //!< full bottleneck report, "" without tlm
};

TickRun
runAt(const CooGraph& g, unsigned threads, bool full_tick,
      bool telemetry, bool checks)
{
    AccelConfig cfg = wideConfig();
    cfg.tick_threads = threads;
    cfg.full_tick_engine = full_tick;
    cfg.telemetry.enabled = telemetry;
    cfg.checks.enabled = checks;
    Session session = SessionBuilder()
                          .dataset(CooGraph(g))
                          .config(cfg)
                          .preprocessing(Preprocessing::DbgHash)
                          .build();
    TickRun out;
    out.res = session.pageRank(2);
    out.checksum = serve::valuesChecksum(out.res.run.raw_values);
    if (out.res.run.telemetry)
        out.stalls = bottleneckReport(*out.res.run.telemetry);
    return out;
}

/** Everything observable must agree between @p a and @p b. */
void
expectIdentical(const TickRun& a, const TickRun& b,
                const std::string& label)
{
    EXPECT_EQ(a.res.run.cycles, b.res.run.cycles) << label;
    EXPECT_EQ(a.res.run.raw_values, b.res.run.raw_values) << label;
    EXPECT_EQ(a.checksum, b.checksum) << label;
    EXPECT_EQ(a.res.run.edges_processed, b.res.run.edges_processed)
        << label;
    EXPECT_EQ(a.res.run.dram_bytes_read, b.res.run.dram_bytes_read)
        << label;
    // Engine activity counters: a buffered wake replays through the
    // same accounting as a direct one, so even wake counts match.
    EXPECT_EQ(a.res.engine.ticks_executed, b.res.engine.ticks_executed)
        << label;
    EXPECT_EQ(a.res.engine.wakes, b.res.engine.wakes) << label;
    // Stall attribution is windowed and ordering-sensitive: byte-equal
    // reports mean the parallel spans perturbed nothing.
    EXPECT_EQ(a.stalls, b.stalls) << label;
}

TEST(ParallelTick, BitExactAcrossThreadCountsIdleAware)
{
    const CooGraph g = rmat(10, 8000, RmatParams{}, 5);
    const TickRun serial =
        runAt(g, 1, /*full_tick=*/false, /*tlm=*/false, /*chk=*/false);
    for (unsigned threads : {2u, 8u})
        expectIdentical(serial,
                        runAt(g, threads, false, false, false),
                        "idle-aware, threads=" +
                            std::to_string(threads));
}

TEST(ParallelTick, BitExactAcrossThreadCountsFullTick)
{
    const CooGraph g = rmat(9, 5000, RmatParams{}, 17);
    const TickRun serial =
        runAt(g, 1, /*full_tick=*/true, /*tlm=*/false, /*chk=*/false);
    for (unsigned threads : {2u, 8u})
        expectIdentical(serial, runAt(g, threads, true, false, false),
                        "full-tick, threads=" +
                            std::to_string(threads));
}

TEST(ParallelTick, StallAttributionIdenticalUnderTelemetry)
{
    const CooGraph g = rmat(9, 5000, RmatParams{}, 23);
    const TickRun serial =
        runAt(g, 1, /*full_tick=*/false, /*tlm=*/true, /*chk=*/false);
    ASSERT_FALSE(serial.stalls.empty());
    for (unsigned threads : {2u, 8u})
        expectIdentical(serial, runAt(g, threads, false, true, false),
                        "telemetry, threads=" +
                            std::to_string(threads));
}

TEST(ParallelTick, ChecksObserveIdenticalRuns)
{
    const CooGraph g = rmat(9, 5000, RmatParams{}, 29);
    const TickRun serial =
        runAt(g, 1, /*full_tick=*/false, /*tlm=*/false, /*chk=*/true);
    for (unsigned threads : {2u, 8u})
        expectIdentical(serial, runAt(g, threads, false, false, true),
                        "checks, threads=" + std::to_string(threads));
}

TEST(ParallelTick, ThreadCountMatchesAcrossEngineModes)
{
    // The two engine modes already agree serially (test_engine_skip);
    // parallel spans must not break that equivalence.
    const CooGraph g = rmat(9, 4000, RmatParams{}, 31);
    const TickRun idle = runAt(g, 4, false, false, false);
    const TickRun full = runAt(g, 4, true, false, false);
    EXPECT_EQ(idle.res.run.cycles, full.res.run.cycles);
    EXPECT_EQ(idle.res.run.raw_values, full.res.run.raw_values);
    EXPECT_EQ(idle.checksum, full.checksum);
}

TEST(ParallelTick, SetTickThreadsRejectsAbsurdCounts)
{
    Engine engine;
    EXPECT_THROW(engine.setTickThreads(65), FatalError);
    // 0 means "no opinion": keeps whatever the environment selected.
    engine.setTickThreads(0);
}

} // namespace
} // namespace gmoms
