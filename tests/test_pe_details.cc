/**
 * @file
 * Focused tests of PE-level behaviours observable through accelerator
 * counters: RAW hazard windows, Fig. 10a/10b thread interfaces,
 * local-vs-remote source reads, DMA burst accounting and the
 * terminating-edge handling.
 */

#include <gtest/gtest.h>

#include "src/accel/accelerator.hh"
#include "src/algo/golden.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

AccelConfig
tinyConfig()
{
    AccelConfig cfg;
    cfg.num_pes = 2;
    cfg.mem.channels = 1;
    cfg.moms = MomsConfig::twoLevel(1);
    return cfg;
}

std::uint64_t
totalStat(const Accelerator& accel,
          std::uint64_t Pe::Stats::*member)
{
    std::uint64_t total = 0;
    for (const auto& pe : accel.pes())
        total += pe->stats().*member;
    return total;
}

TEST(PeDetails, RawHazardsScaleWithConflictDensity)
{
    // All edges target ONE destination node: with the 4-cycle FP
    // pipeline nearly every gather conflicts with the previous one.
    CooGraph hot(64);
    for (int i = 0; i < 2000; ++i)
        hot.addEdge(static_cast<NodeId>(i % 64), 0);
    AlgoSpec pr = AlgoSpec::pageRank(hot, 1);
    PartitionedGraph pg(hot, 64, 64);
    Accelerator accel(tinyConfig(), pg, pr);
    RunResult res = accel.run();
    // ~3 stall cycles per edge at latency 4.
    EXPECT_GT(res.pe_raw_stalls, res.edges_processed);
}

TEST(PeDetails, SpreadDestinationsAvoidRawHazards)
{
    CooGraph spread(4096);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i)
        spread.addEdge(static_cast<NodeId>(rng.below(4096)),
                       static_cast<NodeId>(rng.below(4096)));
    AlgoSpec pr = AlgoSpec::pageRank(spread, 1);
    PartitionedGraph pg(spread, 4096, 8192);
    Accelerator accel(tinyConfig(), pg, pr);
    RunResult res = accel.run();
    EXPECT_LT(res.pe_raw_stalls, res.edges_processed / 5);
}

TEST(PeDetails, LocalSourceReadsBypassTheMoms)
{
    // One destination interval covering the whole graph with
    // use_local_src: every source read is local, zero MOMS traffic.
    CooGraph g = uniformRandom(500, 4000, 7);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes());
    PartitionedGraph pg(g, 512, 1024);  // single interval
    Accelerator accel(tinyConfig(), pg, scc);
    RunResult res = accel.run();
    EXPECT_EQ(res.moms_requests, 0u);
    EXPECT_EQ(totalStat(accel, &Pe::Stats::local_src_reads),
              res.edges_processed);
    EXPECT_EQ(res.raw_values, goldenMinLabel(g));
}

TEST(PeDetails, PageRankNeverReadsLocally)
{
    // use_local_src is false for PageRank (partial sums must not be
    // observed): every source read goes through the MOMS.
    CooGraph g = uniformRandom(500, 4000, 7);
    AlgoSpec pr = AlgoSpec::pageRank(g, 1);
    PartitionedGraph pg(g, 512, 1024);
    Accelerator accel(tinyConfig(), pg, pr);
    RunResult res = accel.run();
    EXPECT_EQ(totalStat(accel, &Pe::Stats::local_src_reads), 0u);
    EXPECT_EQ(res.moms_requests, res.edges_processed);
}

TEST(PeDetails, WeightedThreadsUseBoundedFreeIdQueue)
{
    // Fig. 10a: SSSP threads draw from a free-ID queue of max_threads
    // entries; with a tiny queue the run must still complete and be
    // correct, just with thread stalls.
    CooGraph g = uniformRandom(800, 8000, 11);
    addRandomWeights(g, 13);
    AlgoSpec sssp = AlgoSpec::sssp(0);
    AccelConfig cfg = tinyConfig();
    cfg.max_threads = 4;
    PartitionedGraph pg(g, 128, 256);
    Accelerator accel(cfg, pg, sssp);
    RunResult res = accel.run();
    EXPECT_EQ(res.raw_values, goldenSssp(g, 0));
    EXPECT_GT(totalStat(accel, &Pe::Stats::thread_stalls), 0u);
}

TEST(PeDetails, UnweightedThreadsLimitedOnlyByThreadCount)
{
    // Fig. 10b: unweighted kernels use the destination offset as the
    // ID; the same tiny thread budget applies.
    CooGraph g = uniformRandom(800, 8000, 11);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes());
    scc.use_local_src = false;
    AccelConfig cfg = tinyConfig();
    cfg.max_threads = 4;
    PartitionedGraph pg(g, 128, 256);
    Accelerator accel(cfg, pg, scc);
    RunResult res = accel.run();
    EXPECT_EQ(res.raw_values, goldenMinLabel(g));
    EXPECT_GT(totalStat(accel, &Pe::Stats::thread_stalls), 0u);
}

TEST(PeDetails, EdgeBurstSizeDoesNotChangeResults)
{
    CooGraph g = rmat(10, 6000, RmatParams{}, 17);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes());
    PartitionedGraph pg(g, 128, 256);
    std::vector<std::uint32_t> reference;
    for (std::uint32_t lines : {1u, 4u, 8u, 32u}) {
        AccelConfig cfg = tinyConfig();
        cfg.edge_burst_lines = lines;
        Accelerator accel(cfg, pg, scc);
        RunResult res = accel.run();
        if (reference.empty())
            reference = res.raw_values;
        else
            EXPECT_EQ(res.raw_values, reference) << lines;
    }
}

TEST(PeDetails, SsspWeightsDoubleTheEdgeBandwidth)
{
    // Weighted shards store 8 bytes/edge vs 4 (Section V-B): DRAM read
    // volume for the edge section roughly doubles.
    CooGraph g = uniformRandom(1000, 20000, 23);
    PartitionedGraph pg_unw(g, 256, 512);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes(), 1);
    scc.use_local_src = false;
    Accelerator a1(tinyConfig(), pg_unw, scc);
    RunResult unweighted = a1.run();

    CooGraph wg = g;
    addRandomWeights(wg, 29);
    PartitionedGraph pg_w(wg, 256, 512);
    AlgoSpec sssp = AlgoSpec::sssp(0, 1);
    sssp.use_local_src = false;
    Accelerator a2(tinyConfig(), pg_w, sssp);
    RunResult weighted = a2.run();

    // Compare only the edge-stream contribution: subtract node arrays
    // (~4 bytes per node each way) which are equal.
    EXPECT_GT(weighted.dram_bytes_read,
              unweighted.dram_bytes_read +
                  3ull * g.numEdges());  // ~4B/edge extra, minus slack
}

TEST(PeDetails, EveryPeReportsBalancedBusyWork)
{
    CooGraph g = rmat(12, 40000, RmatParams{}, 31);
    AlgoSpec scc = AlgoSpec::scc(g.numNodes(), 2);
    AccelConfig cfg;
    cfg.num_pes = 8;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(8);
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, scc);
    accel.run();
    for (const auto& pe : accel.pes()) {
        EXPECT_GT(pe->stats().busy_cycles, 0u);
        EXPECT_GT(pe->stats().jobs, 0u);
    }
}

} // namespace
} // namespace gmoms
