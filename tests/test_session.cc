/**
 * @file
 * Tests for the high-level Session / SessionBuilder driver API.
 */

#include <gtest/gtest.h>

#include "src/accel/session.hh"
#include "src/algo/golden.hh"
#include "src/graph/generator.hh"

namespace gmoms
{
namespace
{

AccelConfig
smallConfig()
{
    return AccelConfig::preset(MomsConfig::twoLevel(4), /*pes=*/4,
                               /*channels=*/2);
}

/** A session with the historical driver defaults (paper-default
 *  DbgHash preprocessing); @p g is copied so callers can keep using
 *  the original for golden comparisons. */
Session
makeSession(const CooGraph& g,
            Preprocessing prep = Preprocessing::DbgHash)
{
    return SessionBuilder()
        .dataset(CooGraph(g))
        .config(smallConfig())
        .preprocessing(prep)
        .build();
}

TEST(Session, IdMappingIsABijection)
{
    CooGraph g = rmat(10, 4000, RmatParams{}, 3);
    Session session = makeSession(g);
    for (NodeId n = 0; n < g.numNodes(); n += 37)
        EXPECT_EQ(session.originalId(session.internalId(n)), n);
    EXPECT_THROW(session.internalId(g.numNodes()), FatalError);
}

TEST(Session, SccValuesTranslateBackToOriginalLabels)
{
    CooGraph g = rmat(10, 6000, RmatParams{}, 7);
    Session session = makeSession(g);
    SessionResult res = session.scc();
    // Golden on the ORIGINAL graph; session values are in internal
    // label space: translate both ways and compare component
    // structure (same-partition relation).
    auto golden = goldenMinLabel(g);
    for (NodeId a = 0; a < g.numNodes(); a += 101) {
        for (NodeId b = a + 1; b < g.numNodes(); b += 419) {
            const bool same_golden = golden[a] == golden[b];
            const bool same_session =
                res.values[session.internalId(a)] ==
                res.values[session.internalId(b)];
            EXPECT_EQ(same_golden, same_session)
                << "nodes " << a << "," << b;
        }
    }
}

TEST(Session, BfsDepthsMatchGoldenThroughTheMapping)
{
    CooGraph g = rmat(9, 3000, RmatParams{}, 11);
    Session session = makeSession(g);
    const NodeId source = 5;
    SessionResult res = session.bfs(source);
    auto golden = goldenBfs(g, source);
    for (NodeId n = 0; n < g.numNodes(); ++n)
        EXPECT_EQ(res.values[session.internalId(n)],
                  static_cast<double>(golden[n]))
            << "node " << n;
}

TEST(Session, PageRankScoresSumToOne)
{
    CooGraph g = uniformRandom(800, 8000, 13);
    auto od = g.outDegrees();
    for (NodeId i = 0; i < g.numNodes(); ++i)
        if (od[i] == 0)
            g.addEdge(i, (i + 1) % g.numNodes());
    Session session = makeSession(g);
    SessionResult res = session.pageRank(8);
    double sum = 0;
    for (double v : res.values)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 0.01);
    EXPECT_GT(res.gteps, 0.0);
    EXPECT_GT(res.fmax_mhz, 150.0);
    EXPECT_GT(res.power_watts, 5.0);
}

TEST(Session, MultipleAlgorithmsReuseOnePreprocessing)
{
    CooGraph g = rmat(10, 5000, RmatParams{}, 17);
    Session session = makeSession(g);
    SessionResult a = session.scc();
    SessionResult b = session.bfs(0);
    SessionResult c = session.sssp(0);
    EXPECT_EQ(a.values.size(), g.numNodes());
    EXPECT_EQ(b.values.size(), g.numNodes());
    EXPECT_EQ(c.values.size(), g.numNodes());
    // SSSP distance of the source is zero, in internal space.
    EXPECT_EQ(c.values[session.internalId(0)], 0.0);
}

TEST(Session, NonePreprocessingKeepsLabels)
{
    CooGraph g = uniformRandom(100, 500, 19);
    Session session = makeSession(g, Preprocessing::None);
    for (NodeId n = 0; n < g.numNodes(); ++n)
        EXPECT_EQ(session.internalId(n), n);
}

TEST(Session, RejectsEmptyGraph)
{
    EXPECT_THROW(SessionBuilder()
                     .dataset(CooGraph(0))
                     .config(smallConfig())
                     .build(),
                 FatalError);
}

} // namespace
} // namespace gmoms
