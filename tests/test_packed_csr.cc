/**
 * @file
 * Packed half-word CSR: encoder round-trip against the shard edge
 * lists, size advantage over the plain 32-bit encoding, silent
 * fallback on ineligible partitions, and end-to-end value identity
 * (plain vs packed, engine modes, tick threads, session wiring).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/accel/accelerator.hh"
#include "src/accel/session.hh"
#include "src/algo/golden.hh"
#include "src/graph/generator.hh"
#include "src/graph/layout.hh"
#include "src/graph/reorder.hh"
#include "src/mem/backing_store.hh"

namespace gmoms
{
namespace
{

GraphLayout::Options
opts(bool packed)
{
    GraphLayout::Options o;
    o.packed = packed;
    o.init_value = [](NodeId) { return 0u; };
    return o;
}

/** Decode the packed edge section of @p layout back into per-shard
 *  (src, dst, weight) lists, walking exactly like the PE does. */
std::vector<Edge>
decodePacked(const GraphLayout& layout, const BackingStore& store,
             const PartitionedGraph& pg, std::uint32_t s,
             std::uint32_t d)
{
    const std::uint64_t p = store.read64(layout.ptrAddr(s, d));
    const Addr base = 4 * edgeptr::startWord(p);
    const std::uint64_t halves = 2 * edgeptr::sizeWords(p);
    const auto half = [&](std::uint64_t h) {
        const std::uint32_t w = store.read32(base + 4 * (h / 2));
        return static_cast<std::uint16_t>(h % 2 ? w >> 16
                                                : w & 0xffffu);
    };
    std::vector<Edge> out;
    std::uint32_t open_dst = 0;
    bool has_dst = false;
    for (std::uint64_t h = 0; h < halves;) {
        const std::uint16_t hw = half(h);
        if (packedcsr::isPad(hw)) {
            ++h;
            continue;
        }
        if (packedcsr::isSelector(hw)) {
            // Lines must be self-contained: a line never opens with a
            // source half-word.
            open_dst = packedcsr::dstOff(hw);
            has_dst = true;
            ++h;
            continue;
        }
        EXPECT_TRUE(has_dst);
        if (h % packedcsr::kHalfwordsPerLine == 0)
            ADD_FAILURE() << "line opened with a source half-word";
        Edge e;
        e.src = static_cast<NodeId>(s) * pg.ns() + packedcsr::srcOff(hw);
        e.dst = pg.dstIntervalBase(d) + open_dst;
        ++h;
        if (pg.weighted()) {
            e.weight = half(h);
            ++h;
        }
        out.push_back(e);
        // The self-containment invariant: a (source, weight) pair
        // never splits across lines, which the cursor walk above
        // implicitly checks by reading the weight without a line test.
    }
    return out;
}

void
expectRoundTrip(const CooGraph& g, std::uint32_t nd, std::uint32_t ns)
{
    const PartitionedGraph pg(g, nd, ns);
    GraphLayout layout(pg, opts(true));
    ASSERT_TRUE(layout.packed());
    BackingStore store;
    layout.build(pg, store);

    auto key = [](const Edge& e) {
        return std::make_tuple(e.dst, e.src, e.weight);
    };
    for (std::uint32_t d = 0; d < pg.qd(); ++d) {
        for (std::uint32_t s = 0; s < pg.qs(); ++s) {
            std::vector<Edge> got =
                decodePacked(layout, store, pg, s, d);
            const auto span = pg.shardEdges(s, d);
            std::vector<Edge> want(span.begin(), span.end());
            ASSERT_EQ(got.size(), want.size())
                << "shard s=" << s << " d=" << d;
            // The packed encoder reorders within the shard ((dst, src)
            // sort) — compare as sorted lists.
            auto lt = [&](const Edge& a, const Edge& b) {
                return key(a) < key(b);
            };
            std::sort(got.begin(), got.end(), lt);
            std::sort(want.begin(), want.end(), lt);
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(key(got[i]), key(want[i]))
                    << "shard s=" << s << " d=" << d << " edge " << i;
        }
    }
}

TEST(PackedCsr, RoundTripUnweighted)
{
    expectRoundTrip(rmat(11, 20000, RmatParams{}, 7), 512, 1024);
}

TEST(PackedCsr, RoundTripWeighted)
{
    CooGraph g = uniformRandom(3000, 25000, 13);
    addRandomWeights(g, 99);
    expectRoundTrip(g, 256, 512);
}

TEST(PackedCsr, RoundTripTinyAndSkewed)
{
    // Degenerate shapes: single-node star (max dst amortization) and a
    // chain (selector per edge, worst case).
    CooGraph star(64);
    for (NodeId i = 1; i < 64; ++i)
        star.addEdge(i, 0);
    expectRoundTrip(star, 32, 64);

    CooGraph chain(100);
    for (NodeId i = 0; i + 1 < 100; ++i)
        chain.addEdge(i, i + 1);
    expectRoundTrip(chain, 32, 32);
}

TEST(PackedCsr, ShrinksTheEdgeSection)
{
    // Clustered in-edges (rmat) amortize selectors: the packed section
    // must be meaningfully under the plain one (2 B vs 4 B per edge
    // before selector overhead).
    const CooGraph g = rmat(12, 60000, RmatParams{}, 21);
    const PartitionedGraph pg(g, 1024, 2048);
    GraphLayout plain(pg, opts(false));
    GraphLayout packed(pg, opts(true));
    ASSERT_TRUE(packed.packed());
    EXPECT_FALSE(plain.packed());
    EXPECT_LT(packed.edgeSectionBytes(),
              (plain.edgeSectionBytes() * 3) / 4);
}

TEST(PackedCsr, FallsBackOnOversizedWeights)
{
    CooGraph g(128);
    for (NodeId i = 0; i + 1 < 128; ++i)
        g.addEdge(i, i + 1);
    addRandomWeights(g, 3);
    g.edges()[5].weight = 0x10000;  // one 17-bit weight poisons it
    const PartitionedGraph pg(g, 64, 128);
    GraphLayout layout(pg, opts(true));
    EXPECT_FALSE(layout.packed());  // silent fallback to plain
    // The plain encoding carries the full 32-bit weight.
    BackingStore store;
    layout.build(pg, store);
    const PartitionedGraph pg2(g, 64, 128);
    GraphLayout plain(pg2, opts(false));
    EXPECT_EQ(layout.edgeSectionBytes(), plain.edgeSectionBytes());
}

TEST(PackedCsr, FallsBackOnWideIntervals)
{
    CooGraph g(8);
    g.addEdge(0, 1);
    // nd > 32767 would collide with the all-ones pad half-word.
    const PartitionedGraph wide(g, 8, 8);
    GraphLayout l(wide, opts(true));
    EXPECT_TRUE(l.packed());  // small intervals are fine

    // Selector construction itself: the maximum legal dst_off still
    // stays clear of the pad encoding.
    EXPECT_NE(packedcsr::selector(32766), packedcsr::kPad);
    EXPECT_TRUE(packedcsr::isSelector(packedcsr::selector(0)));
    EXPECT_FALSE(packedcsr::isSelector(packedcsr::source(32767)));
}

// --- end-to-end ---------------------------------------------------------

RunResult
runAccel(const CooGraph& g, const AlgoSpec& spec, bool packed,
         bool full_tick = false, unsigned tick_threads = 0)
{
    AccelConfig cfg;
    cfg.num_pes = 4;
    cfg.mem.channels = 2;
    cfg.moms = MomsConfig::twoLevel(4);
    cfg.packed_edges = packed;
    cfg.full_tick_engine = full_tick;
    cfg.tick_threads = tick_threads;
    PartitionedGraph pg(g, 256, 512);
    Accelerator accel(cfg, pg, spec);
    return accel.run();
}

TEST(PackedCsrEndToEnd, SccValuesIdenticalToPlain)
{
    const CooGraph g = rmat(10, 9000, RmatParams{}, 31);
    const AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 5);
    const RunResult plain = runAccel(g, spec, false);
    const RunResult packed = runAccel(g, spec, true);
    // SCC is asynchronous: packing regroups edges by destination, so
    // the label-propagation trajectory (and edges_processed) may
    // differ — the converged fixpoint may not.
    EXPECT_EQ(plain.raw_values, packed.raw_values);
    // The packed run must actually read fewer edge bytes.
    EXPECT_LT(packed.dram_bytes_read, plain.dram_bytes_read);
}

TEST(PackedCsrEndToEnd, PageRankStaysWithinGoldenTolerance)
{
    // PageRank's timed values are f32 sums in MOMS arrival order (see
    // test_cluster.cc), so plain and packed may differ in the last
    // ulp; both must sit inside the golden tolerance the plain
    // encoding is held to.
    const CooGraph g = uniformRandom(1200, 10000, 41);
    const AlgoSpec spec = AlgoSpec::pageRank(g, 3);
    const RunResult plain = runAccel(g, spec, false);
    const RunResult packed = runAccel(g, spec, true);
    const std::vector<double> golden = goldenPageRank(g, 3);
    for (NodeId i = 0; i < g.numNodes(); ++i) {
        const double a = spec.finalValue(plain.raw_values[i], i);
        const double b = spec.finalValue(packed.raw_values[i], i);
        EXPECT_NEAR(b, golden[i], 2e-4 * golden[i] + 1e-8)
            << "node " << i;
        EXPECT_NEAR(a, b, 1e-5 * golden[i] + 1e-9) << "node " << i;
    }
}

TEST(PackedCsrEndToEnd, SsspWeightedIdenticalToPlain)
{
    // Run to convergence: mid-flight asynchronous distances depend on
    // gather order, the fixpoint does not.
    CooGraph g = uniformRandom(800, 7000, 51);
    addRandomWeights(g, 8);
    const AlgoSpec spec = AlgoSpec::sssp(0, 64);
    const RunResult plain = runAccel(g, spec, false);
    const RunResult packed = runAccel(g, spec, true);
    EXPECT_EQ(plain.raw_values, packed.raw_values);
}

TEST(PackedCsrEndToEnd, EngineModesAndTickThreadsBitExact)
{
    const CooGraph g = rmat(10, 7000, RmatParams{}, 61);
    const AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 4);
    const RunResult base = runAccel(g, spec, true, false, 1);
    const RunResult full = runAccel(g, spec, true, true, 1);
    EXPECT_EQ(base.cycles, full.cycles);
    EXPECT_EQ(base.raw_values, full.raw_values);
    EXPECT_EQ(base.dram_bytes_read, full.dram_bytes_read);
    for (unsigned threads : {2u, 4u}) {
        const RunResult par = runAccel(g, spec, true, false, threads);
        EXPECT_EQ(base.cycles, par.cycles)
            << "tick_threads=" << threads;
        EXPECT_EQ(base.raw_values, par.raw_values)
            << "tick_threads=" << threads;
    }
}

TEST(PackedCsrEndToEnd, SessionPreprocessingVariants)
{
    // Preprocessing::Packed = identity relabeling + packed layout; the
    // values must match prep None exactly. Same for the DbgHash pair
    // (both relabel identically, so internal id spaces coincide).
    CooGraph g = rmat(10, 8000, RmatParams{}, 71);
    auto run = [&](Preprocessing p) {
        return SessionBuilder()
            .datasetView(g)
            .preprocessing(p)
            .algo("SCC")
            .iterations(20)
            .run();
    };
    const SessionResult none = run(Preprocessing::None);
    const SessionResult packed = run(Preprocessing::Packed);
    EXPECT_EQ(none.values, packed.values);

    const SessionResult dh = run(Preprocessing::DbgHash);
    const SessionResult dhp = run(Preprocessing::DbgHashPacked);
    EXPECT_EQ(dh.values, dhp.values);
}

TEST(PackedCsr, PreprocessingPlumbing)
{
    EXPECT_STREQ(preprocessingName(Preprocessing::Packed), "packed");
    EXPECT_STREQ(preprocessingName(Preprocessing::DbgHashPacked),
                 "dbg+hash+packed");
    EXPECT_TRUE(packedCsr(Preprocessing::Packed));
    EXPECT_TRUE(packedCsr(Preprocessing::DbgHashPacked));
    EXPECT_FALSE(packedCsr(Preprocessing::DbgHash));
    EXPECT_EQ(basePreprocessing(Preprocessing::Packed),
              Preprocessing::None);
    EXPECT_EQ(basePreprocessing(Preprocessing::DbgHashPacked),
              Preprocessing::DbgHash);
    EXPECT_EQ(basePreprocessing(Preprocessing::Hash),
              Preprocessing::Hash);
}

} // namespace
} // namespace gmoms
