/**
 * @file
 * Table III — Preprocessing time in seconds: shard partitioning,
 * cache-line hashing and DBG, measured per dataset stand-in on this
 * host (the paper uses a 20-core Xeon; absolute seconds differ, the
 * relative cost ordering — all lightweight, DBG cheapest — holds).
 */

#include <chrono>

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

double
timeIt(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    std::printf("=== Table III: preprocessing time in seconds ===\n\n");
    Table table({"tag", "partitioning", "hashing", "DBG",
                 "total edges"});
    for (const DatasetProfile& p : table2Profiles()) {
        CooGraph g = buildDataset(p);
        auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());

        double t_partition = timeIt([&] {
            PartitionedGraph pg(g, nd, ns);
            (void)pg;
        });
        double t_hash = timeIt([&] {
            CooGraph h = g.relabeled(hashCacheLines(g.numNodes(), nd));
            (void)h;
        });
        double t_dbg = timeIt([&] {
            CooGraph d = g.relabeled(dbgReorder(g));
            (void)d;
        });
        table.addRow({p.tag, fmt(t_partition, 4), fmt(t_hash, 4),
                      fmt(t_dbg, 4), std::to_string(g.numEdges())});
    }
    table.print();
    std::printf("\nAll passes are O(M) or O(N) (Table III of the "
                "paper); every step besides partitioning\nis "
                "optional.\n");
    return 0;
}
