/**
 * @file
 * Multi-board scale-out: GTEPS as a function of the simulated board
 * count (1, 2, 4, 8) with BSP and asynchronous coordination, plus the
 * crossing-traffic breakdown (cut edges, ghosts, wire bytes) and the
 * per-board stall attribution (board-link wait and credit stalls) that
 * explains where the scaling curve bends.
 *
 * There is no counterpart figure in the paper — the paper's design is a
 * single board and its Section VII names multi-die/multi-FPGA scaling
 * as the natural extension. GraVF-M (BSP) and Swift (async) motivate
 * the two coordination modes; see docs/MODEL.md "Multi-board clusters".
 *
 * The historical 1.2M-edge dataset cap is a per-board budget: the
 * uncapped section runs one dataset above that cap (UK at 4 boards),
 * exercising exactly the scale a single board cannot hold.
 *
 * Flags: --smoke (tiny sweep for CI), --json=FILE (machine-readable
 * artifact; --smoke defaults it to BENCH_boards.json), plus the shared
 * --telemetry/--trace=FILE.
 */

#include "bench/bench_common.hh"
#include "src/cluster/cluster_engine.hh"

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

/** One (dataset, algo, boards, mode) design point. */
struct Point
{
    std::string tag;
    std::string algo;
    std::uint32_t boards = 1;
    ClusterConfig::Mode mode = ClusterConfig::Mode::Bsp;

    std::string
    label() const
    {
        if (boards == 1)
            return "1x";
        return std::to_string(boards) + "x" +
               (mode == ClusterConfig::Mode::Bsp ? "bsp" : "async");
    }
};

AccelConfig
pointConfig(const Point& j)
{
    // The per-board machine stays fixed while boards are added, so the
    // curve isolates the interconnect (weak machine scaling).
    AccelConfig cfg =
        AccelConfig::preset(MomsConfig::twoLevel(8), /*pes=*/8,
                            /*channels=*/2);
    cfg.cluster.boards = j.boards;
    cfg.cluster.mode = j.mode;
    return cfg;
}

SessionResult
runPoint(const CooGraph& g, const Point& j, const TelemetryCli& cli)
{
    AccelConfig cfg = pointConfig(j);
    cli.apply(cfg, j.algo + " " + j.tag + " " + j.label());
    Session session = SessionBuilder()
                          .datasetView(g)
                          .config(std::move(cfg))
                          .build();
    SessionResult res;
    if (j.algo == "PageRank")
        res = session.pageRank(pagerankIterations());
    else if (j.algo == "SCC")
        res = session.scc(convergenceCap());
    else
        res = session.sssp(0, convergenceCap());
    EngineBenchRecorder::instance().add(res.engine, res.wall_seconds,
                                        res.full_tick);
    return res;
}

} // namespace

int
main(int argc, char** argv)
{
    TelemetryCli cli;
    cli.parse(argc, argv);
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }
    if (smoke && json_path.empty())
        json_path = "BENCH_boards.json";

    const std::vector<std::uint32_t> board_counts =
        smoke ? std::vector<std::uint32_t>{1, 2, 4}
              : std::vector<std::uint32_t>{1, 2, 4, 8};
    const std::vector<std::string> algos =
        smoke ? std::vector<std::string>{"PageRank", "SSSP"}
              : std::vector<std::string>{"PageRank", "SCC", "SSSP"};
    const std::vector<std::string> tags =
        smoke ? std::vector<std::string>{"WT"} : benchDatasetTags();
    const std::vector<ClusterConfig::Mode> modes = {
        ClusterConfig::Mode::Bsp, ClusterConfig::Mode::Async};

    std::printf("=== Multi-board scale-out: GTEPS vs board count "
                "(per-board 8/8 two-level MOMS @2ch) ===\n\n");

    std::vector<Point> jobs;
    for (const std::string& tag : tags)
        for (const std::string& algo : algos)
            for (std::uint32_t boards : board_counts) {
                if (boards == 1) {
                    jobs.push_back({tag, algo, 1,
                                    ClusterConfig::Mode::Bsp});
                    continue;
                }
                for (ClusterConfig::Mode mode : modes)
                    jobs.push_back({tag, algo, boards, mode});
            }

    const std::vector<SessionResult> outcomes =
        sweep(jobs, [&](const Point& j) {
            return runPoint(*loadDataset(j.tag), j, cli);
        });

    JsonReport report;
    report.set("smoke", smoke);

    // --- Scaling table: GTEPS per (dataset, algo) across points -------
    std::size_t next = 0;
    for (const std::string& tag : tags) {
        std::printf("--- %s (GTEPS; speedup vs 1 board) ---\n",
                    tag.c_str());
        std::vector<std::string> header = {"algo", "1x"};
        for (std::uint32_t boards : board_counts)
            if (boards > 1) {
                header.push_back(std::to_string(boards) + "xbsp");
                header.push_back(std::to_string(boards) + "xasync");
            }
        header.push_back("best/1x");
        Table table(header);

        for (const std::string& algo : algos) {
            std::vector<std::string> row = {algo};
            double base = 0, best = 0;
            for (std::uint32_t boards : board_counts) {
                const std::size_t points = boards == 1 ? 1 : 2;
                for (std::size_t m = 0; m < points; ++m) {
                    const Point& j = jobs[next];
                    const SessionResult& res = outcomes[next++];
                    if (boards == 1)
                        base = res.gteps;
                    best = std::max(best, res.gteps);
                    row.push_back(fmt(res.gteps, 3));
                    report.set(tag + "." + algo + "." + j.label() +
                                   ".gteps",
                               res.gteps);
                    if (res.cluster) {
                        report.set(tag + "." + algo + "." + j.label() +
                                       ".wire_bytes",
                                   res.cluster->link_wire_bytes);
                        report.set(tag + "." + algo + "." + j.label() +
                                       ".cut_edges",
                                   static_cast<std::uint64_t>(
                                       res.cluster->cut_edges));
                    }
                }
            }
            row.push_back(fmt(base > 0 ? best / base : 0, 2) + "x");
            table.addRow(row);
        }
        table.print();
        std::printf("\n");
    }

    // --- Crossing-traffic breakdown (largest board count, BSP) --------
    std::printf("=== Crossing traffic at %ux (BSP, PageRank) ===\n",
                board_counts.back());
    Table traffic({"dataset", "cut-edges", "cut%", "ghosts",
                   "wire-MB", "packets", "marker%", "edge-balance"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Point& j = jobs[i];
        const SessionResult& res = outcomes[i];
        if (j.algo != "PageRank" || j.boards != board_counts.back() ||
            j.mode != ClusterConfig::Mode::Bsp || !res.cluster)
            continue;
        const ClusterReport& rep = *res.cluster;
        EdgeId edges = 0;
        std::uint64_t markers = 0, packets = 0;
        for (const ClusterBoardReport& br : rep.boards) {
            edges += br.local_edges;
            markers += br.marker_packets;
            packets += br.packets_sent;
        }
        traffic.addRow(
            {j.tag,
             std::to_string(rep.cut_edges),
             fmt(100.0 * static_cast<double>(rep.cut_edges) /
                     static_cast<double>(std::max<EdgeId>(edges, 1)),
                 1) + "%",
             std::to_string(rep.ghost_count),
             fmt(static_cast<double>(rep.link_wire_bytes) /
                     (1024.0 * 1024.0),
                 2),
             std::to_string(packets),
             fmt(packets > 0
                     ? 100.0 * static_cast<double>(markers) /
                           static_cast<double>(packets)
                     : 0.0,
                 1) + "%",
             fmt(rep.edge_balance, 2)});
    }
    traffic.print();
    std::printf("\n");

    // --- Per-board attribution (first dataset, largest BSP point) -----
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Point& j = jobs[i];
        if (j.tag != tags.front() || j.algo != "PageRank" ||
            j.boards != board_counts.back() ||
            j.mode != ClusterConfig::Mode::Bsp)
            continue;
        const SessionResult& res = outcomes[i];
        if (!res.cluster)
            break;
        std::printf("=== Per-board attribution: %s PageRank %s "
                    "(%llu cycles) ===\n",
                    j.tag.c_str(), j.label().c_str(),
                    static_cast<unsigned long long>(res.run.cycles));
        Table per_board({"board", "owned", "ghosts", "edges",
                         "cut-edges", "moms-hit", "link-wait%",
                         "credit-stall%", "wire-KB"});
        const double cyc = static_cast<double>(res.run.cycles);
        for (const ClusterBoardReport& br : res.cluster->boards) {
            per_board.addRow(
                {std::to_string(br.board),
                 std::to_string(br.owned_nodes),
                 std::to_string(br.ghost_nodes),
                 std::to_string(br.local_edges),
                 std::to_string(br.cut_edges),
                 fmt(100.0 * br.moms_hit_rate, 1) + "%",
                 fmt(100.0 * static_cast<double>(br.link_wait_cycles) /
                         cyc,
                     1) + "%",
                 fmt(100.0 *
                         static_cast<double>(br.credit_stall_cycles) /
                         cyc,
                     1) + "%",
                 fmt(static_cast<double>(br.wire_bytes) / 1024.0, 1)});
            report.set("attribution.b" + std::to_string(br.board) +
                           ".link_wait_cycles",
                       br.link_wait_cycles);
            report.set("attribution.b" + std::to_string(br.board) +
                           ".credit_stall_cycles",
                       br.credit_stall_cycles);
        }
        per_board.print();
        std::printf("\n");
        break;
    }

    // --- Above the single-board cap: UK at 4 boards -------------------
    // UK scales to 3.66M edges — 3x over the historical 1.2M per-board
    // cap, which a partitioned 4-board run is budgeted for. Skipped in
    // smoke mode (CI-sized).
    if (!smoke) {
        const DatasetProfile& uk = datasetByTag("UK");
        const std::uint32_t boards = 4;
        std::printf("=== Above the 1.2M single-board edge cap: %s, "
                    "%u boards ===\n",
                    uk.full_name.c_str(), boards);
        CooGraph big = buildDataset(uk, /*seed=*/1, boards);
        std::printf("dataset %s: %u nodes, %llu edges (single-board "
                    "cap %llu)\n",
                    uk.tag.c_str(), big.numNodes(),
                    static_cast<unsigned long long>(big.numEdges()),
                    static_cast<unsigned long long>(
                        DatasetProfile::kEdgeCap));
        AccelConfig cfg = pointConfig(
            {uk.tag, "PageRank", boards, ClusterConfig::Mode::Bsp});
        Session session = SessionBuilder()
                              .dataset(std::move(big))
                              .config(std::move(cfg))
                              .preprocessing(Preprocessing::DbgHash)
                              .build();
        const SessionResult res =
            session.pageRank(pagerankIterations());
        EngineBenchRecorder::instance().add(
            res.engine, res.wall_seconds, res.full_tick);
        std::printf("completed: %.3f GTEPS over %llu cycles, "
                    "%.1f%% cut, %.2f MB on the wire\n\n",
                    res.gteps,
                    static_cast<unsigned long long>(res.run.cycles),
                    100.0 *
                        static_cast<double>(res.cluster->cut_edges) /
                        static_cast<double>(res.run.edges_processed /
                                            std::max(1u,
                                                     res.run.iterations)),
                    static_cast<double>(
                        res.cluster->link_wire_bytes) /
                        (1024.0 * 1024.0));
        report.set("uncapped.dataset", std::string(uk.tag));
        report.set("uncapped.edges",
                   static_cast<std::uint64_t>(
                       session.graph().numEdges()));
        report.set("uncapped.gteps", res.gteps);
    }

    std::printf("Expected shape: near-linear GTEPS scaling while the "
                "cut stays small (block-edges\npartitioning); "
                "round-trips and credit stalls grow with board count "
                "and bound BSP at\nhigh cut ratios, where async "
                "coordination pulls ahead.\n");

    if (!json_path.empty()) {
        if (writeReportAtomically(json_path, report))
            std::printf("\nwrote %s\n", json_path.c_str());
        else
            std::printf("\ncould not write %s\n", json_path.c_str());
    }

    if (cli.enabled()) {
        std::vector<TelemetrySummaryPtr> summaries;
        for (const SessionResult& res : outcomes) {
            if (!res.cluster) {
                summaries.push_back(res.run.telemetry);
                continue;
            }
            for (const ClusterBoardReport& br : res.cluster->boards)
                summaries.push_back(br.telemetry);
        }
        cli.maybeWriteTrace(summaries);
    }
    return 0;
}
