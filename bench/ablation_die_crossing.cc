/**
 * @file
 * Ablation — multi-die (SLR) crossing latency: how sensitive is the
 * accelerator to the registered die-crossing links of Fig. 5?
 *
 * The paper argues latency-insensitivity is what makes the MOMS
 * approach viable on multi-die FPGAs: crossings add pipeline latency,
 * which a latency-tolerant design absorbs as extra merging window
 * rather than lost throughput. A traditional cache, serialized on few
 * MSHRs, suffers more.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Ablation: SLR-crossing latency (SCC on UK "
                "stand-in) ===\n\n");

    // One job per (crossing latency, MOMS-or-traditional) point.
    struct Job
    {
        Cycle crossing;
        bool traditional;
    };
    std::vector<Job> jobs;
    for (Cycle crossing : {1u, 4u, 8u, 16u, 32u})
        for (bool traditional : {false, true})
            jobs.push_back({crossing, traditional});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [](const Job& j) {
            AccelConfig cfg = AccelConfig::preset(
                j.traditional ? MomsConfig::traditionalTwoLevel(16)
                              : MomsConfig::twoLevel(16),
                /*pes=*/16);
            cfg.moms.crossing_latency = j.crossing;
            return runOn(*loadDataset("UK"), "SCC", cfg);
        });

    Table table({"crossing cycles", "MOMS GTEPS", "trad GTEPS",
                 "MOMS/trad"});
    for (std::size_t i = 0; i < jobs.size(); i += 2) {
        const RunOutcome& m = outcomes[i];
        const RunOutcome& t = outcomes[i + 1];
        table.addRow({std::to_string(jobs[i].crossing), fmt(m.gteps, 3),
                      fmt(t.gteps, 3), fmt(m.gteps / t.gteps, 2) + "x"});
    }
    table.print();
    std::printf("\nExpected: the MOMS column degrades more slowly with "
                "crossing latency than the\ntraditional column (latency "
                "tolerance through outstanding misses).\n");
    return 0;
}
