/**
 * @file
 * Ablation — multi-die (SLR) crossing latency: how sensitive is the
 * accelerator to the registered die-crossing links of Fig. 5?
 *
 * The paper argues latency-insensitivity is what makes the MOMS
 * approach viable on multi-die FPGAs: crossings add pipeline latency,
 * which a latency-tolerant design absorbs as extra merging window
 * rather than lost throughput. A traditional cache, serialized on few
 * MSHRs, suffers more.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Ablation: SLR-crossing latency (SCC on UK "
                "stand-in) ===\n\n");
    CooGraph g = loadDataset("UK");

    Table table({"crossing cycles", "MOMS GTEPS", "trad GTEPS",
                 "MOMS/trad"});
    for (Cycle crossing : {1u, 4u, 8u, 16u, 32u}) {
        AccelConfig moms;
        moms.num_pes = 16;
        moms.num_channels = 4;
        moms.moms = MomsConfig::twoLevel(16);
        moms.moms.crossing_latency = crossing;
        RunOutcome m = runOn(g, "SCC", moms);

        AccelConfig trad = moms;
        trad.moms = MomsConfig::traditionalTwoLevel(16);
        trad.moms.crossing_latency = crossing;
        RunOutcome t = runOn(g, "SCC", trad);

        table.addRow({std::to_string(crossing), fmt(m.gteps, 3),
                      fmt(t.gteps, 3), fmt(m.gteps / t.gteps, 2) + "x"});
    }
    table.print();
    std::printf("\nExpected: the MOMS column degrades more slowly with "
                "crossing latency than the\ntraditional column (latency "
                "tolerance through outstanding misses).\n");
    return 0;
}
