/**
 * @file
 * Table IV — External memory bandwidth and power of the compared
 * platforms, plus the derived efficiency context used by Fig. 16.
 * These are the paper's platform constants; the FPGA power is the
 * paper's fpga-describe-local-image measurement and cannot be
 * re-measured in simulation (DESIGN.md substitution).
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Table IV: platform bandwidth and power ===\n\n");
    Table table(
        {"platform", "system", "ext. mem bandwidth", "power"});
    table.addRow({"This work, FabGraph", "FPGA (AWS f1, VU9P)",
                  "64 GB/s (4x DDR4)", "23 W"});
    // The simulated HBM substrate (mem/hbm_channel, fig_hbm): a
    // U280-class half stack at the same accelerator clock. Not a paper
    // row — it contextualizes the frontier bench against the GPU's HBM2
    // below.
    table.addRow({"This work (simulated)", "FPGA (U280-class, HBM2)",
                  "128 GB/s (16pc HBM2)", "n/a (simulated)"});
    table.addRow({"Gunrock", "GPU (Tesla V100, 16 GB HBM2)", "900 GB/s",
                  "300 W*"});
    table.addRow({"Ligra, GraphMat",
                  "CPU (2x Xeon E5-2680 v3, 16ch DDR4)", "233 GB/s",
                  "224 W"});
    table.print();
    std::printf("\n*GPU power is the board TDP (overestimate), as in "
                "the paper.\n\n");

    std::printf("Derived gaps used by the paper's efficiency claims:\n");
    Table gaps({"metric", "GPU/FPGA", "CPU/FPGA"});
    gaps.addRow({"bandwidth", fmt(900.0 / 64, 1) + "x",
                 fmt(233.0 / 64, 1) + "x"});
    gaps.addRow({"power", fmt(300.0 / 23, 1) + "x",
                 fmt(224.0 / 23, 1) + "x"});
    gaps.print();
    std::printf("\nWith these gaps, matching CPU throughput in absolute "
                "terms makes the FPGA design\n1.1-5.8x more "
                "bandwidth-efficient and 3.0-15.3x more power-efficient "
                "(Section V-F).\n");
    return 0;
}
