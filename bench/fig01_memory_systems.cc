/**
 * @file
 * Fig. 1 — DRAM traffic of different memory systems on the same
 * irregular source-read stream.
 *
 * The paper's qualitative claim: traditional caches refetch lines
 * (long reuse distances), scratchpads transfer whole tiles including
 * unused data (and quadratically many of them), an ideal cache would
 * move each useful line exactly once, and the MOMS approaches the ideal
 * cache through in-flight merging. We print bytes moved for the source
 * node accesses of one PageRank-style iteration, normalized to ideal.
 */

#include "bench/bench_common.hh"
#include "src/baseline/scratchpad_accel.hh"
#include "src/baseline/traffic_models.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 1: DRAM traffic for irregular node reads ===\n");
    std::printf("(bytes moved for source-node values, one iteration; "
                "x = multiple of ideal cache)\n\n");

    Table table({"dataset", "ideal", "traditional", "scratchpad",
                 "MOMS", "trad x", "tiles x", "MOMS x"});

    // Each dataset's traffic measurements are independent; fan them
    // across the worker pool and add rows in dataset order.
    const std::vector<std::string> tags = benchDatasetTags();
    auto rows = sweep(tags, [](const std::string& tag) {
        const CooGraph& g = *loadDataset(tag);
        auto [nd, ns] = defaultIntervalsFor(g.numNodes(), g.numEdges());
        PartitionedGraph pg(g, nd, ns);

        const std::uint64_t ideal = idealCacheTraffic(pg);
        // Traditional cache sized like one scaled shared level (16 kB).
        const std::uint64_t trad =
            traditionalCacheTraffic(pg, 16 * 1024);
        ScratchpadConfig scfg;
        const std::uint64_t tiles =
            runScratchpad(pg, scfg, 1, false).node_bytes;

        // MOMS: measure a real single-iteration SCC-style run with
        // every source read going through the MOMS.
        AlgoSpec spec = AlgoSpec::scc(g.numNodes(), 1);
        spec.use_local_src = false;
        AccelConfig cfg =
            AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);
        cfg.nd = nd;
        cfg.ns = ns;
        Accelerator accel(cfg, pg, spec);
        RunResult res = accel.run();
        const std::uint64_t moms =
            res.moms_lines_from_mem * kLineBytes;

        auto x = [&](std::uint64_t v) {
            return fmt(static_cast<double>(v) / ideal, 2) + "x";
        };
        return std::vector<std::string>{
            tag, std::to_string(ideal), std::to_string(trad),
            std::to_string(tiles), std::to_string(moms), x(trad),
            x(tiles), x(moms)};
    });
    for (auto& row : rows)
        table.addRow(std::move(row));
    table.print();
    std::printf("\nExpected shape (Fig. 1): tiles >> traditional > MOMS "
                ">= ideal.\n");
    return 0;
}
