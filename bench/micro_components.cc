/**
 * @file
 * Component microbenchmarks (google-benchmark): cuckoo MSHR file,
 * subentry store, cache array, DRAM channel model, partitioner and
 * reordering passes. These quantify simulator costs and document the
 * asymptotic behaviour of each substrate.
 */

#include <benchmark/benchmark.h>

#include "src/cache/cache_array.hh"
#include "src/cache/mshr.hh"
#include "src/cache/subentry_store.hh"
#include "src/graph/generator.hh"
#include "src/graph/partition.hh"
#include "src/graph/reorder.hh"
#include "src/mem/memory_system.hh"
#include "src/sim/rng.hh"

namespace gmoms
{
namespace
{

void
BM_CuckooMshrInsertFindErase(benchmark::State& state)
{
    const std::uint32_t capacity =
        static_cast<std::uint32_t>(state.range(0));
    CuckooMshr file(capacity, 4, 8);
    Rng rng(1);
    std::vector<Addr> lines;
    for (std::uint32_t i = 0; i < capacity / 2; ++i)
        lines.push_back(rng.below(1 << 24) * kLineBytes);
    for (auto _ : state) {
        for (Addr line : lines)
            if (!file.find(line))
                benchmark::DoNotOptimize(file.insert(line));
        for (Addr line : lines)
            if (file.find(line))
                file.erase(line);
    }
    state.SetItemsProcessed(state.iterations() * lines.size() * 2);
}
BENCHMARK(BM_CuckooMshrInsertFindErase)->Arg(1024)->Arg(8192);

void
BM_AssocMshrFind(benchmark::State& state)
{
    AssocMshr file(16);
    for (Addr i = 0; i < 16; ++i)
        file.insert(i * kLineBytes);
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(file.find(probe * kLineBytes));
        probe = (probe + 1) % 32;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AssocMshrFind);

void
BM_SubentryAppendDrain(benchmark::State& state)
{
    SubentryStore store(8192);
    for (auto _ : state) {
        MshrEntry entry;
        for (std::uint64_t i = 0; i < 64; ++i)
            store.append(entry, i, 0, 0);
        std::uint32_t cursor = store.head(entry);
        while (cursor != kNoSubentry)
            cursor = store.free(cursor);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SubentryAppendDrain);

void
BM_CacheArrayLookup(benchmark::State& state)
{
    CacheArray cache(256 * 1024, 4);
    Rng rng(3);
    for (int i = 0; i < 4096; ++i)
        cache.fill(rng.below(1 << 20) * kLineBytes);
    Rng probe(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookup(probe.below(1 << 20) * kLineBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_DramChannelRandomReads(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Engine eng;
        DramConfig cfg;
        MemorySystem mem(eng, cfg, 1, 1);
        mem.store().resize(1 << 22);
        MemPort port = mem.port(0);
        Rng rng(7);
        state.ResumeTiming();
        int sent = 0, recvd = 0;
        const int total = 2000;
        eng.runUntil(
            [&] {
                while (sent < total &&
                       port.send(MemReq{rng.below(1 << 16) * 64, 64,
                                        0, false}))
                    ++sent;
                while (port.receive())
                    ++recvd;
                return recvd == total;
            },
            1 << 22);
        benchmark::DoNotOptimize(recvd);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DramChannelRandomReads);

void
BM_Partition(benchmark::State& state)
{
    CooGraph g = rmat(16, 500000, RmatParams{}, 5);
    for (auto _ : state) {
        PartitionedGraph pg(g, 512, 1024);
        benchmark::DoNotOptimize(pg.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_Partition);

void
BM_DbgReorder(benchmark::State& state)
{
    CooGraph g = rmat(16, 500000, RmatParams{}, 5);
    for (auto _ : state) {
        auto perm = dbgReorder(g);
        benchmark::DoNotOptimize(perm.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numNodes());
}
BENCHMARK(BM_DbgReorder);

void
BM_HashCacheLines(benchmark::State& state)
{
    for (auto _ : state) {
        auto perm = hashCacheLines(1 << 20, 2048);
        benchmark::DoNotOptimize(perm.data());
    }
    state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_HashCacheLines);

} // namespace
} // namespace gmoms

BENCHMARK_MAIN();
