/**
 * @file
 * Fig. 14 — Throughput as a function of the number of DDR4 channels
 * (1, 2, 4) for the two-level 16/16 MOMS, plus the FabGraph theoretical
 * model on PageRank.
 *
 * Paper claims: memory-bound benchmarks scale ~linearly with channels;
 * compute-bound ones (high-locality web graphs, WT) saturate earlier
 * and may even slow down at 4 channels due to the lower modelled
 * frequency (SLR crossings); FabGraph wins at 1 channel but scales
 * sublinearly (internal L1/L2 bandwidth).
 */

#include "bench/bench_common.hh"
#include "src/baseline/fabgraph_model.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main(int argc, char** argv)
{
    TelemetryCli cli;
    cli.parse(argc, argv);

    std::printf("=== Fig. 14: throughput vs number of DDR4 channels "
                "(two-level 16/16 MOMS) ===\n\n");
    const std::vector<std::uint32_t> channels = {1, 2, 4};
    const std::vector<std::string> algos = {"PageRank", "SCC", "SSSP"};

    // One job per (algo, dataset, channel-count) point, fanned across
    // the worker pool; rows are assembled from the ordered results.
    struct Job
    {
        std::string algo;
        std::string tag;
        std::uint32_t channels;
    };
    std::vector<Job> jobs;
    for (const std::string& algo : algos)
        for (const std::string& tag : benchDatasetTags())
            for (std::uint32_t c : channels)
                jobs.push_back({algo, tag, c});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            AccelConfig cfg = AccelConfig::preset(
                MomsConfig::twoLevel(16), /*pes=*/16, j.channels);
            cli.apply(cfg, j.algo + " " + j.tag + " " +
                               std::to_string(j.channels) + "ch");
            return runOn(*loadDataset(j.tag), j.algo, cfg);
        });

    std::size_t next = 0;
    for (const std::string& algo : algos) {
        std::printf("--- %s (GTEPS) ---\n", algo.c_str());
        std::vector<std::string> header = {"dataset"};
        for (std::uint32_t c : channels)
            header.push_back(std::to_string(c) + "ch");
        header.push_back("4ch/1ch");
        Table table(header);

        for (const std::string& tag : benchDatasetTags()) {
            std::vector<std::string> row = {tag};
            double first = 0, last = 0;
            for (std::uint32_t c : channels) {
                const RunOutcome& out = outcomes[next++];
                if (c == channels.front())
                    first = out.gteps;
                last = out.gteps;
                row.push_back(fmt(out.gteps, 3));
            }
            row.push_back(fmt(last / first, 2) + "x");
            table.addRow(row);
        }
        table.print();
        std::printf("\n");
    }

    if (cli.enabled()) {
        // Attribution evidence for the scaling claim: a dataset whose
        // DRAM-bus utilization stays high as channels are added is
        // memory-bound (and scales); one whose PE edge-issue rate is
        // the ceiling is compute-bound (and saturates).
        const std::vector<std::string> tags = benchDatasetTags();
        std::printf("=== Channel-scaling attribution (PageRank) ===\n");
        Table attr({"dataset", "ch", "dram-bus-util", "pe-issue-util",
                    "top stall", "bound"});
        for (std::size_t t = 0; t < tags.size(); ++t) {
            for (std::size_t c = 0; c < channels.size(); ++c) {
                const RunOutcome& out =
                    outcomes[(0 * tags.size() + t) * channels.size() +
                             c];
                const auto& s = out.result.telemetry;
                if (!s)
                    continue;
                const double cyc =
                    static_cast<double>(out.result.cycles);
                const double bus_util =
                    s->total("dram.busy_cycles") /
                    (cyc * static_cast<double>(channels[c]));
                const double issue_util =
                    static_cast<double>(out.result.edges_processed) /
                    (cyc * 16.0);
                std::vector<std::string> row = {
                    c == 0 ? tags[t] : "", std::to_string(channels[c]),
                    fmt(100.0 * bus_util, 1) + "%",
                    fmt(100.0 * issue_util, 1) + "%"};
                if (const auto* top = s->topStall())
                    row.push_back(top->group + "/" +
                                  stallCauseName(top->cause));
                else
                    row.push_back("-");
                row.push_back(bus_util > issue_util ? "memory"
                                                    : "compute");
                attr.addRow(row);
            }
        }
        attr.print();
        std::printf("\n");
    }

    std::printf("--- FabGraph theoretical model, PageRank (GTEPS, "
                "optimistic per the paper) ---\n");
    Table fg({"dataset", "1ch", "2ch", "4ch", "bound@4ch"});
    for (const std::string& tag : benchDatasetTags()) {
        const CooGraph& g = *loadDataset(tag);
        std::vector<std::string> row = {tag};
        FabGraphResult last{};
        for (std::uint32_t c : channels) {
            FabGraphConfig cfg;
            cfg.num_channels = c;
            cfg.pipelines = 2 * c;
            // Scale the on-chip tile capacities with the 1/256 dataset
            // scaling so the internal L1<->L2 transfer volume keeps its
            // paper proportion to the edge work.
            cfg.l2_capacity_nodes = 4'000'000 / 256;
            cfg.l1_tile_nodes = 32768 / 256;
            last = modelFabGraph(g, cfg);
            row.push_back(fmt(last.gteps, 3));
        }
        const char* bound = "";
        switch (last.bound) {
          case FabGraphResult::Bound::Compute: bound = "compute"; break;
          case FabGraphResult::Bound::DramEdges: bound = "edges"; break;
          case FabGraphResult::Bound::DramVertices:
            bound = "vertices";
            break;
          case FabGraphResult::Bound::Internal: bound = "internal"; break;
        }
        row.push_back(bound);
        fg.addRow(row);
    }
    fg.print();
    std::printf("\nExpected shape (Fig. 14): MOMS scales with channels "
                "on memory-bound datasets;\nFabGraph is strong at 1ch "
                "but saturates (internal-bandwidth bound) on the "
                "node-heavy datasets.\n");

    if (cli.enabled()) {
        std::vector<TelemetrySummaryPtr> summaries;
        for (const RunOutcome& out : outcomes)
            summaries.push_back(out.result.telemetry);
        cli.maybeWriteTrace(summaries);
    }
    return 0;
}
