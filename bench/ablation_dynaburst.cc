/**
 * @file
 * Ablation — DynaBurst burst assembly on the MOMS miss path.
 *
 * Section V-A of the paper: "We tried using a DynaBurst MOMS [5] that
 * can send bursts of requests to memory but we found the benefit to be
 * too low to compensate for the corresponding area and delay
 * increase." This bench reproduces the experiment: graph source reads
 * are scattered, so windows rarely collect neighbours and mostly time
 * out as single-line bursts (or drag filler lines in), yielding little
 * or no speedup.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Ablation: DynaBurst burst assembly (SCC) ===\n\n");

    Table table({"dataset", "plain GTEPS", "dynaburst GTEPS", "delta",
                 "DRAM reads plain", "DRAM reads dyna"});

    // One job per (dataset, plain-or-dynaburst) point.
    struct Job
    {
        std::string tag;
        bool dynaburst;
    };
    std::vector<Job> jobs;
    for (const std::string& tag : benchDatasetTags())
        for (bool dynaburst : {false, true})
            jobs.push_back({tag, dynaburst});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [](const Job& j) {
            AccelConfig cfg =
                AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);
            cfg.moms.dynaburst = j.dynaburst;
            return runOn(*loadDataset(j.tag), "SCC", cfg);
        });

    for (std::size_t i = 0; i < jobs.size(); i += 2) {
        const RunOutcome& p = outcomes[i];
        const RunOutcome& d = outcomes[i + 1];
        std::uint64_t p_reads =
            p.result.dram_bytes_read / kLineBytes;
        std::uint64_t d_reads =
            d.result.dram_bytes_read / kLineBytes;
        table.addRow({jobs[i].tag, fmt(p.gteps, 3), fmt(d.gteps, 3),
                      fmt(100.0 * (d.gteps / p.gteps - 1.0), 1) + "%",
                      std::to_string(p_reads),
                      std::to_string(d_reads)});
    }
    table.print();
    std::printf("\nExpected (paper, Section V-A): deltas near zero or "
                "negative — not worth the area,\nwhich is why the "
                "shipped design omits DynaBurst.\n");
    return 0;
}
