/**
 * @file
 * Ablation — DynaBurst burst assembly on the MOMS miss path.
 *
 * Section V-A of the paper: "We tried using a DynaBurst MOMS [5] that
 * can send bursts of requests to memory but we found the benefit to be
 * too low to compensate for the corresponding area and delay
 * increase." This bench reproduces the experiment: graph source reads
 * are scattered, so windows rarely collect neighbours and mostly time
 * out as single-line bursts (or drag filler lines in), yielding little
 * or no speedup.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Ablation: DynaBurst burst assembly (SCC) ===\n\n");

    Table table({"dataset", "plain GTEPS", "dynaburst GTEPS", "delta",
                 "DRAM reads plain", "DRAM reads dyna"});
    for (const std::string& tag : benchDatasetTags()) {
        CooGraph g = loadDataset(tag);

        AccelConfig plain;
        plain.num_pes = 16;
        plain.num_channels = 4;
        plain.moms = MomsConfig::twoLevel(16);
        RunOutcome p = runOn(g, "SCC", plain);

        AccelConfig dyna = plain;
        dyna.moms.dynaburst = true;
        RunOutcome d = runOn(g, "SCC", dyna);

        std::uint64_t p_reads =
            p.result.dram_bytes_read / kLineBytes;
        std::uint64_t d_reads =
            d.result.dram_bytes_read / kLineBytes;
        table.addRow({tag, fmt(p.gteps, 3), fmt(d.gteps, 3),
                      fmt(100.0 * (d.gteps / p.gteps - 1.0), 1) + "%",
                      std::to_string(p_reads),
                      std::to_string(d_reads)});
    }
    table.print();
    std::printf("\nExpected (paper, Section V-A): deltas near zero or "
                "negative — not worth the area,\nwhich is why the "
                "shipped design omits DynaBurst.\n");
    return 0;
}
