/**
 * @file
 * Sweep-runner bench: thread-pooled simulations versus the serial
 * loop, over the re-entrant simulator core.
 *
 * Runs the same (dataset, algorithm, architecture) job list serially
 * and under worker pools of several sizes, verifies that every pool
 * size reproduces the serial per-run results bit-for-bit (cycles,
 * DRAM traffic, raw algorithm output), and reports wall-clock time,
 * jobs/sec and heap-allocation counts to stdout and BENCH_sweep.json
 * (or $GMOMS_BENCH_SWEEP_JSON).
 *
 * This binary overrides global operator new/delete to count heap
 * allocations — the hot-path de-allocation work (FlatMap/RingDeque
 * replacing unordered_map/deque in PE, BurstAssembler, MomsBank and
 * DramChannel) shows up as allocations-per-job, which would be orders
 * of magnitude higher with node-based containers on the tick path.
 *
 * Usage: bench_sweep [--smoke]
 *   --smoke: smallest dataset only, fewer points (CI smoke test).
 * Worker counts compared: 1, 2, 8 and the GMOMS_JOBS /
 * hardware-concurrency default (deduplicated). Exits nonzero on any
 * cross-worker-count result mismatch.
 */

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench/bench_common.hh"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

void*
countedAlloc(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

struct SweepJob
{
    std::string tag;
    std::string algo;
    AccelConfig config;
};

std::vector<SweepJob>
makeJobs(bool smoke)
{
    const std::vector<std::string> tags =
        smoke ? std::vector<std::string>{"WT"} : benchDatasetTags();
    const std::vector<std::string> algos =
        smoke ? std::vector<std::string>{"SCC"}
              : std::vector<std::string>{"PageRank", "SCC"};
    AccelConfig two_level;
    two_level.num_pes = 16;
    two_level.mem.channels = 4;
    two_level.moms = MomsConfig::twoLevel(16);
    AccelConfig shallow = two_level;
    shallow.num_pes = 20;
    shallow.moms = MomsConfig::twoLevel(8);

    std::vector<SweepJob> jobs;
    for (const std::string& tag : tags)
        for (const std::string& algo : algos) {
            jobs.push_back({tag, algo, two_level});
            jobs.push_back({tag, algo, shallow});
        }
    return jobs;
}

/** The per-run fields that must agree bit-for-bit across runners. */
bool
sameResults(const std::vector<RunOutcome>& a,
            const std::vector<RunOutcome>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].result.cycles != b[i].result.cycles ||
            a[i].result.edges_processed != b[i].result.edges_processed ||
            a[i].result.dram_bytes_read != b[i].result.dram_bytes_read ||
            a[i].result.raw_values != b[i].result.raw_values ||
            a[i].gteps != b[i].gteps)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const std::vector<SweepJob> jobs = makeJobs(smoke);

    std::printf("=== Sweep runner: serial vs thread-pooled "
                "(%zu jobs%s) ===\n\n",
                jobs.size(), smoke ? ", smoke" : "");

    // Build every dataset once, up front, so dataset construction is
    // excluded from both the serial and the pooled measurements.
    for (const SweepJob& j : jobs)
        (void)loadDataset(j.tag);

    auto run_one = [](const SweepJob& j) {
        return runOn(*loadDataset(j.tag), j.algo, j.config);
    };

    struct Sample
    {
        std::string name;
        unsigned workers = 0;  //!< 0 = serial loop
        double seconds = 0;
        std::uint64_t allocs = 0;
        bool identical = true;
    };
    std::vector<Sample> samples;

    // Serial reference: a plain loop, no pool involved.
    std::vector<RunOutcome> serial;
    {
        const std::uint64_t alloc0 = allocCount();
        WallTimer timer;
        for (const SweepJob& j : jobs)
            serial.push_back(run_one(j));
        samples.push_back({"serial", 0, timer.elapsedSeconds(),
                           allocCount() - alloc0, true});
    }

    std::vector<unsigned> worker_counts = {1, 2, 8};
    const unsigned def = ThreadPool::defaultWorkers();
    if (std::find(worker_counts.begin(), worker_counts.end(), def) ==
        worker_counts.end())
        worker_counts.push_back(def);

    bool all_identical = true;
    for (unsigned w : worker_counts) {
        ThreadPool pool(w);
        const std::uint64_t alloc0 = allocCount();
        WallTimer timer;
        const std::vector<RunOutcome> pooled =
            sweep(jobs, run_one, &pool);
        Sample s{"pool-" + std::to_string(w), w,
                 timer.elapsedSeconds(), allocCount() - alloc0,
                 sameResults(serial, pooled)};
        all_identical = all_identical && s.identical;
        samples.push_back(std::move(s));
    }

    const double serial_s = samples.front().seconds;
    Table table({"runner", "wall s", "jobs/s", "speedup", "allocs",
                 "identical"});
    for (const Sample& s : samples)
        table.addRow(
            {s.name, fmt(s.seconds, 2),
             fmt(s.seconds > 0 ? jobs.size() / s.seconds : 0.0, 2),
             fmt(s.seconds > 0 ? serial_s / s.seconds : 0.0, 2) + "x",
             std::to_string(s.allocs),
             s.workers == 0 ? "-" : (s.identical ? "yes" : "NO")});
    table.print();

    const char* env = std::getenv("GMOMS_BENCH_SWEEP_JSON");
    const std::string path = env ? env : "BENCH_sweep.json";
    std::ofstream os(path);
    if (os) {
        JsonReport report;
        report.set("jobs", static_cast<std::uint64_t>(jobs.size()))
            .set("smoke", smoke)
            .set("default_workers", static_cast<std::uint64_t>(def))
            .set("identical", all_identical);
        for (const Sample& s : samples) {
            report.set(s.name + "_seconds", s.seconds)
                .set(s.name + "_jobs_per_sec",
                     s.seconds > 0 ? jobs.size() / s.seconds : 0.0)
                .set(s.name + "_allocs", s.allocs);
            if (s.workers != 0)
                report.set(s.name + "_speedup",
                           s.seconds > 0 ? serial_s / s.seconds : 0.0);
        }
        report.write(os);
        os << '\n';
    }

    std::printf("\n%s; rates land in %s.\n",
                all_identical
                    ? "Every pool size reproduced the serial results "
                      "bit-for-bit"
                    : "RESULT MISMATCH across worker counts — the core "
                      "is not re-entrant",
                path.c_str());
    return all_identical ? 0 : 1;
}
