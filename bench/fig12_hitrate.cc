/**
 * @file
 * Fig. 12 — SCC throughput versus cache hit rate, including the same
 * architectures with the cache arrays removed.
 *
 * Paper claims reproduced: traditional caches need high hit rates and
 * collapse at 0%; MOMSes sit at low (or zero) hit rate while matching
 * or beating them, i.e. thousands of MSHRs replace the cache array.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 12: SCC throughput vs cache hit rate ===\n\n");

    std::vector<ArchPreset> presets = fig11Presets();
    // Add the cache-less twins (Fig. 12's "0% hit rate" points).
    const std::size_t base_count = presets.size();
    for (std::size_t i = 0; i < base_count; ++i) {
        ArchPreset p = presets[i];
        p.name += " nocache";
        p.config.moms = p.config.moms.withoutCacheArrays();
        presets.push_back(p);
    }

    Table table({"architecture", "dataset", "hit_rate", "GTEPS"});
    for (const ArchPreset& preset : presets) {
        for (const std::string& tag : benchDatasetTags()) {
            CooGraph g = loadDataset(tag);
            RunOutcome out = runOn(std::move(g), "SCC", preset.config);
            table.addRow({preset.name, tag,
                          fmt(out.result.moms_hit_rate * 100, 1) + "%",
                          fmt(out.gteps, 3)});
        }
    }
    table.print();
    std::printf("\nExpected shape (Fig. 12): 'trad ... nocache' rows "
                "lose most of their throughput;\n'moms ... nocache' "
                "rows stay close to their cached twins despite 0%% "
                "hits.\n");
    return 0;
}
