/**
 * @file
 * Fig. 12 — SCC throughput versus cache hit rate, including the same
 * architectures with the cache arrays removed.
 *
 * Paper claims reproduced: traditional caches need high hit rates and
 * collapse at 0%; MOMSes sit at low (or zero) hit rate while matching
 * or beating them, i.e. thousands of MSHRs replace the cache array.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 12: SCC throughput vs cache hit rate ===\n\n");

    std::vector<ArchPreset> presets = fig11Presets();
    // Add the cache-less twins (Fig. 12's "0% hit rate" points).
    const std::size_t base_count = presets.size();
    for (std::size_t i = 0; i < base_count; ++i) {
        ArchPreset p = presets[i];
        p.name += " nocache";
        p.config.moms = p.config.moms.withoutCacheArrays();
        presets.push_back(p);
    }

    Table table({"architecture", "dataset", "hit_rate", "GTEPS"});
    // One job per (preset, dataset) point, fanned across the pool.
    struct Job
    {
        std::size_t preset;
        std::string tag;
    };
    std::vector<Job> jobs;
    for (std::size_t p = 0; p < presets.size(); ++p)
        for (const std::string& tag : benchDatasetTags())
            jobs.push_back({p, tag});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            return runOn(*loadDataset(j.tag), "SCC",
                         presets[j.preset].config);
        });
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunOutcome& out = outcomes[i];
        table.addRow({presets[jobs[i].preset].name, jobs[i].tag,
                      fmt(out.result.moms_hit_rate * 100, 1) + "%",
                      fmt(out.gteps, 3)});
    }
    table.print();
    std::printf("\nExpected shape (Fig. 12): 'trad ... nocache' rows "
                "lose most of their throughput;\n'moms ... nocache' "
                "rows stay close to their cached twins despite 0%% "
                "hits.\n");
    return 0;
}
