/**
 * @file
 * Ablation — MOMS structure sizing: MSHR count, subentry pool size and
 * downstream queue depth, on SCC over the RMAT-24 stand-in.
 *
 * This quantifies the paper's central design argument: the merging
 * window is what matters. Shrinking the MSHR file toward the
 * traditional 16 kills throughput; shrinking the subentry pool caps
 * merging; shallow memory-side queues shrink the in-flight window that
 * secondary misses accumulate against (Section II).
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

struct Sizing
{
    std::uint32_t mshrs;
    std::uint32_t subentries;
    std::uint32_t dram_queue;
};

RunOutcome
runWith(const CooGraph& g, const Sizing& s)
{
    AccelConfig cfg = AccelConfig::preset(
        MomsConfig::twoLevel(16).withoutCacheArrays(), /*pes=*/16);
    for (MomsBankConfig* b :
         {&cfg.moms.shared_bank, &cfg.moms.private_bank}) {
        b->num_mshrs = s.mshrs;
        b->num_subentries = s.subentries;
    }
    cfg.mem.timing.port_queue_depth = s.dram_queue;
    cfg.mem.timing.resp_queue_depth = s.dram_queue;
    return runOn(g, "SCC", cfg);
}

} // namespace

int
main()
{
    std::printf("=== Ablation: MOMS structure sizing (SCC on RMAT-24 "
                "stand-in, cache-less two-level 16/16) ===\n\n");

    // All three sizing axes form one flat job list, fanned across the
    // worker pool; the tables below consume the results in order.
    const std::vector<std::uint32_t> mshr_axis = {16u, 64u, 256u,
                                                  1024u, 4096u};
    const std::vector<std::uint32_t> sub_axis = {128u, 1024u, 8192u,
                                                 32768u};
    const std::vector<std::uint32_t> queue_axis = {4u, 16u, 64u, 256u};
    std::vector<Sizing> jobs;
    for (std::uint32_t m : mshr_axis)
        jobs.push_back({m, 8192, 64});
    for (std::uint32_t s : sub_axis)
        jobs.push_back({1024, s, 64});
    for (std::uint32_t q : queue_axis)
        jobs.push_back({1024, 8192, q});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [](const Sizing& s) {
            return runWith(*loadDataset("24"), s);
        });
    std::size_t next = 0;

    std::printf("-- MSHRs per bank (subentries 8192, DRAM queues 64) "
                "--\n");
    Table mshr_table({"MSHRs/bank", "GTEPS", "merge%", "lines from "
                                                       "DRAM"});
    for (std::uint32_t m : mshr_axis) {
        const RunOutcome& out = outcomes[next++];
        mshr_table.addRow(
            {std::to_string(m), fmt(out.gteps, 3),
             fmt(100.0 * out.result.moms_secondary_misses /
                     std::max<std::uint64_t>(out.result.moms_requests,
                                             1),
                 1),
             std::to_string(out.result.moms_lines_from_mem)});
    }
    mshr_table.print();

    std::printf("\n-- subentries per bank (MSHRs 1024, DRAM queues 64) "
                "--\n");
    Table sub_table({"subentries/bank", "GTEPS", "merge%"});
    for (std::uint32_t s : sub_axis) {
        const RunOutcome& out = outcomes[next++];
        sub_table.addRow(
            {std::to_string(s), fmt(out.gteps, 3),
             fmt(100.0 * out.result.moms_secondary_misses /
                     std::max<std::uint64_t>(out.result.moms_requests,
                                             1),
                 1)});
    }
    sub_table.print();

    std::printf("\n-- DRAM-side queue depth (MSHRs 1024, subentries "
                "8192) --\n");
    Table q_table({"queue depth", "GTEPS", "merge%"});
    for (std::uint32_t q : queue_axis) {
        const RunOutcome& out = outcomes[next++];
        q_table.addRow(
            {std::to_string(q), fmt(out.gteps, 3),
             fmt(100.0 * out.result.moms_secondary_misses /
                     std::max<std::uint64_t>(out.result.moms_requests,
                                             1),
                 1)});
    }
    q_table.print();

    std::printf("\nExpected: throughput and merge rate grow with every "
                "axis and saturate — the\n'thousands of outstanding "
                "misses' regime is what separates a MOMS from a "
                "traditional\nnonblocking cache.\n");
    return 0;
}
