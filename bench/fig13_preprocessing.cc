/**
 * @file
 * Fig. 13 — PageRank throughput on the two-level MOMS depending on the
 * preprocessing technique (none / cache-line hashing / DBG / both).
 *
 * Paper claims: hashing helps most benchmarks (load balance across
 * jobs), especially small ones; DBG adds a significant speedup on
 * graphs whose native labeling does not preserve communities (the
 * social graphs and the RMATs).
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 13: PageRank throughput by preprocessing "
                "(two-level 16/16 MOMS) ===\n\n");

    AccelConfig cfg =
        AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);

    const std::vector<Preprocessing> preps = {
        Preprocessing::None, Preprocessing::Hash, Preprocessing::Dbg,
        Preprocessing::DbgHash};

    std::vector<std::string> header = {"dataset"};
    for (Preprocessing p : preps)
        header.push_back(preprocessingName(p));
    header.push_back("best");
    Table table(header);

    // One job per (dataset, preprocessing) point, fanned across the
    // pool; each worker builds its own preprocessed dataset variant.
    struct Job
    {
        std::string tag;
        Preprocessing prep;
    };
    std::vector<Job> jobs;
    for (const std::string& tag : benchDatasetTags())
        for (Preprocessing p : preps)
            jobs.push_back({tag, p});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            return runOn(*loadDataset(j.tag, j.prep), "PageRank", cfg);
        });

    std::size_t next = 0;
    for (const std::string& tag : benchDatasetTags()) {
        std::vector<std::string> row = {tag};
        double best = 0;
        std::string best_name;
        for (Preprocessing p : preps) {
            const RunOutcome& out = outcomes[next++];
            row.push_back(fmt(out.gteps, 3));
            if (out.gteps > best) {
                best = out.gteps;
                best_name = preprocessingName(p);
            }
        }
        row.push_back(best_name);
        table.addRow(row);
    }
    table.print();
    std::printf("\nExpected shape (Fig. 13): hashing beats none on most "
                "datasets; dbg+hash wins on the\ncommunity-scattered "
                "labelings (MP and the RMATs).\n");
    return 0;
}
