/**
 * @file
 * Simulator-speed bench: idle-aware engine versus legacy full-tick.
 *
 * Runs the same latency-bound workloads (high SLR-crossing latency and
 * cache-less MOMS configurations, the slowest points of
 * ablation_die_crossing and fig12_hitrate) under both engine modes,
 * checks bit-exact cycle/result agreement, and reports wall-clock
 * speedup. The EngineBenchRecorder in bench_common.hh writes the
 * aggregate numbers — including the cycles/sec "speedup" field — to
 * BENCH_engine.json at exit.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Engine speed: idle-aware vs legacy full-tick "
                "===\n\n");

    struct Workload
    {
        std::string name;
        std::string algo;
        std::string dataset;
        AccelConfig config;
    };

    std::vector<Workload> workloads;
    {
        // Deeply latency-bound: a single PE, one 64 B edge burst in
        // flight, no cache arrays and the deepest die-crossing
        // latency. Each 16-word decode phase is followed by a full
        // DRAM round trip during which every component sleeps.
        AccelConfig cfg = AccelConfig::preset(
            MomsConfig::twoLevel(16).withoutCacheArrays(), /*pes=*/1);
        cfg.max_edge_bursts = 1;
        cfg.edge_burst_lines = 1;
        cfg.moms.crossing_latency = 32;
        workloads.push_back(
            {"1pe mlp1 64B nocache x32", "SCC", "UK", cfg});
    }
    {
        // Latency-bound: a single PE with one edge burst in flight
        // alternates decode bursts with full (cache-less, deep
        // die-crossing) DRAM round trips, so most components sleep
        // most cycles — the regime the wake calendar targets.
        AccelConfig cfg = AccelConfig::preset(
            MomsConfig::twoLevel(16).withoutCacheArrays(), /*pes=*/1);
        cfg.max_edge_bursts = 1;
        cfg.moms.crossing_latency = 32;
        workloads.push_back(
            {"1pe mlp1 nocache x32", "SCC", "UK", cfg});
    }
    {
        // Same low-MLP point at 16 PEs: enough threads in flight to
        // keep most components busy, so skipping buys little — kept
        // to show the idle-aware engine does not regress saturated
        // (throughput-bound) runs.
        AccelConfig cfg =
            AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);
        cfg.max_edge_bursts = 1;
        cfg.moms.crossing_latency = 32;
        workloads.push_back(
            {"16pe mlp1 crossing-32", "SCC", "UK", cfg});
    }

    Table table({"workload", "cycles", "full-tick s", "idle s",
                 "skip %", "speedup"});
    bool exact = true;
    for (const Workload& w : workloads) {
        const CooGraph& g = *loadDataset(w.dataset);

        AccelConfig full = w.config;
        full.full_tick_engine = true;
        RunOutcome f = runOn(g, w.algo, full);

        AccelConfig idle = w.config;
        idle.full_tick_engine = false;
        RunOutcome i = runOn(g, w.algo, idle);

        if (f.result.cycles != i.result.cycles ||
            f.result.raw_values != i.result.raw_values) {
            std::printf("MISMATCH on %s: full-tick %llu cycles, "
                        "idle-aware %llu cycles\n", w.name.c_str(),
                        static_cast<unsigned long long>(f.result.cycles),
                        static_cast<unsigned long long>(i.result.cycles));
            exact = false;
        }

        const std::uint64_t ticks = i.engine.ticks_executed +
                                    i.engine.ticks_skipped;
        table.addRow(
            {w.name, std::to_string(i.result.cycles),
             fmt(f.wall_seconds, 2), fmt(i.wall_seconds, 2),
             fmt(ticks ? 100.0 *
                             static_cast<double>(i.engine.ticks_skipped) /
                             static_cast<double>(ticks)
                       : 0.0,
                 1),
             fmt(i.wall_seconds > 0 ? f.wall_seconds / i.wall_seconds
                                    : 0.0,
                 2) +
                 "x"});
    }
    table.print();
    std::printf("\n%s; aggregate rates land in BENCH_engine.json.\n",
                exact ? "Both engines agreed bit-for-bit on every run"
                      : "ENGINES DISAGREED — idle-aware mode is broken");

    // Telemetry cost contract (docs/MODEL.md): collection off must be
    // free (no sampler component, null probe pointers), and collection
    // on must not change simulation results. The saturated 16-PE
    // workload is the worst case for per-push/pop probe overhead.
    std::printf("\n=== Telemetry overhead (idle-aware engine) ===\n");
    Table tele_table(
        {"workload", "off s", "on s", "overhead", "stall cyc"});
    bool tele_exact = true;
    for (const Workload& w : workloads) {
        const CooGraph& g = *loadDataset(w.dataset);

        AccelConfig off = w.config;
        RunOutcome base = runOn(g, w.algo, off);

        AccelConfig on = w.config;
        on.telemetry.enabled = true;
        on.telemetry.label = w.name;
        RunOutcome instr = runOn(g, w.algo, on);

        if (base.result.cycles != instr.result.cycles ||
            base.result.raw_values != instr.result.raw_values) {
            std::printf("TELEMETRY PERTURBED %s: off %llu cycles, "
                        "on %llu cycles\n", w.name.c_str(),
                        static_cast<unsigned long long>(
                            base.result.cycles),
                        static_cast<unsigned long long>(
                            instr.result.cycles));
            tele_exact = false;
        }
        if (!instr.result.telemetry) {
            std::printf("NO SUMMARY on %s despite telemetry on\n",
                        w.name.c_str());
            tele_exact = false;
        }

        const double overhead =
            base.wall_seconds > 0
                ? instr.wall_seconds / base.wall_seconds - 1.0
                : 0.0;
        tele_table.addRow(
            {w.name, fmt(base.wall_seconds, 2),
             fmt(instr.wall_seconds, 2),
             fmt(100.0 * overhead, 1) + "%",
             instr.result.telemetry
                 ? std::to_string(
                       instr.result.telemetry->totalStallCycles())
                 : "-"});
    }
    tele_table.print();
    std::printf("\n%s.\n",
                tele_exact
                    ? "Telemetry left every result bit-identical"
                    : "TELEMETRY CHANGED RESULTS — collection is not "
                      "observation-only");

    // Hardening cost contract (docs/MODEL.md "Invariants & watchdog"):
    // checks off must be free (no harness component, no shadow memory),
    // and checks on — watchdog, conservation checkers, shadow-memory
    // verification — must only *observe*, leaving results bit-identical
    // at, per the acceptance bar, <= 5% wall-clock overhead.
    std::printf("\n=== Hardening overhead (idle-aware engine) ===\n");
    Table check_table({"workload", "off s", "on s", "overhead"});
    bool check_exact = true;
    for (const Workload& w : workloads) {
        const CooGraph& g = *loadDataset(w.dataset);

        AccelConfig off = w.config;
        RunOutcome base = runOn(g, w.algo, off);

        AccelConfig on = w.config;
        on.checks.enabled = true;
        RunOutcome hard = runOn(g, w.algo, on);

        if (base.result.cycles != hard.result.cycles ||
            base.result.raw_values != hard.result.raw_values) {
            std::printf("CHECKS PERTURBED %s: off %llu cycles, "
                        "on %llu cycles\n", w.name.c_str(),
                        static_cast<unsigned long long>(
                            base.result.cycles),
                        static_cast<unsigned long long>(
                            hard.result.cycles));
            check_exact = false;
        }

        const double overhead =
            base.wall_seconds > 0
                ? hard.wall_seconds / base.wall_seconds - 1.0
                : 0.0;
        check_table.addRow({w.name, fmt(base.wall_seconds, 2),
                            fmt(hard.wall_seconds, 2),
                            fmt(100.0 * overhead, 1) + "%"});
    }
    check_table.print();
    std::printf("\n%s.\n",
                check_exact
                    ? "The hardening layer left every result "
                      "bit-identical"
                    : "CHECKS CHANGED RESULTS — the hardening layer is "
                      "not observation-only");
    return exact && tele_exact && check_exact ? 0 : 1;
}
