/**
 * @file
 * Simulator-speed bench: idle-aware engine versus legacy full-tick.
 *
 * Runs the same latency-bound workloads (high SLR-crossing latency and
 * cache-less MOMS configurations, the slowest points of
 * ablation_die_crossing and fig12_hitrate) under both engine modes,
 * checks bit-exact cycle/result agreement, and reports wall-clock
 * speedup. Two further sections cover this layer's other speed knobs:
 * a tick-thread sweep (AccelConfig::tick_threads in {1,2,4,8} on the
 * Fig. 11 reference design point, asserting bit-exact results at every
 * count) and checkpoint capture/restore/fork latency. The
 * EngineBenchRecorder in bench_common.hh writes all aggregate numbers
 * — including host_cpus, without which the tick-thread speedups cannot
 * be interpreted — to BENCH_engine.json at exit, atomically.
 */

#include "bench/bench_common.hh"
#include "src/accel/checkpoint.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Engine speed: idle-aware vs legacy full-tick "
                "===\n\n");

    struct Workload
    {
        std::string name;
        std::string algo;
        std::string dataset;
        AccelConfig config;
    };

    std::vector<Workload> workloads;
    {
        // Deeply latency-bound: a single PE, one 64 B edge burst in
        // flight, no cache arrays and the deepest die-crossing
        // latency. Each 16-word decode phase is followed by a full
        // DRAM round trip during which every component sleeps.
        AccelConfig cfg = AccelConfig::preset(
            MomsConfig::twoLevel(16).withoutCacheArrays(), /*pes=*/1);
        cfg.max_edge_bursts = 1;
        cfg.edge_burst_lines = 1;
        cfg.moms.crossing_latency = 32;
        workloads.push_back(
            {"1pe mlp1 64B nocache x32", "SCC", "UK", cfg});
    }
    {
        // Latency-bound: a single PE with one edge burst in flight
        // alternates decode bursts with full (cache-less, deep
        // die-crossing) DRAM round trips, so most components sleep
        // most cycles — the regime the wake calendar targets.
        AccelConfig cfg = AccelConfig::preset(
            MomsConfig::twoLevel(16).withoutCacheArrays(), /*pes=*/1);
        cfg.max_edge_bursts = 1;
        cfg.moms.crossing_latency = 32;
        workloads.push_back(
            {"1pe mlp1 nocache x32", "SCC", "UK", cfg});
    }
    {
        // Same low-MLP point at 16 PEs: enough threads in flight to
        // keep most components busy, so skipping buys little — kept
        // to show the idle-aware engine does not regress saturated
        // (throughput-bound) runs.
        AccelConfig cfg =
            AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);
        cfg.max_edge_bursts = 1;
        cfg.moms.crossing_latency = 32;
        workloads.push_back(
            {"16pe mlp1 crossing-32", "SCC", "UK", cfg});
    }

    Table table({"workload", "cycles", "full-tick s", "idle s",
                 "skip %", "speedup"});
    bool exact = true;
    for (const Workload& w : workloads) {
        const CooGraph& g = *loadDataset(w.dataset);

        AccelConfig full = w.config;
        full.full_tick_engine = true;
        RunOutcome f = runOn(g, w.algo, full);

        AccelConfig idle = w.config;
        idle.full_tick_engine = false;
        RunOutcome i = runOn(g, w.algo, idle);

        if (f.result.cycles != i.result.cycles ||
            f.result.raw_values != i.result.raw_values) {
            std::printf("MISMATCH on %s: full-tick %llu cycles, "
                        "idle-aware %llu cycles\n", w.name.c_str(),
                        static_cast<unsigned long long>(f.result.cycles),
                        static_cast<unsigned long long>(i.result.cycles));
            exact = false;
        }

        const std::uint64_t ticks = i.engine.ticks_executed +
                                    i.engine.ticks_skipped;
        table.addRow(
            {w.name, std::to_string(i.result.cycles),
             fmt(f.wall_seconds, 2), fmt(i.wall_seconds, 2),
             fmt(ticks ? 100.0 *
                             static_cast<double>(i.engine.ticks_skipped) /
                             static_cast<double>(ticks)
                       : 0.0,
                 1),
             fmt(i.wall_seconds > 0 ? f.wall_seconds / i.wall_seconds
                                    : 0.0,
                 2) +
                 "x"});
    }
    table.print();
    std::printf("\n%s; aggregate rates land in BENCH_engine.json.\n",
                exact ? "Both engines agreed bit-for-bit on every run"
                      : "ENGINES DISAGREED — idle-aware mode is broken");

    // Telemetry cost contract (docs/MODEL.md): collection off must be
    // free (no sampler component, null probe pointers), and collection
    // on must not change simulation results. The saturated 16-PE
    // workload is the worst case for per-push/pop probe overhead.
    std::printf("\n=== Telemetry overhead (idle-aware engine) ===\n");
    Table tele_table(
        {"workload", "off s", "on s", "overhead", "stall cyc"});
    bool tele_exact = true;
    for (const Workload& w : workloads) {
        const CooGraph& g = *loadDataset(w.dataset);

        AccelConfig off = w.config;
        RunOutcome base = runOn(g, w.algo, off);

        AccelConfig on = w.config;
        on.telemetry.enabled = true;
        on.telemetry.label = w.name;
        RunOutcome instr = runOn(g, w.algo, on);

        if (base.result.cycles != instr.result.cycles ||
            base.result.raw_values != instr.result.raw_values) {
            std::printf("TELEMETRY PERTURBED %s: off %llu cycles, "
                        "on %llu cycles\n", w.name.c_str(),
                        static_cast<unsigned long long>(
                            base.result.cycles),
                        static_cast<unsigned long long>(
                            instr.result.cycles));
            tele_exact = false;
        }
        if (!instr.result.telemetry) {
            std::printf("NO SUMMARY on %s despite telemetry on\n",
                        w.name.c_str());
            tele_exact = false;
        }

        const double overhead =
            base.wall_seconds > 0
                ? instr.wall_seconds / base.wall_seconds - 1.0
                : 0.0;
        tele_table.addRow(
            {w.name, fmt(base.wall_seconds, 2),
             fmt(instr.wall_seconds, 2),
             fmt(100.0 * overhead, 1) + "%",
             instr.result.telemetry
                 ? std::to_string(
                       instr.result.telemetry->totalStallCycles())
                 : "-"});
    }
    tele_table.print();
    std::printf("\n%s.\n",
                tele_exact
                    ? "Telemetry left every result bit-identical"
                    : "TELEMETRY CHANGED RESULTS — collection is not "
                      "observation-only");

    // Hardening cost contract (docs/MODEL.md "Invariants & watchdog"):
    // checks off must be free (no harness component, no shadow memory),
    // and checks on — watchdog, conservation checkers, shadow-memory
    // verification — must only *observe*, leaving results bit-identical
    // at, per the acceptance bar, <= 5% wall-clock overhead.
    std::printf("\n=== Hardening overhead (idle-aware engine) ===\n");
    Table check_table({"workload", "off s", "on s", "overhead"});
    bool check_exact = true;
    for (const Workload& w : workloads) {
        const CooGraph& g = *loadDataset(w.dataset);

        AccelConfig off = w.config;
        RunOutcome base = runOn(g, w.algo, off);

        AccelConfig on = w.config;
        on.checks.enabled = true;
        RunOutcome hard = runOn(g, w.algo, on);

        if (base.result.cycles != hard.result.cycles ||
            base.result.raw_values != hard.result.raw_values) {
            std::printf("CHECKS PERTURBED %s: off %llu cycles, "
                        "on %llu cycles\n", w.name.c_str(),
                        static_cast<unsigned long long>(
                            base.result.cycles),
                        static_cast<unsigned long long>(
                            hard.result.cycles));
            check_exact = false;
        }

        const double overhead =
            base.wall_seconds > 0
                ? hard.wall_seconds / base.wall_seconds - 1.0
                : 0.0;
        check_table.addRow({w.name, fmt(base.wall_seconds, 2),
                            fmt(hard.wall_seconds, 2),
                            fmt(100.0 * overhead, 1) + "%"});
    }
    check_table.print();
    std::printf("\n%s.\n",
                check_exact
                    ? "The hardening layer left every result "
                      "bit-identical"
                    : "CHECKS CHANGED RESULTS — the hardening layer is "
                      "not observation-only");

    // Parallel-tick contract (docs/MODEL.md "Deterministic parallel
    // ticking & checkpoints"): any tick_threads value is bit-identical
    // to serial; the speedup depends on host cores (host_cpus in the
    // JSON — on a 1-core CI runner the barrier only costs).
    std::printf("\n=== Parallel ticking: tick-thread sweep "
                "(Fig. 11 reference, 18/16 two-level 2k) ===\n");
    const AccelConfig ref_cfg =
        AccelConfig::preset(MomsConfig::twoLevel(16, 2048), /*pes=*/18,
                            /*channels=*/4);
    const CooGraph& ref_g = *loadDataset("WT");

    Table tick_table(
        {"threads", "cycles", "wall s", "Mcyc/s", "speedup", "exact"});
    bool tick_exact = true;
    RunOutcome serial;
    double serial_rate = 0;
    std::string tick_json = "[";
    const unsigned kThreadCounts[] = {1, 2, 4, 8};
    for (unsigned t : kThreadCounts) {
        AccelConfig cfg = ref_cfg;
        cfg.tick_threads = t;
        RunOutcome o = runOn(ref_g, "PageRank", cfg);
        const bool same =
            t == 1 || (o.result.cycles == serial.result.cycles &&
                       o.result.raw_values == serial.result.raw_values);
        if (t == 1)
            serial = o;
        if (!same) {
            std::printf("MISMATCH at tick_threads=%u: results differ "
                        "from serial\n", t);
            tick_exact = false;
        }
        const double rate =
            o.wall_seconds > 0
                ? static_cast<double>(o.result.cycles) / o.wall_seconds
                : 0.0;
        if (t == 1)
            serial_rate = rate;
        const double speedup = serial_rate > 0 ? rate / serial_rate : 0;
        tick_table.addRow({std::to_string(t),
                           std::to_string(o.result.cycles),
                           fmt(o.wall_seconds, 2), fmt(rate / 1e6, 3),
                           fmt(speedup, 2) + "x", same ? "yes" : "NO"});
        JsonReport row;
        row.set("threads", static_cast<std::uint64_t>(t))
            .set("cycles", static_cast<std::uint64_t>(o.result.cycles))
            .set("wall_seconds", o.wall_seconds)
            .set("cycles_per_sec", rate)
            .set("speedup_vs_serial", speedup)
            .set("exact", same);
        if (tick_json.size() > 1)
            tick_json += ",";
        tick_json += row.str();
    }
    tick_json += "]";
    EngineBenchRecorder::instance().addSection("tick_threads",
                                               tick_json);
    tick_table.print();
    std::printf("\n%s.\n",
                tick_exact
                    ? "Every thread count reproduced the serial run "
                      "bit-for-bit"
                    : "PARALLEL TICKING CHANGED RESULTS — the tick-"
                      "group contract is broken");

    // Checkpoint latency: what the serving layer pays to save a warm
    // session once versus forking it per job.
    std::printf("\n=== Warm-session checkpoint: capture / restore / "
                "fork ===\n");
    Session warm = SessionBuilder()
                       .datasetView(ref_g)
                       .config(ref_cfg)
                       .build();
    WallTimer capture_timer;
    SessionCheckpoint cp = SessionCheckpoint::capture(warm);
    const double capture_s = capture_timer.elapsedSeconds();

    WallTimer restore_timer;
    Session restored = cp.restore();
    const double restore_s = restore_timer.elapsedSeconds();

    constexpr int kForks = 1000;
    WallTimer fork_timer;
    for (int i = 0; i < kForks; ++i)
        Session forked = cp.restore();
    const double fork_avg_s =
        fork_timer.elapsedSeconds() / static_cast<double>(kForks);

    std::printf("capture (incl. partition warm-up): %.3f ms\n"
                "first restore:                     %.6f ms\n"
                "fork (avg of %d):                  %.6f ms\n"
                "resident bytes:                    %zu\n",
                capture_s * 1e3, restore_s * 1e3, kForks,
                fork_avg_s * 1e3, cp.residentBytes());

    JsonReport ckpt;
    ckpt.set("capture_seconds", capture_s)
        .set("restore_seconds", restore_s)
        .set("fork_seconds_avg", fork_avg_s)
        .set("forks_timed", static_cast<std::uint64_t>(kForks))
        .set("resident_bytes",
             static_cast<std::uint64_t>(cp.residentBytes()));
    EngineBenchRecorder::instance().addSection("checkpoint",
                                               ckpt.str());

    return exact && tele_exact && check_exact && tick_exact ? 0 : 1;
}
