/**
 * @file
 * Fig. 15 — SCC throughput of the 20/8 two-level MOMS and the 20/8
 * two-level traditional cache, with and without the private and/or
 * shared cache arrays.
 *
 * Paper claims: removing every cache array costs the traditional cache
 * ~2.2x but the MOMS only ~10% (geomean) — MSHRs replace the cache
 * array; the cache-less MOMS roughly matches the full traditional
 * cache while using fewer memory bits.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

struct Variant
{
    const char* name;
    bool private_cache;
    bool shared_cache;
};

AccelConfig
makeConfig(bool traditional, const Variant& v)
{
    AccelConfig cfg = AccelConfig::preset(
        traditional ? MomsConfig::traditionalTwoLevel(8)
                    : MomsConfig::twoLevel(8, 1024),
        /*pes=*/20);
    if (!v.private_cache)
        cfg.moms = cfg.moms.withPrivateCache(0);
    if (!v.shared_cache)
        cfg.moms = cfg.moms.withSharedCache(0);
    return cfg;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 15: SCC throughput, 20/8 two-level, with and "
                "without cache arrays ===\n\n");

    const std::vector<Variant> variants = {
        {"full", true, true},
        {"no-private", false, true},
        {"no-shared", true, false},
        {"cache-less", false, false},
    };

    // One job per (traditional?, variant, dataset) point, fanned
    // across the worker pool; rows assemble from the ordered results.
    struct Job
    {
        bool traditional;
        std::size_t variant;
        std::string tag;
    };
    std::vector<Job> jobs;
    for (bool traditional : {false, true})
        for (std::size_t v = 0; v < variants.size(); ++v)
            for (const std::string& tag : benchDatasetTags())
                jobs.push_back({traditional, v, tag});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            return runOn(*loadDataset(j.tag), "SCC",
                         makeConfig(j.traditional, variants[j.variant]));
        });

    std::size_t next = 0;
    for (bool traditional : {false, true}) {
        std::printf("--- %s ---\n",
                    traditional ? "traditional 20/8" : "MOMS 20/8");
        std::vector<std::string> header = {"variant"};
        for (const auto& tag : benchDatasetTags())
            header.push_back(tag);
        header.push_back("geomean");
        Table table(header);

        double full_geomean = 0, cacheless_geomean = 0;
        for (const Variant& v : variants) {
            std::vector<std::string> row = {v.name};
            std::vector<double> gteps;
            for (const std::string& tag : benchDatasetTags()) {
                (void)tag;
                const RunOutcome& out = outcomes[next++];
                gteps.push_back(out.gteps);
                row.push_back(fmt(out.gteps, 3));
            }
            const double gm = geomean(gteps);
            row.push_back(fmt(gm, 3));
            table.addRow(row);
            if (std::string(v.name) == "full")
                full_geomean = gm;
            if (std::string(v.name) == "cache-less")
                cacheless_geomean = gm;
        }
        table.print();
        std::printf("full / cache-less throughput ratio: %.2fx "
                    "(paper: traditional ~2.2x, MOMS ~1.1x)\n\n",
                    full_geomean / cacheless_geomean);
    }
    return 0;
}
