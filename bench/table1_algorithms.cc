/**
 * @file
 * Table I — Algorithm-specific parameters of the Template 1 programming
 * model, as implemented by AlgoSpec, plus a live demonstration that
 * each parameterization computes correct results through the untimed
 * reference executor.
 */

#include "bench/bench_common.hh"
#include "src/algo/golden.hh"
#include "src/algo/reference.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Table I: algorithm parameterizations ===\n\n");

    CooGraph g = rmat(12, 30000, RmatParams{}, 5);
    addRandomWeights(g, 7);

    const std::vector<AlgoSpec> specs = {
        AlgoSpec::pageRank(g, 10),
        AlgoSpec::scc(g.numNodes()),
        AlgoSpec::sssp(0),
        AlgoSpec::bfs(0),
        AlgoSpec::wcc(g.numNodes()),
    };

    Table table({"param", "PageRank", "SCC", "SSSP", "BFS*", "WCC*"});
    auto row = [&](const char* name,
                   const std::function<std::string(const AlgoSpec&)>& f) {
        std::vector<std::string> cells = {name};
        for (const AlgoSpec& s : specs)
            cells.push_back(f(s));
        table.addRow(cells);
    };
    auto yn = [](bool b) { return std::string(b ? "true" : "false"); };
    row("V_const", [&](const AlgoSpec& s) {
        return std::string(s.has_const ? "OD[i]" : "not used");
    });
    row("weighted edges",
        [&](const AlgoSpec& s) { return yn(s.weighted); });
    row("synchronous",
        [&](const AlgoSpec& s) { return yn(s.synchronous); });
    row("use_local_src",
        [&](const AlgoSpec& s) { return yn(s.use_local_src); });
    row("always_active",
        [&](const AlgoSpec& s) { return yn(s.always_active); });
    row("gather latency", [&](const AlgoSpec& s) {
        return std::to_string(s.gather_latency) + " cycle(s)";
    });
    table.print();
    std::printf("(*extensions beyond the paper's three kernels)\n\n");

    // Live check: every parameterization yields golden results.
    std::printf("functional check on RMAT-12 (30k edges):\n");
    PartitionedGraph pg(g, 512, 1024);
    {
        ReferenceResult r = runReference(pg, specs[1]);
        auto golden = goldenMinLabel(g);
        bool ok = r.raw_values == golden;
        std::printf("  SCC  : %s (%u iterations)\n",
                    ok ? "matches golden" : "MISMATCH", r.iterations);
    }
    {
        ReferenceResult r = runReference(pg, specs[2]);
        auto golden = goldenSssp(g, 0);
        bool ok = r.raw_values == golden;
        std::printf("  SSSP : %s (%u iterations)\n",
                    ok ? "matches golden" : "MISMATCH", r.iterations);
    }
    {
        ReferenceResult r = runReference(pg, specs[0]);
        auto golden = goldenPageRank(g, 10);
        double max_rel = 0;
        for (NodeId i = 0; i < g.numNodes(); ++i) {
            const double got = r.value(specs[0], i);
            if (golden[i] > 0)
                max_rel = std::max(max_rel,
                                   std::abs(got - golden[i]) / golden[i]);
        }
        std::printf("  PR   : max relative error vs golden %.2e\n",
                    max_rel);
    }
    return 0;
}
