/**
 * @file
 * Fig. 17 — Relative resource utilization (LUT/FF/BRAM/URAM/DSP) of the
 * top architectures per application, from the calibrated resource
 * model (DESIGN.md substitution: no place-and-route available).
 *
 * Paper claims: designs are mostly limited by LUTs (interconnect) and
 * BRAM; DSPs are underutilized even for floating-point PageRank;
 * modelled frequencies land in the 196-227 MHz band.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 17: resource utilization of the top designs "
                "===\n\n");

    struct Design
    {
        const char* algo;
        ArchPreset preset;
    };
    auto presets = fig11Presets();
    const std::vector<Design> designs = {
        {"PageRank", presets[0]}, {"PageRank", presets[1]},
        {"SCC", presets[0]},      {"SCC", presets[2]},
        {"SSSP", presets[0]},     {"SSSP", presets[1]},
    };

    Table table({"design", "algo", "LUT%", "FF%", "BRAM%", "URAM%",
                 "DSP%", "peakSLR%", "fmax"});
    for (const Design& d : designs) {
        // Build a representative spec (sizes only matter for PEs).
        CooGraph g = chain(1000);
        AlgoSpec spec = makeSpec(d.algo, g);
        AccelConfig cfg = d.preset.config;
        cfg.nd = 32768 / 256;  // paper-equivalent interval scaling
        ResourceBreakdown r = estimateResources(cfg, spec);
        const double f = modelFrequencyMhz(cfg, spec);
        table.addRow({d.preset.name, d.algo,
                      fmt(r.lut_util * 100, 1), fmt(r.ff_util * 100, 1),
                      fmt(r.bram_util * 100, 1),
                      fmt(r.uram_util * 100, 1),
                      fmt(r.dsp_util * 100, 1),
                      fmt(r.peak_slr_lut_util * 100, 1),
                      fmt(f, 0) + "MHz"});
    }
    table.print();

    std::printf("\nBreakdown for the 16/16 two-level PageRank design "
                "(LUTs by component):\n");
    CooGraph g = chain(1000);
    AlgoSpec pr = makeSpec("PageRank", g);
    AccelConfig cfg = presets[0].config;
    ResourceBreakdown r = estimateResources(cfg, pr);
    Table parts({"component", "LUTs", "BRAM36", "URAM"});
    parts.addRow({"PEs", fmt(r.pes.luts, 0), fmt(r.pes.bram36, 0),
                  fmt(r.pes.uram, 0)});
    parts.addRow({"MOMS", fmt(r.moms.luts, 0), fmt(r.moms.bram36, 0),
                  fmt(r.moms.uram, 0)});
    parts.addRow({"interconnect", fmt(r.interconnect.luts, 0),
                  fmt(r.interconnect.bram36, 0),
                  fmt(r.interconnect.uram, 0)});
    parts.print();
    std::printf("\nExpected shape (Fig. 17): LUTs dominated by the "
                "interconnect; BRAM/URAM by PEs+MOMS; DSP low.\n");
    return 0;
}
