/**
 * @file
 * Table II — Benchmark properties: the paper's N and M next to the
 * synthetic stand-ins actually used (scaled 1/256 with an edge cap;
 * see DESIGN.md), with measured structural statistics.
 */

#include "bench/bench_common.hh"
#include "src/graph/graph_stats.hh"

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

std::string
human(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2fB", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

} // namespace

int
main()
{
    std::printf("=== Table II: benchmark properties ===\n\n");
    Table table({"tag", "benchmark", "paper N", "paper M", "standin N",
                 "standin M", "avg deg", "top1% edges", "locality"});
    for (const DatasetProfile& p : table2Profiles()) {
        CooGraph g = buildDataset(p);
        GraphStats s = computeGraphStats(g);
        table.addRow({p.tag, p.full_name,
                      human(static_cast<double>(p.paper_nodes)),
                      human(static_cast<double>(p.paper_edges)),
                      human(static_cast<double>(s.num_nodes)),
                      human(static_cast<double>(s.num_edges)),
                      fmt(s.avg_out_degree, 1),
                      fmt(s.top1pct_edge_share * 100, 1) + "%",
                      fmt(s.local_edge_fraction * 100, 1) + "%"});
    }
    table.print();
    std::printf("\n'top1%% edges' (degree skew) is high on every "
                "stand-in as in the real datasets;\n'locality' (edges "
                "within +-4096 labels) is high for the web graphs, "
                "whose native\nlabeling preserves communities, and low "
                "for the shuffled social/RMAT labelings.\n");
    return 0;
}
