/**
 * @file
 * Serving-layer load bench: a seeded open-loop generator (exponential
 * inter-arrival times, no waiting on completions — arrivals do not
 * slow down when the service falls behind) pushes a mixed multi-tenant
 * workload through GraphService at several offered-load levels, then
 * reports the SLO picture per level: p50/p95/p99 latency, achieved
 * throughput, rejection rate, retry/degrade counts, cache behaviour.
 *
 * The hard acceptance property is ZERO LOST JOBS: at every level,
 * submitted == rejected + completed + degraded + failed, and the
 * completion log holds exactly the terminal jobs. The bench exits
 * non-zero if any level leaks a job.
 *
 * The top level deliberately overdrives a small admission queue so
 * rejections actually happen, and a slice of jobs carries an
 * impossibly small cycle budget so the retry -> degraded-fallback
 * path shows up in the numbers.
 *
 * A final hot-repeat section measures the warm-session checkpoint
 * pool: the same job mix is pushed through two services — checkpoints
 * off (every attempt cold-builds and simulates) and on (repeat jobs
 * fork a pooled warm session and replay memoized results) — asserting
 * per-job bit-identical values_checksums and reporting the jobs/sec
 * ratio. In `--smoke` mode the checkpoint hit and fork counters are
 * additionally asserted nonzero (CI serve-smoke relies on this).
 *
 * Results land in BENCH_serve.json (override with
 * GMOMS_BENCH_SERVE_JSON), written atomically via
 * temp-file-then-rename; one Raw-nested record per load level.
 *
 * `--smoke` shrinks the run for CI (fewer levels, fewer jobs).
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <random>
#include <thread>

#include "bench/bench_common.hh"
#include "src/serve/service.hh"

using namespace gmoms;
using namespace gmoms::bench;
using namespace gmoms::serve;

namespace
{

struct Level
{
    std::string name;
    unsigned jobs;
    double offered_hz;        //!< open-loop arrival rate
    std::size_t queue_depth;  //!< admission bound (small = pushback)
    std::size_t quota;        //!< per-tenant bound
};

/** One randomized tenant request (deterministic in @p rng). */
JobSpec
randomJob(std::mt19937& rng)
{
    static const char* kTenants[] = {"ads", "fraud", "search",
                                     "research"};
    static const char* kAlgos[] = {"PageRank", "SCC", "BFS"};

    JobSpec spec;
    spec.tenant = kTenants[rng() % 4];
    spec.dataset = "WT";
    // Two preprocessing flavours = two dataset-cache keys in play.
    spec.prep = rng() % 4 == 0 ? Preprocessing::None
                               : Preprocessing::DbgHash;
    spec.algo = kAlgos[rng() % 3];
    spec.iterations = 2 + rng() % 3;
    spec.priority = rng() % 3;
    spec.config = AccelConfig::preset(MomsConfig::twoLevel(4),
                                      /*pes=*/4, /*channels=*/2);
    // ~12% of jobs get a deadline no run can meet: they must come
    // back Degraded (fallback preset), never lost.
    if (rng() % 8 == 0) {
        spec.cycle_budget = 2000;
        spec.max_retries = 1;
    }
    return spec;
}

/** The hot-repeat job mix: @p repeats passes over a small set of
 *  distinct specs — exactly the repeat-heavy traffic the checkpoint
 *  pool targets. Deterministic (no RNG): both services see the same
 *  list. */
std::vector<JobSpec>
hotRepeatJobs(unsigned repeats)
{
    std::vector<JobSpec> distinct;
    const char* kAlgos[] = {"PageRank", "SCC", "BFS"};
    for (const char* algo : kAlgos) {
        JobSpec spec;
        spec.tenant = "hot";
        spec.dataset = "WT";
        spec.prep = Preprocessing::DbgHash;
        spec.algo = algo;
        spec.iterations = 2;
        spec.config = AccelConfig::preset(MomsConfig::twoLevel(4),
                                          /*pes=*/4, /*channels=*/2);
        distinct.push_back(std::move(spec));
    }
    std::vector<JobSpec> jobs;
    for (unsigned r = 0; r < repeats; ++r)
        for (const JobSpec& spec : distinct)
            jobs.push_back(spec);
    return jobs;
}

struct HotRepeatOutcome
{
    double wall_seconds = 0;
    double jobs_per_sec = 0;
    std::vector<std::uint64_t> checksums;  //!< submit order
    ServiceStats stats;
};

/** Push @p jobs through a fresh service in batch mode and collect the
 *  per-job checksums in submit order. */
HotRepeatOutcome
runHotRepeat(const std::vector<JobSpec>& jobs, bool checkpoints)
{
    ServiceConfig cfg;
    cfg.start_paused = true;  // batch: measure pure serving throughput
    cfg.max_queue_depth = jobs.size();
    cfg.per_tenant_quota = 0;
    cfg.enable_checkpoints = checkpoints;
    GraphService service(cfg);

    std::vector<JobId> ids;
    WallTimer timer;
    for (const JobSpec& spec : jobs) {
        const GraphService::Submitted sub = service.submit(spec);
        if (sub.ok())
            ids.push_back(sub.id);
    }
    service.drain();

    HotRepeatOutcome out;
    out.wall_seconds = timer.elapsedSeconds();
    out.stats = service.stats();
    out.jobs_per_sec =
        out.wall_seconds > 0
            ? static_cast<double>(out.stats.terminal()) /
                  out.wall_seconds
            : 0.0;
    for (JobId id : ids) {
        const std::optional<JobRecord> rec = service.poll(id);
        out.checksums.push_back(rec ? rec->values_checksum : 0);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    std::printf("=== Serving-layer load bench (open-loop%s) ===\n\n",
                smoke ? ", smoke" : "");

    std::vector<Level> levels;
    if (smoke) {
        levels.push_back({"light", 10, 8.0, 64, 32});
        levels.push_back({"overload", 14, 200.0, 4, 4});
    } else {
        levels.push_back({"light", 40, 8.0, 64, 32});
        levels.push_back({"busy", 60, 40.0, 64, 32});
        levels.push_back({"overload", 60, 400.0, 4, 4});
    }

    Table table({"level", "offered/s", "done/s", "rej %", "degraded",
                 "p50 s", "p95 s", "p99 s"});
    std::vector<JsonReport> level_reports;
    bool lost = false;

    for (const Level& level : levels) {
        ServiceConfig cfg;
        cfg.max_queue_depth = level.queue_depth;
        cfg.per_tenant_quota = level.quota;
        GraphService service(cfg);

        // Seeded per level: the submitted workload is reproducible
        // run-to-run (arrival *timing* is wall clock, so in live mode
        // dispatch interleaving is not — the determinism contract for
        // batch mode is pinned in tests/test_serve.cc instead).
        std::mt19937 rng(0xC0FFEE ^ level.jobs);
        std::exponential_distribution<double> gap(level.offered_hz);

        std::vector<JobId> admitted;
        for (unsigned i = 0; i < level.jobs; ++i) {
            const GraphService::Submitted sub =
                service.submit(randomJob(rng));
            if (sub.ok())
                admitted.push_back(sub.id);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(gap(rng)));
        }
        service.drain();

        const ServiceStats stats = service.stats();

        // --- Zero-lost-jobs audit -------------------------------
        std::uint64_t terminal_polled = 0;
        for (JobId id : admitted) {
            const std::optional<JobRecord> rec = service.poll(id);
            if (!rec || !rec->terminal()) {
                std::printf("LOST JOB %llu at level %s\n",
                            static_cast<unsigned long long>(id),
                            level.name.c_str());
                lost = true;
                continue;
            }
            ++terminal_polled;
        }
        if (stats.submitted !=
                stats.rejected + stats.terminal() ||
            terminal_polled != stats.terminal() ||
            service.completionLog().size() != stats.terminal()) {
            std::printf("ACCOUNTING MISMATCH at level %s: submitted "
                        "%llu, rejected %llu, terminal %llu, polled "
                        "%llu, log %zu\n",
                        level.name.c_str(),
                        static_cast<unsigned long long>(
                            stats.submitted),
                        static_cast<unsigned long long>(
                            stats.rejected),
                        static_cast<unsigned long long>(
                            stats.terminal()),
                        static_cast<unsigned long long>(
                            terminal_polled),
                        service.completionLog().size());
            lost = true;
        }

        table.addRow({level.name, fmt(level.offered_hz, 0),
                      fmt(stats.jobsPerSecond(), 1),
                      fmt(100.0 * stats.rejectionRate(), 1),
                      std::to_string(stats.degraded),
                      fmt(stats.total.percentile(50), 3),
                      fmt(stats.total.percentile(95), 3),
                      fmt(stats.total.percentile(99), 3)});

        JsonReport rec;
        rec.set("level", level.name)
            .set("jobs_offered",
                 static_cast<std::uint64_t>(level.jobs))
            .set("offered_hz", level.offered_hz)
            .set("queue_depth",
                 static_cast<std::uint64_t>(level.queue_depth))
            .set("per_tenant_quota",
                 static_cast<std::uint64_t>(level.quota))
            .set("workers",
                 static_cast<std::uint64_t>(service.workers()))
            .set("stats", JsonReport::Raw{stats.report().str()});
        level_reports.push_back(std::move(rec));
    }

    table.print();
    std::printf("\nexpected shape: done/s tracks offered/s until the "
                "queue bound bites;\nthe overload level rejects "
                "instead of queueing unboundedly, and every\n"
                "tiny-budget job comes back Degraded — never lost.\n");

    // --- Hot-repeat: checkpoint pool off vs on ----------------------
    std::printf("\n=== Hot-repeat serving: checkpoint pool off vs on "
                "===\n\n");
    const std::vector<JobSpec> hot_jobs =
        hotRepeatJobs(smoke ? 8 : 20);
    const HotRepeatOutcome cold = runHotRepeat(hot_jobs, false);
    const HotRepeatOutcome warmed = runHotRepeat(hot_jobs, true);

    bool hot_failed = false;
    if (cold.checksums != warmed.checksums ||
        cold.checksums.size() != hot_jobs.size()) {
        std::printf("CHECKSUM MISMATCH: checkpoint-forked jobs did not "
                    "reproduce cold-built results bit-for-bit\n");
        hot_failed = true;
    }
    // The repeat-heavy mix must actually exercise the pool: every job
    // forks, and every job after the first per key is a hit.
    if (warmed.stats.checkpoints.hits == 0 ||
        warmed.stats.checkpoints.forks == 0) {
        std::printf("CHECKPOINT POOL UNUSED: hits=%llu forks=%llu on a "
                    "repeat-heavy mix\n",
                    static_cast<unsigned long long>(
                        warmed.stats.checkpoints.hits),
                    static_cast<unsigned long long>(
                        warmed.stats.checkpoints.forks));
        hot_failed = true;
    }
    const double hot_speedup = cold.jobs_per_sec > 0
                                   ? warmed.jobs_per_sec /
                                         cold.jobs_per_sec
                                   : 0.0;
    Table hot_table({"pool", "jobs", "wall s", "jobs/s", "memo hits"});
    hot_table.addRow({"off", std::to_string(hot_jobs.size()),
                      fmt(cold.wall_seconds, 3),
                      fmt(cold.jobs_per_sec, 1), "-"});
    hot_table.addRow(
        {"on", std::to_string(hot_jobs.size()),
         fmt(warmed.wall_seconds, 3), fmt(warmed.jobs_per_sec, 1),
         std::to_string(warmed.stats.checkpoints.memo_hits)});
    hot_table.print();
    std::printf("\nspeedup: %.1fx (%s); identical checksums: %s\n",
                hot_speedup,
                hot_speedup >= 5.0 ? ">= 5x target"
                                   : "below the 5x target",
                hot_failed ? "NO" : "yes");

    JsonReport hot;
    hot.set("jobs", static_cast<std::uint64_t>(hot_jobs.size()))
        .set("cold_wall_seconds", cold.wall_seconds)
        .set("cold_jobs_per_sec", cold.jobs_per_sec)
        .set("warm_wall_seconds", warmed.wall_seconds)
        .set("warm_jobs_per_sec", warmed.jobs_per_sec)
        .set("speedup", hot_speedup)
        .set("checksums_match", !hot_failed)
        .set("checkpoint_hits", warmed.stats.checkpoints.hits)
        .set("checkpoint_misses", warmed.stats.checkpoints.misses)
        .set("checkpoint_forks", warmed.stats.checkpoints.forks)
        .set("memo_hits", warmed.stats.checkpoints.memo_hits)
        .set("memo_misses", warmed.stats.checkpoints.memo_misses)
        .set("checkpoint_resident_bytes",
             warmed.stats.checkpoints.resident_bytes);

    // --- BENCH_serve.json -------------------------------------------
    std::string levels_json = "[";
    for (std::size_t i = 0; i < level_reports.size(); ++i) {
        if (i)
            levels_json += ",";
        levels_json += level_reports[i].str();
    }
    levels_json += "]";

    JsonReport top;
    top.set("bench", std::string("serve"))
        .set("smoke", smoke)
        .set("lost_jobs", lost)
        .set("levels", JsonReport::Raw{levels_json})
        .set("hot_repeat", JsonReport::Raw{hot.str()});

    const char* env = std::getenv("GMOMS_BENCH_SERVE_JSON");
    const std::string path = env ? env : "BENCH_serve.json";
    if (writeReportAtomically(path, top))
        std::printf("\nper-level records written to %s\n",
                    path.c_str());
    else
        std::printf("\ncould not write %s\n", path.c_str());

    if (lost)
        std::printf("\nJOBS WERE LOST — the serving layer broke its "
                    "terminal-accounting contract\n");
    if (hot_failed)
        std::printf("\nHOT-REPEAT CONTRACT BROKEN — see above\n");
    return lost || hot_failed ? 1 : 0;
}
