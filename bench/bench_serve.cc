/**
 * @file
 * Serving-layer load bench: a seeded open-loop generator (exponential
 * inter-arrival times, no waiting on completions — arrivals do not
 * slow down when the service falls behind) pushes a mixed multi-tenant
 * workload through GraphService at several offered-load levels, then
 * reports the SLO picture per level: p50/p95/p99 latency, achieved
 * throughput, rejection rate, retry/degrade counts, cache behaviour.
 *
 * The hard acceptance property is ZERO LOST JOBS: at every level,
 * submitted == rejected + completed + degraded + failed, and the
 * completion log holds exactly the terminal jobs. The bench exits
 * non-zero if any level leaks a job.
 *
 * The top level deliberately overdrives a small admission queue so
 * rejections actually happen, and a slice of jobs carries an
 * impossibly small cycle budget so the retry -> degraded-fallback
 * path shows up in the numbers.
 *
 * A hot-repeat section measures the warm-session checkpoint pool:
 * the same job mix is pushed through two services — checkpoints off
 * (every attempt cold-builds and simulates) and on (repeat jobs fork a
 * pooled warm session and replay memoized results) — asserting per-job
 * bit-identical values_checksums and reporting the jobs/sec ratio. In
 * `--smoke` mode the checkpoint hit and fork counters are additionally
 * asserted nonzero (CI serve-smoke relies on this).
 *
 * The TCP section (ISSUE 9) drives the epoll front end with an
 * open-loop pipelined v2-protocol client at several cache-hit ratios:
 * a golden pass first computes every distinct query's values_checksum
 * on a direct result-cache-off service (also the PR-5-style serving
 * throughput baseline), then each level primes the hot query set,
 * fires its mix down the socket without waiting for responses, and
 * verifies — per job — that the polled checksum is bit-identical to
 * the golden value, that accounting is exact at the level (submitted
 * == rejected + completed + degraded + failed from the wire stats
 * deltas), and that observed from_cache responses equal the result
 * cache's hit delta. The repeat-heavy level must show nonzero
 * result-cache hits and sustain >= 10x the baseline jobs/sec; either
 * miss exits non-zero. `--tcp HOST:PORT` drives an external
 * `gmoms_serve --listen` instead of in-process servers (CI net-smoke),
 * sending one final quit so the server drains and exits cleanly.
 *
 * A rate-limit section floods one tenant through an in-process TCP
 * server with a small token bucket and checks the 429 contract:
 * rate_limited errors carry retry_after_seconds, stats count them as a
 * subset of rejected, and accounting stays exact.
 *
 * Results land in BENCH_serve.json (override with
 * GMOMS_BENCH_SERVE_JSON), written atomically via
 * temp-file-then-rename; one Raw-nested record per load level.
 *
 * `--smoke` shrinks the run for CI (fewer levels, fewer jobs).
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

#include "bench/bench_common.hh"
#include "src/net/line_client.hh"
#include "src/net/tcp_server.hh"
#include "src/obs/json_check.hh"
#include "src/serve/protocol.hh"
#include "src/serve/service.hh"

using namespace gmoms;
using namespace gmoms::bench;
using namespace gmoms::serve;

namespace
{

struct Level
{
    std::string name;
    unsigned jobs;
    double offered_hz;        //!< open-loop arrival rate
    std::size_t queue_depth;  //!< admission bound (small = pushback)
    std::size_t quota;        //!< per-tenant bound
};

/** One randomized tenant request (deterministic in @p rng). */
JobSpec
randomJob(std::mt19937& rng)
{
    static const char* kTenants[] = {"ads", "fraud", "search",
                                     "research"};
    static const char* kAlgos[] = {"PageRank", "SCC", "BFS"};

    JobSpec spec;
    spec.tenant = kTenants[rng() % 4];
    spec.dataset = "WT";
    // Two preprocessing flavours = two dataset-cache keys in play.
    spec.prep = rng() % 4 == 0 ? Preprocessing::None
                               : Preprocessing::DbgHash;
    spec.algo = kAlgos[rng() % 3];
    spec.iterations = 2 + rng() % 3;
    spec.priority = rng() % 3;
    spec.config = AccelConfig::preset(MomsConfig::twoLevel(4),
                                      /*pes=*/4, /*channels=*/2);
    // ~12% of jobs get a deadline no run can meet: they must come
    // back Degraded (fallback preset), never lost.
    if (rng() % 8 == 0) {
        spec.cycle_budget = 2000;
        spec.max_retries = 1;
    }
    return spec;
}

/** The hot-repeat job mix: @p repeats passes over a small set of
 *  distinct specs — exactly the repeat-heavy traffic the checkpoint
 *  pool targets. Deterministic (no RNG): both services see the same
 *  list. */
std::vector<JobSpec>
hotRepeatJobs(unsigned repeats)
{
    std::vector<JobSpec> distinct;
    const char* kAlgos[] = {"PageRank", "SCC", "BFS"};
    for (const char* algo : kAlgos) {
        JobSpec spec;
        spec.tenant = "hot";
        spec.dataset = "WT";
        spec.prep = Preprocessing::DbgHash;
        spec.algo = algo;
        spec.iterations = 2;
        spec.config = AccelConfig::preset(MomsConfig::twoLevel(4),
                                          /*pes=*/4, /*channels=*/2);
        distinct.push_back(std::move(spec));
    }
    std::vector<JobSpec> jobs;
    for (unsigned r = 0; r < repeats; ++r)
        for (const JobSpec& spec : distinct)
            jobs.push_back(spec);
    return jobs;
}

struct HotRepeatOutcome
{
    double wall_seconds = 0;
    double jobs_per_sec = 0;
    std::vector<std::uint64_t> checksums;  //!< submit order
    ServiceStats stats;
};

/** Push @p jobs through a fresh service in batch mode and collect the
 *  per-job checksums in submit order. */
HotRepeatOutcome
runHotRepeat(const std::vector<JobSpec>& jobs, bool checkpoints)
{
    ServiceConfig cfg;
    cfg.start_paused = true;  // batch: measure pure serving throughput
    cfg.max_queue_depth = jobs.size();
    cfg.per_tenant_quota = 0;
    cfg.enable_checkpoints = checkpoints;
    // Isolate the checkpoint-pool comparison from the result cache
    // (which would otherwise absorb the repeats in live mode — the TCP
    // section below measures *that* path).
    cfg.enable_result_cache = false;
    GraphService service(cfg);

    std::vector<JobId> ids;
    WallTimer timer;
    for (const JobSpec& spec : jobs) {
        const GraphService::Submitted sub = service.submit(spec);
        if (sub.ok())
            ids.push_back(sub.id);
    }
    service.drain();

    HotRepeatOutcome out;
    out.wall_seconds = timer.elapsedSeconds();
    out.stats = service.stats();
    out.jobs_per_sec =
        out.wall_seconds > 0
            ? static_cast<double>(out.stats.terminal()) /
                  out.wall_seconds
            : 0.0;
    for (JobId id : ids) {
        const std::optional<JobRecord> rec = service.poll(id);
        out.checksums.push_back(rec ? rec->values_checksum : 0);
    }
    return out;
}

// ====================================================================
// TCP result-cache sweep
// ====================================================================

/** Worker count pinned on both sides of the TCP comparison so the
 *  baseline/hot jobs-per-second ratio does not drift with host core
 *  count. */
constexpr unsigned kTcpWorkers = 4;

/** One wire query of the TCP sweep, with the key the golden checksum
 *  map is indexed by. */
struct WireJob
{
    JobSpec spec;
    std::string key;  //!< algo/iterations/source (all else constant)
};

WireJob
makeWireJob(const std::string& algo, std::uint32_t iterations,
            NodeId source)
{
    WireJob wj;
    wj.spec.tenant = "tcp";
    wj.spec.dataset = "WT";
    wj.spec.prep = Preprocessing::DbgHash;
    wj.spec.algo = algo;
    wj.spec.iterations = iterations;
    wj.spec.source = source;
    // The named preset travels over the wire (explicit configs cannot);
    // "degraded" is the small 4-PE machine, keeping per-sim cost low.
    wj.spec.preset = "degraded";
    wj.key = algo + "/" + std::to_string(iterations) + "/" +
             std::to_string(source);
    return wj;
}

/** The six-query hot set every repeat-heavy level draws from. */
std::vector<WireJob>
hotQuerySet()
{
    return {
        makeWireJob("PageRank", 2, 0), makeWireJob("PageRank", 3, 0),
        makeWireJob("SCC", 2, 0),      makeWireJob("SCC", 3, 0),
        makeWireJob("BFS", 2, 1),      makeWireJob("BFS", 3, 2),
    };
}

struct TcpLevel
{
    std::string name;
    unsigned jobs;
    double repeat_frac;  //!< share of jobs drawn from the hot set
    std::vector<WireJob> mix;
};

/** Build a level's job list: exactly round(jobs * (1 - repeat_frac))
 *  fresh never-seen queries (BFS from a globally unique source) at
 *  rng-shuffled positions, the rest drawn from the hot set. */
std::vector<WireJob>
makeTcpMix(unsigned jobs, double repeat_frac, std::mt19937& rng,
           NodeId& fresh_source)
{
    const std::vector<WireJob> hot = hotQuerySet();
    const unsigned fresh_n = static_cast<unsigned>(
        static_cast<double>(jobs) * (1.0 - repeat_frac) + 0.5);
    std::vector<bool> fresh(jobs, false);
    std::fill(fresh.begin(), fresh.begin() + fresh_n, true);
    std::shuffle(fresh.begin(), fresh.end(), rng);

    std::vector<WireJob> mix;
    mix.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        mix.push_back(fresh[i]
                          ? makeWireJob("BFS", 2, fresh_source++)
                          : hot[rng() % hot.size()]);
    return mix;
}

/**
 * The golden pass: every distinct query once through a direct,
 * result-cache-off service (batch mode) — the per-key bit-exact
 * checksums every TCP job is checked against, and the PR-5-style
 * serving-throughput baseline the >= 10x claim is measured from.
 */
struct Golden
{
    std::map<std::string, std::uint64_t> checksum;
    double jobs_per_sec = 0;
    double wall_seconds = 0;
    bool failed = false;
};

Golden
runGolden(const std::vector<TcpLevel>& levels)
{
    std::vector<WireJob> distinct;
    for (const TcpLevel& level : levels)
        for (const WireJob& wj : level.mix) {
            bool seen = false;
            for (const WireJob& d : distinct)
                if (d.key == wj.key) {
                    seen = true;
                    break;
                }
            if (!seen)
                distinct.push_back(wj);
        }

    ServiceConfig cfg;
    cfg.workers = kTcpWorkers;
    cfg.start_paused = true;
    cfg.max_queue_depth = distinct.size();
    cfg.per_tenant_quota = 0;
    cfg.enable_result_cache = false;
    GraphService service(cfg);

    Golden golden;
    std::vector<std::pair<std::string, JobId>> ids;
    WallTimer timer;
    for (const WireJob& wj : distinct) {
        const GraphService::Submitted sub = service.submit(wj.spec);
        if (!sub.ok()) {
            std::printf("GOLDEN SUBMIT REJECTED (%s): %s\n",
                        wj.key.c_str(),
                        sub.rejected.empty() ? "?"
                                             : sub.rejected[0].c_str());
            golden.failed = true;
            continue;
        }
        ids.emplace_back(wj.key, sub.id);
    }
    service.drain();
    golden.wall_seconds = timer.elapsedSeconds();
    golden.jobs_per_sec =
        golden.wall_seconds > 0
            ? static_cast<double>(ids.size()) / golden.wall_seconds
            : 0.0;
    for (const auto& [key, id] : ids) {
        const std::optional<JobRecord> rec = service.poll(id);
        if (!rec || rec->state != JobState::Completed) {
            std::printf("GOLDEN JOB NOT COMPLETED (%s)\n", key.c_str());
            golden.failed = true;
            continue;
        }
        golden.checksum[key] = rec->values_checksum;
    }
    return golden;
}

// ---- v2 wire client helpers ----------------------------------------

std::string
submitLine(const JobSpec& spec, const std::string& rid)
{
    Request req;
    req.v = kProtocolV2;
    req.request_id = rid;
    req.verb = Verb::Submit;
    req.spec = spec;
    return encodeRequestLine(req);
}

std::string
verbLine(Verb verb, const std::string& rid, JobId poll_id = 0)
{
    Request req;
    req.v = kProtocolV2;
    req.request_id = rid;
    req.verb = verb;
    req.poll_id = poll_id;
    return encodeRequestLine(req);
}

/** The wire-stats counters the sweep audits (parsed from a v2 stats
 *  response; all exact via the raw-lexeme uint64 path). */
struct WireStats
{
    bool ok = false;
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t completed = 0;
    std::uint64_t result_cache_completed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

WireStats
statsOver(net::LineClient& client)
{
    WireStats out;
    const std::optional<std::string> line =
        client.roundTrip(verbLine(Verb::Stats, "stats"));
    if (!line)
        return out;
    const std::optional<JsonValue> parsed = parseJson(*line);
    if (!parsed)
        return out;
    const JsonValue* result = parsed->find("result");
    const JsonValue* stats = result ? result->find("stats") : nullptr;
    if (!stats)
        return out;
    auto field = [&](const char* key) -> std::uint64_t {
        const JsonValue* v = stats->find(key);
        return v ? v->asUint64() : 0;
    };
    out.submitted = field("submitted");
    out.rejected = field("rejected");
    out.rate_limited = field("rate_limited");
    out.completed = field("completed");
    out.result_cache_completed = field("result_cache_completed");
    out.degraded = field("degraded");
    out.failed = field("failed");
    out.hits = field("result_cache_hits");
    out.misses = field("result_cache_misses");
    out.ok = true;
    return out;
}

/** An in-process endpoint: its own GraphService behind its own epoll
 *  server on an ephemeral loopback port. */
struct InProcessServer
{
    std::unique_ptr<GraphService> service;
    std::unique_ptr<net::TcpServer> server;

    bool
    start(const ServiceConfig& cfg, std::string* error)
    {
        service = std::make_unique<GraphService>(cfg);
        GraphService* svc = service.get();
        server = std::make_unique<net::TcpServer>(
            net::TcpServerConfig{},
            [svc](const std::string& line) {
                net::HandlerResult out;
                bool quit = false;
                out.line = handleRequestLine(*svc, line, quit);
                out.shutdown_server = quit;
                return out;
            });
        return server->start(error);
    }
};

ServiceConfig
tcpServiceConfig()
{
    ServiceConfig cfg;
    cfg.workers = kTcpWorkers;
    cfg.max_queue_depth = 4096;
    cfg.per_tenant_quota = 0;
    return cfg;
}

struct TcpOutcome
{
    bool failed = false;
    double wall_seconds = 0;
    double jobs_per_sec = 0;
    double hit_rate = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t from_cache_observed = 0;
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed_jobs = 0;
    LatencyStats rtt;  //!< client-observed submit round trips
};

/**
 * Drive one level over @p client: prime the hot set (repeat levels
 * only, excluded from the measured window via stats deltas), fire the
 * mix open-loop (a writer that never waits + a reader thread matching
 * responses by request_id), drain, then poll every job and audit
 * checksums + accounting.
 */
TcpOutcome
runTcpLevel(net::LineClient& client, const TcpLevel& level,
            const Golden& golden)
{
    TcpOutcome out;
    auto fail = [&](const std::string& what) {
        std::printf("TCP %s: %s\n", level.name.c_str(), what.c_str());
        out.failed = true;
    };

    if (level.repeat_frac > 0) {
        const std::vector<WireJob> hot = hotQuerySet();
        for (std::size_t i = 0; i < hot.size(); ++i) {
            const std::optional<std::string> resp = client.roundTrip(
                submitLine(hot[i].spec, "p" + std::to_string(i)));
            if (!resp)
                fail("prime submit lost its response");
        }
        if (!client.roundTrip(verbLine(Verb::Drain, "prime-drain")))
            fail("prime drain lost its response");
    }

    const WireStats before = statsOver(client);
    if (!before.ok)
        fail("stats snapshot failed before the level");

    const std::size_t n = level.mix.size();
    WallTimer timer;
    std::mutex mu;  // guards send_at/latency across writer and reader
    std::vector<double> send_at(n, 0);
    std::vector<double> latency(n, -1);
    std::vector<JobId> ids(n, kInvalidJob);
    std::vector<bool> from_cache(n, false);
    bool reader_failed = false;

    std::thread reader([&] {
        for (std::size_t seen = 0; seen < n; ++seen) {
            const std::optional<std::string> line = client.recvLine();
            const double now = timer.elapsedSeconds();
            if (!line) {
                reader_failed = true;
                return;
            }
            const std::optional<JsonValue> parsed = parseJson(*line);
            const JsonValue* rid =
                parsed ? parsed->find("request_id") : nullptr;
            if (!rid || !rid->isString() || rid->string.empty() ||
                rid->string[0] != 'q') {
                reader_failed = true;
                return;
            }
            const std::size_t idx = static_cast<std::size_t>(
                std::atoll(rid->string.c_str() + 1));
            if (idx >= n) {
                reader_failed = true;
                return;
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                latency[idx] = now - send_at[idx];
            }
            const JsonValue* result = parsed->find("result");
            const JsonValue* id =
                result ? result->find("id") : nullptr;
            if (id)
                ids[idx] = id->asUint64();
            const JsonValue* fc =
                result ? result->find("from_cache") : nullptr;
            if (fc && fc->kind == JsonValue::Kind::Bool)
                from_cache[idx] = fc->boolean;
        }
    });

    for (std::size_t i = 0; i < n; ++i) {
        {
            std::lock_guard<std::mutex> lock(mu);
            send_at[i] = timer.elapsedSeconds();
        }
        if (!client.sendLine(
                submitLine(level.mix[i].spec,
                           "q" + std::to_string(i)))) {
            fail("send failed mid-stream");
            break;
        }
    }
    reader.join();
    if (reader_failed)
        fail("reader lost a response or could not match it");
    if (!client.roundTrip(verbLine(Verb::Drain, "level-drain")))
        fail("level drain lost its response");
    out.wall_seconds = timer.elapsedSeconds();
    out.jobs_per_sec =
        out.wall_seconds > 0
            ? static_cast<double>(n) / out.wall_seconds
            : 0.0;

    // Per-job verification: terminal, Completed, golden checksum.
    for (std::size_t i = 0; i < n; ++i) {
        if (ids[i] == kInvalidJob) {
            fail("job " + std::to_string(i) + " was not admitted");
            continue;
        }
        if (from_cache[i])
            ++out.from_cache_observed;
        const std::optional<std::string> resp = client.roundTrip(
            verbLine(Verb::Poll, "poll" + std::to_string(i), ids[i]));
        const std::optional<JsonValue> parsed =
            resp ? parseJson(*resp) : std::nullopt;
        const JsonValue* result =
            parsed ? parsed->find("result") : nullptr;
        const JsonValue* job = result ? result->find("job") : nullptr;
        const JsonValue* state = job ? job->find("state") : nullptr;
        const JsonValue* checksum =
            job ? job->find("values_checksum") : nullptr;
        if (!state || !state->isString() || !checksum) {
            fail("poll of job " + std::to_string(i) + " malformed");
            continue;
        }
        if (state->string != "completed") {
            fail("job " + std::to_string(i) + " ended " +
                 state->string + " (expected completed)");
            continue;
        }
        const auto want = golden.checksum.find(level.mix[i].key);
        if (want == golden.checksum.end() ||
            checksum->asUint64() != want->second)
            fail("job " + std::to_string(i) + " (" +
                 level.mix[i].key +
                 ") checksum differs from the cold golden run");
        if (latency[i] >= 0)
            out.rtt.add(latency[i]);
    }

    const WireStats after = statsOver(client);
    if (!after.ok)
        fail("stats snapshot failed after the level");
    if (before.ok && after.ok) {
        out.submitted = after.submitted - before.submitted;
        out.rejected = after.rejected - before.rejected;
        out.completed = after.completed - before.completed;
        out.degraded = after.degraded - before.degraded;
        out.failed_jobs = after.failed - before.failed;
        out.hits = after.hits - before.hits;
        out.misses = after.misses - before.misses;
        const std::uint64_t lookups = out.hits + out.misses;
        out.hit_rate = lookups > 0 ? static_cast<double>(out.hits) /
                                         static_cast<double>(lookups)
                                   : 0.0;
        if (out.submitted != out.rejected + out.completed +
                                 out.degraded + out.failed_jobs)
            fail("accounting mismatch: submitted != rejected + "
                 "completed + degraded + failed");
        if (out.submitted != n)
            fail("submitted delta does not match the offered mix");
        if (out.rejected != 0 || out.degraded != 0 ||
            out.failed_jobs != 0)
            fail("sweep jobs must all complete (no rejections or "
                 "degrades expected at this depth)");
        if (out.from_cache_observed != out.hits)
            fail("from_cache responses (" +
                 std::to_string(out.from_cache_observed) +
                 ") do not equal the result-cache hit delta (" +
                 std::to_string(out.hits) + ")");
        const std::uint64_t cache_completed_delta =
            after.result_cache_completed -
            before.result_cache_completed;
        if (cache_completed_delta != out.hits)
            fail("result_cache_completed delta is not the hit delta");
    }
    return out;
}

// ====================================================================

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string tcp_external;  // HOST:PORT of an external gmoms_serve
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc)
            tcp_external = argv[++i];
    }

    std::printf("=== Serving-layer load bench (open-loop%s) ===\n\n",
                smoke ? ", smoke" : "");

    std::vector<Level> levels;
    if (smoke) {
        levels.push_back({"light", 10, 8.0, 64, 32});
        levels.push_back({"overload", 14, 200.0, 4, 4});
    } else {
        levels.push_back({"light", 40, 8.0, 64, 32});
        levels.push_back({"busy", 60, 40.0, 64, 32});
        levels.push_back({"overload", 60, 400.0, 4, 4});
    }

    Table table({"level", "offered/s", "done/s", "rej %", "degraded",
                 "p50 s", "p95 s", "p99 s"});
    std::vector<JsonReport> level_reports;
    bool lost = false;

    for (const Level& level : levels) {
        ServiceConfig cfg;
        cfg.max_queue_depth = level.queue_depth;
        cfg.per_tenant_quota = level.quota;
        GraphService service(cfg);

        // Seeded per level: the submitted workload is reproducible
        // run-to-run (arrival *timing* is wall clock, so in live mode
        // dispatch interleaving is not — the determinism contract for
        // batch mode is pinned in tests/test_serve.cc instead).
        std::mt19937 rng(0xC0FFEE ^ level.jobs);
        std::exponential_distribution<double> gap(level.offered_hz);

        std::vector<JobId> admitted;
        for (unsigned i = 0; i < level.jobs; ++i) {
            const GraphService::Submitted sub =
                service.submit(randomJob(rng));
            if (sub.ok())
                admitted.push_back(sub.id);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(gap(rng)));
        }
        service.drain();

        const ServiceStats stats = service.stats();

        // --- Zero-lost-jobs audit -------------------------------
        std::uint64_t terminal_polled = 0;
        for (JobId id : admitted) {
            const std::optional<JobRecord> rec = service.poll(id);
            if (!rec || !rec->terminal()) {
                std::printf("LOST JOB %llu at level %s\n",
                            static_cast<unsigned long long>(id),
                            level.name.c_str());
                lost = true;
                continue;
            }
            ++terminal_polled;
        }
        if (stats.submitted !=
                stats.rejected + stats.terminal() ||
            terminal_polled != stats.terminal() ||
            service.completionLog().size() != stats.terminal()) {
            std::printf("ACCOUNTING MISMATCH at level %s: submitted "
                        "%llu, rejected %llu, terminal %llu, polled "
                        "%llu, log %zu\n",
                        level.name.c_str(),
                        static_cast<unsigned long long>(
                            stats.submitted),
                        static_cast<unsigned long long>(
                            stats.rejected),
                        static_cast<unsigned long long>(
                            stats.terminal()),
                        static_cast<unsigned long long>(
                            terminal_polled),
                        service.completionLog().size());
            lost = true;
        }

        table.addRow({level.name, fmt(level.offered_hz, 0),
                      fmt(stats.jobsPerSecond(), 1),
                      fmt(100.0 * stats.rejectionRate(), 1),
                      std::to_string(stats.degraded),
                      fmt(stats.total.percentile(50), 3),
                      fmt(stats.total.percentile(95), 3),
                      fmt(stats.total.percentile(99), 3)});

        JsonReport rec;
        rec.set("level", level.name)
            .set("jobs_offered",
                 static_cast<std::uint64_t>(level.jobs))
            .set("offered_hz", level.offered_hz)
            .set("queue_depth",
                 static_cast<std::uint64_t>(level.queue_depth))
            .set("per_tenant_quota",
                 static_cast<std::uint64_t>(level.quota))
            .set("workers",
                 static_cast<std::uint64_t>(service.workers()))
            .set("stats", JsonReport::Raw{stats.toJson().str()});
        level_reports.push_back(std::move(rec));
    }

    table.print();
    std::printf("\nexpected shape: done/s tracks offered/s until the "
                "queue bound bites;\nthe overload level rejects "
                "instead of queueing unboundedly, and every\n"
                "tiny-budget job comes back Degraded — never lost.\n");

    // --- Hot-repeat: checkpoint pool off vs on ----------------------
    std::printf("\n=== Hot-repeat serving: checkpoint pool off vs on "
                "===\n\n");
    const std::vector<JobSpec> hot_jobs =
        hotRepeatJobs(smoke ? 8 : 20);
    const HotRepeatOutcome cold = runHotRepeat(hot_jobs, false);
    const HotRepeatOutcome warmed = runHotRepeat(hot_jobs, true);

    bool hot_failed = false;
    if (cold.checksums != warmed.checksums ||
        cold.checksums.size() != hot_jobs.size()) {
        std::printf("CHECKSUM MISMATCH: checkpoint-forked jobs did not "
                    "reproduce cold-built results bit-for-bit\n");
        hot_failed = true;
    }
    // The repeat-heavy mix must actually exercise the pool: every job
    // forks, and every job after the first per key is a hit.
    if (warmed.stats.checkpoints.hits == 0 ||
        warmed.stats.checkpoints.forks == 0) {
        std::printf("CHECKPOINT POOL UNUSED: hits=%llu forks=%llu on a "
                    "repeat-heavy mix\n",
                    static_cast<unsigned long long>(
                        warmed.stats.checkpoints.hits),
                    static_cast<unsigned long long>(
                        warmed.stats.checkpoints.forks));
        hot_failed = true;
    }
    const double hot_speedup = cold.jobs_per_sec > 0
                                   ? warmed.jobs_per_sec /
                                         cold.jobs_per_sec
                                   : 0.0;
    Table hot_table({"pool", "jobs", "wall s", "jobs/s", "memo hits"});
    hot_table.addRow({"off", std::to_string(hot_jobs.size()),
                      fmt(cold.wall_seconds, 3),
                      fmt(cold.jobs_per_sec, 1), "-"});
    hot_table.addRow(
        {"on", std::to_string(hot_jobs.size()),
         fmt(warmed.wall_seconds, 3), fmt(warmed.jobs_per_sec, 1),
         std::to_string(warmed.stats.checkpoints.memo_hits)});
    hot_table.print();
    std::printf("\nspeedup: %.1fx (%s); identical checksums: %s\n",
                hot_speedup,
                hot_speedup >= 5.0 ? ">= 5x target"
                                   : "below the 5x target",
                hot_failed ? "NO" : "yes");

    JsonReport hot;
    hot.set("jobs", static_cast<std::uint64_t>(hot_jobs.size()))
        .set("cold_wall_seconds", cold.wall_seconds)
        .set("cold_jobs_per_sec", cold.jobs_per_sec)
        .set("warm_wall_seconds", warmed.wall_seconds)
        .set("warm_jobs_per_sec", warmed.jobs_per_sec)
        .set("speedup", hot_speedup)
        .set("checksums_match", !hot_failed)
        .set("checkpoint_hits", warmed.stats.checkpoints.hits)
        .set("checkpoint_misses", warmed.stats.checkpoints.misses)
        .set("checkpoint_forks", warmed.stats.checkpoints.forks)
        .set("memo_hits", warmed.stats.checkpoints.memo_hits)
        .set("memo_misses", warmed.stats.checkpoints.memo_misses)
        .set("checkpoint_resident_bytes",
             warmed.stats.checkpoints.resident_bytes);

    // --- TCP result-cache sweep -------------------------------------
    const std::string tcp_mode_label =
        tcp_external.empty() ? std::string(", in-process epoll servers")
                             : " against " + tcp_external;
    std::printf("\n=== TCP serving: result-cache hit-ratio sweep "
                "(v2 protocol%s) ===\n\n",
                tcp_mode_label.c_str());

    bool tcp_failed = false;
    bool tcp_ran = false;
    JsonReport tcp_report;
    {
        std::vector<TcpLevel> tcp_levels;
        if (smoke) {
            tcp_levels.push_back({"cold_0pct", 6, 0.0, {}});
            tcp_levels.push_back({"hot_95pct", 60, 0.95, {}});
        } else {
            tcp_levels.push_back({"cold_0pct", 18, 0.0, {}});
            tcp_levels.push_back({"mixed_50pct", 30, 0.5, {}});
            tcp_levels.push_back({"hot_96pct", 120, 0.96, {}});
        }
        std::mt19937 rng(0x7C9);
        NodeId fresh_source = 100;  // well inside the WT node range
        for (TcpLevel& level : tcp_levels)
            level.mix = makeTcpMix(level.jobs, level.repeat_frac, rng,
                                   fresh_source);

        // Probe whether the epoll front end is available at all
        // (Linux-only); skip the section gracefully elsewhere.
        bool available = !tcp_external.empty();
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        if (!tcp_external.empty()) {
            const std::size_t colon = tcp_external.rfind(':');
            if (colon == std::string::npos) {
                std::printf("bad --tcp argument \"%s\" (HOST:PORT)\n",
                            tcp_external.c_str());
                tcp_failed = true;
                available = false;
            } else {
                host = tcp_external.substr(0, colon);
                port = static_cast<std::uint16_t>(
                    std::atoi(tcp_external.c_str() + colon + 1));
            }
        } else {
            InProcessServer probe;
            std::string error;
            available = probe.start(tcpServiceConfig(), &error);
            if (!available)
                std::printf("skipping TCP section: %s\n",
                            error.c_str());
            if (probe.server)
                probe.server->shutdown(false);
        }

        if (available) {
            tcp_ran = true;
            const Golden golden = runGolden(tcp_levels);
            tcp_failed = tcp_failed || golden.failed;
            std::printf("golden baseline: %zu distinct queries, "
                        "%.3f s, %.1f jobs/s (direct service, result "
                        "cache off)\n\n",
                        golden.checksum.size(), golden.wall_seconds,
                        golden.jobs_per_sec);

            Table tcp_table({"level", "jobs", "repeat %", "hit %",
                             "jobs/s", "x baseline", "p50 ms",
                             "p95 ms", "p99 ms"});
            std::string tcp_levels_json = "[";
            bool first = true;

            for (const TcpLevel& level : tcp_levels) {
                InProcessServer inproc;
                std::string t_host = host;
                std::uint16_t t_port = port;
                if (tcp_external.empty()) {
                    std::string error;
                    if (!inproc.start(tcpServiceConfig(), &error)) {
                        std::printf("TCP %s: server start failed: "
                                    "%s\n",
                                    level.name.c_str(), error.c_str());
                        tcp_failed = true;
                        continue;
                    }
                    t_port = inproc.server->port();
                }
                net::LineClient client;
                std::string cerr;
                if (!client.connect(t_host, t_port, &cerr)) {
                    std::printf("TCP %s: connect failed: %s\n",
                                level.name.c_str(), cerr.c_str());
                    tcp_failed = true;
                    continue;
                }

                const TcpOutcome out =
                    runTcpLevel(client, level, golden);
                const double speedup =
                    golden.jobs_per_sec > 0
                        ? out.jobs_per_sec / golden.jobs_per_sec
                        : 0.0;
                tcp_failed = tcp_failed || out.failed;
                // The repeat-heavy level is the acceptance gate: the
                // cache must actually hit, and serve >= 10x the
                // direct cold baseline.
                if (level.repeat_frac >= 0.9) {
                    if (out.hits == 0) {
                        std::printf("TCP %s: ZERO result-cache hits "
                                    "on a repeat-heavy mix\n",
                                    level.name.c_str());
                        tcp_failed = true;
                    }
                    if (speedup < 10.0) {
                        std::printf("TCP %s: %.1fx baseline is below "
                                    "the 10x acceptance floor\n",
                                    level.name.c_str(), speedup);
                        tcp_failed = true;
                    }
                }

                if (tcp_external.empty()) {
                    // Graceful quit: the server must drain and stop
                    // with zero leaked connections.
                    client.roundTrip(verbLine(Verb::Quit, "quit"));
                    inproc.server->waitUntilStopped();
                    const net::TcpServer::Stats ns =
                        inproc.server->stats();
                    if (ns.active != 0) {
                        std::printf("TCP %s: %llu connection(s) "
                                    "leaked after quit\n",
                                    level.name.c_str(),
                                    static_cast<unsigned long long>(
                                        ns.active));
                        tcp_failed = true;
                    }
                }
                client.close();

                tcp_table.addRow(
                    {level.name, std::to_string(level.jobs),
                     fmt(100.0 * level.repeat_frac, 0),
                     fmt(100.0 * out.hit_rate, 0),
                     fmt(out.jobs_per_sec, 1), fmt(speedup, 1),
                     fmt(1e3 * out.rtt.percentile(50), 2),
                     fmt(1e3 * out.rtt.percentile(95), 2),
                     fmt(1e3 * out.rtt.percentile(99), 2)});

                JsonReport lr;
                lr.set("level", level.name)
                    .set("jobs",
                         static_cast<std::uint64_t>(level.jobs))
                    .set("repeat_frac", level.repeat_frac)
                    .set("wall_seconds", out.wall_seconds)
                    .set("jobs_per_sec", out.jobs_per_sec)
                    .set("speedup_vs_baseline", speedup)
                    .set("result_cache_hit_rate", out.hit_rate)
                    .set("result_cache_hits", out.hits)
                    .set("result_cache_misses", out.misses)
                    .set("from_cache_observed", out.from_cache_observed)
                    .set("submitted", out.submitted)
                    .set("rejected", out.rejected)
                    .set("completed", out.completed)
                    .set("degraded", out.degraded)
                    .set("failed", out.failed_jobs)
                    .set("rtt_p50_s", out.rtt.percentile(50))
                    .set("rtt_p95_s", out.rtt.percentile(95))
                    .set("rtt_p99_s", out.rtt.percentile(99));
                if (tcp_external.empty() && inproc.server)
                    lr.set("net", JsonReport::Raw{
                                      inproc.server->stats()
                                          .toJson()
                                          .str()});
                tcp_levels_json += (first ? "" : ",") + lr.str();
                first = false;
            }
            tcp_levels_json += "]";
            tcp_table.print();

            if (!tcp_external.empty()) {
                // One final quit so the external server (CI net-smoke)
                // drains and exits 0.
                net::LineClient closer;
                if (closer.connect(host, port)) {
                    closer.roundTrip(verbLine(Verb::Quit, "quit"));
                    closer.close();
                }
            }

            tcp_report
                .set("baseline_jobs_per_sec", golden.jobs_per_sec)
                .set("baseline_wall_seconds", golden.wall_seconds)
                .set("distinct_queries",
                     static_cast<std::uint64_t>(
                         golden.checksum.size()))
                .set("levels", JsonReport::Raw{tcp_levels_json});
        }
    }

    // --- Rate limiting over TCP (in-process, deterministic burst) ---
    bool rate_failed = false;
    bool rate_ran = false;
    JsonReport rate_report;
    if (tcp_external.empty() || tcp_ran) {
        ServiceConfig cfg = tcpServiceConfig();
        cfg.workers = 2;
        cfg.rate_limit_hz = 5;
        cfg.rate_limit_burst = 3;
        InProcessServer inproc;
        std::string error;
        if (inproc.start(cfg, &error)) {
            rate_ran = true;
            net::LineClient client;
            if (!client.connect("127.0.0.1",
                                inproc.server->port())) {
                std::printf("rate-limit section: connect failed\n");
                rate_failed = true;
            } else {
                const WireJob wj = hotQuerySet()[0];
                std::uint64_t allowed = 0, limited = 0;
                bool retry_hints = true;
                for (int i = 0; i < 10; ++i) {
                    const std::optional<std::string> resp =
                        client.roundTrip(submitLine(
                            wj.spec, "r" + std::to_string(i)));
                    const std::optional<JsonValue> parsed =
                        resp ? parseJson(*resp) : std::nullopt;
                    const JsonValue* type =
                        parsed ? parsed->find("type") : nullptr;
                    if (type && type->isString() &&
                        type->string == "result") {
                        ++allowed;
                        continue;
                    }
                    const JsonValue* err =
                        parsed ? parsed->find("error") : nullptr;
                    const JsonValue* code =
                        err ? err->find("code") : nullptr;
                    const JsonValue* retry =
                        err ? err->find("retry_after_seconds")
                            : nullptr;
                    if (code && code->isString() &&
                        code->string == "rate_limited") {
                        ++limited;
                        if (!retry || !retry->isNumber() ||
                            retry->number <= 0)
                            retry_hints = false;
                    } else {
                        std::printf("rate-limit section: unexpected "
                                    "response %s\n",
                                    resp ? resp->c_str() : "(none)");
                        rate_failed = true;
                    }
                }
                client.roundTrip(verbLine(Verb::Drain, "drain"));
                const WireStats ws = statsOver(client);
                if (allowed == 0 || limited == 0) {
                    std::printf("rate-limit section: burst of 10 gave "
                                "%llu allowed / %llu limited (expected "
                                "both nonzero)\n",
                                static_cast<unsigned long long>(
                                    allowed),
                                static_cast<unsigned long long>(
                                    limited));
                    rate_failed = true;
                }
                if (!retry_hints) {
                    std::printf("rate-limit section: a 429 lacked a "
                                "positive retry_after_seconds\n");
                    rate_failed = true;
                }
                if (!ws.ok || ws.rate_limited != limited ||
                    ws.submitted !=
                        ws.rejected + ws.completed + ws.degraded +
                            ws.failed ||
                    ws.rejected != ws.rate_limited) {
                    std::printf("rate-limit section: accounting "
                                "mismatch (submitted %llu, rejected "
                                "%llu, rate_limited %llu)\n",
                                static_cast<unsigned long long>(
                                    ws.submitted),
                                static_cast<unsigned long long>(
                                    ws.rejected),
                                static_cast<unsigned long long>(
                                    ws.rate_limited));
                    rate_failed = true;
                }
                client.roundTrip(verbLine(Verb::Quit, "quit"));
                inproc.server->waitUntilStopped();
                client.close();
                std::printf("\nrate limit (5 Hz, burst 3): %llu "
                            "allowed, %llu limited with retry hints; "
                            "accounting %s\n",
                            static_cast<unsigned long long>(allowed),
                            static_cast<unsigned long long>(limited),
                            rate_failed ? "BROKEN" : "exact");
                rate_report.set("allowed", allowed)
                    .set("limited", limited)
                    .set("retry_hints", retry_hints)
                    .set("accounting_exact", !rate_failed);
            }
        }
    }

    // --- BENCH_serve.json -------------------------------------------
    std::string levels_json = "[";
    for (std::size_t i = 0; i < level_reports.size(); ++i) {
        if (i)
            levels_json += ",";
        levels_json += level_reports[i].str();
    }
    levels_json += "]";

    JsonReport top;
    top.set("bench", std::string("serve"))
        .set("smoke", smoke)
        .set("lost_jobs", lost)
        .set("levels", JsonReport::Raw{levels_json})
        .set("hot_repeat", JsonReport::Raw{hot.str()});
    if (tcp_ran)
        top.set("tcp", JsonReport::Raw{tcp_report.str()})
            .set("tcp_failed", tcp_failed);
    if (rate_ran)
        top.set("rate_limit", JsonReport::Raw{rate_report.str()})
            .set("rate_limit_failed", rate_failed);

    const char* env = std::getenv("GMOMS_BENCH_SERVE_JSON");
    const std::string path = env ? env : "BENCH_serve.json";
    if (writeReportAtomically(path, top))
        std::printf("\nper-level records written to %s\n",
                    path.c_str());
    else
        std::printf("\ncould not write %s\n", path.c_str());

    if (lost)
        std::printf("\nJOBS WERE LOST — the serving layer broke its "
                    "terminal-accounting contract\n");
    if (hot_failed)
        std::printf("\nHOT-REPEAT CONTRACT BROKEN — see above\n");
    if (tcp_failed)
        std::printf("\nTCP RESULT-CACHE CONTRACT BROKEN — see above\n");
    if (rate_failed)
        std::printf("\nRATE-LIMIT CONTRACT BROKEN — see above\n");
    return lost || hot_failed || tcp_failed || rate_failed ? 1 : 0;
}
