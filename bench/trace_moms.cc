/**
 * @file
 * Standalone MOMS characterization on synthetic traces — the
 * methodology of the authors' FPGA'19 MOMS paper, which Section II of
 * the ISCA'21 paper builds on. Sweeps access skew and organization,
 * reporting sustained requests/cycle, merge rate and DRAM lines.
 */

#include "bench/bench_common.hh"
#include "src/cache/trace_harness.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== MOMS characterization on synthetic traces ===\n");
    std::printf("(8 clients, 2 channels, 1M-word footprint; "
                "req/cyc is the sustained aggregate rate)\n\n");

    TraceConfig cfg;
    cfg.num_clients = 8;
    cfg.num_channels = 2;
    cfg.requests_per_client = 8000;
    cfg.footprint_words = 1 << 20;

    struct Org
    {
        const char* name;
        MomsConfig config;
    };
    const Org orgs[] = {
        {"two-level MOMS", MomsConfig::twoLevel(4)},
        {"shared MOMS", MomsConfig::shared(4)},
        {"private MOMS", MomsConfig::privateOnly()},
        {"traditional", MomsConfig::traditionalShared(4)},
    };

    for (double alpha : {0.0, 0.6, 0.9, 1.2}) {
        std::printf("--- access skew: %s (alpha=%.1f) ---\n",
                    alpha == 0.0 ? "uniform" : "zipf", alpha);
        Table table({"organization", "req/cyc", "merge%", "hit%",
                     "DRAM lines"});
        for (const Org& org : orgs) {
            auto pattern =
                alpha == 0.0
                    ? patterns::uniform(cfg.footprint_words)
                    : patterns::zipf(cfg.footprint_words, alpha);
            TraceResult r = replayTrace(org.config, cfg, pattern);
            table.addRow({org.name, fmt(r.requestsPerCycle(), 3),
                          fmt(100 * r.mergeRate(), 1),
                          fmt(100 * r.hitRate(), 1),
                          std::to_string(r.lines_from_mem)});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Expected: at higher skew the MOMS organizations pull "
                "ahead of the traditional cache\nthrough merging, "
                "without needing cache hits (FPGA'19 / Section II).\n");
    return 0;
}
