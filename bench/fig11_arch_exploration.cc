/**
 * @file
 * Fig. 11 — Throughput on PageRank, SCC and SSSP for different
 * architectures (shared / private / two-level MOMS and traditional
 * caches), across the Table II benchmark suite.
 *
 * Paper expectations reproduced here (shape, not absolute GTEPS):
 *  - two-level architectures achieve the highest geometric mean;
 *  - 16-bank variants beat more-PEs/8-bank variants (bank conflicts);
 *  - shared-only MOMS trails (no private filtering);
 *  - private-only wins on high-locality web graphs (IT/SK/UK);
 *  - SCC achieves the highest throughput of the three algorithms;
 *  - design points modelled under 185 MHz are flagged as discarded.
 *
 * With `--telemetry` (and optionally `--trace=FILE`) the bench also
 * prints per-architecture stall attribution: shared-MOMS designs show a
 * higher bank-conflict share than two-level ones — the measured form of
 * the paper's argument for private filtering.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main(int argc, char** argv)
{
    TelemetryCli cli;
    cli.parse(argc, argv);

    const std::vector<std::string> algos = {"PageRank", "SCC", "SSSP"};
    const std::vector<std::string> tags = benchDatasetTags();
    const std::vector<ArchPreset> presets = fig11Presets();

    std::printf("=== Fig. 11: throughput (GTEPS) per architecture ===\n");
    std::printf("datasets: scaled Table II stand-ins; "
                "set GMOMS_FULL_DATASETS=1 for all 12\n\n");

    // One job per (algo, preset, dataset) point, fanned across the
    // worker pool; rows are assembled from the ordered results below.
    struct Job
    {
        std::size_t algo;
        std::size_t preset;
        std::string tag;
    };
    std::vector<Job> jobs;
    for (std::size_t a = 0; a < algos.size(); ++a)
        for (std::size_t p = 0; p < presets.size(); ++p)
            for (const std::string& tag : tags)
                jobs.push_back({a, p, tag});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            AccelConfig cfg = presets[j.preset].config;
            cli.apply(cfg, presets[j.preset].name + " " +
                               algos[j.algo] + " " + j.tag);
            return runOn(*loadDataset(j.tag), algos[j.algo], cfg);
        });
    auto outcomeAt = [&](std::size_t a, std::size_t p, std::size_t t)
        -> const RunOutcome& {
        return outcomes[(a * presets.size() + p) * tags.size() + t];
    };

    std::size_t next = 0;
    for (const std::string& algo : algos) {
        std::printf("--- %s ---\n", algo.c_str());
        std::vector<std::string> header = {"architecture"};
        for (const auto& tag : tags)
            header.push_back(tag);
        header.push_back("geomean");
        header.push_back("fmax");
        Table table(header);

        for (const ArchPreset& preset : presets) {
            std::vector<std::string> row = {preset.name};
            std::vector<double> gteps;
            double fmax = 0;
            for (std::size_t t = 0; t < tags.size(); ++t) {
                const RunOutcome& out = outcomes[next++];
                fmax = out.freq_mhz;
                gteps.push_back(out.gteps);
                row.push_back(fmt(out.gteps, 3));
            }
            row.push_back(fmt(geomean(gteps), 3));
            row.push_back(fmt(fmax, 0) + "MHz" +
                          (fmax < kMinFrequencyMhz ? " (discarded)"
                                                   : ""));
            table.addRow(row);
        }
        table.print();
        std::printf("\n");
    }

    if (cli.enabled()) {
        // Stall attribution: aggregated per (algo, architecture) over
        // the dataset suite. Shares are of all *attributed* stall
        // cycles, so rows compare where each design loses cycles — the
        // bank-conflict column is the Section II bottleneck argument in
        // numbers.
        const std::vector<StallCause> causes = {
            StallCause::BankConflict,     StallCause::MshrFull,
            StallCause::SubentryFull,     StallCause::CrossingCredit,
            StallCause::RowMiss,
            StallCause::DownstreamBackpressure,
        };
        std::printf("=== Stall attribution "
                    "(share of attributed stall cycles) ===\n");
        for (std::size_t a = 0; a < algos.size(); ++a) {
            std::printf("--- %s ---\n", algos[a].c_str());
            std::vector<std::string> header = {"architecture"};
            for (StallCause c : causes)
                header.push_back(stallCauseName(c));
            header.push_back("top (group/cause)");
            Table table(header);
            for (std::size_t p = 0; p < presets.size(); ++p) {
                std::vector<std::uint64_t> per_cause(causes.size(), 0);
                std::uint64_t total = 0;
                const TelemetrySummary* top_src = nullptr;
                for (std::size_t t = 0; t < tags.size(); ++t) {
                    const auto& s = outcomeAt(a, p, t).result.telemetry;
                    if (!s)
                        continue;
                    for (std::size_t c = 0; c < causes.size(); ++c)
                        per_cause[c] += s->stallCycles("", causes[c]);
                    total += s->totalStallCycles();
                    if (!top_src)
                        top_src = s.get();
                }
                std::vector<std::string> row = {presets[p].name};
                for (std::size_t c = 0; c < causes.size(); ++c)
                    row.push_back(
                        total ? fmt(100.0 * static_cast<double>(
                                                per_cause[c]) /
                                        static_cast<double>(total),
                                    1) + "%"
                              : "-");
                if (top_src && top_src->topStall())
                    row.push_back(top_src->topStall()->group + "/" +
                                  stallCauseName(
                                      top_src->topStall()->cause));
                else
                    row.push_back("-");
                table.addRow(row);
            }
            table.print();
            std::printf("\n");
        }

        // Per-dataset bank-conflict share on the first algorithm: the
        // shared-MOMS rows should sit strictly above the two-level rows
        // (the private level filters and line-coalesces the crossbar
        // traffic) — the paper's motivation for the two-level design.
        std::printf("--- bank-conflict share per dataset (%s) ---\n",
                    algos[0].c_str());
        std::vector<std::string> header = {"architecture"};
        for (const auto& tag : tags)
            header.push_back(tag);
        Table table(header);
        for (std::size_t p = 0; p < presets.size(); ++p) {
            std::vector<std::string> row = {presets[p].name};
            for (std::size_t t = 0; t < tags.size(); ++t) {
                const auto& s = outcomeAt(0, p, t).result.telemetry;
                row.push_back(
                    s ? fmt(100.0 * s->stallShare(
                                        StallCause::BankConflict),
                            1) + "%"
                      : "-");
            }
            table.addRow(row);
        }
        table.print();

        std::vector<TelemetrySummaryPtr> summaries;
        for (const RunOutcome& out : outcomes)
            summaries.push_back(out.result.telemetry);
        cli.maybeWriteTrace(summaries);
    }
    return 0;
}
