/**
 * @file
 * Fig. 11 — Throughput on PageRank, SCC and SSSP for different
 * architectures (shared / private / two-level MOMS and traditional
 * caches), across the Table II benchmark suite.
 *
 * Paper expectations reproduced here (shape, not absolute GTEPS):
 *  - two-level architectures achieve the highest geometric mean;
 *  - 16-bank variants beat more-PEs/8-bank variants (bank conflicts);
 *  - shared-only MOMS trails (no private filtering);
 *  - private-only wins on high-locality web graphs (IT/SK/UK);
 *  - SCC achieves the highest throughput of the three algorithms;
 *  - design points modelled under 185 MHz are flagged as discarded.
 */

#include "bench/bench_common.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    const std::vector<std::string> algos = {"PageRank", "SCC", "SSSP"};
    const std::vector<std::string> tags = benchDatasetTags();
    const std::vector<ArchPreset> presets = fig11Presets();

    std::printf("=== Fig. 11: throughput (GTEPS) per architecture ===\n");
    std::printf("datasets: scaled Table II stand-ins; "
                "set GMOMS_FULL_DATASETS=1 for all 12\n\n");

    // One job per (algo, preset, dataset) point, fanned across the
    // worker pool; rows are assembled from the ordered results below.
    struct Job
    {
        std::size_t algo;
        std::size_t preset;
        std::string tag;
    };
    std::vector<Job> jobs;
    for (std::size_t a = 0; a < algos.size(); ++a)
        for (std::size_t p = 0; p < presets.size(); ++p)
            for (const std::string& tag : tags)
                jobs.push_back({a, p, tag});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            return runOn(*loadDataset(j.tag), algos[j.algo],
                         presets[j.preset].config);
        });

    std::size_t next = 0;
    for (const std::string& algo : algos) {
        std::printf("--- %s ---\n", algo.c_str());
        std::vector<std::string> header = {"architecture"};
        for (const auto& tag : tags)
            header.push_back(tag);
        header.push_back("geomean");
        header.push_back("fmax");
        Table table(header);

        for (const ArchPreset& preset : presets) {
            std::vector<std::string> row = {preset.name};
            std::vector<double> gteps;
            double fmax = 0;
            for (std::size_t t = 0; t < tags.size(); ++t) {
                const RunOutcome& out = outcomes[next++];
                fmax = out.freq_mhz;
                gteps.push_back(out.gteps);
                row.push_back(fmt(out.gteps, 3));
            }
            row.push_back(fmt(geomean(gteps), 3));
            row.push_back(fmt(fmax, 0) + "MHz" +
                          (fmax < kMinFrequencyMhz ? " (discarded)"
                                                   : ""));
            table.addRow(row);
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
