/**
 * @file
 * Shared infrastructure for the per-figure/table bench binaries:
 * architecture presets (the Fig. 11 design points, scaled), dataset
 * loading with preprocessing, run helpers and table formatting.
 *
 * Every bench prints the same rows/series as the corresponding paper
 * figure or table. Absolute GTEPS are measured on the scaled synthetic
 * stand-ins (DESIGN.md), so shapes and ratios — not absolute numbers —
 * are the reproduction target; EXPERIMENTS.md records both.
 */

#ifndef GMOMS_BENCH_BENCH_COMMON_HH
#define GMOMS_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/accel/accelerator.hh"
#include "src/accel/resource_model.hh"
#include "src/accel/session.hh"
#include "src/algo/spec.hh"
#include "src/graph/datasets.hh"
#include "src/graph/generator.hh"
#include "src/graph/reorder.hh"
#include "src/obs/trace_export.hh"
#include "src/serve/dataset_cache.hh"
#include "src/sim/parallel.hh"
#include "src/sim/report.hh"

namespace gmoms::bench
{

/** A named architecture design point (Fig. 11 label convention:
 *  "PEs/banks kind private-kB"). */
struct ArchPreset
{
    std::string name;
    AccelConfig config;
};

/** The Fig. 11 design-point set, scaled (paper sizes / 8). */
inline std::vector<ArchPreset>
fig11Presets(std::uint32_t channels = 4)
{
    auto base = [&](MomsConfig moms, std::uint32_t pes) {
        return AccelConfig::preset(std::move(moms), pes, channels);
    };
    return {
        {"16/16 two-level", base(MomsConfig::twoLevel(16), 16)},
        {"18/16 two-level 2k",
         base(MomsConfig::twoLevel(16, 2048), 18)},
        {"20/8 two-level", base(MomsConfig::twoLevel(8), 20)},
        {"16/16 shared", base(MomsConfig::shared(16), 16)},
        {"24/8 shared", base(MomsConfig::shared(8), 24)},
        {"20 private 1k", base(MomsConfig::privateOnly(), 20)},
        {"16/16 trad 2L", base(MomsConfig::traditionalTwoLevel(16), 16)},
        {"20/8 trad 2L", base(MomsConfig::traditionalTwoLevel(8), 20)},
    };
}

/** Iteration caps for bench runs: the paper runs PageRank for 10
 *  iterations and the rest to convergence; benches cap work so the full
 *  suite runs in minutes (throughput is per-edge and stable across
 *  iterations; GMOMS_PAPER_ITERATIONS=1 restores paper settings). */
inline std::uint32_t
pagerankIterations()
{
    if (const char* env = std::getenv("GMOMS_PAPER_ITERATIONS");
        env && env[0] == '1')
        return 10;
    return 2;
}

inline std::uint32_t
convergenceCap()
{
    if (const char* env = std::getenv("GMOMS_PAPER_ITERATIONS");
        env && env[0] == '1')
        return 1000;
    return 4;
}

/** Immutable, shareable dataset handle (one build per process, all
 *  sweep workers reference the same graph). */
using DatasetPtr = serve::DatasetPtr;

/**
 * Build a dataset stand-in with the paper-default preprocessing,
 * served from the process-wide serve::DatasetCache: one build per
 * (tag, prep, nd) key with concurrent callers waiting on that build
 * (the PR-2 once-per-key contract), shared by pointer so sweep workers
 * never copy multi-MB graphs — but now under an LRU byte budget
 * (GMOMS_DATASET_CACHE_MB) instead of unbounded process-lifetime
 * memoization. Rebuilds after eviction are bit-identical, so sweep
 * outputs stay byte-stable (test_sweep_determinism).
 */
inline DatasetPtr
loadDataset(const std::string& tag,
            Preprocessing prep = Preprocessing::DbgHash,
            std::uint32_t nd_hint = 0)
{
    return serve::DatasetCache::process().get(tag, prep, nd_hint);
}

/** Algorithm factory by name for the three paper kernels. */
inline AlgoSpec
makeSpec(const std::string& algo, const CooGraph& g)
{
    if (algo == "PageRank")
        return AlgoSpec::pageRank(g, pagerankIterations());
    if (algo == "SCC")
        return AlgoSpec::scc(g.numNodes(), convergenceCap());
    if (algo == "SSSP")
        return AlgoSpec::sssp(0, convergenceCap());
    throw FatalError("unknown algorithm " + algo);
}

struct RunOutcome
{
    RunResult result;
    double freq_mhz = 0;
    double gteps = 0;
    Engine::Stats engine;    //!< engine activity counters of the run
    double wall_seconds = 0; //!< wall-clock time of Accelerator::run()
};

/**
 * Shared `--telemetry` / `--trace=FILE` flag handling for bench mains.
 * `--trace` implies `--telemetry`; unknown arguments are ignored so a
 * bench's own flags pass through untouched.
 */
struct TelemetryCli
{
    bool telemetry = false;
    std::string trace_path;

    void
    parse(int argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--telemetry")
                telemetry = true;
            else if (arg.rfind("--trace=", 0) == 0) {
                trace_path = arg.substr(8);
                telemetry = true;
            }
        }
    }

    bool enabled() const { return telemetry; }

    /** Enable collection on @p cfg, labelling the run for the trace. */
    void
    apply(AccelConfig& cfg, const std::string& label) const
    {
        cfg.telemetry.enabled = telemetry;
        cfg.telemetry.label = label;
    }

    /** Write all collected summaries when --trace=FILE was given. */
    void
    maybeWriteTrace(const std::vector<TelemetrySummaryPtr>& runs) const
    {
        if (trace_path.empty())
            return;
        if (writeChromeTraceFile(trace_path, runs))
            std::printf("\nwrote Chrome trace: %s (open at "
                        "https://ui.perfetto.dev)\n",
                        trace_path.c_str());
        else
            std::printf("\ncould not write trace file %s\n",
                        trace_path.c_str());
    }
};

/**
 * Write @p report to @p path atomically: serialize into "<path>.tmp"
 * in full, then rename over the target. A crash (or two bench
 * processes racing on the same output) can never leave a truncated,
 * half-written JSON file behind — consumers see either the old
 * complete file or the new complete file.
 */
inline bool
writeReportAtomically(const std::string& path, const JsonReport& report)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            return false;
        report.write(os);
        os << '\n';
        if (!os)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/**
 * Accumulates simulator-speed numbers across every runOn() call of a
 * bench process — split into idle-aware and legacy full-tick buckets —
 * and writes them as BENCH_engine.json (or $GMOMS_BENCH_ENGINE_JSON)
 * at process exit, via temp-file-then-rename so the file is never
 * observed half-written. When both engine modes ran in the same
 * process the report includes their cycles/sec ratio ("speedup").
 * Benches may attach extra pre-serialized sections (the tick-thread
 * sweep and checkpoint-latency records of bench_engine) with
 * addSection().
 */
class EngineBenchRecorder
{
  public:
    static EngineBenchRecorder&
    instance()
    {
        static EngineBenchRecorder recorder;
        return recorder;
    }

    void
    add(const Engine::Stats& stats, double wall_seconds, bool full_tick)
    {
        std::lock_guard<std::mutex> lock(mu_);
        Bucket& b = full_tick ? full_ : idle_;
        ++b.runs;
        b.stats.cycles += stats.cycles;
        b.stats.cycles_skipped += stats.cycles_skipped;
        b.stats.ticks_executed += stats.ticks_executed;
        b.stats.ticks_skipped += stats.ticks_skipped;
        b.stats.wakes += stats.wakes;
        b.wall_seconds += wall_seconds;
    }

    /** Attach a pre-serialized JSON value under @p key in the final
     *  report (bench-specific sections: "tick_threads",
     *  "checkpoint"). Last write per key wins. */
    void
    addSection(const std::string& key, std::string json)
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [k, v] : sections_)
            if (k == key) {
                v = std::move(json);
                return;
            }
        sections_.emplace_back(key, std::move(json));
    }

    ~EngineBenchRecorder()
    {
        if (idle_.runs == 0 && full_.runs == 0 && sections_.empty())
            return;
        const char* env = std::getenv("GMOMS_BENCH_ENGINE_JSON");
        const std::string path = env ? env : "BENCH_engine.json";
        JsonReport report;
        // Wall-clock context for the parallel-tick numbers: speedup on
        // a 1-core host is not a code defect, and consumers need to
        // know which they are looking at.
        report.set("host_cpus",
                   static_cast<std::uint64_t>(
                       std::thread::hardware_concurrency()));
        appendBucket(report, "idle", idle_);
        appendBucket(report, "full_tick", full_);
        if (idle_.runs > 0 && full_.runs > 0 &&
            idle_.wall_seconds > 0 && full_.wall_seconds > 0) {
            const double idle_rate =
                static_cast<double>(idle_.stats.cycles) /
                idle_.wall_seconds;
            const double full_rate =
                static_cast<double>(full_.stats.cycles) /
                full_.wall_seconds;
            if (full_rate > 0)
                report.set("speedup", idle_rate / full_rate);
        }
        for (const auto& [key, json] : sections_)
            report.set(key, JsonReport::Raw{json});
        writeReportAtomically(path, report);
    }

  private:
    struct Bucket
    {
        std::uint64_t runs = 0;
        Engine::Stats stats;
        double wall_seconds = 0;
    };

    static void
    appendBucket(JsonReport& report, const std::string& prefix,
                 const Bucket& b)
    {
        if (b.runs == 0)
            return;
        report.set(prefix + "_runs", b.runs);
        report.set(prefix + "_sim_cycles", b.stats.cycles)
            .set(prefix + "_cycles_skipped", b.stats.cycles_skipped)
            .set(prefix + "_ticks_executed", b.stats.ticks_executed)
            .set(prefix + "_ticks_skipped", b.stats.ticks_skipped)
            .set(prefix + "_wakes", b.stats.wakes)
            .set(prefix + "_wall_seconds", b.wall_seconds)
            .set(prefix + "_cycles_per_sec",
                 b.wall_seconds > 0
                     ? static_cast<double>(b.stats.cycles) /
                           b.wall_seconds
                     : 0.0);
    }

    std::mutex mu_;  //!< add() is called from sweep workers
    Bucket idle_;
    Bucket full_;
    std::vector<std::pair<std::string, std::string>> sections_;
};

/** Run @p cfg on @p g through a Session; weights are added (to a
 *  session-local copy — @p g is shared between sweep workers) when the
 *  kernel needs them. */
inline RunOutcome
runOn(const CooGraph& g, const std::string& algo, AccelConfig cfg)
{
    // Datasets arrive already preprocessed (loadDataset), so the
    // session borrows the shared graph and adds no preprocessing.
    Session session = SessionBuilder()
                          .datasetView(g)
                          .config(std::move(cfg))
                          .build();
    SessionResult res;
    if (algo == "PageRank")
        res = session.pageRank(pagerankIterations());
    else if (algo == "SCC")
        res = session.scc(convergenceCap());
    else if (algo == "SSSP")
        res = session.sssp(0, convergenceCap());
    else
        throw FatalError("unknown algorithm " + algo);
    RunOutcome out;
    out.result = std::move(res.run);
    out.engine = res.engine;
    out.wall_seconds = res.wall_seconds;
    out.freq_mhz = res.fmax_mhz;
    out.gteps = res.gteps;
    EngineBenchRecorder::instance().add(out.engine, out.wall_seconds,
                                        res.full_tick);
    return out;
}

/**
 * Fan @p fn over @p jobs on a worker pool and return the results in
 * input order. Each job must be independent (the simulator core is
 * re-entrant: every runOn() builds its own Engine/Accelerator, see
 * docs/MODEL.md). Results are reassembled by index, so the output —
 * and anything printed from it afterwards — is byte-identical to the
 * serial loop `for (job : jobs) results.push_back(fn(job))` regardless
 * of worker count. @p pool defaults to the shared GMOMS_JOBS-sized
 * pool; pass an explicit pool to control the worker count (tests).
 */
template <typename JobT, typename Fn>
auto
sweep(const std::vector<JobT>& jobs, Fn fn, ThreadPool* pool = nullptr)
    -> std::vector<std::decay_t<decltype(fn(jobs.front()))>>
{
    using Result = std::decay_t<decltype(fn(jobs.front()))>;
    std::vector<Result> results(jobs.size());
    std::vector<ThreadPool::Job> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        tasks.push_back(
            [&, i] { results[i] = fn(jobs[i]); });
    (pool ? *pool : ThreadPool::shared()).runAll(std::move(tasks));
    return results;
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Print a row-major table: header then one line per row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(header_.size());
        for (std::size_t c = 0; c < header_.size(); ++c)
            width[c] = header_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());
        auto line = [&](const std::vector<std::string>& cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        line(header_);
        for (const auto& row : rows_)
            line(row);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into std::string. */
inline std::string
fmt(double v, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace gmoms::bench

#endif // GMOMS_BENCH_BENCH_COMMON_HH
