/**
 * @file
 * Fig. 16 — Comparison with the state of the art.
 *
 * What can be re-measured here (DESIGN.md substitutions):
 *  - "this work, generic":   best geomean architecture (16/16 2-level),
 *  - "this work, specialized": best architecture per dataset,
 *  - CPU baseline:           our measured multithreaded edge-centric
 *                            implementation (Ligra/GraphMat stand-in),
 *  - FabGraph:               the analytic model (as in the paper).
 * GPU (Gunrock) cannot be re-measured without a V100; the paper's
 * published geomean ratios are quoted for context.
 */

#include <thread>

#include "bench/bench_common.hh"
#include "src/baseline/cpu_baseline.hh"
#include "src/baseline/fabgraph_model.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 16: comparison with the state of the art "
                "===\n");
    std::printf("(simulated accelerator GTEPS at modelled fmax vs "
                "measured host-CPU GTEPS;\ncross-platform absolute "
                "numbers are indicative — see EXPERIMENTS.md)\n\n");

    const std::uint32_t threads = std::max(
        1u, std::thread::hardware_concurrency());
    auto presets = fig11Presets();

    for (const std::string& algo :
         {std::string("PageRank"), std::string("SCC"),
          std::string("SSSP")}) {
        std::printf("--- %s (GTEPS) ---\n", algo.c_str());
        Table table({"dataset", "this-generic", "this-specialized",
                     "best-arch", "CPU", "FabGraph(PR)"});
        for (const std::string& tag : benchDatasetTags()) {
            // Generic = the best-geomean preset (16/16 two-level).
            CooGraph g = loadDataset(tag);
            RunOutcome generic =
                runOn(g, algo, presets[0].config);
            // Specialized = best preset for this dataset, searched over
            // a representative subset to bound runtime.
            double best = generic.gteps;
            std::string best_name = presets[0].name;
            for (std::size_t i : {std::size_t{1}, std::size_t{2},
                                  std::size_t{5}, std::size_t{6}}) {
                RunOutcome out = runOn(g, algo, presets[i].config);
                if (out.gteps > best) {
                    best = out.gteps;
                    best_name = presets[i].name;
                }
            }
            // CPU baseline (measured wall time on this host).
            CpuResult cpu;
            if (algo == "PageRank") {
                cpu = cpuPageRank(g, pagerankIterations(), threads);
            } else if (algo == "SCC") {
                cpu = cpuScc(g, threads);
            } else {
                CooGraph wg = g;
                addRandomWeights(wg, 97);
                cpu = cpuSssp(wg, 0, threads);
            }
            std::string fabgraph = "-";
            if (algo == "PageRank") {
                FabGraphConfig fcfg;
                fcfg.l2_capacity_nodes = 4'000'000 / 256;
                fcfg.l1_tile_nodes = 32768 / 256;
                fabgraph = fmt(modelFabGraph(g, fcfg).gteps, 3);
            }
            table.addRow({tag, fmt(generic.gteps, 3), fmt(best, 3),
                          best_name, fmt(cpu.gteps(), 3), fabgraph});
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Paper-published geomean ratios for context (not "
                "re-measured here):\n"
                "  PageRank: generic vs Ligra 2.1x, FabGraph 1.4x, "
                "Gunrock 2.1x; specialized 4.5x/3.0x/4.5x\n"
                "  SCC+SSSP: 1.1-3.5x (generic) / 2.3-5.8x "
                "(specialized) more bandwidth-efficient than CPUs\n"
                "  Gunrock (V100, 16 GB) runs only the five smallest "
                "graphs; this system runs all but FR/MP at 16 GB.\n");
    return 0;
}
