/**
 * @file
 * Fig. 16 — Comparison with the state of the art.
 *
 * What can be re-measured here (DESIGN.md substitutions):
 *  - "this work, generic":   best geomean architecture (16/16 2-level),
 *  - "this work, specialized": best architecture per dataset,
 *  - CPU baseline:           our measured multithreaded edge-centric
 *                            implementation (Ligra/GraphMat stand-in),
 *  - FabGraph:               the analytic model (as in the paper).
 * GPU (Gunrock) cannot be re-measured without a V100; the paper's
 * published geomean ratios are quoted for context.
 */

#include <thread>

#include "bench/bench_common.hh"
#include "src/baseline/cpu_baseline.hh"
#include "src/baseline/fabgraph_model.hh"

using namespace gmoms;
using namespace gmoms::bench;

int
main()
{
    std::printf("=== Fig. 16: comparison with the state of the art "
                "===\n");
    std::printf("(simulated accelerator GTEPS at modelled fmax vs "
                "measured host-CPU GTEPS;\ncross-platform absolute "
                "numbers are indicative — see EXPERIMENTS.md)\n\n");

    const std::uint32_t threads = std::max(
        1u, std::thread::hardware_concurrency());
    auto presets = fig11Presets();
    const std::vector<std::string> algos = {"PageRank", "SCC", "SSSP"};
    // Preset 0 is the generic (best-geomean) design; the rest form the
    // specialization search set (representative subset, bounds runtime).
    const std::vector<std::size_t> preset_idx = {0, 1, 2, 5, 6};

    // Fan the simulated-accelerator runs — one per (algo, dataset,
    // preset) — across the worker pool. The CPU baseline stays in the
    // serial assembly loop below: it is itself multithreaded and its
    // wall-clock measurement would be distorted by concurrent sims.
    struct Job
    {
        std::string algo;
        std::string tag;
        std::size_t preset;
    };
    std::vector<Job> jobs;
    for (const std::string& algo : algos)
        for (const std::string& tag : benchDatasetTags())
            for (std::size_t i : preset_idx)
                jobs.push_back({algo, tag, i});
    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Job& j) {
            return runOn(*loadDataset(j.tag), j.algo,
                         presets[j.preset].config);
        });

    std::size_t next = 0;
    for (const std::string& algo : algos) {
        std::printf("--- %s (GTEPS) ---\n", algo.c_str());
        Table table({"dataset", "this-generic", "this-specialized",
                     "best-arch", "CPU", "FabGraph(PR)"});
        for (const std::string& tag : benchDatasetTags()) {
            const CooGraph& g = *loadDataset(tag);
            const RunOutcome generic = outcomes[next++];
            double best = generic.gteps;
            std::string best_name = presets[0].name;
            for (std::size_t k = 1; k < preset_idx.size(); ++k) {
                const RunOutcome& out = outcomes[next++];
                if (out.gteps > best) {
                    best = out.gteps;
                    best_name = presets[preset_idx[k]].name;
                }
            }
            // CPU baseline (measured wall time on this host).
            CpuResult cpu;
            if (algo == "PageRank") {
                cpu = cpuPageRank(g, pagerankIterations(), threads);
            } else if (algo == "SCC") {
                cpu = cpuScc(g, threads);
            } else {
                CooGraph wg = g;
                addRandomWeights(wg, 97);
                cpu = cpuSssp(wg, 0, threads);
            }
            std::string fabgraph = "-";
            if (algo == "PageRank") {
                FabGraphConfig fcfg;
                fcfg.l2_capacity_nodes = 4'000'000 / 256;
                fcfg.l1_tile_nodes = 32768 / 256;
                fabgraph = fmt(modelFabGraph(g, fcfg).gteps, 3);
            }
            table.addRow({tag, fmt(generic.gteps, 3), fmt(best, 3),
                          best_name, fmt(cpu.gteps(), 3), fabgraph});
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Paper-published geomean ratios for context (not "
                "re-measured here):\n"
                "  PageRank: generic vs Ligra 2.1x, FabGraph 1.4x, "
                "Gunrock 2.1x; specialized 4.5x/3.0x/4.5x\n"
                "  SCC+SSSP: 1.1-3.5x (generic) / 2.3-5.8x "
                "(specialized) more bandwidth-efficient than CPUs\n"
                "  Gunrock (V100, 16 GB) runs only the five smallest "
                "graphs; this system runs all but FR/MP at 16 GB.\n");
    return 0;
}
