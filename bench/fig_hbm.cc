/**
 * @file
 * The bandwidth-efficiency frontier: DDR4 versus the HBM2
 * pseudo-channel substrate at MATCHED aggregate peak bandwidth, with
 * the plain 32-bit and the packed half-word CSR edge encodings.
 *
 * Matched pairs (aggregate peak bytes/cycle):
 *   ddr4-2ch vs hbm-4pc   @128 B/cyc
 *   ddr4-4ch vs hbm-8pc   @256 B/cyc
 *   ddr4-8ch vs hbm-16pc  @512 B/cyc
 *
 * There is no counterpart figure in the paper — its design targets
 * DDR4 boards and Section VII names HBM as the natural extension. The
 * trade the frontier exposes: at equal aggregate bandwidth HBM splits
 * it over more, narrower buses, so streaming transactions pay more
 * overhead per byte (lower single-transaction efficiency) while random
 * 64-byte vertex misses enjoy more channel-level parallelism. The
 * packed CSR halves the edge-stream bytes, shifting the DRAM demand
 * mix toward the random vertex side — which can flip the winning
 * substrate on a dataset (the "packed flips" table).
 *
 * Invariant checked here (and fatal when violated): the converged SCC
 * values_checksum is identical across every substrate, both edge
 * encodings, both engine modes and tick-thread counts — substrates and
 * encodings move timing, never results.
 *
 * Flags: --smoke (tiny sweep for CI), --json=FILE (machine-readable
 * artifact; --smoke defaults it to BENCH_hbm.json), plus the shared
 * --telemetry/--trace=FILE.
 */

#include "bench/bench_common.hh"
#include "src/serve/job.hh"

using namespace gmoms;
using namespace gmoms::bench;

namespace
{

/** One substrate point of the frontier. */
struct Substrate
{
    std::string key;          //!< e.g. "hbm-8pc"
    MemSubstrateConfig mem;
    std::uint32_t peak = 0;   //!< aggregate peak bytes/cycle
    int pair = -1;            //!< matched-bandwidth pair index
};

std::vector<Substrate>
substratePoints(bool smoke)
{
    auto point = [](const char* key, MemSubstrateConfig mem, int pair) {
        Substrate s;
        s.key = key;
        s.peak = mem.channels * mem.timing.bus_bytes_per_cycle;
        s.mem = std::move(mem);
        s.pair = pair;
        return s;
    };
    if (smoke)
        return {point("ddr4-2ch", MemSubstrateConfig::ddr4(2), 0),
                point("hbm-4pc", MemSubstrateConfig::hbm2(4), 0)};
    return {point("ddr4-2ch", MemSubstrateConfig::ddr4(2), 0),
            point("hbm-4pc", MemSubstrateConfig::hbm2(4), 0),
            point("ddr4-4ch", MemSubstrateConfig::ddr4(4), 1),
            point("hbm-8pc", MemSubstrateConfig::hbm2(8), 1),
            point("ddr4-8ch", MemSubstrateConfig::ddr4(8), 2),
            point("hbm-16pc", MemSubstrateConfig::hbm2(16), 2)};
}

/** One (dataset, algo, substrate, encoding) frontier point. */
struct Point
{
    std::string tag;
    std::string algo;
    std::size_t sub = 0;
    bool packed = false;
};

AccelConfig
pointConfig(const Substrate& sub, bool packed)
{
    // The compute side stays fixed (16 PEs, 16 shared banks — a
    // multiple of every channel count here) so the frontier isolates
    // the memory substrate and the edge encoding. Init bursts are
    // pipelined on BOTH substrates: otherwise HBM's 256 B interleave
    // units turn the node-array streams round-trip-latency-bound and
    // the frontier measures a DMA artifact, not the memories.
    AccelConfig cfg =
        AccelConfig::preset(MomsConfig::twoLevel(16), /*pes=*/16);
    cfg.mem = sub.mem;
    cfg.packed_edges = packed;
    cfg.init_outstanding_bursts = 8;
    return cfg;
}

/** Frontier datasets use degree-grouped relabeling WITHOUT the hash
 *  scatter: hashing spreads every destination's in-neighbours evenly
 *  over the source intervals, so almost no shard sees the same
 *  destination twice and the packed encoding pays a selector per edge
 *  (~0.95 of plain). Degree grouping keeps them clustered, which is
 *  what lets selectors amortize (0.70-0.77 on the skewed datasets) —
 *  the "degree-aware vertex packing" half of the encoding. */
DatasetPtr
frontierDataset(const std::string& tag)
{
    return loadDataset(tag, Preprocessing::Dbg);
}

} // namespace

int
main(int argc, char** argv)
{
    TelemetryCli cli;
    cli.parse(argc, argv);
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }
    if (smoke && json_path.empty())
        json_path = "BENCH_hbm.json";

    const std::vector<Substrate> subs = substratePoints(smoke);
    const std::vector<std::string> algos =
        smoke ? std::vector<std::string>{"PageRank", "SCC"}
              : std::vector<std::string>{"PageRank", "SCC", "SSSP"};
    const std::vector<std::string> tags =
        smoke ? std::vector<std::string>{"WT"} : benchDatasetTags();

    std::printf("=== Bandwidth-efficiency frontier: DDR4 vs HBM2 "
                "pseudo-channels at matched aggregate\n    peak "
                "bandwidth, plain vs packed half-word CSR (16 PEs, "
                "16/16 two-level MOMS) ===\n\n");

    std::vector<Point> jobs;
    for (const std::string& tag : tags)
        for (const std::string& algo : algos)
            for (std::size_t s = 0; s < subs.size(); ++s)
                for (bool packed : {false, true})
                    jobs.push_back({tag, algo, s, packed});

    const std::vector<RunOutcome> outcomes =
        sweep(jobs, [&](const Point& j) {
            const Substrate& sub = subs[j.sub];
            AccelConfig cfg = pointConfig(sub, j.packed);
            cli.apply(cfg, j.algo + " " + j.tag + " " + sub.key +
                               (j.packed ? " packed" : " plain"));
            return runOn(*frontierDataset(j.tag), j.algo, cfg);
        });

    JsonReport report;
    report.set("smoke", smoke);

    auto at = [&](std::size_t i) -> const RunOutcome& {
        return outcomes[i];
    };

    // --- Frontier tables: one per (dataset, algo) ---------------------
    std::size_t next = 0;
    int flips = 0;
    std::vector<std::string> flip_rows;
    for (const std::string& tag : tags) {
        for (const std::string& algo : algos) {
            std::printf("--- %s %s ---\n", tag.c_str(), algo.c_str());
            Table table({"substrate", "peak-B/cyc", "plain-GTEPS",
                         "packed-GTEPS", "packed-gain",
                         "plain-DRAM-B/edge", "packed-DRAM-B/edge"});
            // gteps[pair][ddr(0)/hbm(1)][plain(0)/packed(1)]
            std::vector<std::array<std::array<double, 2>, 2>> grid(
                subs.size(), {{{0, 0}, {0, 0}}});
            for (std::size_t s = 0; s < subs.size(); ++s) {
                const Substrate& sub = subs[s];
                const RunOutcome& plain = at(next++);
                const RunOutcome& packed = at(next++);
                const bool is_hbm =
                    sub.mem.kind == MemKind::Hbm2;
                grid[sub.pair][is_hbm ? 1 : 0] = {plain.gteps,
                                                  packed.gteps};
                auto bytes_per_edge = [](const RunOutcome& o) {
                    return static_cast<double>(
                               o.result.dram_bytes_read) /
                           static_cast<double>(std::max<EdgeId>(
                               o.result.edges_processed, 1));
                };
                table.addRow(
                    {sub.key, std::to_string(sub.peak),
                     fmt(plain.gteps, 3), fmt(packed.gteps, 3),
                     fmt(packed.gteps / std::max(plain.gteps, 1e-12),
                         2) + "x",
                     fmt(bytes_per_edge(plain), 1),
                     fmt(bytes_per_edge(packed), 1)});
                const std::string base =
                    tag + "." + algo + "." + sub.key;
                report.set(base + ".peak_bytes_per_cycle",
                           static_cast<std::uint64_t>(sub.peak));
                report.set(base + ".plain.gteps", plain.gteps);
                report.set(base + ".packed.gteps", packed.gteps);
                report.set(base + ".plain.dram_bytes_read",
                           plain.result.dram_bytes_read);
                report.set(base + ".packed.dram_bytes_read",
                           packed.result.dram_bytes_read);
                report.set(base + ".plain.edge_section_bytes",
                           plain.result.edge_section_bytes);
                report.set(base + ".packed.edge_section_bytes",
                           packed.result.edge_section_bytes);
                // The packed layout must actually engage and shrink
                // the edge section — a silent eligibility fallback
                // would make this sweep compare an encoding against
                // itself. (Total DRAM reads are NOT monotone in the
                // encoding: vertex-miss traffic depends on timing via
                // the MOMS merge window, so it is no guard.)
                if (!packed.result.packed_layout ||
                    packed.result.edge_section_bytes >=
                        plain.result.edge_section_bytes)
                    fatal("packed encoding did not engage or shrink "
                          "the edge section on " + tag + " " + algo +
                          " " + sub.key + " — eligibility fallback?");
            }
            table.print();

            // Matched-bandwidth winners: does packing flip any pair?
            for (std::size_t p = 0; p * 2 + 1 < subs.size(); ++p) {
                const auto& ddr = grid[p][0];
                const auto& hbm = grid[p][1];
                const bool hbm_wins_plain = hbm[0] > ddr[0];
                const bool hbm_wins_packed = hbm[1] > ddr[1];
                if (hbm_wins_plain != hbm_wins_packed) {
                    ++flips;
                    char buf[160];
                    std::snprintf(
                        buf, sizeof(buf),
                        "%s %s @%u B/cyc: plain winner %s -> packed "
                        "winner %s",
                        tag.c_str(), algo.c_str(),
                        subs[2 * p].peak,
                        hbm_wins_plain ? "hbm" : "ddr4",
                        hbm_wins_packed ? "hbm" : "ddr4");
                    flip_rows.push_back(buf);
                }
            }
            std::printf("\n");
        }
    }

    std::printf("=== Packed flips (matched-bandwidth winner changes "
                "with the encoding) ===\n");
    if (flip_rows.empty())
        std::printf("none\n");
    for (const std::string& row : flip_rows)
        std::printf("%s\n", row.c_str());
    report.set("winner_flips", static_cast<std::uint64_t>(flips));
    std::printf("\n");

    // --- Per-pseudo-channel attribution (--telemetry) -----------------
    if (cli.enabled()) {
        // The largest HBM point, PageRank, first dataset: where the
        // per-channel stall attribution shows whether the narrow buses
        // spend their cycles on data or on row misses / bank gaps.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const Point& j = jobs[i];
            const Substrate& sub = subs[j.sub];
            if (j.tag != tags.front() || j.algo != "PageRank" ||
                j.packed ||
                sub.mem.kind != MemKind::Hbm2 ||
                sub.key != subs.back().key)
                continue;
            const auto& s = at(i).result.telemetry;
            if (!s)
                break;
            std::printf("=== Per-pseudo-channel occupancy: %s PageRank "
                        "%s ===\n",
                        j.tag.c_str(), sub.key.c_str());
            Table pc({"pc", "bytes-read", "busy%", "row-miss-cyc",
                      "bank-gap-cyc"});
            const double cyc =
                static_cast<double>(at(i).result.cycles);
            for (std::uint32_t c = 0; c < sub.mem.channels; ++c) {
                const std::string g = "hbm.pc" + std::to_string(c);
                pc.addRow(
                    {std::to_string(c),
                     std::to_string(static_cast<std::uint64_t>(
                         s->total(g + ".bytes_read"))),
                     fmt(100.0 * s->total(g + ".busy_cycles") / cyc,
                         1) + "%",
                     std::to_string(
                         s->stallCycles(g, StallCause::RowMiss)),
                     std::to_string(
                         s->stallCycles(g, StallCause::BankConflict))});
            }
            pc.print();
            std::printf("\n");
            break;
        }
    }

    // --- Checksum invariance (fatal on violation) ---------------------
    // Converged SCC has a unique fixpoint: its values_checksum may not
    // move with the substrate, the edge encoding, the engine mode or
    // the tick-thread count.
    std::printf("=== values_checksum invariance (converged SCC, %s) "
                "===\n",
                tags.front().c_str());
    const DatasetPtr check_g = frontierDataset(tags.front());
    auto checksum = [&](AccelConfig cfg) {
        Session session = SessionBuilder()
                              .datasetView(*check_g)
                              .config(std::move(cfg))
                              .build();
        const SessionResult res = session.scc(1000);
        EngineBenchRecorder::instance().add(
            res.engine, res.wall_seconds, res.full_tick);
        return serve::valuesChecksum(res.run.raw_values);
    };
    std::uint64_t want = 0;
    bool first = true;
    std::uint32_t checked = 0;
    for (const Substrate& sub : subs) {
        for (bool packed : {false, true}) {
            AccelConfig base = pointConfig(sub, packed);
            std::vector<AccelConfig> variants;
            variants.push_back(base);
            // Engine-mode and tick-thread variants on the first
            // substrate of each kind keep the block CI-sized.
            if (sub.key == subs.front().key ||
                sub.key == subs.back().key) {
                AccelConfig full = base;
                full.full_tick_engine = true;
                variants.push_back(full);
                AccelConfig threads = base;
                threads.tick_threads = 2;
                variants.push_back(threads);
            }
            for (AccelConfig& v : variants) {
                const std::uint64_t got = checksum(std::move(v));
                if (first) {
                    want = got;
                    first = false;
                } else if (got != want) {
                    fatal("values_checksum broke invariance on " +
                          sub.key + (packed ? " packed" : " plain") +
                          ": got " + std::to_string(got) +
                          ", want " + std::to_string(want));
                }
                ++checked;
            }
        }
    }
    std::printf("checksum %016llx identical across %u runs "
                "(substrates x encodings x engine modes x tick "
                "threads)\n\n",
                static_cast<unsigned long long>(want), checked);
    report.set("values_checksum", want);
    report.set("checksum_runs",
               static_cast<std::uint64_t>(checked));

    std::printf(
        "Reading the frontier: at matched aggregate bandwidth DDR4's "
        "wide buses stream the\nedge lists with less per-transaction "
        "overhead, while HBM's many narrow pseudo-\nchannels serve "
        "random 64 B vertex misses with more parallelism. The packed "
        "CSR\nhalves the streamed bytes, shifting the demand mix "
        "toward the vertex side — the\n\"packed flips\" list names the "
        "(dataset, algo, bandwidth) points where that\nchanges the "
        "winning substrate.\n");

    if (!json_path.empty()) {
        if (writeReportAtomically(json_path, report))
            std::printf("\nwrote %s\n", json_path.c_str());
        else
            std::printf("\ncould not write %s\n", json_path.c_str());
    }

    if (cli.enabled()) {
        std::vector<TelemetrySummaryPtr> summaries;
        for (const RunOutcome& out : outcomes)
            summaries.push_back(out.result.telemetry);
        cli.maybeWriteTrace(summaries);
    }
    return 0;
}
