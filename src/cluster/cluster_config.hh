/**
 * @file
 * Configuration of the simulated multi-FPGA cluster (ROADMAP item 1).
 *
 * One accelerator board is bounded by its channels and MOMS capacity —
 * the reason EXPERIMENTS.md records the 1.2M-edge scaling cap. A
 * ClusterConfig describes how 2-8 simulated boards, each a full copy of
 * the single-board micro-architecture, are stitched together by a
 * modeled inter-board link: how the graph is partitioned across them,
 * how ghost-vertex updates travel (serialization bandwidth, flight
 * latency, credit-based flow control, packet coalescing) and whether
 * the boards coordinate with BSP superstep barriers (GraVF-M style) or
 * asynchronously at their own pace (Swift style).
 *
 * boards == 1 means "no cluster": the single-board path is taken and
 * every link field is ignored.
 */

#ifndef GMOMS_CLUSTER_CLUSTER_CONFIG_HH
#define GMOMS_CLUSTER_CLUSTER_CONFIG_HH

#include <cstdint>
#include <string>

namespace gmoms
{

struct ClusterConfig
{
    /** Simulated boards; 1 = single-board (cluster machinery off). */
    std::uint32_t boards = 1;
    static constexpr std::uint32_t kMaxBoards = 8;

    /** Coordination mode between boards. */
    enum class Mode : std::uint8_t
    {
        /** Bulk-synchronous: all boards run superstep k, exchange
         *  ghost updates, barrier, then start superstep k+1. */
        Bsp = 0,
        /** Asynchronous: each board iterates at its own pace, applies
         *  remote updates whenever they have arrived at its own
         *  iteration boundaries, and parks when locally converged
         *  until new ghost values arrive. */
        Async = 1,
    };
    Mode mode = Mode::Bsp;

    /** How destination intervals are assigned to boards. */
    enum class Partitioner : std::uint8_t
    {
        /** Contiguous interval ranges, balanced by in-edge count. */
        BlockEdges = 0,
        /** Interval i on board i % boards (stress partitioner: many
         *  cut edges, balanced node counts). */
        RoundRobin = 1,
    };
    Partitioner partitioner = Partitioner::BlockEdges;

    // -- inter-board link model ------------------------------------------
    // The link generalizes the die-crossing queue/credit machinery in
    // src/cache (crossing_latency, crossbar credits) to board scope:
    // a serializing egress port per board, per-destination credit
    // windows, and update coalescing into bounded packets.

    /** Egress serialization bandwidth per board (bytes/cycle). A
     *  board serializes one packet at a time; this is the SerDes
     *  bottleneck that makes crossing traffic expensive. */
    std::uint32_t link_bytes_per_cycle = 8;

    /** One-way flight latency in cycles (much higher than the
     *  intra-die crossing_latency of the MOMS crossbar). */
    std::uint32_t link_latency = 128;

    /** Outstanding (sent, unacknowledged) packets allowed per directed
     *  board pair; credits return one flight latency after delivery. */
    std::uint32_t link_credits = 4;

    /** Packet payload cap in bytes: ghost updates destined for the
     *  same peer coalesce into packets up to this size (burst
     *  packing). Each packet additionally pays kPacketHeaderBytes. */
    std::uint32_t link_max_packet_bytes = 512;

    /** Wire overhead per packet (header + CRC), modeled as payload. */
    static constexpr std::uint32_t kPacketHeaderBytes = 16;
    /** Bytes of one ghost update on the wire (node id + value). */
    static constexpr std::uint32_t kUpdateBytes = 8;

    bool enabled() const { return boards > 1; }

    const char*
    modeName() const
    {
        return mode == Mode::Bsp ? "bsp" : "async";
    }

    const char*
    partitionerName() const
    {
        return partitioner == Partitioner::BlockEdges ? "block-edges"
                                                      : "round-robin";
    }

    /** "4xbsp/block-edges" style label for reports. */
    std::string
    label() const
    {
        return std::to_string(boards) + "x" + modeName() + "/" +
               partitionerName();
    }
};

} // namespace gmoms

#endif // GMOMS_CLUSTER_CLUSTER_CONFIG_HH
