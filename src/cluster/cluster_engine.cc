#include "src/cluster/cluster_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>

#include "src/algo/reference.hh"
#include "src/cluster/board.hh"
#include "src/cluster/board_link.hh"
#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

float
asFloatBits(std::uint32_t raw)
{
    float f;
    std::memcpy(&f, &raw, sizeof(f));
    return f;
}

/** Shared driver state (boards may be null for empty shards). */
struct Fleet
{
    const AccelConfig* cfg = nullptr;
    const AlgoSpec* spec = nullptr;
    const ClusterPartition* cp = nullptr;
    Engine* engine = nullptr;
    BoardLink* link = nullptr;
    std::vector<std::unique_ptr<Board>>* boards = nullptr;
    /** sendPeers[b]: peers with a non-empty export list from b. */
    std::vector<std::vector<std::uint32_t>> send_peers;

    Board* board(std::uint32_t b) { return (*boards)[b].get(); }
    std::uint32_t n() const { return cp->boards(); }
};

/**
 * Bulk-synchronous coordination (GraVF-M style): every board runs
 * superstep k to completion, exports travel over the link inside the
 * barrier, ghosts are applied, and superstep k+1 starts globally.
 * Terminates when no board updated anything and no ghost changed.
 * Barrier-wait cycles (from a board's own finish to the end of the
 * exchange) are attributed to that board's BoardLink stall channel.
 */
std::uint32_t
runBsp(Fleet& f)
{
    Engine& eng = *f.engine;
    const std::uint32_t n = f.n();
    std::uint32_t superstep = 0;
    bool cont = true;

    while (cont && superstep < f.spec->max_iterations) {
        for (std::uint32_t b = 0; b < n; ++b)
            if (f.board(b))
                f.board(b)->startIteration();

        // Run all boards to completion, recording each board's own
        // finish cycle for barrier-wait attribution.
        std::vector<bool> done(n);
        std::vector<Cycle> finish(n, 0);
        std::uint32_t remaining = 0;
        for (std::uint32_t b = 0; b < n; ++b) {
            done[b] = f.board(b) == nullptr;
            if (!done[b])
                ++remaining;
        }
        while (remaining > 0) {
            const bool ok = eng.runUntil(
                [&] {
                    for (std::uint32_t b = 0; b < n; ++b)
                        if (!done[b] && f.board(b)->iterationDone())
                            return true;
                    return false;
                },
                f.cfg->max_cycles, Engine::Poll::OnEvents);
            if (!ok)
                fatal("cluster superstep exceeded the cycle budget; "
                      "deadlock or undersized budget");
            for (std::uint32_t b = 0; b < n; ++b) {
                if (done[b] || !f.board(b)->iterationDone())
                    continue;
                done[b] = true;
                finish[b] = eng.now();
                --remaining;
            }
        }

        bool any_update = false;
        for (std::uint32_t b = 0; b < n; ++b)
            if (f.board(b))
                any_update |= f.board(b)->finishIteration();

        // Exchange: every exporting pair sends — a marker when nothing
        // changed, so barrier synchronization traffic is paid for.
        for (std::uint32_t b = 0; b < n; ++b) {
            if (!f.board(b))
                continue;
            f.board(b)->beginPhase("exchange" +
                                   std::to_string(superstep));
            for (std::uint32_t p : f.send_peers[b])
                f.link->send(b, p, f.board(b)->collectExports(p),
                             superstep);
        }
        if (!f.link->idle()) {
            const bool ok =
                eng.runUntil([&] { return f.link->idle(); },
                             f.cfg->max_cycles, Engine::Poll::OnEvents);
            if (!ok)
                fatal("cluster exchange exceeded the cycle budget");
        }

        const Cycle barrier_end = eng.now();
        bool ghost_changed = false;
        for (std::uint32_t b = 0; b < n; ++b) {
            if (!f.board(b))
                continue;
            f.board(b)->addLinkWait(barrier_end - finish[b]);
            for (LinkPacket& pkt : f.link->drain(b))
                ghost_changed |=
                    f.board(b)->applyGhostUpdates(pkt.updates) > 0;
            // Node arrays changed (swap, in-place updates, ghosts):
            // cached source values are stale.
            f.board(b)->invalidateCaches();
        }

        ++superstep;
        cont = any_update || ghost_changed;
    }
    return superstep;
}

/**
 * Asynchronous coordination (Swift style): each board iterates at its
 * own pace and applies arrived ghost updates at its own iteration
 * boundaries. Min-propagation kernels apply remote values immediately
 * (monotone, always safe) and park when locally converged until new
 * ghost values arrive. Synchronous kernels (PageRank) gate iteration k
 * on having applied every import peer's superstep k-1 batch — the
 * per-pair FIFO link plus the last_in_batch flag make that observable
 * — so the data dependencies match BSP while the boards themselves
 * free-run.
 */
std::uint32_t
runAsync(Fleet& f)
{
    Engine& eng = *f.engine;
    const std::uint32_t n = f.n();
    const bool gated = f.spec->synchronous;

    std::vector<std::uint32_t> ss(n, 0);   //!< next iteration index
    std::vector<bool> armed(n, false), parked(n, false),
        finished(n, false);
    std::vector<Cycle> wait_since(n, 0);
    std::vector<std::deque<LinkPacket>> pending(n);
    /** applied[b][p]: supersteps of peer p fully applied on b. */
    std::vector<std::vector<std::uint32_t>> applied(
        n, std::vector<std::uint32_t>(n, 0));

    for (std::uint32_t b = 0; b < n; ++b)
        finished[b] = f.board(b) == nullptr;

    auto applyPending = [&](std::uint32_t b) {
        std::uint32_t changed = 0;
        auto& q = pending[b];
        for (auto it = q.begin(); it != q.end();) {
            // Gated kernels hold back batches from supersteps the
            // board has not reached yet (a fast peer may run ahead).
            if (gated && it->superstep >= ss[b]) {
                ++it;
                continue;
            }
            changed += f.board(b)->applyGhostUpdates(it->updates);
            if (it->last_in_batch)
                applied[b][it->src] = std::max(
                    applied[b][it->src], it->superstep + 1);
            it = q.erase(it);
        }
        if (changed > 0) {
            f.board(b)->invalidateCaches();
            if (parked[b])
                parked[b] = false;
        }
        return changed;
    };

    auto canStart = [&](std::uint32_t b) {
        if (!gated)
            return true;
        for (std::uint32_t p : f.cp->importPeers(b))
            if (applied[b][p] < ss[b])
                return false;
        return true;
    };

    while (true) {
        // Service arrivals, apply what this board may see, arm.
        for (std::uint32_t b = 0; b < n; ++b) {
            if (!f.board(b))
                continue;
            for (LinkPacket& pkt : f.link->drain(b))
                pending[b].push_back(std::move(pkt));
            if (!armed[b])
                applyPending(b);
        }
        for (std::uint32_t b = 0; b < n; ++b) {
            if (!f.board(b) || armed[b] || finished[b] || parked[b] ||
                !canStart(b))
                continue;
            f.board(b)->addLinkWait(eng.now() - wait_since[b]);
            f.board(b)->startIteration();
            armed[b] = true;
        }

        // Termination: nothing armed, nothing in flight, nothing
        // pending. All survivors must be parked (local convergence) or
        // finished; anything else would be a coordination deadlock.
        bool any_armed = false, any_pending = false;
        for (std::uint32_t b = 0; b < n; ++b) {
            any_armed |= armed[b];
            any_pending |= !pending[b].empty();
        }
        if (!any_armed && !any_pending && f.link->idle()) {
            for (std::uint32_t b = 0; b < n; ++b)
                if (f.board(b) && !finished[b] && !parked[b])
                    fatal("async cluster deadlock: board " +
                          std::to_string(b) +
                          " neither finished nor parked");
            break;
        }
        if (!any_armed && any_pending && f.link->idle()) {
            // Nothing runs and nothing is in flight, yet batches are
            // pending. Batches addressed to finished boards are stale
            // by definition — drop them and re-evaluate; anything else
            // would be unapplicable gated hold-backs, a coordination
            // deadlock.
            bool dropped = false;
            for (std::uint32_t b = 0; b < n; ++b) {
                if (finished[b] && !pending[b].empty()) {
                    pending[b].clear();
                    dropped = true;
                }
            }
            if (dropped)
                continue;
            fatal("async cluster deadlock: pending ghost batches can "
                  "never be applied");
        }

        // Advance until some armed board completes, a waiting board
        // receives link data, or — with nothing armed — the link goes
        // idle (in-flight traffic addressed only to finished boards
        // would otherwise satisfy no clause and burn the budget).
        const bool ok = eng.runUntil(
            [&, any_armed] {
                for (std::uint32_t b = 0; b < n; ++b) {
                    if (armed[b] && f.board(b)->iterationDone())
                        return true;
                    if (!armed[b] && f.board(b) != nullptr &&
                        !finished[b] && f.link->hasInbox(b))
                        return true;
                }
                return !any_armed && f.link->idle();
            },
            f.cfg->max_cycles, Engine::Poll::OnEvents);
        if (!ok)
            fatal("async cluster exceeded the cycle budget; deadlock "
                  "or undersized budget");

        // Service completions.
        for (std::uint32_t b = 0; b < n; ++b) {
            if (!armed[b] || !f.board(b)->iterationDone())
                continue;
            armed[b] = false;
            const bool any = f.board(b)->finishIteration();
            for (std::uint32_t p : f.send_peers[b]) {
                auto ups = f.board(b)->collectExports(p);
                // Gated peers need the batch marker even when empty;
                // min kernels skip silent supersteps entirely.
                if (gated || !ups.empty())
                    f.link->send(b, p, std::move(ups), ss[b]);
            }
            f.board(b)->invalidateCaches();
            ++ss[b];
            if (ss[b] >= f.spec->max_iterations) {
                finished[b] = true;
                continue;
            }
            if (gated) {
                wait_since[b] = eng.now();
            } else {
                // Local convergence: park until a ghost changes
                // (applyPending un-parks). A changed ghost may already
                // be pending — the next loop head applies it.
                parked[b] = !any;
                wait_since[b] = eng.now();
            }
        }
    }

    std::uint32_t max_ss = 0;
    for (std::uint32_t b = 0; b < n; ++b)
        max_ss = std::max(max_ss, ss[b]);
    return max_ss;
}

} // namespace

ClusterRunResult
runCluster(const AccelConfig& cfg, const CooGraph& g,
           const PartitionedGraph& global_pg, const AlgoSpec& spec)
{
    const ClusterConfig& cc = cfg.cluster;
    if (!cc.enabled())
        fatal("runCluster: cfg.cluster.boards must be >= 2");
    if (cfg.nd != global_pg.nd() || cfg.ns != global_pg.ns())
        fatal("runCluster: cfg geometry does not match the partition");

    // Functional plane: the canonical values, independent of board
    // count, coordination mode and tick threads.
    const ReferenceResult ref = runReference(global_pg, spec);

    ClusterPartition cp(g, cfg.nd, cc);

    Engine engine;
    if (cfg.full_tick_engine)
        engine.setFullTick(true);
    engine.setTickThreads(cfg.tick_threads);

    BoardLink link(engine, cc, cc.boards);

    std::vector<std::unique_ptr<Board>> boards(cc.boards);
    for (std::uint32_t b = 0; b < cc.boards; ++b) {
        if (cp.shard(b).empty())
            continue;  // a tiny graph can leave late boards empty
        boards[b] = std::make_unique<Board>(engine, cfg, spec, cp, b);
        boards[b]->registerLinkStall(link.creditStallCounter(b));
    }

    Fleet fleet;
    fleet.cfg = &cfg;
    fleet.spec = &spec;
    fleet.cp = &cp;
    fleet.engine = &engine;
    fleet.link = &link;
    fleet.boards = &boards;
    fleet.send_peers.resize(cc.boards);
    for (std::uint32_t b = 0; b < cc.boards; ++b) {
        if (!boards[b])
            continue;
        for (std::uint32_t p = 0; p < cc.boards; ++p)
            if (p != b && boards[p] && !cp.exportsTo(b, p).empty())
                fleet.send_peers[b].push_back(p);
    }

    const std::uint32_t supersteps =
        cc.mode == ClusterConfig::Mode::Bsp ? runBsp(fleet)
                                            : runAsync(fleet);

    // Drain all queues (stale timing tokens), as Accelerator::run does.
    for (std::uint32_t b = 0; b < cc.boards; ++b)
        if (boards[b])
            boards[b]->beginPhase("drain");
    engine.runUntil(
        [&] {
            for (std::uint32_t b = 0; b < cc.boards; ++b)
                if (boards[b] && !boards[b]->idle())
                    return false;
            return link.idle();
        },
        100000, Engine::Poll::OnEvents);

    // Timed-plane values, verified against the functional plane.
    std::vector<std::uint32_t> timed(cp.numNodes(), 0);
    for (std::uint32_t b = 0; b < cc.boards; ++b)
        if (boards[b])
            boards[b]->readOwnedValues(timed);

    // A min-propagation run stopped by the iteration cap before global
    // convergence has no unique fixpoint to verify against: how far
    // each wavefront got in k iterations depends on the coordination
    // schedule (async boards free-run; BSP skips silent boards). The
    // canonical raw_values stay the functional plane's either way; the
    // report just records that the timed plane was still mid-flight.
    const bool truncated = spec.algo != Algorithm::PageRank &&
                           ref.iterations >= spec.max_iterations;
    bool timed_matches = true;
    double max_rel = 0.0;
    for (NodeId n = 0; n < cp.numNodes(); ++n) {
        if (timed[n] == ref.raw_values[n])
            continue;
        if (spec.algo != Algorithm::PageRank) {
            if (truncated) {
                timed_matches = false;
                continue;
            }
            fatal("cluster verification: timed value of node " +
                  std::to_string(n) +
                  " diverges from the functional plane (integer "
                  "kernels have a unique fixpoint)");
        }
        const double want = asFloatBits(ref.raw_values[n]);
        const double got = asFloatBits(timed[n]);
        const double denom = std::max(std::abs(want), 1e-12);
        max_rel = std::max(max_rel, std::abs(got - want) / denom);
    }
    // Empirical bound on f32 arrival-order drift: a degenerate hub
    // graph funnels thousands of same-magnitude adds into one
    // accumulator, and the packed edge encoding shifts DMA timing (and
    // with it the gather order) relative to the plain stream — both
    // together reach ~1e-3. Anything past 5e-3 is a real bug, not
    // reassociation noise.
    if (max_rel > 5e-3)
        fatal("cluster verification: timed PageRank deviates " +
              std::to_string(max_rel) +
              " rel from the functional plane (tolerance 5e-3)");

    // Assemble the result. The user-facing raw_values are the
    // functional plane (see cluster_engine.hh).
    ClusterRunResult out;
    out.engine = engine.stats();
    out.full_tick = engine.fullTick();
    RunResult& run = out.run;
    run.cycles = engine.now();
    run.iterations = ref.iterations;
    run.raw_values = ref.raw_values;

    ClusterReport& rep = out.report;
    rep.config = cc;
    rep.supersteps = supersteps;
    rep.cut_edges = cp.totalCutEdges();
    rep.ghost_count = cp.totalGhosts();
    rep.edge_balance = cp.edgeBalance();
    rep.link_wire_bytes = link.totalWireBytes();
    rep.link_packets = link.totalPackets();
    rep.link_updates = link.totalUpdates();
    rep.timed_matches_reference = timed_matches;
    rep.max_rel_error = max_rel;

    std::uint64_t moms_requests = 0, moms_hits = 0;
    for (std::uint32_t b = 0; b < cc.boards; ++b) {
        if (!boards[b])
            continue;
        Board& board = *boards[b];
        const BoardShard& shard = cp.shard(b);
        const BoardLink::BoardStats& ls = link.boardStats(b);

        ClusterBoardReport br;
        br.board = b;
        br.owned_nodes = shard.num_owned;
        br.ghost_nodes = shard.num_ghosts;
        br.local_edges = shard.local_edges;
        br.cut_edges = shard.cut_edges;
        br.iterations = board.iterations();
        br.edges_processed = board.edgesProcessed();
        br.dram_bytes_read = board.mem().totalBytesRead();
        br.dram_bytes_written = board.mem().totalBytesWritten();
        br.moms_hit_rate = board.moms().hitRate();
        br.link_wait_cycles = board.linkWaitCycles();
        br.credit_stall_cycles = ls.credit_stall_cycles;
        br.packets_sent = ls.packets_sent;
        br.marker_packets = ls.marker_packets;
        br.updates_sent = ls.updates_sent;
        br.wire_bytes = ls.payload_bytes + ls.header_bytes;
        br.telemetry = board.finalizeTelemetry();

        run.iterations = std::max(run.iterations, board.iterations());
        run.edges_processed += br.edges_processed;
        run.dram_bytes_read += br.dram_bytes_read;
        run.dram_bytes_written += br.dram_bytes_written;
        run.moms_requests += board.moms().totalRequests();
        run.moms_secondary_misses +=
            board.moms().totalSecondaryMisses();
        run.moms_lines_from_mem += board.moms().totalLinesFromMem();
        run.pe_raw_stalls += board.peRawStalls();
        moms_requests += board.moms().totalRequests();
        moms_hits += board.moms().totalHits();

        rep.boards.push_back(std::move(br));
    }
    run.moms_hit_rate =
        moms_requests == 0
            ? 0.0
            : static_cast<double>(moms_hits) /
                  static_cast<double>(moms_requests);
    return out;
}

} // namespace gmoms
