/**
 * @file
 * One simulated FPGA board of the cluster: a full copy of the
 * single-board micro-architecture — its own DRAM channels, MOMS
 * hierarchy, PEs, graph image and telemetry sampler — registered on the
 * cluster's shared engine under the name prefix "b<i>." and ticking in
 * its own per-board hazard-free groups (tick_group::boardDram /
 * boardCacheBank).
 *
 * A Board does not own the iteration loop the way Accelerator::run()
 * does; it exposes the loop's steps (startIteration / iterationDone /
 * finishIteration) plus the ghost-exchange half (collectExports /
 * applyGhostUpdates) so the ClusterEngine driver can interleave boards
 * under either coordination mode. All stepping methods mutate state
 * only between Engine::runUntil segments.
 *
 * Differences from the single-board Accelerator, by design:
 *  - the Scheduler is limited to the shard's owned destination
 *    intervals, so ghost slots (sources only) are never initialized or
 *    written back;
 *  - layout init/const callbacks translate board-local ids to global
 *    ids before asking the (global) AlgoSpec, so BFS/SSSP sources and
 *    PageRank out-degrees land on the right nodes;
 *  - no per-board CheckHarness: its watchdog would false-trigger on
 *    barrier/ghost waits, and the cluster's functional-plane
 *    verification (docs/MODEL.md) is the stronger end-to-end check.
 */

#ifndef GMOMS_CLUSTER_BOARD_HH
#define GMOMS_CLUSTER_BOARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/accel/accel_config.hh"
#include "src/accel/pe.hh"
#include "src/accel/scheduler.hh"
#include "src/algo/spec.hh"
#include "src/cache/moms_system.hh"
#include "src/cluster/board_link.hh"
#include "src/cluster/partitioner.hh"
#include "src/graph/layout.hh"
#include "src/graph/partition.hh"
#include "src/mem/memory_system.hh"
#include "src/obs/telemetry.hh"
#include "src/sim/engine.hh"

namespace gmoms
{

class Board
{
  public:
    /**
     * Assemble board @p b of @p cp on the shared @p engine. @p cfg is
     * the per-board micro-architecture (every board replicates it);
     * @p spec is the GLOBAL algorithm spec — id-dependent pieces are
     * wrapped with local-to-global translation internally.
     */
    Board(Engine& engine, const AccelConfig& cfg, const AlgoSpec& spec,
          const ClusterPartition& cp, std::uint32_t b);
    ~Board();

    std::uint32_t index() const { return board_; }
    const BoardShard& shard() const { return *shard_; }

    // -- iteration stepping (driver-side, between runUntil segments) ----
    void startIteration();
    bool iterationDone() const { return sched_->iterationDone(); }

    /** Close the iteration: recompute active flags from the updated
     *  intervals and swap the arrays when synchronous. Does NOT
     *  invalidate caches — the driver does that once ghost updates are
     *  in. @return true when any owned interval updated. */
    bool finishIteration();

    /**
     * Values of the nodes exported to peer @p p that changed since the
     * last collect (post-swap V_in reads, so superstep-k results).
     * Delta encoding is sound because applyGhostUpdates keeps both
     * arrays of a synchronous peer current.
     */
    std::vector<GhostUpdate> collectExports(std::uint32_t p);

    /**
     * Write received ghost values into this board's ghost slots (both
     * arrays when synchronous) and re-activate the source intervals of
     * the ghosts that changed. @return number of changed ghosts.
     */
    std::uint32_t applyGhostUpdates(const std::vector<GhostUpdate>& ups);

    void invalidateCaches() { moms_->invalidateCaches(); }

    /** Memory paths fully drained (between iterations / at the end). */
    bool idle() const { return mem_->idle() && moms_->idle(); }

    /** Scatter this board's owned timed values into @p global (indexed
     *  by global node id). */
    void readOwnedValues(std::vector<std::uint32_t>& global) const;

    // -- attribution ----------------------------------------------------
    /** Cycles spent waiting at barriers / for ghost data (driver-
     *  accounted, attributed as the board-link stall cause). */
    void addLinkWait(Cycle cycles) { link_wait_cycles_ += cycles; }
    std::uint64_t linkWaitCycles() const { return link_wait_cycles_; }

    /** Attach the link's per-board credit-stall counter to this
     *  board's telemetry (stall group "link"). */
    void registerLinkStall(const std::uint64_t* counter);

    // -- stats ----------------------------------------------------------
    std::uint32_t iterations() const { return iterations_; }
    EdgeId edgesProcessed() const;
    std::uint64_t peRawStalls() const;
    const MemorySystem& mem() const { return *mem_; }
    const MomsSystem& moms() const { return *moms_; }
    std::shared_ptr<const TelemetrySummary> finalizeTelemetry();
    void beginPhase(const std::string& name);

  private:
    std::uint32_t numJobs() const
    {
        return static_cast<std::uint32_t>(shard_->intervals.size());
    }

    AccelConfig cfg_;
    AlgoSpec spec_;
    const ClusterPartition* cp_;
    const BoardShard* shard_;
    std::uint32_t board_ = 0;
    std::uint32_t iterations_ = 0;
    std::uint64_t link_wait_cycles_ = 0;

    PartitionedGraph pg_;  //!< local shard partition (owned + ghosts)
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<MomsSystem> moms_;
    std::unique_ptr<GraphLayout> layout_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<std::unique_ptr<Pe>> pes_;

    /** Last value sent per export slot, per peer: delta detection.
     *  Indexed like cp_->exportsTo(board_, p). */
    std::vector<std::vector<std::uint32_t>> last_sent_;

    /** Last member: destroyed first (references component counters). */
    std::unique_ptr<Telemetry> tele_;
};

} // namespace gmoms

#endif // GMOMS_CLUSTER_BOARD_HH
