#include "src/cluster/board.hh"

#include "src/sim/log.hh"

namespace gmoms
{

Board::Board(Engine& engine, const AccelConfig& cfg, const AlgoSpec& spec,
             const ClusterPartition& cp, std::uint32_t b)
    : cfg_(cfg), spec_(spec), cp_(&cp), shard_(&cp.shard(b)), board_(b),
      pg_(shard_->local, cfg.nd, cfg.ns)
{
    if (shard_->empty())
        fatal("Board: shard " + std::to_string(b) +
              " owns no nodes (skip empty shards in the driver)");
    if (cfg_.nd != cp.nd())
        fatal("Board: config nd does not match the cluster partition");
    if (spec_.weighted != pg_.weighted())
        fatal("algorithm/graph weighted mismatch");

    const std::string prefix = "b" + std::to_string(b) + ".";

    const std::uint32_t dma_ports = cfg_.num_pes;
    const std::uint32_t moms_ports =
        cfg_.moms.memPortsNeeded(cfg_.num_pes);
    mem_ = std::make_unique<MemorySystem>(
        engine, cfg_.mem, dma_ports + moms_ports, prefix,
        tick_group::boardDram(b));

    // The DRAM image holds board-LOCAL node ids; the id-dependent spec
    // callbacks (BFS/SSSP source, PageRank out-degrees) are answered in
    // global id space. Padding slots get inert values.
    GraphLayout::Options opts;
    opts.has_const = spec_.has_const;
    opts.synchronous = spec_.synchronous;
    opts.packed = cfg_.packed_edges;
    opts.init_value = [this](NodeId local) {
        const NodeId g = shard_->to_global[local];
        return g == kNoGlobalId ? 0u : spec_.initialValue(g);
    };
    if (spec_.has_const)
        opts.const_value = [this](NodeId local) {
            const NodeId g = shard_->to_global[local];
            return g == kNoGlobalId ? 0u : spec_.constValue(g);
        };
    layout_ = std::make_unique<GraphLayout>(pg_, opts);
    layout_->build(pg_, mem_->store());

    moms_ = std::make_unique<MomsSystem>(engine, *mem_, dma_ports,
                                         cfg_.num_pes, cfg_.moms, prefix,
                                         tick_group::boardCacheBank(b));
    sched_ = std::make_unique<Scheduler>(pg_, *layout_, numJobs());

    for (std::uint32_t p = 0; p < cfg_.num_pes; ++p) {
        pes_.push_back(std::make_unique<Pe>(
            engine, prefix + "pe" + std::to_string(p), p, cfg_, spec_,
            *sched_, mem_->port(p), moms_->pePort(p), mem_->store()));
        engine.add(pes_.back().get());
    }

    if (cfg_.telemetry.enabled) {
        TelemetryConfig tcfg = cfg_.telemetry;
        tcfg.label = "b" + std::to_string(b) + ":" +
                     (tcfg.label.empty() ? cfg_.label() : tcfg.label);
        tele_ = std::make_unique<Telemetry>(engine, tcfg);
        moms_->registerTelemetry(*tele_);
        for (auto& pe : pes_)
            pe->registerTelemetry(*tele_);
        for (std::uint32_t c = 0; c < cfg_.mem.channels; ++c)
            mem_->channel(c).registerTelemetry(*tele_);
        tele_->addStall("link", StallCause::BoardLink,
                        &link_wait_cycles_);
    }

    // Seed delta detection with the initial values: peers initialize
    // their ghost slots from the same spec.initialValue(global), so an
    // unchanged export never needs to travel.
    const std::uint32_t boards = cp.boards();
    last_sent_.resize(boards);
    for (std::uint32_t p = 0; p < boards; ++p) {
        const auto& exp = cp.exportsTo(board_, p);
        last_sent_[p].reserve(exp.size());
        for (NodeId g : exp)
            last_sent_[p].push_back(spec_.initialValue(g));
    }
}

Board::~Board() = default;

void
Board::startIteration()
{
    if (tele_)
        tele_->beginPhase("iter" + std::to_string(iterations_));
    sched_->startIteration();
}

bool
Board::finishIteration()
{
    // Per-board mirror of Accelerator::updateActiveFlags, restricted to
    // the owned destination intervals (the only ones with jobs/edges).
    std::vector<bool> active(pg_.qs(), false);
    const auto& updated = sched_->updatedFlags();
    bool any = false;
    for (std::uint32_t d = 0; d < numJobs(); ++d) {
        if (!updated[d])
            continue;
        any = true;
        const NodeId base = pg_.dstIntervalBase(d);
        const NodeId last = base + pg_.dstIntervalNodes(d) - 1;
        for (std::uint32_t s = base / pg_.ns(); s <= last / pg_.ns();
             ++s)
            active[s] = true;
    }
    for (std::uint32_t s = 0; s < pg_.qs(); ++s)
        for (std::uint32_t d = 0; d < numJobs(); ++d)
            layout_->setActive(mem_->store(), s, d, active[s]);
    if (spec_.synchronous)
        layout_->swapInOut();
    ++iterations_;
    return any;
}

std::vector<GhostUpdate>
Board::collectExports(std::uint32_t p)
{
    const auto& exp = cp_->exportsTo(board_, p);
    std::vector<GhostUpdate> out;
    auto& last = last_sent_[p];
    for (std::size_t k = 0; k < exp.size(); ++k) {
        const NodeId local = cp_->localId(board_, exp[k]);
        const std::uint32_t v =
            mem_->store().read32(layout_->vInAddr(local));
        if (v == last[k])
            continue;
        last[k] = v;
        out.push_back(GhostUpdate{exp[k], v});
    }
    return out;
}

std::uint32_t
Board::applyGhostUpdates(const std::vector<GhostUpdate>& ups)
{
    std::uint32_t changed = 0;
    std::vector<bool> srcs_hit(pg_.qs(), false);
    BackingStore& store = mem_->store();
    for (const GhostUpdate& u : ups) {
        const NodeId local = cp_->localId(board_, u.node);
        if (local == kNoLocalId || local < shard_->ghost_base)
            panic("applyGhostUpdates: update for a non-ghost node");
        if (store.read32(layout_->vInAddr(local)) == u.value)
            continue;
        store.write32(layout_->vInAddr(local), u.value);
        // Keep the other array current too: jobs never write ghost
        // slots, so after the next swap the value must still be there.
        if (spec_.synchronous)
            store.write32(layout_->vOutAddr(local), u.value);
        ++changed;
        srcs_hit[pg_.srcIntervalOf(local)] = true;
    }
    for (std::uint32_t s = 0; s < pg_.qs(); ++s) {
        if (!srcs_hit[s])
            continue;
        // A changed ghost re-activates its source interval's shards.
        for (std::uint32_t d = 0; d < numJobs(); ++d)
            layout_->setActive(store, s, d, true);
    }
    return changed;
}

void
Board::readOwnedValues(std::vector<std::uint32_t>& global) const
{
    const BackingStore& store = mem_->store();
    for (NodeId local = 0; local < shard_->num_owned; ++local)
        global[shard_->to_global[local]] =
            store.read32(layout_->vInAddr(local));
}

void
Board::registerLinkStall(const std::uint64_t* counter)
{
    if (tele_)
        tele_->addStall("link", StallCause::BoardLink, counter);
}

EdgeId
Board::edgesProcessed() const
{
    EdgeId total = 0;
    for (const auto& pe : pes_)
        total += pe->stats().edges_processed;
    return total;
}

std::uint64_t
Board::peRawStalls() const
{
    std::uint64_t total = 0;
    for (const auto& pe : pes_)
        total += pe->stats().raw_stalls;
    return total;
}

std::shared_ptr<const TelemetrySummary>
Board::finalizeTelemetry()
{
    if (!tele_)
        return nullptr;
    return tele_->finalize();
}

void
Board::beginPhase(const std::string& name)
{
    if (tele_)
        tele_->beginPhase(name);
}

} // namespace gmoms
