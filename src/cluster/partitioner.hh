/**
 * @file
 * Edge-cut partitioning of one (relabeled) graph across cluster boards.
 *
 * The unit of ownership is the destination interval (nd nodes), so the
 * per-board shard keeps the exact interval geometry of the single-board
 * partition: an owned global interval maps wholesale onto one local
 * interval, preserving in-interval offsets, use_local_src locality and
 * the per-destination edge order. Edges are assigned to the owner of
 * their destination (edge-cut); sources owned elsewhere become *ghost*
 * vertices, appended after the owned nodes in the board-local id space
 * and refreshed over the inter-board link.
 *
 * Local id space of board b:
 *   [0, num_owned)              owned nodes, ascending global order
 *   [num_owned, ghost_base)     padding (only when the board owns the
 *                               globally-last, short interval AND has
 *                               ghosts: ghosts must start on an nd
 *                               boundary so no destination interval
 *                               ever mixes owned and ghost slots — a
 *                               writeback job covers its whole
 *                               interval and must never clobber a
 *                               ghost value)
 *   [ghost_base, ghost_base+G)  ghosts, ascending global order
 *
 * Only the globally-last destination interval may be short, and it is
 * always the locally-last owned interval of its board, so every owned
 * interval lands nd-aligned in local space. Padding slots have no
 * global id (to_global holds kNoGlobalId), carry no edges, and are
 * never exported; the harmless apply(init(...)) they receive at
 * writeback touches nothing anyone reads.
 */

#ifndef GMOMS_CLUSTER_PARTITIONER_HH
#define GMOMS_CLUSTER_PARTITIONER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/cluster_config.hh"
#include "src/graph/coo.hh"

namespace gmoms
{

inline constexpr NodeId kNoLocalId = 0xffffffffu;
inline constexpr NodeId kNoGlobalId = 0xffffffffu;  //!< padding slot

/** One board's slice of the graph plus its id maps. */
struct BoardShard
{
    std::uint32_t board = 0;

    /** Global destination-interval ids owned by this board
     *  (ascending; the k-th entry occupies local interval k). */
    std::vector<std::uint32_t> intervals;

    NodeId num_owned = 0;   //!< owned nodes (local ids [0, num_owned))
    NodeId num_ghosts = 0;  //!< ghost nodes appended after the owned
    /** First ghost local id; == num_owned rounded up to the interval
     *  size when ghosts exist (see the file header on padding). */
    NodeId ghost_base = 0;

    /** Board-local graph: every global edge whose destination is owned
     *  here, in global edge order, with endpoints translated to local
     *  ids. Weights are carried through. */
    CooGraph local;

    /** local id -> global id, size ghost_base + num_ghosts; padding
     *  slots hold kNoGlobalId. */
    std::vector<NodeId> to_global;

    EdgeId local_edges = 0;  //!< edges assigned to this board
    EdgeId cut_edges = 0;    //!< of those, edges with a ghost source

    bool empty() const { return num_owned == 0; }
};

/**
 * The full cluster partition: per-board shards, ownership and id
 * translation, and the export lists the link layer sends along.
 */
class ClusterPartition
{
  public:
    /**
     * Partition @p g (already relabeled/weighted as the session's view)
     * into @p cc.boards shards of destination intervals of size @p nd.
     * Deterministic: same inputs, same partition.
     */
    ClusterPartition(const CooGraph& g, std::uint32_t nd,
                     const ClusterConfig& cc);

    std::uint32_t boards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    std::uint32_t nd() const { return nd_; }
    NodeId numNodes() const { return num_nodes_; }

    const BoardShard& shard(std::uint32_t b) const { return shards_[b]; }

    /** Board owning global destination interval @p j. */
    std::uint32_t ownerOfInterval(std::uint32_t j) const
    {
        return interval_owner_[j];
    }

    /** Board owning global node @p n. */
    std::uint32_t ownerOfNode(NodeId n) const
    {
        return interval_owner_[n / nd_];
    }

    /** Global id of board-local node @p local on board @p b. */
    NodeId globalId(std::uint32_t b, NodeId local) const;

    /**
     * Board-local id of global node @p n on board @p b: its owned slot
     * when b owns it, its ghost slot when b ghosts it, kNoLocalId
     * otherwise.
     */
    NodeId localId(std::uint32_t b, NodeId n) const;

    /** Global ids owned by @p b whose values board @p p ghosts (the
     *  link's per-direction update lists; ascending global order). */
    const std::vector<NodeId>& exportsTo(std::uint32_t b,
                                         std::uint32_t p) const
    {
        return exports_[b * boards() + p];
    }

    /** Boards this board imports ghost values from. */
    const std::vector<std::uint32_t>& importPeers(std::uint32_t b) const
    {
        return import_peers_[b];
    }

    // -- aggregate stats ------------------------------------------------
    EdgeId totalCutEdges() const { return total_cut_edges_; }
    NodeId totalGhosts() const { return total_ghosts_; }
    /** max over boards of local_edges / (total/boards): 1.0 = perfect. */
    double edgeBalance() const;

  private:
    std::uint32_t nd_ = 0;
    NodeId num_nodes_ = 0;
    std::vector<std::uint32_t> interval_owner_;  //!< size qd
    /** Local base node id of each global interval on its owner. */
    std::vector<NodeId> interval_local_base_;    //!< size qd
    std::vector<BoardShard> shards_;
    /** exports_[b * boards + p]: owned-by-b global ids ghosted on p. */
    std::vector<std::vector<NodeId>> exports_;
    std::vector<std::vector<std::uint32_t>> import_peers_;
    EdgeId total_cut_edges_ = 0;
    NodeId total_ghosts_ = 0;
};

} // namespace gmoms

#endif // GMOMS_CLUSTER_PARTITIONER_HH
