#include "src/cluster/board_link.hh"

#include <algorithm>

#include "src/sim/log.hh"

namespace gmoms
{

BoardLink::BoardLink(Engine& engine, const ClusterConfig& cfg,
                     std::uint32_t boards)
    : Component("link"), cfg_(cfg), boards_(boards)
{
    if (boards_ < 2)
        fatal("BoardLink needs at least two boards");
    if (cfg_.link_bytes_per_cycle == 0 || cfg_.link_credits == 0 ||
        cfg_.link_max_packet_bytes < ClusterConfig::kUpdateBytes)
        fatal("BoardLink: degenerate link parameters (validate the "
              "AccelConfig first)");
    egress_.resize(boards_);
    ser_remaining_.assign(boards_, 0);
    ser_packet_.resize(boards_);
    credits_.assign(static_cast<std::size_t>(boards_) * boards_,
                    cfg_.link_credits);
    inbox_.resize(boards_);
    stats_.resize(boards_);
    engine.add(this);
}

void
BoardLink::send(std::uint32_t src, std::uint32_t dst,
                std::vector<GhostUpdate> updates, std::uint32_t superstep)
{
    if (src >= boards_ || dst >= boards_ || src == dst)
        panic("BoardLink::send: bad board pair");

    const std::uint32_t per_packet =
        std::max<std::uint32_t>(1, cfg_.link_max_packet_bytes /
                                       ClusterConfig::kUpdateBytes);
    BoardStats& st = stats_[src];

    auto push = [&](std::vector<GhostUpdate> chunk, bool last) {
        LinkPacket pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.seq = next_seq_++;
        pkt.superstep = superstep;
        pkt.last_in_batch = last;
        pkt.updates = std::move(chunk);
        pkt.wire_bytes =
            ClusterConfig::kPacketHeaderBytes +
            static_cast<std::uint32_t>(pkt.updates.size()) *
                ClusterConfig::kUpdateBytes;
        ++st.packets_sent;
        if (pkt.marker())
            ++st.marker_packets;
        st.updates_sent += pkt.updates.size();
        st.payload_bytes += pkt.wire_bytes -
                            ClusterConfig::kPacketHeaderBytes;
        st.header_bytes += ClusterConfig::kPacketHeaderBytes;
        egress_[src].push_back(std::move(pkt));
    };

    if (updates.empty()) {
        push({}, true);
        return;
    }
    for (std::size_t i = 0; i < updates.size(); i += per_packet) {
        const std::size_t end =
            std::min(updates.size(), i + per_packet);
        push(std::vector<GhostUpdate>(updates.begin() + i,
                                      updates.begin() + end),
             end == updates.size());
    }
}

std::vector<LinkPacket>
BoardLink::drain(std::uint32_t dst)
{
    std::vector<LinkPacket> out;
    out.swap(inbox_[dst]);
    return out;
}

bool
BoardLink::idle() const
{
    for (std::uint32_t b = 0; b < boards_; ++b)
        if (!egress_[b].empty() || ser_remaining_[b] != 0)
            return false;
    return events_.empty();
}

void
BoardLink::schedule(Event ev)
{
    // Events are scheduled with monotonically later-or-equal (at, seq)
    // than anything already queued per class, but credit returns and
    // arrivals interleave; keep the deque sorted with a bounded
    // back-walk (insertion depth is at most the in-flight count).
    auto it = events_.end();
    while (it != events_.begin()) {
        auto prev = std::prev(it);
        if (prev->at < ev.at ||
            (prev->at == ev.at && prev->seq < ev.seq))
            break;
        it = prev;
    }
    events_.insert(it, std::move(ev));
}

void
BoardLink::tick()
{
    const Cycle now = boundEngine()->now();

    // 1. Deliver due arrivals and return due credits, in (at, seq)
    //    order.
    while (!events_.empty() && events_.front().at <= now) {
        Event ev = std::move(events_.front());
        events_.pop_front();
        if (ev.is_credit) {
            ++credits_[ev.pair];
        } else {
            const std::size_t pair = pairOf(ev.packet.src,
                                            ev.packet.dst);
            const std::uint32_t dst = ev.packet.dst;
            inbox_[dst].push_back(std::move(ev.packet));
            // The ack flies back: the credit frees one flight latency
            // after delivery.
            Event credit;
            credit.at = now + cfg_.link_latency;
            credit.seq = next_seq_++;
            credit.is_credit = true;
            credit.pair = pair;
            schedule(std::move(credit));
        }
    }

    // 2. Advance every board's serializer; launch flights on completion.
    for (std::uint32_t b = 0; b < boards_; ++b) {
        if (ser_remaining_[b] == 0)
            continue;
        const std::uint64_t step = cfg_.link_bytes_per_cycle;
        ser_remaining_[b] = ser_remaining_[b] > step
                                ? ser_remaining_[b] - step
                                : 0;
        if (ser_remaining_[b] == 0) {
            Event fly;
            fly.at = now + cfg_.link_latency;
            fly.seq = next_seq_++;
            fly.is_credit = false;
            fly.packet = std::move(ser_packet_[b]);
            schedule(std::move(fly));
        }
    }

    // 3. Start the next packet on idle serializers (credit permitting).
    for (std::uint32_t b = 0; b < boards_; ++b) {
        if (ser_remaining_[b] != 0 || egress_[b].empty())
            continue;
        LinkPacket& head = egress_[b].front();
        std::uint32_t& credit = credits_[pairOf(b, head.dst)];
        if (credit == 0) {
            // Head-of-line blocked on the pair's credit window.
            ++stats_[b].credit_stall_cycles;
            continue;
        }
        --credit;
        ser_remaining_[b] = head.wire_bytes;
        ser_packet_[b] = std::move(head);
        egress_[b].pop_front();
    }
}

Cycle
BoardLink::nextActivity() const
{
    // Serializing or holding queued packets: stay awake (byte counters
    // and credit-stall counters move every cycle).
    for (std::uint32_t b = 0; b < boards_; ++b)
        if (ser_remaining_[b] != 0 || !egress_[b].empty())
            return 0;
    if (!events_.empty())
        return events_.front().at;
    return kCycleNever;
}

std::uint64_t
BoardLink::totalWireBytes() const
{
    std::uint64_t total = 0;
    for (const BoardStats& st : stats_)
        total += st.payload_bytes + st.header_bytes;
    return total;
}

std::uint64_t
BoardLink::totalPackets() const
{
    std::uint64_t total = 0;
    for (const BoardStats& st : stats_)
        total += st.packets_sent;
    return total;
}

std::uint64_t
BoardLink::totalUpdates() const
{
    std::uint64_t total = 0;
    for (const BoardStats& st : stats_)
        total += st.updates_sent;
    return total;
}

} // namespace gmoms
