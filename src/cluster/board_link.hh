/**
 * @file
 * Timed inter-board interconnect for the simulated cluster.
 *
 * The link generalizes the die-crossing machinery (crossing_latency,
 * crossbar credits) to board scope with three explicit costs:
 *
 *  - *Serialization*: each board owns one egress serializer that moves
 *    link_bytes_per_cycle; a packet occupies it for
 *    ceil(bytes / link_bytes_per_cycle) cycles (SerDes bottleneck).
 *  - *Flight latency*: a serialized packet lands in the destination
 *    inbox link_latency cycles later — far above the intra-die
 *    crossing_latency.
 *  - *Credit-based flow control*: each directed board pair has
 *    link_credits outstanding-packet credits; a credit is consumed when
 *    serialization starts and returns one flight latency after
 *    delivery (the ack's return trip). A board whose egress head has
 *    no credit stalls, and those cycles are counted per source board
 *    and attributed to StallCause::BoardLink.
 *
 * Ghost updates destined for the same peer coalesce into packets of up
 * to link_max_packet_bytes payload (burst packing); every packet
 * additionally pays kPacketHeaderBytes on the wire. An empty update
 * list produces one header-only *marker* packet — the BSP driver uses
 * these so barrier traffic is paid for even when nothing changed.
 *
 * The link is a serially-ticked engine Component, so the idle-aware
 * engine can never fast-forward past a delivery: nextActivity() keeps
 * the link awake while serializing or credit-stalled (counters move
 * every cycle) and otherwise sleeps exactly to the next flight or
 * credit-return event. The cluster driver calls send()/drain() only
 * between Engine::runUntil segments (wakeAll re-arms the link), never
 * from inside a tick.
 */

#ifndef GMOMS_CLUSTER_BOARD_LINK_HH
#define GMOMS_CLUSTER_BOARD_LINK_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "src/cluster/cluster_config.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace gmoms
{

/** One ghost-value refresh on the wire (global node id + raw value). */
struct GhostUpdate
{
    NodeId node = 0;
    std::uint32_t value = 0;
};

/** One packet as delivered to a destination inbox. */
struct LinkPacket
{
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;        //!< global send order (deterministic)
    std::uint32_t superstep = 0;  //!< sender's superstep/iteration tag
    /** Last packet of its logical send (coalescing may split one
     *  superstep's updates across packets; per-pair delivery is FIFO,
     *  so this flag marks the superstep's batch complete). */
    bool last_in_batch = true;
    std::uint32_t wire_bytes = 0; //!< header + payload
    std::vector<GhostUpdate> updates;  //!< empty = marker packet

    bool marker() const { return updates.empty(); }
};

class BoardLink : public Component
{
  public:
    /** Per-source-board traffic totals. */
    struct BoardStats
    {
        std::uint64_t packets_sent = 0;
        std::uint64_t marker_packets = 0;
        std::uint64_t updates_sent = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t header_bytes = 0;
        /** Cycles the egress head waited for a pair credit. */
        std::uint64_t credit_stall_cycles = 0;
    };

    BoardLink(Engine& engine, const ClusterConfig& cfg,
              std::uint32_t boards);

    /**
     * Queue @p updates from @p src to @p dst, coalesced into packets of
     * at most link_max_packet_bytes payload. An empty list sends one
     * marker packet. Driver-side API: call only between runUntil
     * segments.
     */
    void send(std::uint32_t src, std::uint32_t dst,
              std::vector<GhostUpdate> updates, std::uint32_t superstep);

    /** Packets delivered to board @p dst, in arrival order; clears the
     *  inbox. */
    std::vector<LinkPacket> drain(std::uint32_t dst);

    bool hasInbox(std::uint32_t dst) const
    {
        return !inbox_[dst].empty();
    }

    /** All egress queues empty, nothing serializing or in flight. */
    bool idle() const;

    void tick() override;
    Cycle nextActivity() const override;

    const BoardStats& boardStats(std::uint32_t b) const
    {
        return stats_[b];
    }

    /** Stable counter address for Telemetry::addStall. */
    const std::uint64_t* creditStallCounter(std::uint32_t b) const
    {
        return &stats_[b].credit_stall_cycles;
    }

    std::uint64_t totalWireBytes() const;
    std::uint64_t totalPackets() const;
    std::uint64_t totalUpdates() const;

  private:
    /** A timed occurrence: packet arrival or credit return. */
    struct Event
    {
        Cycle at = 0;
        std::uint64_t seq = 0;  //!< tiebreak: schedule order
        bool is_credit = false;
        std::size_t pair = 0;   //!< src * boards + dst (credit return)
        LinkPacket packet;      //!< valid when !is_credit
    };

    std::size_t pairOf(std::uint32_t src, std::uint32_t dst) const
    {
        return static_cast<std::size_t>(src) * boards_ + dst;
    }

    /** Insert into events_ keeping (at, seq) order. */
    void schedule(Event ev);

    ClusterConfig cfg_;
    std::uint32_t boards_ = 0;

    /** Per-source egress FIFO of fully-formed packets. */
    std::vector<std::deque<LinkPacket>> egress_;
    /** Serializer state per source: remaining wire bytes of the packet
     *  being pushed out (0 = idle). */
    std::vector<std::uint64_t> ser_remaining_;
    std::vector<LinkPacket> ser_packet_;

    /** Available credits per directed pair. */
    std::vector<std::uint32_t> credits_;

    /** Pending arrivals/credit returns, ascending (at, seq). */
    std::deque<Event> events_;

    std::vector<std::vector<LinkPacket>> inbox_;
    std::vector<BoardStats> stats_;
    std::uint64_t next_seq_ = 0;
};

} // namespace gmoms

#endif // GMOMS_CLUSTER_BOARD_LINK_HH
