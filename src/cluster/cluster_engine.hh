/**
 * @file
 * Multi-board cluster driver: 2-8 Boards and one BoardLink on a single
 * deterministic engine, coordinated in BSP or asynchronous mode.
 *
 * Two-plane execution (the cluster determinism contract, documented in
 * docs/MODEL.md):
 *
 *  - The *functional plane* is the canonical runReference() execution
 *    over the GLOBAL partition. It defines the user-facing raw_values
 *    — board-count-, mode- and thread-count-invariant by construction,
 *    so a job's values_checksum is identical across 1..8 boards, BSP
 *    or async, at any GMOMS_TICK_THREADS.
 *  - The *timed plane* is the per-board micro-architecture simulation,
 *    which yields cycles, GTEPS, traffic and stall attribution. Its
 *    converged values are verified against the functional plane before
 *    results are returned: bit-exact for the integer min-propagation
 *    kernels (unique fixpoint), within a small relative tolerance for
 *    PageRank (f32 gather order is arrival-dependent, exactly as on
 *    the single board). A violation is a fatal simulation bug, never a
 *    silent deviation.
 *
 * The driver only mutates board/link state between Engine::runUntil
 * segments (the same discipline as Accelerator::run): every runUntil
 * entry re-observes mutations via wakeAll.
 */

#ifndef GMOMS_CLUSTER_CLUSTER_ENGINE_HH
#define GMOMS_CLUSTER_CLUSTER_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/accel/accel_config.hh"
#include "src/accel/accelerator.hh"
#include "src/algo/spec.hh"
#include "src/cluster/partitioner.hh"
#include "src/graph/coo.hh"
#include "src/graph/partition.hh"
#include "src/obs/telemetry.hh"

namespace gmoms
{

/** One board's timed-plane outcome. */
struct ClusterBoardReport
{
    std::uint32_t board = 0;
    NodeId owned_nodes = 0;
    NodeId ghost_nodes = 0;
    EdgeId local_edges = 0;
    EdgeId cut_edges = 0;
    std::uint32_t iterations = 0;
    EdgeId edges_processed = 0;
    std::uint64_t dram_bytes_read = 0;
    std::uint64_t dram_bytes_written = 0;
    double moms_hit_rate = 0.0;
    /** Barrier / ghost-data wait cycles (BoardLink stall cause). */
    std::uint64_t link_wait_cycles = 0;
    /** Egress credit-stall cycles (BoardLink stall cause). */
    std::uint64_t credit_stall_cycles = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t marker_packets = 0;
    std::uint64_t updates_sent = 0;
    std::uint64_t wire_bytes = 0;
    std::shared_ptr<const TelemetrySummary> telemetry;
};

/** Cluster-wide timed-plane outcome riding along the RunResult. */
struct ClusterReport
{
    ClusterConfig config;
    /** BSP: superstep barriers executed. Async: max board iteration
     *  count. */
    std::uint32_t supersteps = 0;
    EdgeId cut_edges = 0;
    NodeId ghost_count = 0;
    double edge_balance = 1.0;
    std::uint64_t link_wire_bytes = 0;
    std::uint64_t link_packets = 0;
    std::uint64_t link_updates = 0;
    /** Timed-vs-functional verification outcome. True whenever the run
     *  reached its fixpoint (a violation there is fatal). False only
     *  for runs truncated by spec.max_iterations before convergence:
     *  a truncated min-propagation wavefront is schedule-dependent, so
     *  the timed plane may legitimately sit mid-flight while the
     *  canonical raw_values (functional plane) stay deterministic. */
    bool timed_matches_reference = false;
    /** Max relative deviation of the timed PageRank values (0 for the
     *  bit-exact integer kernels). */
    double max_rel_error = 0.0;
    std::vector<ClusterBoardReport> boards;
};

struct ClusterRunResult
{
    RunResult run;  //!< raw_values = functional plane (canonical)
    ClusterReport report;
    /** Engine activity counters of the shared cluster engine. */
    Engine::Stats engine;
    /** Engine mode actually used (GMOMS_FULL_TICK may force it). */
    bool full_tick = false;
};

/**
 * Run @p spec over @p g on the cluster described by @p cfg.cluster
 * (cfg must be validated, cfg.cluster.enabled(), and cfg.nd/ns must
 * match @p global_pg — the Session guarantees all three).
 * @p global_pg is the single-board partition of @p g, used for the
 * functional plane.
 */
ClusterRunResult runCluster(const AccelConfig& cfg, const CooGraph& g,
                            const PartitionedGraph& global_pg,
                            const AlgoSpec& spec);

} // namespace gmoms

#endif // GMOMS_CLUSTER_CLUSTER_ENGINE_HH
