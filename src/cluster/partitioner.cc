#include "src/cluster/partitioner.hh"

#include <algorithm>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

/** Contiguous interval ranges balanced by in-edge count: walk the
 *  intervals in order and close a board once it holds its fair share
 *  of the remaining edges (classic greedy prefix split — deterministic
 *  and within one interval of optimal for contiguous splits). */
std::vector<std::uint32_t>
blockEdgesOwners(const std::vector<EdgeId>& interval_edges,
                 std::uint32_t boards)
{
    const std::uint32_t q =
        static_cast<std::uint32_t>(interval_edges.size());
    std::vector<std::uint32_t> owner(q, 0);
    EdgeId remaining = 0;
    for (EdgeId e : interval_edges)
        remaining += e;

    std::uint32_t b = 0;
    EdgeId load = 0;
    EdgeId target = (remaining + boards - 1) / boards;
    for (std::uint32_t j = 0; j < q; ++j) {
        // Close early when the remaining intervals are only enough to
        // give each later board one — spread, don't starve.
        if (b + 1 < boards && load > 0 && q - j <= boards - b - 1) {
            ++b;
            load = 0;
            target = (remaining + (boards - b) - 1) / (boards - b);
        }
        owner[j] = b;
        load += interval_edges[j];
        remaining -= interval_edges[j];
        // Close once this board holds its fair share of what was left
        // when it opened (re-derived per board so rounding never
        // strands the tail on the last board).
        if (b + 1 < boards && load >= target && q - j - 1 > 0) {
            ++b;
            load = 0;
            target = (remaining + (boards - b) - 1) / (boards - b);
        }
    }
    return owner;
}

} // namespace

ClusterPartition::ClusterPartition(const CooGraph& g, std::uint32_t nd,
                                   const ClusterConfig& cc)
    : nd_(nd), num_nodes_(g.numNodes())
{
    if (nd_ == 0)
        fatal("ClusterPartition: nd must be > 0");
    if (cc.boards == 0 || cc.boards > ClusterConfig::kMaxBoards)
        fatal("ClusterPartition: boards must be in [1, " +
              std::to_string(ClusterConfig::kMaxBoards) + "]; got " +
              std::to_string(cc.boards));

    const std::uint32_t boards = cc.boards;
    const std::uint32_t qd = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(num_nodes_) + nd_ - 1) / nd_);

    // -- interval ownership ----------------------------------------------
    interval_owner_.assign(qd, 0);
    if (boards > 1 && qd > 0) {
        if (cc.partitioner == ClusterConfig::Partitioner::RoundRobin) {
            for (std::uint32_t j = 0; j < qd; ++j)
                interval_owner_[j] = j % boards;
        } else {
            std::vector<EdgeId> interval_edges(qd, 0);
            for (const Edge& e : g.edges())
                ++interval_edges[e.dst / nd_];
            interval_owner_ = blockEdgesOwners(interval_edges, boards);
        }
    }

    // -- owned node spaces -----------------------------------------------
    shards_.resize(boards);
    interval_local_base_.assign(qd, 0);
    for (std::uint32_t j = 0; j < qd; ++j) {
        const std::uint32_t b = interval_owner_[j];
        BoardShard& s = shards_[b];
        s.board = b;
        // Every interval before the globally-last is full; the last
        // interval sorts last on its board (ascending global order),
        // so owned intervals always land nd-aligned in local space.
        interval_local_base_[j] = s.num_owned;
        s.intervals.push_back(j);
        const NodeId hi =
            std::min<NodeId>(num_nodes_, (j + 1) * nd_);
        s.num_owned += hi - j * nd_;
    }

    // -- ghost discovery (per board, ascending global order) -------------
    std::vector<std::vector<NodeId>> ghosts(boards);
    for (const Edge& e : g.edges()) {
        const std::uint32_t db = interval_owner_[e.dst / nd_];
        if (interval_owner_[e.src / nd_] != db)
            ghosts[db].push_back(e.src);
    }
    for (std::uint32_t b = 0; b < boards; ++b) {
        auto& gh = ghosts[b];
        std::sort(gh.begin(), gh.end());
        gh.erase(std::unique(gh.begin(), gh.end()), gh.end());
        BoardShard& s = shards_[b];
        s.num_ghosts = static_cast<NodeId>(gh.size());
        total_ghosts_ += s.num_ghosts;
        // Ghosts start on an interval boundary so no destination
        // interval mixes owned and ghost slots (file header).
        s.ghost_base =
            s.num_ghosts == 0
                ? s.num_owned
                : static_cast<NodeId>(
                      (static_cast<std::uint64_t>(s.num_owned) + nd_ -
                       1) /
                      nd_ * nd_);
    }

    // -- id maps ----------------------------------------------------------
    for (std::uint32_t b = 0; b < boards; ++b) {
        BoardShard& s = shards_[b];
        s.to_global.reserve(s.ghost_base + s.num_ghosts);
        for (std::uint32_t j : s.intervals) {
            const NodeId hi =
                std::min<NodeId>(num_nodes_, (j + 1) * nd_);
            for (NodeId n = j * nd_; n < hi; ++n)
                s.to_global.push_back(n);
        }
        s.to_global.resize(s.ghost_base, kNoGlobalId);  // padding
        for (NodeId n : ghosts[b])
            s.to_global.push_back(n);
    }

    // -- local graphs (global edge order preserved) -----------------------
    for (std::uint32_t b = 0; b < boards; ++b) {
        BoardShard& s = shards_[b];
        s.local = CooGraph(s.ghost_base + s.num_ghosts, g.weighted());
        s.local.name = g.name + "/b" + std::to_string(b);
    }
    for (const Edge& e : g.edges()) {
        const std::uint32_t b = interval_owner_[e.dst / nd_];
        BoardShard& s = shards_[b];
        const NodeId ldst = localId(b, e.dst);
        const NodeId lsrc = localId(b, e.src);
        s.local.addEdge(lsrc, ldst, e.weight);
        ++s.local_edges;
        if (lsrc >= s.ghost_base) {
            ++s.cut_edges;
            ++total_cut_edges_;
        }
    }

    // -- export lists ------------------------------------------------------
    exports_.assign(static_cast<std::size_t>(boards) * boards, {});
    import_peers_.assign(boards, {});
    for (std::uint32_t p = 0; p < boards; ++p) {
        std::uint32_t last_owner = boards;  // sentinel
        for (NodeId n : ghosts[p]) {
            const std::uint32_t b = interval_owner_[n / nd_];
            exports_[static_cast<std::size_t>(b) * boards + p]
                .push_back(n);
            if (b != last_owner) {
                // ghosts are globally sorted, so owners repeat in
                // runs; dedup cheaply then uniquify below.
                import_peers_[p].push_back(b);
                last_owner = b;
            }
        }
        auto& peers = import_peers_[p];
        std::sort(peers.begin(), peers.end());
        peers.erase(std::unique(peers.begin(), peers.end()),
                    peers.end());
    }
}

NodeId
ClusterPartition::globalId(std::uint32_t b, NodeId local) const
{
    const BoardShard& s = shards_[b];
    if (local >= s.to_global.size())
        fatal("ClusterPartition::globalId: local id out of range");
    return s.to_global[local];
}

NodeId
ClusterPartition::localId(std::uint32_t b, NodeId n) const
{
    if (n >= num_nodes_)
        fatal("ClusterPartition::localId: node out of range");
    const BoardShard& s = shards_[b];
    const std::uint32_t j = n / nd_;
    if (interval_owner_[j] == b)
        return interval_local_base_[j] + (n % nd_);
    // Ghost slot: binary search the sorted ghost tail of to_global.
    const auto begin = s.to_global.begin() + s.ghost_base;
    const auto it = std::lower_bound(begin, s.to_global.end(), n);
    if (it == s.to_global.end() || *it != n)
        return kNoLocalId;
    return s.ghost_base +
           static_cast<NodeId>(std::distance(begin, it));
}

double
ClusterPartition::edgeBalance() const
{
    EdgeId total = 0, max_edges = 0;
    for (const BoardShard& s : shards_) {
        total += s.local_edges;
        max_edges = std::max(max_edges, s.local_edges);
    }
    if (total == 0)
        return 1.0;
    const double avg =
        static_cast<double>(total) / static_cast<double>(boards());
    return avg == 0 ? 1.0 : static_cast<double>(max_edges) / avg;
}

} // namespace gmoms
