#include "src/algo/reference.hh"

#include "src/sim/log.hh"

namespace gmoms
{

ReferenceResult
runReference(const PartitionedGraph& pg, const AlgoSpec& spec)
{
    const NodeId n = pg.numNodes();
    ReferenceResult result;

    std::vector<std::uint32_t> v_in(n), v_const;
    for (NodeId i = 0; i < n; ++i)
        v_in[i] = spec.initialValue(i);
    if (spec.has_const) {
        v_const.resize(n);
        for (NodeId i = 0; i < n; ++i)
            v_const[i] = spec.constValue(i);
    }
    // Synchronous: distinct out array, swapped per iteration.
    // Asynchronous: out aliases in.
    std::vector<std::uint32_t> v_out_storage;
    if (spec.synchronous)
        v_out_storage = v_in;
    std::vector<std::uint32_t>* v_out =
        spec.synchronous ? &v_out_storage : &v_in;

    std::vector<bool> active_srcs(pg.qs(), true);
    bool cont = true;

    std::vector<std::uint64_t> bram(pg.nd());

    for (std::uint32_t iter = 0;
         iter < spec.max_iterations && cont; ++iter) {
        std::vector<bool> active_next(pg.qs(), false);
        cont = false;
        ++result.iterations;

        for (std::uint32_t d = 0; d < pg.qd(); ++d) {
            const NodeId base = pg.dstIntervalBase(d);
            const std::uint32_t count = pg.dstIntervalNodes(d);
            bool interval_updated = false;

            for (std::uint32_t i = 0; i < count; ++i)
                bram[i] = spec.init(
                    spec.has_const ? v_const[base + i] : 0,
                    v_in[base + i]);

            for (std::uint32_t s = 0; s < pg.qs(); ++s) {
                if (!active_srcs[s])
                    continue;
                for (const Edge& e : pg.shardEdges(s, d)) {
                    const std::uint32_t dst_off = e.dst - base;
                    std::uint32_t src_val;
                    if (spec.use_local_src &&
                        pg.dstIntervalOf(e.src) == d) {
                        src_val = static_cast<std::uint32_t>(
                            bram[e.src - base]);
                    } else {
                        src_val = v_in[e.src];
                        ++result.remote_src_reads;
                    }
                    const std::uint64_t next =
                        spec.gather(src_val, bram[dst_off], e.weight);
                    if (next != bram[dst_off] || spec.always_active) {
                        interval_updated = true;
                        cont = true;
                    }
                    bram[dst_off] = next;
                    ++result.edges_processed;
                }
            }

            for (std::uint32_t i = 0; i < count; ++i)
                (*v_out)[base + i] = spec.apply(bram[i]);

            if (interval_updated) {
                // Mark every source interval overlapping this
                // destination interval active for the next iteration
                // (Template 1, line 17).
                const std::uint32_t s_lo = base / pg.ns();
                const std::uint32_t s_hi =
                    (base + count - 1) / pg.ns();
                for (std::uint32_t s = s_lo; s <= s_hi; ++s)
                    active_next[s] = true;
            }
        }

        active_srcs = active_next;
        if (spec.synchronous)
            std::swap(v_in, v_out_storage);
    }

    result.raw_values = std::move(v_in);
    return result;
}

} // namespace gmoms
