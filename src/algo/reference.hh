/**
 * @file
 * Functional (untimed) executor of the Template 1 programming model.
 *
 * Runs the exact interval/shard iteration structure of the accelerator —
 * including active-shard skipping, use_local_src and synchronous /
 * asynchronous array handling — but with no timing model. It serves as
 * (a) the correctness oracle for the timed accelerator and (b) the
 * source of "useful work" counts (edges actually processed).
 */

#ifndef GMOMS_ALGO_REFERENCE_HH
#define GMOMS_ALGO_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "src/algo/spec.hh"
#include "src/graph/partition.hh"

namespace gmoms
{

struct ReferenceResult
{
    /** Final raw V_DRAM words, one per node. */
    std::vector<std::uint32_t> raw_values;
    /** Iterations executed (< max_iterations on convergence). */
    std::uint32_t iterations = 0;
    /** Edges streamed over all iterations (active shards only). */
    EdgeId edges_processed = 0;
    /** Source-node reads that went to DRAM (not use_local_src). */
    EdgeId remote_src_reads = 0;

    /** User-facing value of node @p n. */
    double value(const AlgoSpec& spec, NodeId n) const
    {
        return spec.finalValue(raw_values[n], n);
    }
};

ReferenceResult runReference(const PartitionedGraph& pg,
                             const AlgoSpec& spec);

} // namespace gmoms

#endif // GMOMS_ALGO_REFERENCE_HH
