/**
 * @file
 * Independent textbook implementations of each graph algorithm, used as
 * oracles for the Template 1 reference executor and the timed
 * accelerator. They share no code with the Template 1 path.
 */

#ifndef GMOMS_ALGO_GOLDEN_HH
#define GMOMS_ALGO_GOLDEN_HH

#include <cstdint>
#include <vector>

#include "src/graph/coo.hh"

namespace gmoms
{

/**
 * Damped power-iteration PageRank: PR <- (1-d)/N + d * sum(PR_u/OD_u).
 * Dangling-node mass is dropped (not redistributed), matching the
 * accelerator's model.
 */
std::vector<double> goldenPageRank(const CooGraph& g,
                                   std::uint32_t iterations,
                                   double damping = 0.85);

/** Fixpoint of min-label propagation along directed edges (the paper's
 *  SCC kernel): label(v) = min over {v} + labels reachable to v. */
std::vector<std::uint32_t> goldenMinLabel(const CooGraph& g);

/** Single-source shortest path distances (Bellman-Ford over COO),
 *  kInfDist for unreachable nodes. */
std::vector<std::uint32_t> goldenSssp(const CooGraph& g, NodeId source);

/** BFS depth from @p source, kInfDist for unreachable nodes. */
std::vector<std::uint32_t> goldenBfs(const CooGraph& g, NodeId source);

} // namespace gmoms

#endif // GMOMS_ALGO_GOLDEN_HH
