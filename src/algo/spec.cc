#include "src/algo/spec.hh"

#include <bit>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

float
asFloat(std::uint32_t raw)
{
    return std::bit_cast<float>(raw);
}

std::uint32_t
asRaw(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

/** Saturating u32 addition for SSSP/BFS distances. */
std::uint32_t
satAdd(std::uint32_t a, std::uint32_t b)
{
    const std::uint64_t s = std::uint64_t{a} + b;
    return s > kInfDist ? kInfDist : static_cast<std::uint32_t>(s);
}

} // namespace

std::uint64_t
AlgoSpec::init(std::uint32_t vconst, std::uint32_t vdram) const
{
    switch (algo) {
      case Algorithm::PageRank:
        // acc = 0, remember OD for apply(); the incoming vdram (old
        // normalized score) is not needed in BRAM.
        (void)vdram;
        return std::uint64_t{vconst} << 32;
      default:
        // Propagation algorithms: BRAM starts from the current value.
        return vdram;
    }
}

std::uint64_t
AlgoSpec::gather(std::uint32_t src_val, std::uint64_t bram,
                 std::uint32_t weight) const
{
    switch (algo) {
      case Algorithm::PageRank: {
        const float acc = asFloat(static_cast<std::uint32_t>(bram)) +
                          asFloat(src_val);
        return (bram & 0xffffffff00000000ull) | asRaw(acc);
      }
      case Algorithm::Scc:
      case Algorithm::Wcc:
        return std::min<std::uint32_t>(
            src_val, static_cast<std::uint32_t>(bram));
      case Algorithm::Sssp:
        return std::min<std::uint32_t>(
            satAdd(src_val, weight), static_cast<std::uint32_t>(bram));
      case Algorithm::Bfs:
        return std::min<std::uint32_t>(
            satAdd(src_val, 1), static_cast<std::uint32_t>(bram));
    }
    panic("unknown algorithm");
}

std::uint32_t
AlgoSpec::apply(std::uint64_t bram) const
{
    switch (algo) {
      case Algorithm::PageRank: {
        const float acc = asFloat(static_cast<std::uint32_t>(bram));
        const std::uint32_t od =
            static_cast<std::uint32_t>(bram >> 32);
        const float pr = teleport_ + acc;  // un-normalized new score
        const float od_eff = od == 0 ? 1.0f : static_cast<float>(od);
        return asRaw(damping_ * pr / od_eff);
      }
      default:
        return static_cast<std::uint32_t>(bram);
    }
}

std::uint32_t
AlgoSpec::initialValue(NodeId n) const
{
    switch (algo) {
      case Algorithm::PageRank: {
        // s_0 = d * PR_0 / OD with PR_0 = 1/N.
        const std::uint32_t od = (*out_degrees_)[n];
        if (od == 0)
            return asRaw(0.0f);
        return asRaw(damping_ / (static_cast<float>(num_nodes_) *
                                 static_cast<float>(od)));
      }
      case Algorithm::Scc:
      case Algorithm::Wcc:
        return n;
      case Algorithm::Sssp:
      case Algorithm::Bfs:
        return n == source_ ? 0 : kInfDist;
    }
    panic("unknown algorithm");
}

std::uint32_t
AlgoSpec::constValue(NodeId n) const
{
    if (algo != Algorithm::PageRank)
        panic("constValue: only PageRank has a V_const");
    return (*out_degrees_)[n];
}

double
AlgoSpec::finalValue(std::uint32_t dram_raw, NodeId n) const
{
    switch (algo) {
      case Algorithm::PageRank: {
        const std::uint32_t od = (*out_degrees_)[n];
        const double od_eff = od == 0 ? 1.0 : static_cast<double>(od);
        return static_cast<double>(asFloat(dram_raw)) * od_eff /
               damping_;
      }
      default:
        return static_cast<double>(dram_raw);
    }
}

AlgoSpec
AlgoSpec::pageRank(const CooGraph& g, std::uint32_t iterations)
{
    AlgoSpec s;
    s.algo = Algorithm::PageRank;
    s.name = "PageRank";
    s.has_const = true;
    s.synchronous = true;
    s.always_active = true;
    s.gather_latency = 4;  // HLS floating-point pipeline (Section V-A)
    s.max_iterations = iterations;
    s.num_nodes_ = g.numNodes();
    s.teleport_ = 0.15f / static_cast<float>(g.numNodes());
    s.out_degrees_ =
        std::make_shared<const std::vector<std::uint32_t>>(
            g.outDegrees());
    return s;
}

AlgoSpec
AlgoSpec::scc(NodeId num_nodes, std::uint32_t max_iters)
{
    AlgoSpec s;
    s.algo = Algorithm::Scc;
    s.name = "SCC";
    s.use_local_src = true;
    s.max_iterations = max_iters;
    s.num_nodes_ = num_nodes;
    return s;
}

AlgoSpec
AlgoSpec::sssp(NodeId source, std::uint32_t max_iters)
{
    AlgoSpec s;
    s.algo = Algorithm::Sssp;
    s.name = "SSSP";
    s.weighted = true;
    s.use_local_src = true;
    s.max_iterations = max_iters;
    s.source_ = source;
    return s;
}

AlgoSpec
AlgoSpec::bfs(NodeId source, std::uint32_t max_iters)
{
    AlgoSpec s;
    s.algo = Algorithm::Bfs;
    s.name = "BFS";
    s.use_local_src = true;
    s.max_iterations = max_iters;
    s.source_ = source;
    return s;
}

AlgoSpec
AlgoSpec::wcc(NodeId num_nodes, std::uint32_t max_iters)
{
    AlgoSpec s;
    s.algo = Algorithm::Wcc;
    s.name = "WCC";
    s.use_local_src = true;
    s.max_iterations = max_iters;
    s.num_nodes_ = num_nodes;
    return s;
}

} // namespace gmoms
