#include "src/algo/golden.hh"

#include <algorithm>

#include "src/algo/spec.hh"

namespace gmoms
{

std::vector<double>
goldenPageRank(const CooGraph& g, std::uint32_t iterations,
               double damping)
{
    const NodeId n = g.numNodes();
    const std::vector<std::uint32_t> od = g.outDegrees();
    std::vector<double> pr(n, 1.0 / n), next(n);
    for (std::uint32_t it = 0; it < iterations; ++it) {
        std::fill(next.begin(), next.end(), (1.0 - damping) / n);
        for (const Edge& e : g.edges())
            next[e.dst] += damping * pr[e.src] / od[e.src];
        pr.swap(next);
    }
    return pr;
}

std::vector<std::uint32_t>
goldenMinLabel(const CooGraph& g)
{
    std::vector<std::uint32_t> label(g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        label[i] = i;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Edge& e : g.edges()) {
            if (label[e.src] < label[e.dst]) {
                label[e.dst] = label[e.src];
                changed = true;
            }
        }
    }
    return label;
}

std::vector<std::uint32_t>
goldenSssp(const CooGraph& g, NodeId source)
{
    std::vector<std::uint32_t> dist(g.numNodes(), kInfDist);
    dist[source] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Edge& e : g.edges()) {
            if (dist[e.src] == kInfDist)
                continue;
            const std::uint64_t cand =
                std::uint64_t{dist[e.src]} + e.weight;
            if (cand < dist[e.dst]) {
                dist[e.dst] = static_cast<std::uint32_t>(cand);
                changed = true;
            }
        }
    }
    return dist;
}

std::vector<std::uint32_t>
goldenBfs(const CooGraph& g, NodeId source)
{
    std::vector<std::uint32_t> depth(g.numNodes(), kInfDist);
    depth[source] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Edge& e : g.edges()) {
            if (depth[e.src] == kInfDist)
                continue;
            if (depth[e.src] + 1 < depth[e.dst]) {
                depth[e.dst] = depth[e.src] + 1;
                changed = true;
            }
        }
    }
    return depth;
}

} // namespace gmoms
