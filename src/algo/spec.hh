/**
 * @file
 * Algorithm specifications for the Template 1 programming model
 * (Section III-B, Table I of the paper).
 *
 * An AlgoSpec carries the per-algorithm customizations: the init(),
 * gather() and apply() kernels, initial DRAM values, the optional
 * per-node constant vector, the execution flags (use_local_src,
 * always_active, synchronous) and the modelled gather pipeline latency
 * (4 cycles for the HLS floating-point PageRank, 1 for the
 * combinational integer kernels).
 *
 * Value representation: V_DRAM entries are 32-bit raw words (float bit
 * patterns for PageRank); V_BRAM entries are 64-bit raw words. PageRank
 * packs [31:0] = f32 accumulator, [63:32] = u32 out-degree; the other
 * algorithms use [31:0] only.
 */

#ifndef GMOMS_ALGO_SPEC_HH
#define GMOMS_ALGO_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/coo.hh"
#include "src/sim/types.hh"

namespace gmoms
{

enum class Algorithm { PageRank, Scc, Sssp, Bfs, Wcc };

/** Unreachable / infinite distance marker for SSSP/BFS. */
inline constexpr std::uint32_t kInfDist = 0xffffffffu;

class AlgoSpec
{
  public:
    Algorithm algo = Algorithm::PageRank;
    std::string name;

    bool weighted = false;       //!< edges carry a 32-bit weight
    bool has_const = false;      //!< V_const present (PageRank: OD)
    bool synchronous = false;    //!< separate V_in / V_out, swap per iter
    bool use_local_src = false;  //!< read src from BRAM when local
    bool always_active = false;  //!< no convergence tracking
    std::uint32_t gather_latency = 1;  //!< PE pipeline depth (cycles)
    std::uint32_t max_iterations = 100;

    /** V_BRAM = init(V_const, V_DRAM_in) at job start (Template 1 l.8). */
    std::uint64_t init(std::uint32_t vconst, std::uint32_t vdram) const;

    /** New V_BRAM destination value (Template 1 l.13/15). */
    std::uint64_t gather(std::uint32_t src_val, std::uint64_t bram,
                         std::uint32_t weight) const;

    /** V_DRAM_out = apply(V_BRAM) at writeback (Template 1 l.21). */
    std::uint32_t apply(std::uint64_t bram) const;

    /** Initial V_DRAM_in for node @p n (Table I row 2). */
    std::uint32_t initialValue(NodeId n) const;

    /** V_const for node @p n (only when has_const). */
    std::uint32_t constValue(NodeId n) const;

    /**
     * Interpret the final raw V_DRAM word of node @p n as the
     * user-facing result (denormalizes PageRank scores).
     */
    double finalValue(std::uint32_t dram_raw, NodeId n) const;

    // -- factories --------------------------------------------------------

    /** PageRank with the ForeGraph normalized-score optimization: DRAM
     *  holds s_i = d * PR_i / OD_i so the irregular read is 32 bits and
     *  normalization happens once per node in apply(). */
    static AlgoSpec pageRank(const CooGraph& g,
                             std::uint32_t iterations = 10);

    /** Min-label propagation — the SCC kernel of Table I. */
    static AlgoSpec scc(NodeId num_nodes, std::uint32_t max_iters = 1000);

    /** Single-source shortest paths (weights in [0, 255]). */
    static AlgoSpec sssp(NodeId source, std::uint32_t max_iters = 1000);

    /** BFS depth (extension; = SSSP with unit weights, unweighted). */
    static AlgoSpec bfs(NodeId source, std::uint32_t max_iters = 1000);

    /** Weakly connected components (extension; run on a graph with
     *  reverse edges added). */
    static AlgoSpec wcc(NodeId num_nodes, std::uint32_t max_iters = 1000);

  private:
    NodeId num_nodes_ = 0;
    NodeId source_ = 0;
    float teleport_ = 0.0f;   //!< 0.15 / N
    float damping_ = 0.85f;
    /** Out-degrees for PageRank initial values / V_const. */
    std::shared_ptr<const std::vector<std::uint32_t>> out_degrees_;
};

} // namespace gmoms

#endif // GMOMS_ALGO_SPEC_HH
