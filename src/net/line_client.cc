#include "src/net/line_client.hh"

#include <cstring>

#ifdef __linux__
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace gmoms::net
{

#ifdef __linux__

LineClient::~LineClient()
{
    close();
}

bool
LineClient::connect(const std::string& host, std::uint16_t port,
                    std::string* error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string resolved =
        host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
        if (error)
            *error = "bad host \"" + host + "\" (IPv4 dotted quad)";
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "connect " + resolved + ":" +
                     std::to_string(port) + ": " +
                     std::strerror(errno);
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

bool
LineClient::sendLine(const std::string& line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            close();
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
LineClient::recvLine()
{
    while (true) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        if (fd_ < 0)
            return std::nullopt;
        char buf[64 * 1024];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            buffer_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        close();
        return std::nullopt;
    }
}

std::optional<std::string>
LineClient::roundTrip(const std::string& line)
{
    if (!sendLine(line))
        return std::nullopt;
    return recvLine();
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

#else // !__linux__

LineClient::~LineClient()
{
}

bool
LineClient::connect(const std::string&, std::uint16_t, std::string* error)
{
    if (error)
        *error = "LineClient requires Linux";
    return false;
}

bool
LineClient::sendLine(const std::string&)
{
    return false;
}

std::optional<std::string>
LineClient::recvLine()
{
    return std::nullopt;
}

std::optional<std::string>
LineClient::roundTrip(const std::string&)
{
    return std::nullopt;
}

void
LineClient::close()
{
}

#endif // __linux__

} // namespace gmoms::net
