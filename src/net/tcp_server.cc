#include "src/net/tcp_server.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace gmoms::net
{

JsonReport
TcpServer::Stats::toJson() const
{
    JsonReport r;
    r.set("accepted", accepted)
        .set("rejected_over_limit", rejected_over_limit)
        .set("active", active)
        .set("peak_active", peak_active)
        .set("requests", requests)
        .set("responses", responses)
        .set("frame_overruns", frame_overruns)
        .set("bytes_in", bytes_in)
        .set("bytes_out", bytes_out);
    latency.appendTo(r, "net");
    return r;
}

#ifdef __linux__

namespace
{

/** The one line an over-limit accept receives before close. Sent in
 *  v2 form: v1 clients never see it unless they hit the limit, and a
 *  parseable structured refusal beats a bare RST either way. */
std::string
overloadLine(std::size_t limit)
{
    JsonReport err;
    err.set("code", std::string("overloaded"))
        .set("problems",
             JsonReport::Raw{
                 "[\"connection limit " + std::to_string(limit) +
                 " reached, retry later\"]"});
    JsonReport r;
    r.set("v", static_cast<std::uint64_t>(2))
        .set("request_id", std::string())
        .set("op", std::string("connect"))
        .set("type", std::string("error"))
        .set("error", JsonReport::Raw{err.str()});
    return r.str() + "\n";
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

struct TcpServer::Impl
{
    const TcpServerConfig cfg;
    const Handler handler;

    int listen_fd = -1;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::uint16_t port = 0;

    std::thread loop_thread;
    std::atomic<bool> running{false};
    std::atomic<bool> stop_drain{false};
    std::atomic<bool> stop_now{false};

    mutable std::mutex stats_mu;
    Stats stats;

    struct Conn
    {
        std::string in;
        std::string out;
        std::size_t out_off = 0;  //!< bytes of out already written
        bool close_after_flush = false;
        bool saw_eof = false;
        double flush_started = -1;  //!< out became nonempty at
    };

    std::map<int, Conn> conns;
    bool accepting = true;
    bool draining = false;
    double drain_deadline = 0;

    Impl(TcpServerConfig c, Handler h)
        : cfg(std::move(c)), handler(std::move(h))
    {
    }

    bool setup(std::string* error);
    void loop();
    void acceptAll();
    void readable(int fd);
    void writable(int fd);
    void flush(int fd, Conn& conn);
    void closeConn(int fd);
    void beginDrain();
    void teardown();
    void updateEpollOut(int fd, const Conn& conn);

    bool
    fail(std::string* error, const std::string& what)
    {
        if (error)
            *error = what + ": " + std::strerror(errno);
        teardown();
        return false;
    }
};

bool
TcpServer::Impl::setup(std::string* error)
{
    listen_fd = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0)
        return fail(error, "socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        if (error)
            *error = "bad bind address \"" + cfg.bind_address + "\"";
        teardown();
        return false;
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        return fail(error, "bind " + cfg.bind_address + ":" +
                               std::to_string(cfg.port));
    if (::listen(listen_fd, 128) != 0)
        return fail(error, "listen");

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0)
        return fail(error, "getsockname");
    port = ntohs(bound.sin_port);

    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0)
        return fail(error, "eventfd");
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0)
        return fail(error, "epoll_create1");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) != 0)
        return fail(error, "epoll_ctl(listen)");
    ev.data.fd = wake_fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0)
        return fail(error, "epoll_ctl(wake)");
    return true;
}

void
TcpServer::Impl::teardown()
{
    for (auto& [fd, conn] : conns)
        ::close(fd);
    conns.clear();
    if (listen_fd >= 0)
        ::close(listen_fd);
    if (wake_fd >= 0)
        ::close(wake_fd);
    if (epoll_fd >= 0)
        ::close(epoll_fd);
    listen_fd = wake_fd = epoll_fd = -1;
    std::lock_guard<std::mutex> lock(stats_mu);
    stats.active = 0;
}

void
TcpServer::Impl::updateEpollOut(int fd, const Conn& conn)
{
    epoll_event ev{};
    ev.events = EPOLLIN |
                (conn.out_off < conn.out.size() ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void
TcpServer::Impl::acceptAll()
{
    while (accepting) {
        const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            break;  // EAGAIN or transient error: wait for next event
        if (conns.size() >= cfg.max_connections) {
            // Structured refusal, best effort: the socket buffer of a
            // fresh connection always holds one small line.
            const std::string line = overloadLine(cfg.max_connections);
            (void)!::send(fd, line.data(), line.size(), MSG_DONTWAIT);
            ::close(fd);
            std::lock_guard<std::mutex> lock(stats_mu);
            ++stats.rejected_over_limit;
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns.emplace(fd, Conn{});
        std::lock_guard<std::mutex> lock(stats_mu);
        ++stats.accepted;
        stats.active = conns.size();
        stats.peak_active = std::max(stats.peak_active, stats.active);
    }
}

void
TcpServer::Impl::closeConn(int fd)
{
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(fd);
    std::lock_guard<std::mutex> lock(stats_mu);
    stats.active = conns.size();
}

void
TcpServer::Impl::flush(int fd, Conn& conn)
{
    while (conn.out_off < conn.out.size()) {
        const ssize_t n =
            ::send(fd, conn.out.data() + conn.out_off,
                   conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_off += static_cast<std::size_t>(n);
            std::lock_guard<std::mutex> lock(stats_mu);
            stats.bytes_out += static_cast<std::uint64_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        closeConn(fd);  // peer vanished mid-response
        return;
    }
    if (conn.out_off >= conn.out.size()) {
        conn.out.clear();
        conn.out_off = 0;
        if (conn.flush_started >= 0) {
            std::lock_guard<std::mutex> lock(stats_mu);
            stats.latency.add("net_flush",
                              nowSeconds() - conn.flush_started);
            conn.flush_started = -1;
        }
        if (conn.close_after_flush || conn.saw_eof) {
            closeConn(fd);
            return;
        }
    }
    updateEpollOut(fd, conn);
}

void
TcpServer::Impl::readable(int fd)
{
    const auto it = conns.find(fd);
    if (it == conns.end())
        return;
    Conn& conn = it->second;

    char buf[64 * 1024];
    while (true) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            {
                std::lock_guard<std::mutex> lock(stats_mu);
                stats.bytes_in += static_cast<std::uint64_t>(n);
            }
            if (conn.in.size() > cfg.max_line_bytes &&
                conn.in.find('\n') == std::string::npos) {
                // Unframed flood: stop reading, kill the connection.
                std::lock_guard<std::mutex> lock(stats_mu);
                ++stats.frame_overruns;
                conn.close_after_flush = true;
                break;
            }
            continue;
        }
        if (n == 0) {
            conn.saw_eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(fd);
        return;
    }

    // Slice complete lines, answer each in arrival order (pipelining).
    std::size_t start = 0;
    while (!conn.close_after_flush) {
        const std::size_t nl = conn.in.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = conn.in.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.size() > cfg.max_line_bytes) {
            std::lock_guard<std::mutex> lock(stats_mu);
            ++stats.frame_overruns;
            conn.close_after_flush = true;
            break;
        }
        if (line.find_first_not_of(" \t") == std::string::npos)
            continue;  // blank keep-alive line, same as the stdin loop

        const double t0 = nowSeconds();
        HandlerResult h = handler(line);
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            ++stats.requests;
            ++stats.responses;
            stats.latency.add("net_handle", nowSeconds() - t0);
        }
        if (conn.out.empty())
            conn.flush_started = nowSeconds();
        conn.out += h.line;
        conn.out += '\n';
        if (h.close_connection)
            conn.close_after_flush = true;
        if (h.shutdown_server)
            beginDrain();
    }
    conn.in.erase(0, start);

    flush(fd, conn);  // may close; conn/it invalid after this
}

void
TcpServer::Impl::writable(int fd)
{
    const auto it = conns.find(fd);
    if (it != conns.end())
        flush(fd, it->second);
}

void
TcpServer::Impl::beginDrain()
{
    if (draining)
        return;
    draining = true;
    accepting = false;
    drain_deadline = nowSeconds() + 5.0;
    if (listen_fd >= 0)
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
}

void
TcpServer::Impl::loop()
{
    epoll_event events[64];
    while (true) {
        if (stop_now.load(std::memory_order_relaxed))
            break;
        if (stop_drain.load(std::memory_order_relaxed))
            beginDrain();
        if (draining) {
            // Graceful exit: done once every response is on the wire
            // (or the deadline says a client stopped reading).
            bool pending = false;
            for (const auto& [fd, conn] : conns)
                if (conn.out_off < conn.out.size())
                    pending = true;
            if (!pending || nowSeconds() > drain_deadline)
                break;
        }

        const int n = ::epoll_wait(epoll_fd, events, 64,
                                   draining ? 50 : -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listen_fd) {
                acceptAll();
            } else if (fd == wake_fd) {
                std::uint64_t drainv;
                while (::read(wake_fd, &drainv, sizeof(drainv)) > 0) {
                }
            } else {
                if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                    closeConn(fd);
                    continue;
                }
                if (events[i].events & EPOLLIN)
                    readable(fd);
                if (events[i].events & EPOLLOUT)
                    writable(fd);
            }
        }
    }
    teardown();
    running.store(false, std::memory_order_release);
}

TcpServer::TcpServer(TcpServerConfig cfg, Handler handler)
    : impl_(new Impl(std::move(cfg), std::move(handler)))
{
}

TcpServer::~TcpServer()
{
    shutdown(/*drain=*/true);
    waitUntilStopped();
    delete impl_;
}

bool
TcpServer::start(std::string* error)
{
    if (impl_->running.load()) {
        if (error)
            *error = "server already running";
        return false;
    }
    if (!impl_->setup(error))
        return false;
    impl_->running.store(true, std::memory_order_release);
    impl_->loop_thread = std::thread([this] { impl_->loop(); });
    return true;
}

std::uint16_t
TcpServer::port() const
{
    return impl_->port;
}

void
TcpServer::shutdown(bool drain)
{
    if (drain)
        impl_->stop_drain.store(true, std::memory_order_relaxed);
    else
        impl_->stop_now.store(true, std::memory_order_relaxed);
    if (impl_->wake_fd >= 0) {
        const std::uint64_t one = 1;
        (void)!::write(impl_->wake_fd, &one, sizeof(one));
    }
}

void
TcpServer::waitUntilStopped()
{
    if (impl_->loop_thread.joinable())
        impl_->loop_thread.join();
}

bool
TcpServer::running() const
{
    return impl_->running.load(std::memory_order_acquire);
}

TcpServer::Stats
TcpServer::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->stats_mu);
    return impl_->stats;
}

#else // !__linux__

struct TcpServer::Impl
{
    TcpServerConfig cfg;
    Handler handler;
    Stats stats;
    Impl(TcpServerConfig c, Handler h)
        : cfg(std::move(c)), handler(std::move(h))
    {
    }
};

TcpServer::TcpServer(TcpServerConfig cfg, Handler handler)
    : impl_(new Impl(std::move(cfg), std::move(handler)))
{
}

TcpServer::~TcpServer()
{
    delete impl_;
}

bool
TcpServer::start(std::string* error)
{
    if (error)
        *error = "the epoll TCP server requires Linux";
    return false;
}

std::uint16_t
TcpServer::port() const
{
    return 0;
}

void
TcpServer::shutdown(bool)
{
}

void
TcpServer::waitUntilStopped()
{
}

bool
TcpServer::running() const
{
    return false;
}

TcpServer::Stats
TcpServer::stats() const
{
    return impl_->stats;
}

#endif // __linux__

} // namespace gmoms::net
