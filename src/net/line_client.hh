/**
 * @file
 * LineClient: the client half of the newline-delimited protocol — a
 * small blocking TCP client (connect, send lines, receive lines) used
 * by bench_serve's open-loop TCP load generator, the net tests and any
 * external driver that wants to talk to `gmoms_serve --listen` without
 * hand-rolling socket framing.
 *
 * Deliberately blocking: clients measure round trips and pump
 * pipelines; the *server* is the side that must never block
 * (src/net/tcp_server.hh). Received bytes are buffered internally so
 * pipelined responses arrive line-exact regardless of TCP segmenting.
 * Not thread-safe — one client per connection per thread.
 */

#ifndef GMOMS_NET_LINE_CLIENT_HH
#define GMOMS_NET_LINE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace gmoms::net
{

class LineClient
{
  public:
    LineClient() = default;
    ~LineClient();

    LineClient(const LineClient&) = delete;
    LineClient& operator=(const LineClient&) = delete;

    /** Connect to @p host:@p port (IPv4 dotted quad or "localhost").
     *  False with @p error filled on failure. */
    bool connect(const std::string& host, std::uint16_t port,
                 std::string* error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Send @p line + '\n' (blocking until fully written). */
    bool sendLine(const std::string& line);

    /** Next response line (without '\n'), blocking until one arrives.
     *  nullopt on EOF or error. */
    std::optional<std::string> recvLine();

    /** sendLine + recvLine: one synchronous round trip. */
    std::optional<std::string> roundTrip(const std::string& line);

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace gmoms::net

#endif // GMOMS_NET_LINE_CLIENT_HH
