/**
 * @file
 * Epoll TCP front end for the serving layer (ISSUE 9 tentpole): a
 * single-threaded nonblocking event loop that speaks newline-delimited
 * protocol lines (src/serve/protocol.hh) over loopback/LAN sockets, so
 * "millions of users" stop meaning "millions of stdin pipes".
 *
 * Shape: one loop thread owns epoll, the listen socket and every
 * connection; simulations never run on it — the handler (protocol
 * handleRequestLine over GraphService) only validates, admits and
 * enqueues, the service's worker pool does the heavy lifting. A drain
 * verb is the deliberate exception: it blocks the loop until the
 * admitted work is done, which is exactly its pipelined-barrier
 * semantics (responses on a connection are answered in request order).
 *
 * Per-connection pipelining: clients may write any number of request
 * lines without reading; the loop slices complete lines out of the
 * read buffer, answers each in arrival order, and flushes through a
 * per-connection write buffer armed on EPOLLOUT when the socket
 * backpressures.
 *
 * Robustness contract:
 *  - connection limit: accepts over max_connections are answered with
 *    one v2 "overloaded" error line and closed (counted, never
 *    silently dropped);
 *  - oversized frames: a line exceeding max_line_bytes kills only that
 *    connection (one misbehaving client cannot balloon server memory);
 *  - graceful shutdown on drain: a quit request (or shutdown()) stops
 *    accepting, finishes writing every pending response, then closes —
 *    stats().active is 0 after stop, the "no leaked connections"
 *    assertion CI's net-smoke job makes.
 *
 * Linux-only by design (epoll); start() fails with a clear error
 * elsewhere. The per-request latency breakdown (net_handle = handler
 * wall time, net_flush = write-buffer residency) feeds the per-layer
 * queue/net/sim picture in stats responses.
 */

#ifndef GMOMS_NET_TCP_SERVER_HH
#define GMOMS_NET_TCP_SERVER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "src/obs/latency.hh"
#include "src/sim/report.hh"

namespace gmoms::net
{

struct TcpServerConfig
{
    /** Bind address; loopback by default (CI and the bench client). */
    std::string bind_address = "127.0.0.1";
    /** 0 = ephemeral (the bound port is reported by port()). */
    std::uint16_t port = 0;
    /** Concurrent-connection ceiling; accepts beyond it get one
     *  "overloaded" error line and an immediate close. */
    std::size_t max_connections = 256;
    /** Per-line frame cap; a longer request kills its connection. */
    std::size_t max_line_bytes = 1 << 20;
};

/** What the handler tells the loop besides the response line. */
struct HandlerResult
{
    std::string line;  //!< response (no trailing newline)
    /** Close this connection once the response is flushed. */
    bool close_connection = false;
    /** Begin graceful server shutdown (the quit verb): stop
     *  accepting, flush every connection, exit the loop. */
    bool shutdown_server = false;
};

class TcpServer
{
  public:
    using Handler = std::function<HandlerResult(const std::string&)>;

    TcpServer(TcpServerConfig cfg, Handler handler);
    /** Stops and joins (drain = true) if still running. */
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    /** Bind + listen + spawn the loop thread. False (with @p error
     *  filled) on any socket failure or off-Linux. */
    bool start(std::string* error = nullptr);

    /** The bound port (after start()); 0 before. */
    std::uint16_t port() const;

    /**
     * Ask the loop to stop. drain = true finishes writing every
     * pending response first (the graceful path, same as the quit
     * verb); false closes immediately. Idempotent, thread-safe.
     */
    void shutdown(bool drain = true);

    /** Block until the loop thread exited (a quit request from any
     *  client also gets here) and join it. */
    void waitUntilStopped();

    bool running() const;

    struct Stats
    {
        std::uint64_t accepted = 0;
        std::uint64_t rejected_over_limit = 0;
        std::uint64_t active = 0;           //!< open connections now
        std::uint64_t peak_active = 0;
        std::uint64_t requests = 0;         //!< complete lines handled
        std::uint64_t responses = 0;
        std::uint64_t frame_overruns = 0;   //!< connections killed
        std::uint64_t bytes_in = 0;
        std::uint64_t bytes_out = 0;
        LatencyBreakdown latency;  //!< net_handle / net_flush layers

        /** Flat JSON block (the "net" sub-object of stats
         *  responses; schema in docs/MODEL.md). */
        JsonReport toJson() const;
    };

    Stats stats() const;

  private:
    struct Impl;
    Impl* impl_;  //!< pimpl: keeps epoll/socket headers out of users
};

} // namespace gmoms::net

#endif // GMOMS_NET_TCP_SERVER_HH
