/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xoshiro256** implementation: fast, high quality, and —
 * unlike std::mt19937 — guaranteed identical across standard libraries,
 * which keeps generated graphs reproducible everywhere.
 */

#ifndef GMOMS_SIM_RNG_HH
#define GMOMS_SIM_RNG_HH

#include <cstdint>

namespace gmoms
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto& word : s_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style multiply-shift range reduction (slight bias is
        // irrelevant for workload generation).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace gmoms

#endif // GMOMS_SIM_RNG_HH
