/**
 * @file
 * Thread-pool job system for fanning independent simulations across
 * host cores.
 *
 * Every paper figure is a sweep of independent `Accelerator::run()`
 * calls (Fig. 11 alone is ~100), and the simulation core is re-entrant
 * (see docs/MODEL.md, "Re-entrancy contract"): no two simulations share
 * mutable state, so sweeps are embarrassingly parallel. The pool is a
 * fixed set of workers draining a bounded job queue; runAll() executes
 * a batch and rethrows the first failure by job index, which keeps
 * error reporting deterministic regardless of scheduling.
 *
 * Sizing: GMOMS_JOBS=<n> pins the worker count (GMOMS_JOBS=1 gives a
 * serial-equivalent schedule for debugging and wall-clock baselines);
 * unset or 0 uses std::thread::hardware_concurrency().
 *
 * runAll() called from inside a pool worker executes the batch inline
 * on that worker (nested sweeps cannot deadlock the pool).
 */

#ifndef GMOMS_SIM_PARALLEL_HH
#define GMOMS_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gmoms
{

class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /**
     * @param workers     Worker threads; 0 means defaultWorkers().
     * @param queue_slots Bounded job-queue capacity; post() blocks
     *                    while the queue is full. 0 sizes it at
     *                    4 * workers.
     */
    explicit ThreadPool(unsigned workers = 0,
                        std::size_t queue_slots = 0);

    /** Joins all workers after draining already-posted jobs. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** GMOMS_JOBS if set and nonzero, else hardware concurrency
     *  (at least 1). */
    static unsigned defaultWorkers();

    /** Parse a GMOMS_JOBS-style value; 0 for null/empty/invalid
     *  (meaning "use hardware concurrency"). Exposed for tests. */
    static unsigned parseWorkers(const char* value);

    /** Process-wide pool used by bench sweeps, sized defaultWorkers(). */
    static ThreadPool& shared();

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Enqueue one job; blocks while the queue is full. The job's
     * exceptions are swallowed here — use runAll() when failures must
     * propagate.
     */
    void post(Job job);

    /**
     * Run every job in @p jobs and wait for all of them. If any job
     * threw, rethrows the exception of the *lowest-index* failing job
     * (deterministic under any scheduling). Safe to call from a pool
     * worker: the batch then runs inline on the calling thread.
     */
    void runAll(std::vector<Job> jobs);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::size_t queue_slots_;

    std::mutex mu_;
    std::condition_variable queue_nonempty_;
    std::condition_variable queue_nonfull_;
    std::vector<Job> queue_;  //!< FIFO via head index
    std::size_t queue_head_ = 0;
    bool stopping_ = false;
};

} // namespace gmoms

#endif // GMOMS_SIM_PARALLEL_HH
