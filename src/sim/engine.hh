/**
 * @file
 * Cycle-driven simulation engine.
 *
 * The engine advances a global cycle counter and ticks every registered
 * component once per cycle. Components exchange tokens exclusively through
 * TimedQueue links with latency >= 1 cycle, which makes the simulation
 * insensitive to the order in which components are ticked (a token pushed
 * in cycle c is never visible before cycle c+1).
 */

#ifndef GMOMS_SIM_ENGINE_HH
#define GMOMS_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

class Engine;

/**
 * Base class for everything that performs work each simulated cycle.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /** Perform one cycle of work. */
    virtual void tick() = 0;

    /** Hierarchical instance name, for logging and stats. */
    const std::string& name() const { return name_; }

  private:
    std::string name_;
};

/**
 * The simulation engine: owns the cycle counter and the tick list.
 *
 * Components are registered by pointer and must outlive the engine run.
 */
class Engine
{
  public:
    Engine() = default;

    /** Register a component to be ticked every cycle. */
    void add(Component* c) { components_.push_back(c); }

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Advance the simulation by exactly one cycle. */
    void tick();

    /**
     * Run until @p done returns true (checked once per cycle, before
     * ticking) or @p max_cycles elapse.
     *
     * @return true if @p done fired, false if the cycle limit was hit.
     */
    bool runUntil(const std::function<bool()>& done,
                  Cycle max_cycles = kCycleNever);

    /** Number of registered components. */
    std::size_t numComponents() const { return components_.size(); }

  private:
    Cycle now_ = 0;
    std::vector<Component*> components_;
};

} // namespace gmoms

#endif // GMOMS_SIM_ENGINE_HH
