/**
 * @file
 * Idle-aware cycle simulation engine.
 *
 * The engine advances a global cycle counter and, by default, only ticks
 * components that have useful work to do. Components exchange tokens
 * exclusively through TimedQueue links with latency >= 1 cycle, which
 * makes token *visibility* insensitive to tick order (a token pushed in
 * cycle c is never visible before cycle c+1); see docs/MODEL.md
 * ("Scheduling semantics") for the full invariant, including the one
 * same-cycle effect (backpressure release) the wake calendar preserves.
 *
 * Quiescence contract: after each tick the engine asks the component for
 * its nextActivity() cycle. A component may only report a future cycle
 * (or kCycleNever = "blocked on a link") if every tick until then would
 * be a pure no-op — no state change, no statistics. Anything externally
 * observable per idle cycle (stall counters, round-robin pointers) must
 * either keep the component active or be reconstructed in catchUp().
 * The default nextActivity() of 0 means "always active", so unaudited
 * components are ticked every cycle exactly as the legacy engine did.
 *
 * The legacy tick-everything mode is kept behind setFullTick(true) (or
 * the GMOMS_FULL_TICK=1 environment variable) and both modes are pinned
 * cycle- and stat-exact against each other by tests/test_engine_skip.cc.
 */

#ifndef GMOMS_SIM_ENGINE_HH
#define GMOMS_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

class Engine;
class TickTeam;

/** Conventional tick-group ids used by the accelerator model. Group ids
 *  are arbitrary small non-negative ints; these names only document who
 *  uses which (see Engine::setTickGroup for the hazard contract). */
namespace tick_group
{
constexpr int kDram = 0;       //!< all DramChannels
constexpr int kCacheBank = 1;  //!< all MomsBanks (shared and private)

/** Cluster boards get disjoint per-board groups so one board's banks
 *  never share a parallel span with another board's: board b's DRAM
 *  channels tick in group 2b and its MOMS banks in group 2b+1 (board 0
 *  coincides with the single-board ids above). The hazard contract
 *  holds per board exactly as it does single-board — a board's
 *  components only touch board-local queues; cross-board traffic goes
 *  through the serially-ticked BoardLink. */
constexpr int
boardDram(std::uint32_t board)
{
    return static_cast<int>(board) * 2;
}
constexpr int
boardCacheBank(std::uint32_t board)
{
    return static_cast<int>(board) * 2 + 1;
}
} // namespace tick_group

/**
 * Base class for everything that performs work each simulated cycle.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /** Perform one cycle of work. */
    virtual void tick() = 0;

    /**
     * Earliest cycle of the next useful work, queried right after each
     * tick (and on wakeAll()).
     *
     *  - any value <= now (canonically 0): stay active, tick next cycle;
     *  - a future cycle c: sleep, tick again at c (e.g. a timeout);
     *  - kCycleNever: blocked on a link — sleep until a TimedQueue wake
     *    hook or an explicit Engine::requestWake() fires.
     *
     * Skipped ticks must be pure no-ops (see the quiescence contract in
     * the file header). The default keeps the component always active.
     */
    virtual Cycle nextActivity() const { return 0; }

    /**
     * Reconcile per-cycle accounting over cycles skipped while asleep:
     * called with the current cycle whenever the engine pauses
     * (runUntil exit). Implementations attribute [last-accounted, upto)
     * in bulk (idle counters, free-running round-robin pointers).
     */
    virtual void catchUp(Cycle upto) { (void)upto; }

    /** Hierarchical instance name, for logging and stats. */
    const std::string& name() const { return name_; }

    /** Engine this component is registered with (null before add()). */
    Engine* boundEngine() const { return engine_; }

  protected:
    /** Ask the bound engine to tick this component (again) at @p at. */
    inline void requestSelfWake(Cycle at);

  private:
    Engine* engine_ = nullptr;
    std::size_t engine_index_ = 0;
    std::string name_;

    friend class Engine;
};

/**
 * The simulation engine: owns the cycle counter, the tick list and the
 * wake calendar.
 *
 * Components are registered by pointer and must outlive the engine run.
 */
class Engine
{
  public:
    /** Wall-clock-relevant scheduling counters. */
    struct Stats
    {
        std::uint64_t cycles = 0;          //!< cycles simulated
        std::uint64_t cycles_skipped = 0;  //!< fast-forwarded, no tick
        std::uint64_t ticks_executed = 0;  //!< component ticks run
        std::uint64_t ticks_skipped = 0;   //!< component ticks elided
        std::uint64_t wakes = 0;           //!< requestWake() calls
    };

    /** How often runUntil() may evaluate its predicate. */
    enum class Poll
    {
        /** Evaluate done() every cycle; never fast-forward now_. Safe
         *  for predicates with side effects (test harnesses that drive
         *  queues from the predicate). Idle components are still
         *  skipped — their wake hooks cover predicate-driven pushes. */
        EveryCycle,
        /** done() is pure (reads simulation state only): evaluate it
         *  only after event cycles and fast-forward now_ across gaps
         *  where every component sleeps. */
        OnEvents,
    };

    Engine();
    ~Engine();  //!< out of line: joins the tick team, if any

    /**
     * Register a component; rejects null and duplicate registration
     * (a duplicate would silently double-tick) via fatal().
     */
    void add(Component* c);

    /** Components not assigned to any parallel tick group. */
    static constexpr int kSerialTickGroup = -1;

    /**
     * Assign @p c to a parallel tick group (kSerialTickGroup opts back
     * out). Members of the same group may be ticked concurrently when
     * due in the same cycle, so they must honor the hazard contract:
     * a grouped component's tick()/nextActivity() may touch only its
     * own state and queues it is the registered endpoint of — never
     * another same-group member's queues, the backing store, or any
     * other shared mutable state. Cross-group and component→engine
     * effects remain safe: requestWake() calls from inside a parallel
     * span are buffered and replayed deterministically after the span's
     * barrier (see src/sim/tick_team.hh).
     */
    void setTickGroup(Component* c, int group);

    /**
     * Size of the tick thread team (0 or 1 = serial). The constructor
     * seeds this from GMOMS_TICK_THREADS; a nonzero explicit setting
     * here (e.g. AccelConfig::tick_threads) overrides the environment.
     * Results are bit-identical to serial at any thread count.
     */
    void setTickThreads(unsigned n);
    unsigned tickThreads() const { return tick_threads_; }

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Advance the simulation by exactly one cycle. */
    void tick();

    /**
     * Run until @p done returns true (checked before ticking) or
     * @p max_cycles elapse.
     *
     * @return true if @p done fired, false if the cycle limit was hit.
     */
    bool runUntil(const std::function<bool()>& done,
                  Cycle max_cycles = kCycleNever,
                  Poll poll = Poll::EveryCycle);

    /**
     * Schedule @p c to be ticked at cycle @p at (earlier requests win).
     * A wake for the current cycle during tick() is honored this cycle
     * when @p c would still tick after the current component in legacy
     * registration order, and next cycle otherwise — preserving exact
     * legacy semantics for same-cycle backpressure release. Unregistered
     * components are ignored (they cannot be ticked anyway).
     */
    void requestWake(Component* c, Cycle at);

    /** Null-safe wake helper for links that may be unbound. */
    static void
    wake(Component* c, Cycle at)
    {
        if (c != nullptr && c->boundEngine() != nullptr)
            c->boundEngine()->requestWake(c, at);
    }

    /**
     * Mark every component runnable at the current cycle. Called at
     * each runUntil() entry so external state mutations between runs
     * (scheduler arming, array swaps, cache invalidation, test pokes)
     * are re-observed without hooks.
     */
    void wakeAll();

    /** Tick every component every cycle (the legacy engine). */
    void setFullTick(bool full) { full_tick_ = full; }
    bool fullTick() const { return full_tick_; }

    const Stats& stats() const { return stats_; }

    /** Number of registered components. */
    std::size_t numComponents() const { return components_.size(); }

  private:
    /** Earliest calendar entry; kCycleNever when everything sleeps.
     *  O(1): wake_min_ is recomputed while the due list is built and
     *  folded on every later calendar write, so it is exact whenever
     *  the engine is between ticks. */
    Cycle nextWake() const { return wake_min_; }

    /** Adaptive fallback for throughput-bound phases: every
     *  kAdaptWindow idle-mode cycles the engine checks how many
     *  component ticks it actually skipped; below kAdaptMinSkipPct
     *  the calendar bookkeeping costs more than the skipped ticks
     *  save, so the engine runs plain full-tick for kAdaptFullSpan
     *  cycles before probing again. Always exact: a full-tick span is
     *  the legacy schedule itself, and the wakeAll() on resume
     *  re-arms every component before the calendar is trusted again. */
    static constexpr Cycle kAdaptWindow = 1024;
    static constexpr Cycle kAdaptFullSpan = 16384;
    static constexpr std::uint64_t kAdaptMinSkipPct = 40;

    /** Consecutive "active" nextActivity() answers before the engine
     *  stops asking for a while (see kQueryDefer). */
    static constexpr std::uint8_t kQueryStreak = 16;
    /** Ticks a long-active component runs without being re-queried.
     *  Keeping a component awake longer is always exact (the legacy
     *  engine ticks everything every cycle), so deferring the query
     *  only amortizes its cost; the worst case is kQueryDefer extra
     *  ticks after the component would first have slept. */
    static constexpr std::uint8_t kQueryDefer = 15;

    /** Minimum same-group run length worth a barrier round-trip. */
    static constexpr std::size_t kMinParallelSpan = 4;
    /** Issuer sentinel for calendar-only wakes (engine not mid-cycle). */
    static constexpr std::size_t kNoIssuer =
        static_cast<std::size_t>(-1);

    /**
     * Apply one wake: the shared tail of requestWake() and of the
     * post-span replay of buffered wakes. @p issuer is the engine index
     * of the component that issued the wake (kNoIssuer outside tick()),
     * which decides the same-cycle "ticks later this cycle" insertion;
     * @p insert_from is the due_ position the sorted insert may start
     * at (one past the issuer serially, the span end during replay). An
     * insertion that would land before it means a same-cycle wake
     * crossed *into* an already-completed parallel span — a hazard
     * contract violation — and fails loudly.
     */
    void applyWake(std::size_t i, std::size_t issuer, Cycle at,
                   std::size_t insert_from);

    /** Tick due_[begin..end) (one tick group) on the thread team, then
     *  replay buffered wakes and per-component bookkeeping. */
    void runParallelSpan(std::size_t begin, std::size_t end);

    /** Tick every component in index order (full-tick / adaptive
     *  spans), using the team for parallel-group index runs. */
    void tickAllComponents();

    void rebuildFullRuns();
    void ensureTeam();
    bool parallelEnabled() const { return tick_threads_ >= 2; }

    /** Contiguous component-index run with a uniform parallel verdict
     *  (precomputed for the full-tick paths). */
    struct FullRun
    {
        std::size_t begin;
        std::size_t end;
        bool parallel;
    };

    Cycle now_ = 0;
    Cycle wake_min_ = 0;  //!< cached min of wake_ (see nextWake())
    bool full_tick_ = false;
    Cycle adapt_window_end_ = kAdaptWindow;
    Cycle adapt_full_until_ = 0;   //!< full-tick span end (adaptive)
    std::uint64_t adapt_skip_base_ = 0;    //!< ticks_skipped at window start
    std::uint64_t adapt_cycle_base_ = 0;   //!< cycles at window start
    std::vector<Component*> components_;
    std::vector<Cycle> wake_;        //!< calendar: next tick per component
    std::vector<Cycle> due_stamp_;   //!< cycle a component last entered due_
    std::vector<std::uint8_t> streak_;  //!< consecutive active answers
    std::vector<std::uint8_t> defer_;   //!< remaining unqueried ticks
    std::vector<std::size_t> due_;   //!< indices ticking this cycle, sorted
    std::size_t due_pos_ = 0;        //!< current position within due_
    bool ticking_ = false;
    Stats stats_;

    unsigned tick_threads_ = 0;          //!< 0/1 = serial
    std::vector<std::int8_t> group_;     //!< tick group per component
    std::unique_ptr<TickTeam> team_;     //!< created at first span
    bool full_runs_dirty_ = true;
    std::vector<FullRun> full_runs_;     //!< index runs for full-tick
    std::vector<std::size_t> identity_;  //!< 0..N-1 (span index base)

    friend class TickTeam;
};

inline void
Component::requestSelfWake(Cycle at)
{
    if (engine_ != nullptr)
        engine_->requestWake(this, at);
}

} // namespace gmoms

#endif // GMOMS_SIM_ENGINE_HH
