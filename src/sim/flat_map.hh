/**
 * @file
 * Open-addressing flat hash map for simulator hot paths.
 *
 * A drop-in replacement for the `std::unordered_map`s that used to sit
 * on per-cycle paths (PE edge-burst tracking, DynaBurst windows and
 * in-flight bursts). Those maps are capacity-limited by construction
 * (in-flight bursts, open windows), so a preallocated flat array with
 * linear probing serves every find/insert/erase without touching the
 * allocator in steady state — node-based unordered_map allocates on
 * every insert.
 *
 * Properties:
 *  - integral keys only, hashed with the splitmix64 finalizer;
 *  - power-of-two slot count, linear probing, backward-shift deletion
 *    (no tombstones, so probe chains never degrade);
 *  - grows by doubling when load exceeds ~0.7 (steady state: no
 *    allocation once the in-flight window has been seen once);
 *  - iteration (forEach) visits occupied slots in slot order, which is
 *    a deterministic function of the insert/erase history — unlike
 *    unordered_map, whose order is implementation-defined.
 */

#ifndef GMOMS_SIM_FLAT_MAP_HH
#define GMOMS_SIM_FLAT_MAP_HH

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace gmoms
{

template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral_v<K>,
                  "FlatMap keys must be integral (addresses, tags)");

  public:
    /** @param expected Sizing hint: capacity the map should hold
     *  without rehashing. */
    explicit FlatMap(std::size_t expected = 8)
    {
        rehash(slotsFor(expected));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Entries the map holds before the next growth. */
    std::size_t capacity() const { return max_load_; }

    V*
    find(K key)
    {
        const std::size_t slot = findSlot(key);
        return slot != kNoSlot ? &slots_[slot].value : nullptr;
    }

    const V*
    find(K key) const
    {
        const std::size_t slot = findSlot(key);
        return slot != kNoSlot ? &slots_[slot].value : nullptr;
    }

    bool contains(K key) const { return findSlot(key) != kNoSlot; }

    /**
     * Insert (key, value-from-args) if absent.
     * @return {pointer to the value, whether it was inserted}.
     */
    template <typename... Args>
    std::pair<V*, bool>
    tryEmplace(K key, Args&&... args)
    {
        if (std::size_t slot = findSlot(key); slot != kNoSlot)
            return {&slots_[slot].value, false};
        if (size_ + 1 > max_load_)
            rehash(slots_.size() * 2);
        std::size_t slot = home(key);
        while (slots_[slot].used)
            slot = next(slot);
        slots_[slot].used = true;
        slots_[slot].key = key;
        slots_[slot].value = V(std::forward<Args>(args)...);
        ++size_;
        return {&slots_[slot].value, true};
    }

    V&
    operator[](K key)
    {
        return *tryEmplace(key).first;
    }

    /** Remove @p key; @return whether it was present. */
    bool
    erase(K key)
    {
        std::size_t slot = findSlot(key);
        if (slot == kNoSlot)
            return false;
        // Backward-shift deletion: move up any later chain member that
        // would become unreachable through the vacated slot.
        std::size_t hole = slot;
        std::size_t probe = next(hole);
        while (slots_[probe].used) {
            const std::size_t h = home(slots_[probe].key);
            // Move probe into the hole unless its home lies strictly
            // inside (hole, probe] — i.e. the wrapped distance from
            // home to hole is no larger than from home to probe.
            const std::size_t dist_hole = (hole - h) & mask_;
            const std::size_t dist_probe = (probe - h) & mask_;
            if (dist_hole <= dist_probe) {
                slots_[hole] = std::move(slots_[probe]);
                hole = probe;
            }
            probe = next(probe);
        }
        slots_[hole].used = false;
        slots_[hole].value = V{};
        --size_;
        return true;
    }

    void
    clear()
    {
        for (Slot& s : slots_)
            s = Slot{};
        size_ = 0;
    }

    /** Visit every (key, value) in slot order; @p fn may mutate the
     *  value but must not insert or erase. */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        for (Slot& s : slots_)
            if (s.used)
                fn(s.key, s.value);
    }

    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const Slot& s : slots_)
            if (s.used)
                fn(s.key, s.value);
    }

  private:
    struct Slot
    {
        K key{};
        V value{};
        bool used = false;
    };

    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    static std::uint64_t
    mix(std::uint64_t x)
    {
        // splitmix64 finalizer: full avalanche, identical everywhere.
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

    static std::size_t
    slotsFor(std::size_t expected)
    {
        std::size_t slots = 8;
        // Keep load at or below ~0.7 for the expected entry count.
        while (slots * 7 / 10 < expected)
            slots *= 2;
        return slots;
    }

    std::size_t home(K key) const
    {
        return static_cast<std::size_t>(
                   mix(static_cast<std::uint64_t>(key))) &
               mask_;
    }

    std::size_t next(std::size_t slot) const
    {
        return (slot + 1) & mask_;
    }

    std::size_t
    findSlot(K key) const
    {
        std::size_t slot = home(key);
        while (slots_[slot].used) {
            if (slots_[slot].key == key)
                return slot;
            slot = next(slot);
        }
        return kNoSlot;
    }

    void
    rehash(std::size_t new_slots)
    {
        assert((new_slots & (new_slots - 1)) == 0);
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_slots, Slot{});
        mask_ = new_slots - 1;
        max_load_ = new_slots * 7 / 10;
        size_ = 0;
        for (Slot& s : old)
            if (s.used)
                tryEmplace(s.key, std::move(s.value));
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t max_load_ = 0;
    std::size_t size_ = 0;
};

} // namespace gmoms

#endif // GMOMS_SIM_FLAT_MAP_HH
