/**
 * @file
 * Event-driven queue-occupancy probe.
 *
 * A QueueProbe turns the (cycle, size) change events of a FIFO into a
 * time-weighted depth histogram: on every push/pop the elapsed cycles
 * since the previous change are credited to the old depth. Because the
 * accounting is purely event-driven it costs nothing per cycle, is
 * exact under the idle-aware engine's time-skip (queue sizes cannot
 * change while every component sleeps), and bit-matches the full-tick
 * engine (pushes and pops happen at identical cycles in both modes).
 *
 * Probes live in src/sim (not src/obs) so the low-level containers
 * (TimedQueue, RingDeque) can accept one without depending on the
 * telemetry subsystem; attaching is optional and a detached container
 * pays only a null-pointer test per push/pop.
 */

#ifndef GMOMS_SIM_QUEUE_PROBE_HH
#define GMOMS_SIM_QUEUE_PROBE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

class QueueProbe
{
  public:
    /** @param capacity Fixed queue capacity, or 0 for growable FIFOs
     *  (RingDeque) where "full" is not meaningful. */
    QueueProbe(std::string name, std::size_t capacity)
        : name_(std::move(name)), capacity_(capacity)
    {
        cycles_at_depth_.resize(capacity_ + 1, 0);
    }

    /** Record that the queue size changed to @p size at cycle @p now.
     *  Elapsed time since the previous change is credited to the old
     *  depth. Same-cycle changes collapse (zero elapsed cycles). */
    void
    onChange(Cycle now, std::size_t size)
    {
        account(now);
        size_ = size;
        high_water_ = std::max(high_water_, size);
    }

    /** Close the books at @p now (end of run); idempotent. */
    void finalize(Cycle now) { account(now); }

    const std::string& name() const { return name_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t highWater() const { return high_water_; }

    /** Cycles spent at each depth; index = depth. */
    const std::vector<Cycle>& cyclesAtDepth() const
    {
        return cycles_at_depth_;
    }

    /** Cycles the queue spent at its fixed capacity (0 for growable
     *  FIFOs — no fixed "full" exists). */
    Cycle
    timeAtFull() const
    {
        return capacity_ != 0 && capacity_ < cycles_at_depth_.size()
                   ? cycles_at_depth_[capacity_]
                   : 0;
    }

    /** Time-weighted mean depth over the observed span. */
    double
    avgDepth() const
    {
        std::uint64_t cycles = 0, weighted = 0;
        for (std::size_t d = 0; d < cycles_at_depth_.size(); ++d) {
            cycles += cycles_at_depth_[d];
            weighted += cycles_at_depth_[d] * d;
        }
        return cycles == 0 ? 0.0
                           : static_cast<double>(weighted) /
                                 static_cast<double>(cycles);
    }

  private:
    void
    account(Cycle now)
    {
        if (now > last_change_) {
            if (size_ >= cycles_at_depth_.size())
                cycles_at_depth_.resize(size_ + 1, 0);
            cycles_at_depth_[size_] += now - last_change_;
            last_change_ = now;
        }
    }

    std::string name_;
    std::size_t capacity_;
    std::vector<Cycle> cycles_at_depth_;
    std::size_t size_ = 0;
    std::size_t high_water_ = 0;
    Cycle last_change_ = 0;
};

} // namespace gmoms

#endif // GMOMS_SIM_QUEUE_PROBE_HH
