/**
 * @file
 * Barrier-synchronized worker team for phase-parallel ticking.
 *
 * A TickTeam executes one contiguous span of an engine's due list — all
 * members of a single hazard-free tick group — across a fixed set of
 * threads. Determinism does not come from ordering the execution (chunks
 * run concurrently) but from confining every cross-component effect:
 *
 *  - A component in a parallel group may only mutate its own state and
 *    the queues it is the registered endpoint of; no two same-group
 *    components share a queue endpoint (the hazard contract, enforced
 *    socially by the group assignments in src/mem and src/cache and
 *    loudly by Engine::applyWake's in-span insertion check).
 *  - Engine::requestWake calls made while a chunk runs are not applied;
 *    they are recorded into a per-thread buffer together with the
 *    *issuer's* component index. After the barrier the coordinating
 *    thread replays them through Engine::applyWake. Every wake effect is
 *    a commutative fold (min on the calendar, a stamp-guarded sorted
 *    insert into the due list, a counter increment), and the same-cycle
 *    "ticks later this cycle" decision depends only on the issuer index
 *    carried in the buffer — so replay order does not matter and results
 *    are bit-identical to serial execution at any thread count.
 *
 * The barrier is a ticket (seq/done) pair: workers spin briefly (with
 * yields, so a single-CPU host still makes progress), then park on a
 * condition variable. The coordinating thread participates as chunk 0.
 */

#ifndef GMOMS_SIM_TICK_TEAM_HH
#define GMOMS_SIM_TICK_TEAM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/types.hh"

namespace gmoms
{

class Engine;

/** A requestWake() recorded during a parallel span, replayed on the
 *  coordinating thread after the barrier. */
struct BufferedWake
{
    std::size_t issuer;  //!< engine index of the component that ticked
    std::size_t target;  //!< engine index of the wake target
    Cycle at;            //!< requested wake cycle
};

namespace detail
{

/** Wake-capture context for the current thread; Engine::requestWake
 *  diverts into it while non-null (and the engine matches). */
struct TickWakeCapture
{
    Engine* engine = nullptr;  //!< engine whose wakes to capture
    std::size_t issuer = 0;    //!< component currently ticking
    std::vector<BufferedWake>* out = nullptr;
};

extern thread_local TickWakeCapture* tls_tick_capture;

} // namespace detail

class TickTeam
{
  public:
    /** Spawns @p threads - 1 workers; the calling thread is chunk 0. */
    TickTeam(Engine& engine, unsigned threads);
    ~TickTeam();

    TickTeam(const TickTeam&) = delete;
    TickTeam& operator=(const TickTeam&) = delete;

    /** Total participants (workers + the coordinating thread). */
    unsigned threads() const { return threads_; }

    /**
     * Tick components_[idx[0..n)] concurrently in deterministic
     * contiguous chunks and block until every chunk finished. With
     * @p query_na, each component whose query is not deferred is asked
     * for nextActivity() right after its tick (answers via
     * activities()). Exceptions thrown by any chunk are rethrown here,
     * lowest chunk first, after the barrier.
     */
    void runSpan(const std::size_t* idx, std::size_t n, bool query_na);

    /** nextActivity() answers of the last runSpan, indexed by span
     *  position; entries for deferred queries are stale garbage. */
    const std::vector<Cycle>& activities() const { return na_; }

    /** Wakes buffered by chunk @p t during the last runSpan. */
    const std::vector<BufferedWake>&
    wakesOf(unsigned t) const
    {
        return bufs_[t].entries;
    }

  private:
    static constexpr unsigned kIdleSpins = 4096;  //!< before parking
    static constexpr unsigned kDoneSpins = 4096;  //!< before yielding

    void workerLoop(unsigned t);
    void runChunk(unsigned t);

    /** Per-thread wake buffer, cache-line separated: entries are
     *  appended concurrently by their owning chunk. */
    struct alignas(64) WakeBuf
    {
        std::vector<BufferedWake> entries;
    };

    Engine& eng_;
    unsigned threads_;

    // Span descriptor: written by the coordinator before the seq_
    // release, read by workers after their acquire.
    const std::size_t* idx_ = nullptr;
    std::size_t count_ = 0;
    bool query_na_ = false;
    std::vector<Cycle> na_;
    std::vector<WakeBuf> bufs_;
    std::vector<std::exception_ptr> errs_;

    std::atomic<std::uint64_t> seq_{0};  //!< span ticket
    std::atomic<unsigned> done_{0};      //!< finished worker chunks
    std::atomic<bool> stop_{false};
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::thread> workers_;
};

} // namespace gmoms

#endif // GMOMS_SIM_TICK_TEAM_HH
