/**
 * @file
 * Minimal statistics registry.
 *
 * Components own plain uint64_t / double counters and register them by
 * name; the registry can render all counters as a table or export a flat
 * map. Lookup by dotted path supports test assertions.
 *
 * Registrations are raw pointers, so a component that dies before the
 * registry would leave dump()/value() reading freed memory. Components
 * therefore hold a StatRegistry::Eraser (obtained via scopedPrefix())
 * that removes their entries on destruction. The eraser holds a weak
 * reference to the registry's shared map, so it is safe in *both*
 * destruction orders: registry-first (the eraser quietly does nothing)
 * and component-first (the entries are unregistered before the pointers
 * dangle).
 */

#ifndef GMOMS_SIM_STATS_HH
#define GMOMS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace gmoms
{

class StatRegistry
{
  private:
    using Entry = std::variant<const std::uint64_t*, const double*>;
    struct Core
    {
        std::map<std::string, Entry> stats;
    };

  public:
    StatRegistry() : core_(std::make_shared<Core>()) {}

    /**
     * RAII unregistration handle: on destruction (or re-assignment)
     * removes every path starting with its prefix, if the registry is
     * still alive. Default-constructed erasers are inert.
     */
    class Eraser
    {
      public:
        Eraser() = default;
        Eraser(Eraser&& other) noexcept
            : core_(std::move(other.core_)),
              prefix_(std::move(other.prefix_))
        {
            other.core_.reset();
        }
        Eraser&
        operator=(Eraser&& other) noexcept
        {
            if (this != &other) {
                release();
                core_ = std::move(other.core_);
                prefix_ = std::move(other.prefix_);
                other.core_.reset();
            }
            return *this;
        }
        Eraser(const Eraser&) = delete;
        Eraser& operator=(const Eraser&) = delete;
        ~Eraser() { release(); }

        /** Unregister now (idempotent; no-op if the registry died). */
        void
        release()
        {
            if (auto core = core_.lock())
                erasePrefix(*core, prefix_);
            core_.reset();
        }

      private:
        Eraser(std::weak_ptr<Core> core, std::string prefix)
            : core_(std::move(core)), prefix_(std::move(prefix))
        {
        }

        std::weak_ptr<Core> core_;
        std::string prefix_;

        friend class StatRegistry;
    };

    /** Register (or re-point) an integer counter under @p path. */
    void
    addCounter(const std::string& path, const std::uint64_t* counter)
    {
        core_->stats[path] = counter;
    }

    /** Register a floating-point gauge under @p path. */
    void
    addGauge(const std::string& path, const double* gauge)
    {
        core_->stats[path] = gauge;
    }

    /**
     * Current value of a registered stat as double; 0 when missing.
     * Prefer tryValue()/valueOr() in assertions — the silent 0.0 here
     * masks path typos.
     */
    double
    value(const std::string& path) const
    {
        return valueOr(path, 0.0);
    }

    /** Current value, or nullopt when @p path is not registered. */
    std::optional<double>
    tryValue(const std::string& path) const
    {
        auto it = core_->stats.find(path);
        if (it == core_->stats.end())
            return std::nullopt;
        return read(it->second);
    }

    /** Current value, or @p fallback when @p path is not registered. */
    double
    valueOr(const std::string& path, double fallback) const
    {
        const std::optional<double> v = tryValue(path);
        return v ? *v : fallback;
    }

    bool
    has(const std::string& path) const
    {
        return core_->stats.count(path) != 0;
    }

    /** Unregister one path; @return true when it existed. */
    bool
    remove(const std::string& path)
    {
        return core_->stats.erase(path) != 0;
    }

    /** Unregister every path starting with @p prefix; @return count. */
    std::size_t
    removePrefix(const std::string& prefix)
    {
        return erasePrefix(*core_, prefix);
    }

    /**
     * Handle that unregisters every path starting with @p prefix when
     * destroyed. Components arm one in registerStats() so their
     * destruction never leaves dangling counter pointers behind.
     */
    Eraser
    scopedPrefix(std::string prefix) const
    {
        return Eraser(core_, std::move(prefix));
    }

    /** Dump all stats, sorted by path, one per line. */
    void
    dump(std::ostream& os) const
    {
        for (const auto& [path, v] : core_->stats)
            os << path << " = " << read(v) << '\n';
    }

    std::size_t size() const { return core_->stats.size(); }

  private:
    static double
    read(const Entry& e)
    {
        if (const auto* const* c = std::get_if<const std::uint64_t*>(&e))
            return static_cast<double>(**c);
        return *std::get<const double*>(e);
    }

    static std::size_t
    erasePrefix(Core& core, const std::string& prefix)
    {
        if (prefix.empty())
            return 0;
        auto it = core.stats.lower_bound(prefix);
        std::size_t erased = 0;
        while (it != core.stats.end() &&
               it->first.compare(0, prefix.size(), prefix) == 0) {
            it = core.stats.erase(it);
            ++erased;
        }
        return erased;
    }

    std::shared_ptr<Core> core_;
};

} // namespace gmoms

#endif // GMOMS_SIM_STATS_HH
