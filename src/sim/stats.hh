/**
 * @file
 * Minimal statistics registry.
 *
 * Components own plain uint64_t / double counters and register them by
 * name; the registry can render all counters as a table or export a flat
 * map. Lookup by dotted path supports test assertions.
 */

#ifndef GMOMS_SIM_STATS_HH
#define GMOMS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <variant>

namespace gmoms
{

class StatRegistry
{
  public:
    /** Register (or re-point) an integer counter under @p path. */
    void
    addCounter(const std::string& path, const std::uint64_t* counter)
    {
        stats_[path] = counter;
    }

    /** Register a floating-point gauge under @p path. */
    void
    addGauge(const std::string& path, const double* gauge)
    {
        stats_[path] = gauge;
    }

    /** Current value of a registered stat as double; 0 when missing. */
    double
    value(const std::string& path) const
    {
        auto it = stats_.find(path);
        if (it == stats_.end())
            return 0.0;
        if (const auto* const* c = std::get_if<const std::uint64_t*>(
                &it->second))
            return static_cast<double>(**c);
        return *std::get<const double*>(it->second);
    }

    bool has(const std::string& path) const { return stats_.count(path); }

    /** Dump all stats, sorted by path, one per line. */
    void
    dump(std::ostream& os) const
    {
        for (const auto& [path, v] : stats_) {
            os << path << " = ";
            if (const auto* const* c =
                    std::get_if<const std::uint64_t*>(&v)) {
                os << **c;
            } else {
                os << *std::get<const double*>(v);
            }
            os << '\n';
        }
    }

    std::size_t size() const { return stats_.size(); }

  private:
    using Entry = std::variant<const std::uint64_t*, const double*>;
    std::map<std::string, Entry> stats_;
};

} // namespace gmoms

#endif // GMOMS_SIM_STATS_HH
