#include "src/sim/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

/** Set while the current thread is a pool worker (any pool): nested
 *  runAll() calls then execute inline instead of waiting on workers
 *  that may all be blocked on the same wait. */
thread_local bool tls_in_worker = false;

} // namespace

ThreadPool::ThreadPool(unsigned workers, std::size_t queue_slots)
{
    if (workers == 0)
        workers = defaultWorkers();
    queue_slots_ = queue_slots != 0 ? queue_slots
                                    : static_cast<std::size_t>(workers) * 4;
    queue_.reserve(queue_slots_);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    queue_nonempty_.notify_all();
    queue_nonfull_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

unsigned
ThreadPool::parseWorkers(const char* value)
{
    if (value == nullptr || value[0] == '\0')
        return 0;
    char* end = nullptr;
    const unsigned long n = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' ||
        n > std::numeric_limits<unsigned>::max())
        return 0;
    return static_cast<unsigned>(n);
}

unsigned
ThreadPool::defaultWorkers()
{
    const char* env = std::getenv("GMOMS_JOBS");
    if (env != nullptr && env[0] != '\0') {
        const unsigned n = parseWorkers(env);
        // Fail loudly: "GMOMS_JOBS=eight" silently running with one
        // worker per core is exactly the wrong-but-plausible fallback
        // a sweep user would never notice.
        if (n == 0)
            fatal("GMOMS_JOBS must be a positive integer worker count, "
                  "got \"" + std::string(env) + "\"");
        return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

ThreadPool&
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::post(Job job)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_nonfull_.wait(lock, [this] {
            return queue_.size() - queue_head_ < queue_slots_ ||
                   stopping_;
        });
        if (stopping_)
            return;
        // Compact the drained prefix before appending; amortized O(1).
        if (queue_head_ != 0 && queue_.size() == queue_head_) {
            queue_.clear();
            queue_head_ = 0;
        }
        queue_.push_back(std::move(job));
    }
    queue_nonempty_.notify_one();
}

void
ThreadPool::workerLoop()
{
    tls_in_worker = true;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            queue_nonempty_.wait(lock, [this] {
                return queue_head_ < queue_.size() || stopping_;
            });
            if (queue_head_ >= queue_.size()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(queue_[queue_head_]);
            ++queue_head_;
            if (queue_head_ == queue_.size()) {
                queue_.clear();
                queue_head_ = 0;
            }
        }
        queue_nonfull_.notify_one();
        job();  // exceptions must be handled by the wrapper (runAll)
    }
}

void
ThreadPool::runAll(std::vector<Job> jobs)
{
    if (jobs.empty())
        return;

    if (tls_in_worker) {
        // Nested call from a worker: run inline (lowest-index failure
        // wins trivially — jobs execute in order).
        for (Job& job : jobs)
            job();
        return;
    }

    struct Batch
    {
        std::mutex mu;
        std::condition_variable done;
        std::size_t remaining;
        std::exception_ptr first_error;
        std::size_t first_error_index;
    };
    auto batch = std::make_shared<Batch>();
    batch->remaining = jobs.size();
    batch->first_error_index = std::numeric_limits<std::size_t>::max();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        post([batch, i, job = std::move(jobs[i])]() mutable {
            std::exception_ptr error;
            try {
                job();
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(batch->mu);
            if (error && i < batch->first_error_index) {
                batch->first_error = error;
                batch->first_error_index = i;
            }
            if (--batch->remaining == 0)
                batch->done.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->first_error)
        std::rethrow_exception(batch->first_error);
}

} // namespace gmoms
