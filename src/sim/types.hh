/**
 * @file
 * Fundamental scalar types shared across the gmoms simulator.
 */

#ifndef GMOMS_SIM_TYPES_HH
#define GMOMS_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace gmoms
{

/** Simulated clock cycle count (accelerator clock domain). */
using Cycle = std::uint64_t;

/** Byte address in the global (interleaved) DRAM address space. */
using Addr = std::uint64_t;

/** Node identifier. Table II graphs have up to 118M nodes; 32 bits fit. */
using NodeId = std::uint32_t;

/** Edge index. Table II graphs have up to ~2B edges; 64 bits to be safe. */
using EdgeId = std::uint64_t;

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid node. */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** DRAM cache line size in bytes used throughout the memory system. */
inline constexpr std::uint32_t kLineBytes = 64;

/** Channel interleaving granularity (Section IV-B of the paper). */
inline constexpr std::uint32_t kInterleaveBytes = 2048;

/** Align @p v down to a multiple of @p a (power of two). */
constexpr Addr
alignDown(Addr v, std::uint64_t a)
{
    return v & ~(a - 1);
}

/** Align @p v up to a multiple of @p a (power of two). */
constexpr Addr
alignUp(Addr v, std::uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

/** Integer ceil division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t n, std::uint64_t d)
{
    return (n + d - 1) / d;
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr std::uint32_t
log2Exact(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v > 1) { v >>= 1; ++r; }
    return r;
}

} // namespace gmoms

#endif // GMOMS_SIM_TYPES_HH
