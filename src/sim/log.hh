/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic() flags an internal simulator bug (aborts); fatal() flags a user
 * configuration error (clean exit); warn()/inform() report conditions the
 * user should know about without stopping the run.
 */

#ifndef GMOMS_SIM_LOG_HH
#define GMOMS_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gmoms
{

/** Thrown by fatal(): the configuration (user input) is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what) {}
};

/** Thrown by panic(): the simulator itself is broken. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what)
        : std::logic_error(what) {}
};

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

/** Report an internal invariant violation (a simulator bug). */
[[noreturn]] inline void
panic(const std::string& msg)
{
    throw PanicError("panic: " + msg);
}

/** Nonfatal warning to stderr. */
inline void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational message to stderr. */
inline void
inform(const std::string& msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace gmoms

#endif // GMOMS_SIM_LOG_HH
