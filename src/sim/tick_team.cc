#include "src/sim/tick_team.hh"

#include "src/sim/engine.hh"

namespace gmoms
{

namespace detail
{
thread_local TickWakeCapture* tls_tick_capture = nullptr;
} // namespace detail

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

} // namespace

TickTeam::TickTeam(Engine& engine, unsigned threads)
    : eng_(engine), threads_(threads < 1 ? 1 : threads)
{
    bufs_.resize(threads_);
    errs_.resize(threads_);
    workers_.reserve(threads_ - 1);
    for (unsigned t = 1; t < threads_; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
}

TickTeam::~TickTeam()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_relaxed);
        seq_.fetch_add(1, std::memory_order_release);
        cv_.notify_all();
    }
    for (std::thread& w : workers_)
        w.join();
}

void
TickTeam::runSpan(const std::size_t* idx, std::size_t n, bool query_na)
{
    idx_ = idx;
    count_ = n;
    query_na_ = query_na;
    if (query_na && na_.size() < n)
        na_.resize(n);
    done_.store(0, std::memory_order_relaxed);
    {
        // The ticket is bumped under the mutex so a worker can never
        // park between observing the old ticket and waiting: either it
        // sees the new ticket in its spin loop, or it re-checks under
        // the same mutex before parking and the notify reaches it.
        std::lock_guard<std::mutex> lock(mu_);
        seq_.fetch_add(1, std::memory_order_release);
        cv_.notify_all();
    }
    runChunk(0);
    unsigned spins = 0;
    while (done_.load(std::memory_order_acquire) != threads_ - 1) {
        if (++spins < kDoneSpins)
            cpuRelax();
        else
            std::this_thread::yield();
    }
    for (unsigned t = 0; t < threads_; ++t) {
        if (errs_[t]) {
            const std::exception_ptr e = errs_[t];
            for (std::exception_ptr& ep : errs_)
                ep = nullptr;
            std::rethrow_exception(e);
        }
    }
}

void
TickTeam::workerLoop(unsigned t)
{
    std::uint64_t seen = 0;
    while (true) {
        unsigned spins = 0;
        while (seq_.load(std::memory_order_acquire) == seen) {
            if (++spins < kIdleSpins) {
                cpuRelax();
                if ((spins & 63u) == 0)
                    std::this_thread::yield();  // single-CPU progress
            } else {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock, [&] {
                    return seq_.load(std::memory_order_acquire) != seen;
                });
            }
        }
        seen = seq_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        runChunk(t);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
TickTeam::runChunk(unsigned t)
{
    std::vector<BufferedWake>& out = bufs_[t].entries;
    out.clear();
    const std::size_t lo = count_ * t / threads_;
    const std::size_t hi = count_ * (t + 1) / threads_;
    if (lo >= hi)
        return;
    detail::TickWakeCapture cap{&eng_, 0, &out};
    detail::tls_tick_capture = &cap;
    try {
        Component* const* comps = eng_.components_.data();
        const std::uint8_t* defer = eng_.defer_.data();
        for (std::size_t k = lo; k < hi; ++k) {
            const std::size_t i = idx_[k];
            cap.issuer = i;
            comps[i]->tick();
            if (query_na_ && defer[i] == 0)
                na_[k] = comps[i]->nextActivity();
        }
    } catch (...) {
        errs_[t] = std::current_exception();
    }
    detail::tls_tick_capture = nullptr;
}

} // namespace gmoms
