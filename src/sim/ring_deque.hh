/**
 * @file
 * Growable ring-buffer FIFO for simulator hot paths.
 *
 * Replaces the `std::deque`s that sat on per-cycle paths (PE decode
 * and shard queues, MOMS drain list, DRAM in-flight list): libstdc++'s
 * deque allocates a block per ~512 B of payload, so steady-state
 * push/pop churn hits the allocator continuously. A RingDeque is the
 * TimedQueue storage scheme (contiguous ring, head index + size)
 * without the timing semantics: FIFO push_back/pop_front, front/back
 * access, and amortized growth by doubling — after the high-water mark
 * has been seen once, no further allocation ever happens.
 */

#ifndef GMOMS_SIM_RING_DEQUE_HH
#define GMOMS_SIM_RING_DEQUE_HH

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/queue_probe.hh"

namespace gmoms
{

template <typename T>
class RingDeque
{
  public:
    explicit RingDeque(std::size_t initial_capacity = 8)
        : ring_(roundUpPow2(initial_capacity))
    {
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Attach an occupancy probe (telemetry). RingDeques have no
     *  engine of their own, so the clock is supplied here; both the
     *  probe and the engine must outlive the deque or be detached
     *  (nullptr) first. */
    void
    attachProbe(QueueProbe* probe, const Engine* engine)
    {
        probe_ = probe;
        probe_engine_ = engine;
        if (probe_)
            probe_->onChange(probe_engine_->now(), size_);
    }

    T&
    front()
    {
        assert(size_ != 0);
        return ring_[head_];
    }

    const T&
    front() const
    {
        assert(size_ != 0);
        return ring_[head_];
    }

    T&
    back()
    {
        assert(size_ != 0);
        return ring_[wrap(head_ + size_ - 1)];
    }

    const T&
    back() const
    {
        assert(size_ != 0);
        return ring_[wrap(head_ + size_ - 1)];
    }

    /** i-th element from the front (0 = front()). */
    T&
    operator[](std::size_t i)
    {
        assert(i < size_);
        return ring_[wrap(head_ + i)];
    }

    const T&
    operator[](std::size_t i) const
    {
        assert(i < size_);
        return ring_[wrap(head_ + i)];
    }

    void
    push_back(T item)
    {
        if (size_ == ring_.size())
            grow();
        ring_[wrap(head_ + size_)] = std::move(item);
        ++size_;
        if (probe_)
            probe_->onChange(probe_engine_->now(), size_);
    }

    template <typename... Args>
    void
    emplace_back(Args&&... args)
    {
        push_back(T(std::forward<Args>(args)...));
    }

    void
    pop_front()
    {
        assert(size_ != 0);
        ring_[head_] = T{};  // release payload resources, if any
        head_ = wrap(head_ + 1);
        --size_;
        if (probe_)
            probe_->onChange(probe_engine_->now(), size_);
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            ring_[wrap(head_ + i)] = T{};
        head_ = 0;
        size_ = 0;
        if (probe_)
            probe_->onChange(probe_engine_->now(), size_);
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p *= 2;
        return p < 2 ? 2 : p;
    }

    std::size_t wrap(std::size_t i) const
    {
        return i & (ring_.size() - 1);
    }

    void
    grow()
    {
        std::vector<T> bigger(ring_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = std::move(ring_[wrap(head_ + i)]);
        ring_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    QueueProbe* probe_ = nullptr;
    const Engine* probe_engine_ = nullptr;
};

} // namespace gmoms

#endif // GMOMS_SIM_RING_DEQUE_HH
