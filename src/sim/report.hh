/**
 * @file
 * Machine-readable result export: RunResult and counter snapshots as
 * JSON, so downstream tooling (plotting scripts, CI tracking) can
 * consume bench output without scraping tables.
 */

#ifndef GMOMS_SIM_REPORT_HH
#define GMOMS_SIM_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace gmoms
{

/** A flat JSON-object builder (string/number/bool leaves only). */
class JsonReport
{
  public:
    using Value = std::variant<std::string, double, std::uint64_t, bool>;

    JsonReport& set(const std::string& key, Value value)
    {
        entries_.emplace_back(key, std::move(value));
        return *this;
    }

    /** Serialize as a single JSON object (keys in insertion order). */
    void write(std::ostream& os) const;

    std::string str() const;

  private:
    static void writeEscaped(std::ostream& os, const std::string& s);

    std::vector<std::pair<std::string, Value>> entries_;
};

} // namespace gmoms

#endif // GMOMS_SIM_REPORT_HH
