/**
 * @file
 * Machine-readable result export: RunResult and counter snapshots as
 * JSON, so downstream tooling (plotting scripts, CI tracking) can
 * consume bench output without scraping tables.
 */

#ifndef GMOMS_SIM_REPORT_HH
#define GMOMS_SIM_REPORT_HH

#include <chrono>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "src/sim/engine.hh"

namespace gmoms
{

/** Wall-clock stopwatch for simulator-speed reporting. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds since construction or the last restart(). */
    double
    elapsedSeconds() const
    {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** A flat JSON-object builder (string/number/bool leaves, plus
 *  pre-serialized Raw values for nesting sub-objects). */
class JsonReport
{
  public:
    /** A pre-serialized JSON fragment emitted verbatim as the value —
     *  the caller guarantees it is itself valid JSON (e.g. another
     *  JsonReport's str()). Lets flat reports nest sub-objects, which
     *  the Chrome trace exporter uses for per-event "args". */
    struct Raw
    {
        std::string json;
    };

    using Value =
        std::variant<std::string, double, std::uint64_t, bool, Raw>;

    JsonReport& set(const std::string& key, Value value)
    {
        entries_.emplace_back(key, std::move(value));
        return *this;
    }

    /** Serialize as a single JSON object (keys in insertion order). */
    void write(std::ostream& os) const;

    /** The key/value entries in insertion order (the protocol encoder
     *  flattens result payloads into v1-shaped responses). */
    const std::vector<std::pair<std::string, Value>>& entries() const
    {
        return entries_;
    }

    std::string str() const;

    /** Write @p s as a JSON string literal (quotes, backslashes and
     *  all control characters escaped). */
    static void writeEscaped(std::ostream& os, const std::string& s);

  private:
    std::vector<std::pair<std::string, Value>> entries_;
};

/**
 * Engine-speed report: simulated cycles, ticks executed/skipped and
 * the simulated-cycles-per-wall-second rate, as a flat JSON object
 * (the payload of BENCH_engine.json, see bench/bench_common.hh).
 */
JsonReport engineReport(const Engine::Stats& stats,
                        double wall_seconds);

} // namespace gmoms

#endif // GMOMS_SIM_REPORT_HH
