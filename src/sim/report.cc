#include "src/sim/report.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace gmoms
{

void
JsonReport::writeEscaped(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                // Remaining control characters are invalid raw in JSON
                // strings; emit the generic escape.
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonReport::write(std::ostream& os) const
{
    os << '{';
    bool first = true;
    for (const auto& [key, value] : entries_) {
        if (!first)
            os << ',';
        first = false;
        writeEscaped(os, key);
        os << ':';
        if (const auto* s = std::get_if<std::string>(&value)) {
            writeEscaped(os, *s);
        } else if (const auto* d = std::get_if<double>(&value)) {
            if (std::isfinite(*d))
                os << *d;
            else
                os << "null";
        } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
            os << *u;
        } else if (const auto* r = std::get_if<Raw>(&value)) {
            os << r->json;
        } else {
            os << (std::get<bool>(value) ? "true" : "false");
        }
    }
    os << '}';
}

std::string
JsonReport::str() const
{
    std::ostringstream ss;
    write(ss);
    return ss.str();
}

JsonReport
engineReport(const Engine::Stats& stats, double wall_seconds)
{
    const std::uint64_t ticks_total =
        stats.ticks_executed + stats.ticks_skipped;
    JsonReport report;
    report.set("sim_cycles", stats.cycles)
        .set("cycles_skipped", stats.cycles_skipped)
        .set("ticks_executed", stats.ticks_executed)
        .set("ticks_skipped", stats.ticks_skipped)
        .set("tick_skip_fraction",
             ticks_total ? static_cast<double>(stats.ticks_skipped) /
                               static_cast<double>(ticks_total)
                         : 0.0)
        .set("wakes", stats.wakes)
        .set("wall_seconds", wall_seconds)
        .set("cycles_per_sec",
             wall_seconds > 0.0
                 ? static_cast<double>(stats.cycles) / wall_seconds
                 : 0.0);
    return report;
}

} // namespace gmoms
