#include "src/sim/engine.hh"

#include <algorithm>
#include <cstdlib>

#include "src/sim/log.hh"
#include "src/sim/tick_team.hh"

namespace gmoms
{

namespace
{

bool
envFullTick()
{
    const char* e = std::getenv("GMOMS_FULL_TICK");
    if (e == nullptr || e[0] == '\0')
        return false;
    const std::string v(e);
    // Fail loudly on anything else: a typo like GMOMS_FULL_TICK=ture
    // must not silently pick a mode (either one looks plausible in the
    // output — the two engines are bit-exact).
    if (v == "0")
        return false;
    if (v == "1")
        return true;
    fatal("GMOMS_FULL_TICK must be \"\", \"0\" or \"1\", got \"" + v +
          "\"");
}

unsigned
envTickThreads()
{
    const char* e = std::getenv("GMOMS_TICK_THREADS");
    if (e == nullptr || e[0] == '\0')
        return 0;
    const std::string v(e);
    // Same fail-loudly policy as GMOMS_FULL_TICK: results are
    // bit-identical at any thread count, so a silently-ignored typo
    // would be invisible in the output.
    std::size_t pos = 0;
    unsigned long n = 0;
    try {
        n = std::stoul(v, &pos);
    } catch (...) {
        pos = 0;
    }
    if (pos != v.size() || n > 64)
        fatal("GMOMS_TICK_THREADS must be an integer in [0, 64], got "
              "\"" + v + "\"");
    return static_cast<unsigned>(n);
}

} // namespace

Engine::Engine()
    : full_tick_(envFullTick()), tick_threads_(envTickThreads())
{
}

Engine::~Engine() = default;

void
Engine::add(Component* c)
{
    if (c == nullptr)
        fatal("Engine::add: null component");
    if (c->engine_ == this)
        fatal("Engine::add: component '" + c->name() +
              "' registered twice (would double-tick)");
    if (c->engine_ != nullptr)
        fatal("Engine::add: component '" + c->name() +
              "' already belongs to another engine");
    c->engine_ = this;
    c->engine_index_ = components_.size();
    components_.push_back(c);
    wake_.push_back(now_);  // new components start awake
    wake_min_ = std::min(wake_min_, now_);
    due_stamp_.push_back(kCycleNever);
    streak_.push_back(0);
    defer_.push_back(0);
    group_.push_back(kSerialTickGroup);
    full_runs_dirty_ = true;
}

void
Engine::setTickGroup(Component* c, int group)
{
    if (c == nullptr || c->engine_ != this)
        fatal("Engine::setTickGroup: component not registered with "
              "this engine");
    if (group < kSerialTickGroup || group > 127)
        fatal("Engine::setTickGroup: group id out of range for '" +
              c->name() + "'");
    group_[c->engine_index_] = static_cast<std::int8_t>(group);
    full_runs_dirty_ = true;
}

void
Engine::setTickThreads(unsigned n)
{
    if (n > 64)
        fatal("Engine::setTickThreads: at most 64 threads");
    if (n == 0 || n == tick_threads_)
        return;  // 0 = "no opinion": keep the environment's setting
    team_.reset();  // recreated lazily at the next parallel span
    tick_threads_ = n;
}

void
Engine::ensureTeam()
{
    if (!team_)
        team_ = std::make_unique<TickTeam>(*this, tick_threads_);
}

void
Engine::requestWake(Component* c, Cycle at)
{
    if (c == nullptr || c->engine_ != this)
        return;  // unbound/foreign components cannot be ticked anyway
    if (detail::TickWakeCapture* cap = detail::tls_tick_capture;
        cap != nullptr && cap->engine == this) {
        // Mid-parallel-span: record (issuer, target, at) and apply
        // after the barrier. Wake effects are commutative folds, so
        // replay order does not matter (see src/sim/tick_team.hh).
        cap->out->push_back({cap->issuer, c->engine_index_, at});
        return;
    }
    applyWake(c->engine_index_, ticking_ ? due_[due_pos_] : kNoIssuer,
              at, due_pos_ + 1);
}

void
Engine::applyWake(std::size_t i, std::size_t issuer, Cycle at,
                  std::size_t insert_from)
{
    ++stats_.wakes;
    if (issuer != kNoIssuer && at <= now_) {
        // Same-cycle wakes are only exact for components the legacy
        // engine would still have ticked after the issuer this cycle
        // (tick order == registration order). Everything else observes
        // the event next cycle, exactly as in legacy order.
        if (i > issuer) {
            if (due_stamp_[i] != now_) {
                if (i < due_[insert_from - 1])
                    fatal("tick-group hazard: same-cycle wake for '" +
                          components_[i]->name() +
                          "' would insert inside an already-completed "
                          "parallel span (issuer '" +
                          components_[issuer]->name() + "')");
                due_.insert(
                    std::lower_bound(due_.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             insert_from),
                                     due_.end(), i),
                    i);
                due_stamp_[i] = now_;
            }
            return;  // ticks later this cycle, observes the event then
        }
        at = now_ + 1;
    }
    wake_[i] = std::min(wake_[i], std::max(at, now_));
    wake_min_ = std::min(wake_min_, wake_[i]);
}

void
Engine::wakeAll()
{
    for (Cycle& w : wake_)
        w = now_;
    wake_min_ = now_;
}

void
Engine::tickAllComponents()
{
    if (!parallelEnabled()) {
        for (Component* c : components_)
            c->tick();
        return;
    }
    // Index order with parallel-group runs dispatched to the team.
    // ticking_ is false on the full-tick paths, so a serially-applied
    // wake and a replayed one are both pure calendar min-folds
    // (issuer = kNoIssuer) — order-insensitive by construction.
    if (full_runs_dirty_)
        rebuildFullRuns();
    for (const FullRun& r : full_runs_) {
        if (r.parallel) {
            ensureTeam();
            team_->runSpan(identity_.data() + r.begin, r.end - r.begin,
                           /*query_na=*/false);
            for (unsigned t = 0; t < team_->threads(); ++t)
                for (const BufferedWake& w : team_->wakesOf(t))
                    applyWake(w.target, kNoIssuer, w.at, 1);
        } else {
            for (std::size_t i = r.begin; i < r.end; ++i)
                components_[i]->tick();
        }
    }
}

void
Engine::rebuildFullRuns()
{
    const std::size_t n = components_.size();
    identity_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        identity_[i] = i;
    full_runs_.clear();
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i + 1;
        while (j < n && group_[j] == group_[i])
            ++j;
        const bool par = group_[i] != kSerialTickGroup &&
                         j - i >= kMinParallelSpan;
        if (!par && !full_runs_.empty() && !full_runs_.back().parallel)
            full_runs_.back().end = j;  // merge adjacent serial runs
        else
            full_runs_.push_back({i, j, par});
        i = j;
    }
    full_runs_dirty_ = false;
}

void
Engine::runParallelSpan(std::size_t begin, std::size_t end)
{
    ensureTeam();
    team_->runSpan(due_.data() + begin, end - begin, /*query_na=*/true);
    stats_.ticks_executed += end - begin;
    // Replay buffered wakes. insert_from = end: a due insertion always
    // lands at or after the span end (targets sorting into the span
    // would have been ticked mid-span serially — applyWake fails
    // loudly on that hazard). Positions before `end` never move, so
    // the span's activity answers below stay position-aligned.
    for (unsigned t = 0; t < team_->threads(); ++t)
        for (const BufferedWake& w : team_->wakesOf(t))
            applyWake(w.target, w.issuer, w.at, end);
    // Per-component bookkeeping, identical to the serial loop body but
    // batched after the barrier (each fold only touches wake_[i] of
    // span members and wake_min_ — commutative across positions).
    const std::vector<Cycle>& na = team_->activities();
    for (std::size_t pos = begin; pos < end; ++pos) {
        const std::size_t i = due_[pos];
        if (defer_[i] > 0) {
            --defer_[i];
            wake_[i] = std::min(wake_[i], now_ + 1);
        } else {
            const Cycle v = na[pos - begin];
            if (v <= now_) {
                if (streak_[i] < kQueryStreak)
                    ++streak_[i];
                else
                    defer_[i] = kQueryDefer;
                wake_[i] = std::min(wake_[i], now_ + 1);
            } else {
                streak_[i] = 0;
                if (v != kCycleNever)
                    wake_[i] = std::min(wake_[i], v);
            }
        }
        wake_min_ = std::min(wake_min_, wake_[i]);
    }
}

void
Engine::tick()
{
    if (full_tick_) {
        tickAllComponents();
        stats_.ticks_executed += components_.size();
        ++stats_.cycles;
        ++now_;
        return;
    }

    if (now_ < adapt_full_until_) {
        // Adaptive full-tick span (see kAdaptWindow in engine.hh):
        // skipping was not paying for its bookkeeping, so run the
        // legacy schedule and leave the calendar stale — ticking
        // everything is exact by definition, and wake hooks that fire
        // meanwhile only ever lower calendar entries, so they cannot
        // cause a wrong fast-forward.
        tickAllComponents();
        stats_.ticks_executed += components_.size();
        ++stats_.cycles;
        ++now_;
        if (now_ >= adapt_full_until_) {
            wakeAll();  // the stale calendar is re-armed before use
            adapt_window_end_ = now_ + kAdaptWindow;
            adapt_skip_base_ = stats_.ticks_skipped;
            adapt_cycle_base_ = stats_.cycles;
        }
        return;
    }

    // Clear due calendar entries up front (not per-tick): wakes set
    // DURING this cycle — e.g. a push whose token arrives in a future
    // cycle — must survive the recipient's own tick this cycle.
    due_.clear();
    Cycle min_rest = kCycleNever;  // earliest wake among sleepers
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (wake_[i] <= now_) {
            due_.push_back(i);
            due_stamp_[i] = now_;
            wake_[i] = kCycleNever;
        } else {
            min_rest = std::min(min_rest, wake_[i]);
        }
    }
    wake_min_ = min_rest;

    ticking_ = true;
    due_pos_ = 0;
    while (due_pos_ < due_.size()) {
        if (parallelEnabled()) {
            // A contiguous run of same-group due components is one
            // hazard-free parallel span (group members register
            // consecutively, so due_ keeps them adjacent).
            const int g = group_[due_[due_pos_]];
            if (g != kSerialTickGroup) {
                std::size_t end = due_pos_ + 1;
                while (end < due_.size() && group_[due_[end]] == g)
                    ++end;
                if (end - due_pos_ >= kMinParallelSpan) {
                    runParallelSpan(due_pos_, end);
                    due_pos_ = end;
                    continue;
                }
            }
        }
        const std::size_t i = due_[due_pos_];
        components_[i]->tick();
        ++stats_.ticks_executed;
        // Long-active components are not re-queried every tick: extra
        // awake ticks are always exact (the full-tick engine runs them
        // all), so the nextActivity() scan cost is amortized over
        // kQueryDefer ticks once a component has answered "active"
        // kQueryStreak times in a row.
        if (defer_[i] > 0) {
            --defer_[i];
            wake_[i] = std::min(wake_[i], now_ + 1);
            wake_min_ = std::min(wake_min_, wake_[i]);
            ++due_pos_;
            continue;
        }
        const Cycle na = components_[i]->nextActivity();
        if (na <= now_) {
            if (streak_[i] < kQueryStreak)
                ++streak_[i];
            else
                defer_[i] = kQueryDefer;
            wake_[i] = std::min(wake_[i], now_ + 1);
        } else {
            streak_[i] = 0;
            if (na != kCycleNever)
                wake_[i] = std::min(wake_[i], na);
        }
        wake_min_ = std::min(wake_min_, wake_[i]);
        ++due_pos_;
    }
    ticking_ = false;

    stats_.ticks_skipped += components_.size() - due_.size();
    ++stats_.cycles;
    ++now_;

    if (now_ >= adapt_window_end_ && !components_.empty()) {
        // Fast-forwarded cycles count toward the window via
        // stats_.cycles/ticks_skipped, which is what we want: they are
        // the best case for staying in idle mode.
        const std::uint64_t skipped =
            stats_.ticks_skipped - adapt_skip_base_;
        const std::uint64_t total =
            (stats_.cycles - adapt_cycle_base_) * components_.size();
        if (total > 0 && skipped * 100 < total * kAdaptMinSkipPct)
            adapt_full_until_ = now_ + kAdaptFullSpan;
        adapt_window_end_ = now_ + kAdaptWindow;
        adapt_skip_base_ = stats_.ticks_skipped;
        adapt_cycle_base_ = stats_.cycles;
    }
}

bool
Engine::runUntil(const std::function<bool()>& done, Cycle max_cycles,
                 Poll poll)
{
    const Cycle deadline =
        max_cycles == kCycleNever ? kCycleNever : now_ + max_cycles;
    // External state may have changed since the last run (iteration
    // arming, swaps, invalidation, direct test mutation): re-observe.
    wakeAll();

    bool fired = false;
    while (now_ < deadline) {
        if (done()) {
            fired = true;
            break;
        }
        if (poll == Poll::OnEvents && !full_tick_) {
            const Cycle next = nextWake();
            if (next == kCycleNever && deadline == kCycleNever)
                panic("runUntil(OnEvents): every component is quiescent "
                      "and there is no cycle limit — deadlock");
            if (next > now_) {
                // Nothing can change before `next` (done() is pure in
                // this mode): fast-forward, clamped to the deadline.
                const Cycle target = std::min(next, deadline);
                const Cycle gap = target - now_;
                stats_.cycles += gap;
                stats_.cycles_skipped += gap;
                stats_.ticks_skipped += components_.size() * gap;
                now_ = target;
                if (now_ >= deadline)
                    break;
            }
        }
        tick();
    }

    // Reconcile bulk per-cycle accounting before the caller reads any
    // statistics (no-op for components that were never skipped).
    for (Component* c : components_)
        c->catchUp(now_);
    return fired || done();
}

} // namespace gmoms
