#include "src/sim/engine.hh"

#include <algorithm>
#include <cstdlib>

#include "src/sim/log.hh"

namespace gmoms
{

namespace
{

bool
envFullTick()
{
    const char* e = std::getenv("GMOMS_FULL_TICK");
    if (e == nullptr || e[0] == '\0')
        return false;
    const std::string v(e);
    // Fail loudly on anything else: a typo like GMOMS_FULL_TICK=ture
    // must not silently pick a mode (either one looks plausible in the
    // output — the two engines are bit-exact).
    if (v == "0")
        return false;
    if (v == "1")
        return true;
    fatal("GMOMS_FULL_TICK must be \"\", \"0\" or \"1\", got \"" + v +
          "\"");
}

} // namespace

Engine::Engine() : full_tick_(envFullTick()) {}

void
Engine::add(Component* c)
{
    if (c == nullptr)
        fatal("Engine::add: null component");
    if (c->engine_ == this)
        fatal("Engine::add: component '" + c->name() +
              "' registered twice (would double-tick)");
    if (c->engine_ != nullptr)
        fatal("Engine::add: component '" + c->name() +
              "' already belongs to another engine");
    c->engine_ = this;
    c->engine_index_ = components_.size();
    components_.push_back(c);
    wake_.push_back(now_);  // new components start awake
    wake_min_ = std::min(wake_min_, now_);
    due_stamp_.push_back(kCycleNever);
    streak_.push_back(0);
    defer_.push_back(0);
}

void
Engine::requestWake(Component* c, Cycle at)
{
    if (c == nullptr || c->engine_ != this)
        return;  // unbound/foreign components cannot be ticked anyway
    const std::size_t i = c->engine_index_;
    ++stats_.wakes;
    if (ticking_ && at <= now_) {
        // Same-cycle wakes are only exact for components the legacy
        // engine would still have ticked after the current one this
        // cycle (tick order == registration order). Everything else
        // observes the event next cycle, exactly as in legacy order.
        if (i > due_[due_pos_]) {
            if (due_stamp_[i] != now_) {
                due_.insert(
                    std::lower_bound(due_.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             due_pos_ + 1),
                                     due_.end(), i),
                    i);
                due_stamp_[i] = now_;
            }
            return;  // ticks later this cycle, observes the event then
        }
        at = now_ + 1;
    }
    wake_[i] = std::min(wake_[i], std::max(at, now_));
    wake_min_ = std::min(wake_min_, wake_[i]);
}

void
Engine::wakeAll()
{
    for (Cycle& w : wake_)
        w = now_;
    wake_min_ = now_;
}

void
Engine::tick()
{
    if (full_tick_) {
        for (Component* c : components_)
            c->tick();
        stats_.ticks_executed += components_.size();
        ++stats_.cycles;
        ++now_;
        return;
    }

    if (now_ < adapt_full_until_) {
        // Adaptive full-tick span (see kAdaptWindow in engine.hh):
        // skipping was not paying for its bookkeeping, so run the
        // legacy schedule and leave the calendar stale — ticking
        // everything is exact by definition, and wake hooks that fire
        // meanwhile only ever lower calendar entries, so they cannot
        // cause a wrong fast-forward.
        for (Component* c : components_)
            c->tick();
        stats_.ticks_executed += components_.size();
        ++stats_.cycles;
        ++now_;
        if (now_ >= adapt_full_until_) {
            wakeAll();  // the stale calendar is re-armed before use
            adapt_window_end_ = now_ + kAdaptWindow;
            adapt_skip_base_ = stats_.ticks_skipped;
            adapt_cycle_base_ = stats_.cycles;
        }
        return;
    }

    // Clear due calendar entries up front (not per-tick): wakes set
    // DURING this cycle — e.g. a push whose token arrives in a future
    // cycle — must survive the recipient's own tick this cycle.
    due_.clear();
    Cycle min_rest = kCycleNever;  // earliest wake among sleepers
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (wake_[i] <= now_) {
            due_.push_back(i);
            due_stamp_[i] = now_;
            wake_[i] = kCycleNever;
        } else {
            min_rest = std::min(min_rest, wake_[i]);
        }
    }
    wake_min_ = min_rest;

    ticking_ = true;
    for (due_pos_ = 0; due_pos_ < due_.size(); ++due_pos_) {
        const std::size_t i = due_[due_pos_];
        components_[i]->tick();
        ++stats_.ticks_executed;
        // Long-active components are not re-queried every tick: extra
        // awake ticks are always exact (the full-tick engine runs them
        // all), so the nextActivity() scan cost is amortized over
        // kQueryDefer ticks once a component has answered "active"
        // kQueryStreak times in a row.
        if (defer_[i] > 0) {
            --defer_[i];
            wake_[i] = std::min(wake_[i], now_ + 1);
            wake_min_ = std::min(wake_min_, wake_[i]);
            continue;
        }
        const Cycle na = components_[i]->nextActivity();
        if (na <= now_) {
            if (streak_[i] < kQueryStreak)
                ++streak_[i];
            else
                defer_[i] = kQueryDefer;
            wake_[i] = std::min(wake_[i], now_ + 1);
        } else {
            streak_[i] = 0;
            if (na != kCycleNever)
                wake_[i] = std::min(wake_[i], na);
        }
        wake_min_ = std::min(wake_min_, wake_[i]);
    }
    ticking_ = false;

    stats_.ticks_skipped += components_.size() - due_.size();
    ++stats_.cycles;
    ++now_;

    if (now_ >= adapt_window_end_ && !components_.empty()) {
        // Fast-forwarded cycles count toward the window via
        // stats_.cycles/ticks_skipped, which is what we want: they are
        // the best case for staying in idle mode.
        const std::uint64_t skipped =
            stats_.ticks_skipped - adapt_skip_base_;
        const std::uint64_t total =
            (stats_.cycles - adapt_cycle_base_) * components_.size();
        if (total > 0 && skipped * 100 < total * kAdaptMinSkipPct)
            adapt_full_until_ = now_ + kAdaptFullSpan;
        adapt_window_end_ = now_ + kAdaptWindow;
        adapt_skip_base_ = stats_.ticks_skipped;
        adapt_cycle_base_ = stats_.cycles;
    }
}

bool
Engine::runUntil(const std::function<bool()>& done, Cycle max_cycles,
                 Poll poll)
{
    const Cycle deadline =
        max_cycles == kCycleNever ? kCycleNever : now_ + max_cycles;
    // External state may have changed since the last run (iteration
    // arming, swaps, invalidation, direct test mutation): re-observe.
    wakeAll();

    bool fired = false;
    while (now_ < deadline) {
        if (done()) {
            fired = true;
            break;
        }
        if (poll == Poll::OnEvents && !full_tick_) {
            const Cycle next = nextWake();
            if (next == kCycleNever && deadline == kCycleNever)
                panic("runUntil(OnEvents): every component is quiescent "
                      "and there is no cycle limit — deadlock");
            if (next > now_) {
                // Nothing can change before `next` (done() is pure in
                // this mode): fast-forward, clamped to the deadline.
                const Cycle target = std::min(next, deadline);
                const Cycle gap = target - now_;
                stats_.cycles += gap;
                stats_.cycles_skipped += gap;
                stats_.ticks_skipped += components_.size() * gap;
                now_ = target;
                if (now_ >= deadline)
                    break;
            }
        }
        tick();
    }

    // Reconcile bulk per-cycle accounting before the caller reads any
    // statistics (no-op for components that were never skipped).
    for (Component* c : components_)
        c->catchUp(now_);
    return fired || done();
}

} // namespace gmoms
