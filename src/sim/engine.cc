#include "src/sim/engine.hh"

namespace gmoms
{

void
Engine::tick()
{
    for (Component* c : components_)
        c->tick();
    ++now_;
}

bool
Engine::runUntil(const std::function<bool()>& done, Cycle max_cycles)
{
    Cycle deadline =
        max_cycles == kCycleNever ? kCycleNever : now_ + max_cycles;
    while (now_ < deadline) {
        if (done())
            return true;
        tick();
    }
    return done();
}

} // namespace gmoms
