/**
 * @file
 * Latency- and capacity-bounded FIFO link between components.
 *
 * A TimedQueue models a registered point-to-point link: tokens pushed in
 * cycle c become poppable at cycle c + latency. Capacity provides
 * backpressure: push() fails when the queue is full, and the producer must
 * retry in a later cycle (exactly like a ready/valid handshake).
 *
 * Storage is a preallocated ring buffer (capacity is fixed at
 * construction), so pushes and pops never allocate. T must be
 * default-constructible (all link payloads are plain aggregates).
 *
 * Wake hooks for the idle-aware engine: when a producer/consumer
 * component is bound via setProducer()/setConsumer(), a push wakes the
 * consumer at the cycle the token becomes poppable, and a pop that frees
 * a slot of a previously-full queue wakes the producer so it can retry a
 * rejected push. Unbound endpoints (test harnesses driving queues from
 * runUntil predicates) simply get no wakes — they are covered by the
 * engine's every-cycle predicate polling.
 *
 * Die crossings (Fig. 5 of the paper) are modelled by raising the latency
 * to the crossing delay and ensuring capacity >= latency + 2, mirroring the
 * paper's "queue needs at least four slots" observation for a 2-cycle
 * ready-propagation delay.
 */

#ifndef GMOMS_SIM_TIMED_QUEUE_HH
#define GMOMS_SIM_TIMED_QUEUE_HH

#include <cassert>
#include <utility>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/queue_probe.hh"
#include "src/sim/types.hh"

namespace gmoms
{

template <typename T>
class TimedQueue
{
  public:
    /**
     * @param engine   Engine providing the clock.
     * @param capacity Maximum number of in-flight tokens.
     * @param latency  Cycles between push and earliest pop (>= 1).
     */
    TimedQueue(const Engine& engine, std::size_t capacity, Cycle latency = 1)
        : engine_(&engine), capacity_(capacity), latency_(latency),
          ring_(capacity)
    {
        assert(latency_ >= 1 && "zero-latency links break tick-order "
               "independence");
        assert(capacity_ >= 1);
    }

    /** Component woken when a pop frees a slot of a full queue. */
    void setProducer(Component* p) { producer_ = p; }
    /** Component woken when a pushed token becomes poppable. */
    void setConsumer(Component* c) { consumer_ = c; }

    /** Attach an occupancy probe (telemetry); nullptr detaches. The
     *  probe must outlive the queue or be detached first. */
    void
    attachProbe(QueueProbe* probe)
    {
        probe_ = probe;
        if (probe_)
            probe_->onChange(engine_->now(), size_);
    }

    /** True if a push this cycle would be accepted. */
    bool canPush() const { return size_ < capacity_; }

    /** Free slots right now. */
    std::size_t freeSlots() const { return capacity_ - size_; }

    /**
     * Push a token; visible to the consumer after the link latency.
     * @return false (token not enqueued) when the queue is full.
     */
    bool
    push(T item)
    {
        if (size_ == capacity_)
            return false;
        Slot& slot = ring_[wrap(head_ + size_)];
        slot.item = std::move(item);
        slot.ready = engine_->now() + latency_;
        ++size_;
        if (probe_)
            probe_->onChange(engine_->now(), size_);
        Engine::wake(consumer_, slot.ready);
        return true;
    }

    /** True if the head token has arrived and can be popped this cycle. */
    bool
    canPop() const
    {
        return size_ != 0 && ring_[head_].ready <= engine_->now();
    }

    /** Head token; only valid when canPop(). */
    const T&
    front() const
    {
        assert(canPop());
        return ring_[head_].item;
    }

    /** Remove and return the head token; only valid when canPop(). */
    T
    pop()
    {
        assert(canPop());
        const bool was_full = size_ == capacity_;
        T item = std::move(ring_[head_].item);
        head_ = wrap(head_ + 1);
        --size_;
        if (probe_)
            probe_->onChange(engine_->now(), size_);
        if (was_full)
            Engine::wake(producer_, engine_->now());
        return item;
    }

    /** Cycle the head token becomes poppable; kCycleNever when empty
     *  (for the wake calendar). */
    Cycle
    peekReadyCycle() const
    {
        return size_ != 0 ? ring_[head_].ready : kCycleNever;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    Cycle latency() const { return latency_; }

  private:
    struct Slot
    {
        T item{};
        Cycle ready = 0;
    };

    std::size_t wrap(std::size_t i) const
    {
        return i >= capacity_ ? i - capacity_ : i;
    }

    const Engine* engine_;
    std::size_t capacity_;
    Cycle latency_;
    std::vector<Slot> ring_;
    Component* producer_ = nullptr;
    Component* consumer_ = nullptr;
    QueueProbe* probe_ = nullptr;
    std::size_t head_ = 0;  //!< index of the oldest token
    std::size_t size_ = 0;
};

} // namespace gmoms

#endif // GMOMS_SIM_TIMED_QUEUE_HH
