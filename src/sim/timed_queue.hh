/**
 * @file
 * Latency- and capacity-bounded FIFO link between components.
 *
 * A TimedQueue models a registered point-to-point link: tokens pushed in
 * cycle c become poppable at cycle c + latency. Capacity provides
 * backpressure: push() fails when the queue is full, and the producer must
 * retry in a later cycle (exactly like a ready/valid handshake).
 *
 * Die crossings (Fig. 5 of the paper) are modelled by raising the latency
 * to the crossing delay and ensuring capacity >= latency + 2, mirroring the
 * paper's "queue needs at least four slots" observation for a 2-cycle
 * ready-propagation delay.
 */

#ifndef GMOMS_SIM_TIMED_QUEUE_HH
#define GMOMS_SIM_TIMED_QUEUE_HH

#include <cassert>
#include <deque>
#include <utility>

#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace gmoms
{

template <typename T>
class TimedQueue
{
  public:
    /**
     * @param engine   Engine providing the clock.
     * @param capacity Maximum number of in-flight tokens.
     * @param latency  Cycles between push and earliest pop (>= 1).
     */
    TimedQueue(const Engine& engine, std::size_t capacity, Cycle latency = 1)
        : engine_(&engine), capacity_(capacity), latency_(latency)
    {
        assert(latency_ >= 1 && "zero-latency links break tick-order "
               "independence");
        assert(capacity_ >= 1);
    }

    /** True if a push this cycle would be accepted. */
    bool canPush() const { return q_.size() < capacity_; }

    /** Free slots right now. */
    std::size_t freeSlots() const { return capacity_ - q_.size(); }

    /**
     * Push a token; visible to the consumer after the link latency.
     * @return false (token not enqueued) when the queue is full.
     */
    bool
    push(T item)
    {
        if (!canPush())
            return false;
        q_.push_back(Slot{std::move(item), engine_->now() + latency_});
        return true;
    }

    /** True if the head token has arrived and can be popped this cycle. */
    bool
    canPop() const
    {
        return !q_.empty() && q_.front().ready <= engine_->now();
    }

    /** Head token; only valid when canPop(). */
    const T&
    front() const
    {
        assert(canPop());
        return q_.front().item;
    }

    /** Remove and return the head token; only valid when canPop(). */
    T
    pop()
    {
        assert(canPop());
        T item = std::move(q_.front().item);
        q_.pop_front();
        return item;
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }
    Cycle latency() const { return latency_; }

  private:
    struct Slot
    {
        T item;
        Cycle ready;
    };

    const Engine* engine_;
    std::size_t capacity_;
    Cycle latency_;
    std::deque<Slot> q_;
};

} // namespace gmoms

#endif // GMOMS_SIM_TIMED_QUEUE_HH
