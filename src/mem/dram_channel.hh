/**
 * @file
 * Timed model of one DDR4 channel behind the AWS f1 shell.
 *
 * The channel owns one (request, response) queue pair per attached
 * requester port. Each cycle it arbitrates round-robin among ports with a
 * pending request, charges bus occupancy (size / bus width + fixed
 * overhead + row-miss penalty) and schedules the completion after the
 * loaded latency. Bus service is serialized, which is what bounds the
 * channel's bandwidth.
 */

#ifndef GMOMS_MEM_DRAM_CHANNEL_HH
#define GMOMS_MEM_DRAM_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/dram_config.hh"
#include "src/mem/mem_channel.hh"
#include "src/mem/mem_types.hh"
#include "src/obs/telemetry.hh"
#include "src/sim/engine.hh"
#include "src/sim/ring_deque.hh"
#include "src/sim/stats.hh"
#include "src/sim/timed_queue.hh"

namespace gmoms
{

class DramChannel : public MemChannel
{
  public:
    using Stats = MemChannelStats;

    DramChannel(const Engine& engine, std::string name,
                const DramConfig& cfg, std::uint32_t num_ports);

    TimedQueue<MemReq>& reqPort(std::uint32_t port) override
    {
        return *req_ports_[port];
    }

    TimedQueue<MemResp>& respPort(std::uint32_t port) override
    {
        return *resp_ports_[port];
    }

    std::uint32_t numPorts() const override
    {
        return static_cast<std::uint32_t>(req_ports_.size());
    }

    void tick() override;

    /**
     * Quiescence: nothing happens between ticks except time passing —
     * the channel sleeps until the earliest of (a) the next in-flight
     * completion, (b) the bus freeing with a request pending. Request
     * arrivals and response-queue backpressure release are covered by
     * the queue wake hooks bound in the constructor.
     */
    Cycle nextActivity() const override;

    const Stats& stats() const override { return stats_; }
    const DramConfig& config() const { return cfg_; }

    /** True when no request is queued or in flight. */
    bool idle() const override;

    void registerStats(StatRegistry& reg) const override;

    /** Attach stall channels, series and queue probes to @p tele
     *  (stall group "dram"). */
    void registerTelemetry(Telemetry& tele) override;

  private:
    struct InFlight
    {
        MemResp resp;
        std::uint32_t port;
        Cycle complete_at;
    };

    /** Bus occupancy of @p req in cycles, including row-buffer effects. */
    Cycle serviceCycles(const MemReq& req);

    const Engine& engine_;
    DramConfig cfg_;
    std::vector<std::unique_ptr<TimedQueue<MemReq>>> req_ports_;
    std::vector<std::unique_ptr<TimedQueue<MemResp>>> resp_ports_;
    std::vector<std::uint64_t> open_row_;   //!< open row per bank
    RingDeque<InFlight> in_flight_;         //!< completions in order
    Cycle bus_free_at_ = 0;
    std::uint32_t next_port_ = 0;           //!< round-robin pointer
    Stats stats_;
    mutable StatRegistry::Eraser stat_eraser_;
};

} // namespace gmoms

#endif // GMOMS_MEM_DRAM_CHANNEL_HH
