/**
 * @file
 * Multi-channel external memory behind a configurable address
 * interleave, with per-requester ports (Section IV-B of the paper).
 *
 * The substrate is pluggable: a MemSubstrateConfig picks the channel
 * model (DDR4 channels vs HBM2 pseudo-channels), the channel count and
 * the interleave granularity. Requesters only ever see MemPort.
 */

#ifndef GMOMS_MEM_MEMORY_SYSTEM_HH
#define GMOMS_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/mem/backing_store.hh"
#include "src/mem/dram_config.hh"
#include "src/mem/mem_channel.hh"
#include "src/mem/mem_substrate.hh"
#include "src/sim/engine.hh"

namespace gmoms
{

class MemorySystem;

/**
 * One requester's window onto all channels.
 *
 * send() routes by address to the owning channel; receive() polls the
 * requester's response queues round-robin. Requests must not cross an
 * interleave boundary — the issuing logic (DMA, MOMS bank) splits at
 * interleaveBytes().
 */
class MemPort
{
  public:
    MemPort() = default;
    MemPort(MemorySystem* sys, std::uint32_t port_index)
        : sys_(sys), port_(port_index) {}

    /** Try to issue @p req; false when the target channel port is full. */
    bool send(const MemReq& req);

    /** Whether a send to @p addr would be accepted this cycle. */
    bool canSend(Addr addr) const;

    /** Pop one completed transaction, if any arrived. */
    std::optional<MemResp> receive();

    /** Earliest cycle receive() may yield a response across all
     *  channels; kCycleNever when nothing is in flight in the response
     *  queues. Reports in-flight tokens (not just poppable ones) for
     *  the requester's quiescence check. */
    Cycle responseReadyCycle() const;

    /** Burst-split granularity the requester must respect. */
    std::uint32_t interleaveBytes() const;

    /**
     * Bind @p c as this port's requester for engine wake-ups: @p c is
     * woken when a response arrives on any channel and when a full
     * request queue frees a slot (a rejected send can be retried).
     */
    void bindClient(Component* c);

  private:
    MemorySystem* sys_ = nullptr;
    std::uint32_t port_ = 0;
    mutable std::uint32_t rr_ = 0;

    friend class MemorySystem;
};

/**
 * The full external memory: N interleaved channels of the configured
 * substrate plus the functional backing store.
 */
class MemorySystem
{
  public:
    /**
     * @param cfg           substrate: kind, channel count, interleave,
     *                      per-channel timing.
     * @param num_ports     requester ports replicated on every channel.
     * @param name_prefix   prepended to component names ("b2." for
     *                      cluster board 2; empty single-board).
     * @param dram_tick_group  parallel tick group for the channels
     *                      (cluster boards use per-board groups).
     */
    MemorySystem(Engine& engine, const MemSubstrateConfig& cfg,
                 std::uint32_t num_ports,
                 const std::string& name_prefix = "",
                 int dram_tick_group = tick_group::kDram);

    /** Convenience: @p num_channels DDR4 channels with @p cfg timing
     *  at the default 2 KiB interleave (micro tests/benches). */
    MemorySystem(Engine& engine, const DramConfig& cfg,
                 std::uint32_t num_channels, std::uint32_t num_ports,
                 const std::string& name_prefix = "",
                 int dram_tick_group = tick_group::kDram);

    /** Channel that owns byte address @p addr. */
    std::uint32_t
    channelOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr / cfg_.interleave_bytes) % channels_.size());
    }

    MemPort port(std::uint32_t p) { return MemPort(this, p); }

    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    std::uint32_t interleaveBytes() const
    {
        return cfg_.interleave_bytes;
    }

    const MemSubstrateConfig& substrate() const { return cfg_; }

    MemChannel& channel(std::uint32_t c) { return *channels_[c]; }
    const MemChannel& channel(std::uint32_t c) const
    {
        return *channels_[c];
    }

    BackingStore& store() { return store_; }
    const BackingStore& store() const { return store_; }

    /** Aggregate bytes moved on all channels. */
    std::uint64_t totalBytesRead() const;
    std::uint64_t totalBytesWritten() const;

    bool idle() const;

  private:
    MemSubstrateConfig cfg_;
    std::vector<std::unique_ptr<MemChannel>> channels_;
    BackingStore store_;

    friend class MemPort;
};

} // namespace gmoms

#endif // GMOMS_MEM_MEMORY_SYSTEM_HH
