/**
 * @file
 * Substrate-independent view of one external-memory channel.
 *
 * A channel — DDR4 channel or HBM2 pseudo-channel — owns one
 * (request, response) queue pair per attached requester port, serializes
 * bus service, and delivers completions after a loaded latency. The
 * MemorySystem owns N of these behind an address interleave;
 * requesters never see which concrete substrate answers them.
 */

#ifndef GMOMS_MEM_MEM_CHANNEL_HH
#define GMOMS_MEM_MEM_CHANNEL_HH

#include <cstdint>

#include "src/mem/mem_types.hh"
#include "src/obs/telemetry.hh"
#include "src/sim/engine.hh"
#include "src/sim/stats.hh"
#include "src/sim/timed_queue.hh"

namespace gmoms
{

/** Counters every channel model maintains (the shape the accelerator's
 *  RunResult and the benches aggregate over). */
struct MemChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t busy_cycles = 0;  //!< cycles the data bus was occupied
    /** Bus cycles lost to row activations (the stall-attribution
     *  view of row_misses: cycles, not transaction counts). */
    std::uint64_t row_miss_penalty_cycles = 0;
};

/** Abstract channel: what MemorySystem and MemPort require. */
class MemChannel : public Component
{
  public:
    using Component::Component;

    /** Request queue for requester port @p port. */
    virtual TimedQueue<MemReq>& reqPort(std::uint32_t port) = 0;
    /** Response queue for requester port @p port. */
    virtual TimedQueue<MemResp>& respPort(std::uint32_t port) = 0;
    virtual std::uint32_t numPorts() const = 0;

    virtual const MemChannelStats& stats() const = 0;

    /** True when no request is queued or in flight. */
    virtual bool idle() const = 0;

    virtual void registerStats(StatRegistry& reg) const = 0;
    /** Attach stall channels, series and queue probes to @p tele. */
    virtual void registerTelemetry(Telemetry& tele) = 0;
};

} // namespace gmoms

#endif // GMOMS_MEM_MEM_CHANNEL_HH
