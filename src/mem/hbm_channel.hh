/**
 * @file
 * Timed model of one HBM2 pseudo-channel.
 *
 * Same contract as DramChannel (per-port queue pairs, serialized bus,
 * constant loaded latency, in-order completions) with the pseudo-channel
 * timing character:
 *
 *  - a narrow bus (32 B/cycle-class) with a full per-transaction
 *    command overhead, so a lone cache-line read wastes proportionally
 *    more bus slots than on DDR4;
 *  - small rows over few banks (the 2 KiB HBM page is split across the
 *    pseudo-channel pair), so irregular traffic misses rows more often;
 *  - an extra turnaround gap when consecutive transactions hit the
 *    same bank (tCCD_L on the shared bank group).
 *
 * Telemetry is registered per pseudo-channel under the channel's own
 * name ("hbm.pc3"), giving the stall taxonomy per-pseudo-channel
 * attribution; DDR4 keeps its aggregate "dram" group.
 */

#ifndef GMOMS_MEM_HBM_CHANNEL_HH
#define GMOMS_MEM_HBM_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/dram_config.hh"
#include "src/mem/mem_channel.hh"
#include "src/sim/ring_deque.hh"

namespace gmoms
{

class HbmChannel : public MemChannel
{
  public:
    HbmChannel(const Engine& engine, std::string name,
               const DramConfig& cfg, std::uint32_t num_ports);

    TimedQueue<MemReq>& reqPort(std::uint32_t port) override
    {
        return *req_ports_[port];
    }

    TimedQueue<MemResp>& respPort(std::uint32_t port) override
    {
        return *resp_ports_[port];
    }

    std::uint32_t numPorts() const override
    {
        return static_cast<std::uint32_t>(req_ports_.size());
    }

    void tick() override;

    /** Quiescence mirror of DramChannel::nextActivity: sleep until the
     *  earliest in-flight completion or the bus freeing with a request
     *  pending; queue wake hooks cover arrivals and backpressure. */
    Cycle nextActivity() const override;

    const MemChannelStats& stats() const override { return stats_; }
    const DramConfig& config() const { return cfg_; }

    bool idle() const override;

    void registerStats(StatRegistry& reg) const override;

    /** Stall group == component name: one group per pseudo-channel. */
    void registerTelemetry(Telemetry& tele) override;

  private:
    struct InFlight
    {
        MemResp resp;
        std::uint32_t port;
        Cycle complete_at;
    };

    /** Bus occupancy of @p req, including row-buffer and bank-group
     *  turnaround effects. */
    Cycle serviceCycles(const MemReq& req);

    const Engine& engine_;
    DramConfig cfg_;
    std::vector<std::unique_ptr<TimedQueue<MemReq>>> req_ports_;
    std::vector<std::unique_ptr<TimedQueue<MemResp>>> resp_ports_;
    std::vector<std::uint64_t> open_row_;  //!< open row per bank
    RingDeque<InFlight> in_flight_;        //!< completions in order
    Cycle bus_free_at_ = 0;
    std::uint32_t next_port_ = 0;          //!< round-robin pointer
    std::uint32_t last_bank_ = ~0u;        //!< bank of the previous txn
    MemChannelStats stats_;
    std::uint64_t bank_gap_cycles_ = 0;    //!< turnaround stall cycles
    mutable StatRegistry::Eraser stat_eraser_;
};

} // namespace gmoms

#endif // GMOMS_MEM_HBM_CHANNEL_HH
