/**
 * @file
 * Pluggable external-memory substrate selection.
 *
 * A MemSubstrateConfig names the whole off-chip memory: which channel
 * model to instantiate (DDR4 channel vs HBM2 pseudo-channel), how many
 * of them, the address-interleave granularity that stripes the flat
 * address space across them, and the per-channel timing/geometry knobs.
 *
 * The two presets are calibrated against published f1/U280 numbers at a
 * 250 MHz accelerator clock:
 *
 *  - ddr4(): 4 channels x 64 B/cycle (16 GB/s pin rate each), 4 KiB
 *    rows over 16 banks, 2 KiB interleave — the paper's AWS f1 shell.
 *  - hbm2(): 16-32 pseudo-channels x 32 B/cycle (8 GB/s-class each),
 *    1 KiB rows over 8 banks, 256 B interleave. Each pseudo-channel
 *    runs half a channel's pins with its own command stream: a lone
 *    64 B transaction moves fewer bytes per cycle than on DDR4 (the
 *    narrow bus stretches the transfer, the small rows miss more, and
 *    consecutive hits to one bank pay a turnaround gap), but at
 *    matched aggregate bandwidth twice as many channels serve more
 *    independent misses per cycle. See docs/MODEL.md "Memory
 *    substrates".
 */

#ifndef GMOMS_MEM_MEM_SUBSTRATE_HH
#define GMOMS_MEM_MEM_SUBSTRATE_HH

#include <cstdint>
#include <string>

#include "src/mem/dram_config.hh"
#include "src/sim/types.hh"

namespace gmoms
{

/** Which channel model MemorySystem instantiates. */
enum class MemKind : std::uint8_t
{
    Ddr4 = 0,  //!< DramChannel: wide bus, large rows, coarse interleave
    Hbm2 = 1,  //!< HbmChannel: narrow pseudo-channels, fine interleave
};

/** Human-readable kind name ("ddr4" / "hbm2"). */
const char* memKindName(MemKind kind);

struct MemSubstrateConfig
{
    MemKind kind = MemKind::Ddr4;

    /** DDR4 channels or HBM2 pseudo-channels. */
    std::uint32_t channels = 4;

    /** Address-interleave granularity across channels, bytes. Must be
     *  a power of two in [kLineBytes, kInterleaveBytes]; the DRAM
     *  image aligns sections at kInterleaveBytes (the maximum), so the
     *  functional image is identical for every legal value and only
     *  timing changes. Requesters split bursts at this granularity. */
    std::uint32_t interleave_bytes = kInterleaveBytes;

    /** Per-channel timing/geometry; defaults are the DDR4 values. */
    DramConfig timing;

    /** The paper's AWS f1 substrate: @p num_channels DDR4 channels. */
    static MemSubstrateConfig ddr4(std::uint32_t num_channels = 4);

    /** An HBM2 stack exposed as @p pseudo_channels narrow
     *  pseudo-channels (16 = half a stack, 32 = full). */
    static MemSubstrateConfig hbm2(std::uint32_t pseudo_channels = 16);

    /** Aggregate peak bandwidth, bytes per accelerator cycle. */
    std::uint64_t
    peakBytesPerCycle() const
    {
        return static_cast<std::uint64_t>(channels) *
               timing.bus_bytes_per_cycle;
    }

    /** Component-name prefix of channel @p c ("dram.ch3" / "hbm.pc3");
     *  also the telemetry stall group the channel reports under. */
    std::string channelName(std::uint32_t c) const;

    /** Label suffix in the paper's config-naming style: "4ch" for
     *  4-channel DDR4, "16pc-hbm" for a 16-pseudo-channel HBM2. */
    std::string label() const;
};

} // namespace gmoms

#endif // GMOMS_MEM_MEM_SUBSTRATE_HH
