/**
 * @file
 * Functional memory image backing the timed DRAM model.
 */

#ifndef GMOMS_MEM_BACKING_STORE_HH
#define GMOMS_MEM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/sim/log.hh"
#include "src/sim/types.hh"

namespace gmoms
{

/**
 * Flat byte-addressable memory image.
 *
 * The timed pipelines move only (addr, size, tag) tokens; all data lives
 * here. Producers commit data at issue time, consumers read at response
 * delivery time — see DESIGN.md section 5 for why this preserves
 * correctness for the monotone asynchronous algorithms.
 */
class BackingStore
{
  public:
    explicit BackingStore(std::size_t bytes = 0) : mem_(bytes, 0) {}

    void resize(std::size_t bytes) { mem_.assign(bytes, 0); }
    std::size_t size() const { return mem_.size(); }

    std::uint32_t
    read32(Addr addr) const
    {
        checkRange(addr, 4);
        std::uint32_t v;
        std::memcpy(&v, &mem_[addr], 4);
        return v;
    }

    void
    write32(Addr addr, std::uint32_t v)
    {
        checkRange(addr, 4);
        std::memcpy(&mem_[addr], &v, 4);
    }

    std::uint64_t
    read64(Addr addr) const
    {
        checkRange(addr, 8);
        std::uint64_t v;
        std::memcpy(&v, &mem_[addr], 8);
        return v;
    }

    void
    write64(Addr addr, std::uint64_t v)
    {
        checkRange(addr, 8);
        std::memcpy(&mem_[addr], &v, 8);
    }

    void
    readBytes(Addr addr, void* dst, std::size_t n) const
    {
        checkRange(addr, n);
        std::memcpy(dst, &mem_[addr], n);
    }

    void
    writeBytes(Addr addr, const void* src, std::size_t n)
    {
        checkRange(addr, n);
        std::memcpy(&mem_[addr], src, n);
    }

  private:
    void
    checkRange(Addr addr, std::size_t n) const
    {
        if (addr + n > mem_.size())
            panic("BackingStore access out of range: addr=" +
                  std::to_string(addr) + " size=" + std::to_string(n) +
                  " mem=" + std::to_string(mem_.size()));
    }

    std::vector<std::uint8_t> mem_;
};

} // namespace gmoms

#endif // GMOMS_MEM_BACKING_STORE_HH
