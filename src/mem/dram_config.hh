/**
 * @file
 * Timing parameters of one simulated DDR4 channel, expressed in
 * accelerator clock cycles.
 *
 * The defaults model the AWS f1 setup of the paper at a 250 MHz
 * accelerator clock: 16 GB/s pin bandwidth per channel equals exactly
 * 64 bytes per accelerator cycle, and the shell's ~50% efficiency on
 * single 64 B transactions (Section V-A) is captured by a per-transaction
 * overhead of one bus slot, so a lone cache-line read costs two slots
 * (8 GB/s) while long bursts approach peak.
 */

#ifndef GMOMS_MEM_DRAM_CONFIG_HH
#define GMOMS_MEM_DRAM_CONFIG_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace gmoms
{

struct DramConfig
{
    /** Peak data-bus throughput, bytes per accelerator cycle. */
    std::uint32_t bus_bytes_per_cycle = 64;

    /** Fixed per-transaction bus occupancy overhead, cycles. */
    std::uint32_t request_overhead_cycles = 1;

    /** Additional overhead when the access misses the open row.
     *  Calibrated so single 64 B reads sustain ~8 GB/s per channel
     *  (the paper's measured shell efficiency) while long bursts
     *  approach the 16 GB/s pin rate. */
    std::uint32_t row_miss_extra_cycles = 1;

    /** Loaded latency from end of bus service to response, cycles. */
    std::uint32_t load_latency_cycles = 60;

    /** Number of DRAM banks tracked for row-buffer locality. */
    std::uint32_t num_banks = 16;

    /** Row-buffer size per bank, bytes (power of two). */
    std::uint32_t row_bytes = 4096;

    /** Extra bus gap when consecutive transactions hit the same bank
     *  (HBM2 pseudo-channels: tCCD_L-class turnaround on the shared
     *  bank group). 0 on DDR4, where the wide bus hides it. Only the
     *  HbmChannel model charges this. */
    std::uint32_t same_bank_gap_cycles = 0;

    /** Request queue depth per input port. Deep queues matter: the
     *  MOMS deliberately lets misses pile up in front of the DRAM so
     *  that in-flight cache lines accumulate secondary misses
     *  (Section II: "the latency and the contention on the memory
     *  system is leveraged to maximize the reuse opportunities of
     *  in-flight cache lines"). 64-deep ports measurably starve the
     *  merge window on memory-bound graphs (3x SCC throughput loss on
     *  the twitter stand-in); 256 is past the saturation knee — see
     *  ablation_moms_sizing. */
    std::uint32_t port_queue_depth = 256;

    /** Response queue depth per input port. */
    std::uint32_t resp_queue_depth = 64;

    /** Channel memory capacity in bytes (16 GiB on f1); checked by the
     *  layout builder, not enforced per access. */
    std::uint64_t capacity_bytes = 16ull << 30;
};

} // namespace gmoms

#endif // GMOMS_MEM_DRAM_CONFIG_HH
