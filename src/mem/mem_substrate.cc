#include "src/mem/mem_substrate.hh"

namespace gmoms
{

const char*
memKindName(MemKind kind)
{
    switch (kind) {
      case MemKind::Ddr4: return "ddr4";
      case MemKind::Hbm2: return "hbm2";
    }
    return "?";
}

MemSubstrateConfig
MemSubstrateConfig::ddr4(std::uint32_t num_channels)
{
    MemSubstrateConfig cfg;
    cfg.kind = MemKind::Ddr4;
    cfg.channels = num_channels;
    return cfg;  // DramConfig defaults ARE the DDR4 calibration
}

MemSubstrateConfig
MemSubstrateConfig::hbm2(std::uint32_t pseudo_channels)
{
    MemSubstrateConfig cfg;
    cfg.kind = MemKind::Hbm2;
    cfg.channels = pseudo_channels;
    // Stripe finely so short irregular reads spread across many
    // pseudo-channels; long node-array bursts get split at 256 B,
    // which is exactly the narrow-bus regime HBM trades into.
    cfg.interleave_bytes = 256;
    cfg.timing.bus_bytes_per_cycle = 32;   // 8 GB/s-class per pc
    // Command overhead is comparable to DDR4 in wall-clock terms (one
    // accelerator cycle), but the narrow bus stretches the data phase
    // and the small rows miss more: a lone 64 B read that opens a row
    // occupies a pseudo-channel for 2 data + 1 overhead + 2 row-miss
    // slots, moving 12.8 B/cycle where a DDR4 channel moves 21.3 —
    // lower per-channel single-transaction efficiency. At matched
    // aggregate bandwidth the trade inverts by access pattern: twice
    // the channels serve ~1.2x more independent 64 B misses per cycle,
    // while streaming pays the per-256 B-unit row reopen that DDR4's
    // 2 KiB units amortize (~1.3x slower) — see docs/MODEL.md.
    cfg.timing.request_overhead_cycles = 1;
    cfg.timing.row_miss_extra_cycles = 2;
    cfg.timing.load_latency_cycles = 64;
    cfg.timing.num_banks = 8;      // one bank group visible per pc
    cfg.timing.row_bytes = 1024;   // 2 KiB page split across the pair
    cfg.timing.same_bank_gap_cycles = 1;
    cfg.timing.capacity_bytes = 1ull << 29;  // 8 GiB stack / 16 pc
    return cfg;
}

std::string
MemSubstrateConfig::channelName(std::uint32_t c) const
{
    return (kind == MemKind::Hbm2 ? "hbm.pc" : "dram.ch") +
           std::to_string(c);
}

std::string
MemSubstrateConfig::label() const
{
    return kind == MemKind::Hbm2
               ? std::to_string(channels) + "pc-hbm"
               : std::to_string(channels) + "ch";
}

} // namespace gmoms
