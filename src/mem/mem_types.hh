/**
 * @file
 * Request/response tokens exchanged with the DRAM memory system.
 *
 * Data does not travel in these tokens: the simulator keeps the actual
 * memory image in a BackingStore that producers write at issue time and
 * consumers read at delivery time. Only timing flows through the queues.
 */

#ifndef GMOMS_MEM_MEM_TYPES_HH
#define GMOMS_MEM_MEM_TYPES_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace gmoms
{

/** A read or write transaction presented to a DRAM channel. */
struct MemReq
{
    Addr addr = 0;           //!< byte address (global address space)
    std::uint32_t bytes = 0; //!< transfer size; never crosses a 2048 B
                             //!< interleave boundary
    std::uint64_t tag = 0;   //!< requester-chosen id echoed in the response
    bool write = false;
};

/** Completion token for a MemReq. */
struct MemResp
{
    Addr addr = 0;
    std::uint32_t bytes = 0;
    std::uint64_t tag = 0;
    bool write = false;
};

} // namespace gmoms

#endif // GMOMS_MEM_MEM_TYPES_HH
