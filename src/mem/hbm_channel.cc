#include "src/mem/hbm_channel.hh"

#include <algorithm>
#include <limits>

#include "src/sim/log.hh"

namespace gmoms
{

HbmChannel::HbmChannel(const Engine& engine, std::string name,
                       const DramConfig& cfg, std::uint32_t num_ports)
    : MemChannel(std::move(name)), engine_(engine), cfg_(cfg),
      open_row_(cfg.num_banks, std::numeric_limits<std::uint64_t>::max())
{
    if (num_ports == 0)
        fatal("HbmChannel needs at least one port");
    req_ports_.reserve(num_ports);
    resp_ports_.reserve(num_ports);
    for (std::uint32_t p = 0; p < num_ports; ++p) {
        req_ports_.push_back(std::make_unique<TimedQueue<MemReq>>(
            engine_, cfg.port_queue_depth, 1));
        resp_ports_.push_back(std::make_unique<TimedQueue<MemResp>>(
            engine_, cfg.resp_queue_depth, 1));
        // Wake the channel when a request arrives and when a full
        // response queue frees a slot (delivery was backpressured).
        req_ports_.back()->setConsumer(this);
        resp_ports_.back()->setProducer(this);
    }
}

Cycle
HbmChannel::serviceCycles(const MemReq& req)
{
    Cycle occupancy = ceilDiv(req.bytes, cfg_.bus_bytes_per_cycle) +
                      cfg_.request_overhead_cycles;
    const std::uint64_t row = req.addr / cfg_.row_bytes;
    const std::uint32_t bank =
        static_cast<std::uint32_t>(row % cfg_.num_banks);
    if (bank == last_bank_ && cfg_.same_bank_gap_cycles > 0) {
        occupancy += cfg_.same_bank_gap_cycles;
        bank_gap_cycles_ += cfg_.same_bank_gap_cycles;
    }
    last_bank_ = bank;
    if (open_row_[bank] == row) {
        ++stats_.row_hits;
    } else {
        ++stats_.row_misses;
        stats_.row_miss_penalty_cycles += cfg_.row_miss_extra_cycles;
        open_row_[bank] = row;
        occupancy += cfg_.row_miss_extra_cycles;
    }
    return occupancy;
}

void
HbmChannel::tick()
{
    const Cycle now = engine_.now();

    // Deliver completed transactions (completions are in service order
    // because latency is constant and bus service is serialized).
    while (!in_flight_.empty() && in_flight_.front().complete_at <= now) {
        InFlight& f = in_flight_.front();
        if (!resp_ports_[f.port]->canPush())
            break;  // backpressure: retry next cycle
        resp_ports_[f.port]->push(f.resp);
        in_flight_.pop_front();
    }

    // Accept one new transaction per cycle, round-robin across ports.
    if (bus_free_at_ > now)
        return;  // data bus still busy with the previous transaction
    const std::uint32_t n = numPorts();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t p = (next_port_ + i) % n;
        TimedQueue<MemReq>& rq = *req_ports_[p];
        if (!rq.canPop())
            continue;
        MemReq req = rq.pop();
        const Cycle start = std::max(now, bus_free_at_);
        const Cycle occupancy = serviceCycles(req);
        bus_free_at_ = start + occupancy;
        stats_.busy_cycles += occupancy;
        if (req.write) {
            ++stats_.writes;
            stats_.bytes_written += req.bytes;
        } else {
            ++stats_.reads;
            stats_.bytes_read += req.bytes;
        }
        in_flight_.push_back(InFlight{
            MemResp{req.addr, req.bytes, req.tag, req.write}, p,
            bus_free_at_ + cfg_.load_latency_cycles});
        next_port_ = (p + 1) % n;
        break;
    }
}

Cycle
HbmChannel::nextActivity() const
{
    const Cycle now = engine_.now();
    Cycle next = kCycleNever;
    if (!in_flight_.empty()) {
        if (in_flight_.front().complete_at > now)
            next = in_flight_.front().complete_at;
        else if (resp_ports_[in_flight_.front().port]->canPush())
            return 0;  // deliverable now (tick raced the wake)
        // else: blocked on a full response queue; its producer hook
        // (bound in the constructor) wakes us when a slot frees.
    }
    for (const auto& rq : req_ports_) {
        // In-flight requests count too: a token pushed toward us with
        // arrival cycle r can first be accepted at max(r, bus free),
        // and never before next cycle (we just ticked).
        const Cycle r = rq->peekReadyCycle();
        if (r != kCycleNever)
            next = std::min(next,
                            std::max({r, bus_free_at_, now + 1}));
    }
    return next;
}

bool
HbmChannel::idle() const
{
    if (!in_flight_.empty())
        return false;
    for (const auto& rq : req_ports_)
        if (!rq->empty())
            return false;
    for (const auto& rp : resp_ports_)
        if (!rp->empty())
            return false;
    return true;
}

void
HbmChannel::registerStats(StatRegistry& reg) const
{
    stat_eraser_ = reg.scopedPrefix(name() + ".");
    reg.addCounter(name() + ".reads", &stats_.reads);
    reg.addCounter(name() + ".writes", &stats_.writes);
    reg.addCounter(name() + ".bytes_read", &stats_.bytes_read);
    reg.addCounter(name() + ".bytes_written", &stats_.bytes_written);
    reg.addCounter(name() + ".row_hits", &stats_.row_hits);
    reg.addCounter(name() + ".row_misses", &stats_.row_misses);
    reg.addCounter(name() + ".busy_cycles", &stats_.busy_cycles);
    reg.addCounter(name() + ".row_miss_penalty_cycles",
                   &stats_.row_miss_penalty_cycles);
    reg.addCounter(name() + ".bank_gap_cycles", &bank_gap_cycles_);
}

void
HbmChannel::registerTelemetry(Telemetry& tele)
{
    // One stall group per pseudo-channel (the component name, e.g.
    // "hbm.pc3"): with 16-32 narrow channels, WHICH pseudo-channel is
    // hot is the diagnosis, so the attribution stays per-channel where
    // DDR4 aggregates under "dram". Charges are per-transaction (no
    // per-tick retry counting), so they are engine-mode exact.
    tele.addStall(name(), StallCause::RowMiss,
                  &stats_.row_miss_penalty_cycles);
    tele.addStall(name(), StallCause::BankConflict, &bank_gap_cycles_);
    tele.addCounter(name() + ".bytes_read", &stats_.bytes_read);
    tele.addCounter(name() + ".bytes_written", &stats_.bytes_written);
    tele.addCounter(name() + ".busy_cycles", &stats_.busy_cycles);
    tele.addCounter(name() + ".row_misses", &stats_.row_misses);
    tele.addLevel(name() + ".in_flight", [this] {
        return static_cast<double>(in_flight_.size());
    });
    in_flight_.attachProbe(
        tele.makeQueueProbe(name() + ".in_flight", 0), &engine_);
}

} // namespace gmoms
