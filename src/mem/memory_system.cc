#include "src/mem/memory_system.hh"

#include <algorithm>

#include "src/sim/log.hh"

namespace gmoms
{

MemorySystem::MemorySystem(Engine& engine, const DramConfig& cfg,
                           std::uint32_t num_channels,
                           std::uint32_t num_ports,
                           const std::string& name_prefix,
                           int dram_tick_group)
{
    if (num_channels == 0)
        fatal("MemorySystem needs at least one channel");
    channels_.reserve(num_channels);
    for (std::uint32_t c = 0; c < num_channels; ++c) {
        channels_.push_back(std::make_unique<DramChannel>(
            engine, name_prefix + "dram.ch" + std::to_string(c), cfg,
            num_ports));
        engine.add(channels_.back().get());
        // Channels qualify for parallel ticking: each one touches only
        // its own bank/bus state and the port queues it is the sole
        // registered endpoint of (clients live in other tick groups).
        engine.setTickGroup(channels_.back().get(), dram_tick_group);
    }
}

std::uint64_t
MemorySystem::totalBytesRead() const
{
    std::uint64_t total = 0;
    for (const auto& ch : channels_)
        total += ch->stats().bytes_read;
    return total;
}

std::uint64_t
MemorySystem::totalBytesWritten() const
{
    std::uint64_t total = 0;
    for (const auto& ch : channels_)
        total += ch->stats().bytes_written;
    return total;
}

bool
MemorySystem::idle() const
{
    for (const auto& ch : channels_)
        if (!ch->idle())
            return false;
    return true;
}

bool
MemPort::send(const MemReq& req)
{
    const Addr last = req.addr + req.bytes - 1;
    if (req.addr / kInterleaveBytes != last / kInterleaveBytes)
        panic("MemPort request crosses interleave boundary; the issuer "
              "must split bursts at 2048 B");
    return sys_->channels_[sys_->channelOf(req.addr)]
        ->reqPort(port_).push(req);
}

bool
MemPort::canSend(Addr addr) const
{
    return sys_->channels_[sys_->channelOf(addr)]->reqPort(port_).canPush();
}

std::optional<MemResp>
MemPort::receive()
{
    const std::uint32_t n = sys_->numChannels();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t c = (rr_ + i) % n;
        auto& q = sys_->channels_[c]->respPort(port_);
        if (q.canPop()) {
            rr_ = (c + 1) % n;
            return q.pop();
        }
    }
    return std::nullopt;
}

void
MemPort::bindClient(Component* c)
{
    const std::uint32_t n = sys_->numChannels();
    for (std::uint32_t ch = 0; ch < n; ++ch) {
        sys_->channels_[ch]->reqPort(port_).setProducer(c);
        sys_->channels_[ch]->respPort(port_).setConsumer(c);
    }
}

Cycle
MemPort::responseReadyCycle() const
{
    const std::uint32_t n = sys_->numChannels();
    Cycle next = kCycleNever;
    for (std::uint32_t c = 0; c < n; ++c)
        next = std::min(next,
                        sys_->channels_[c]->respPort(port_)
                            .peekReadyCycle());
    return next;
}

} // namespace gmoms
