#include "src/mem/memory_system.hh"

#include <algorithm>

#include "src/mem/dram_channel.hh"
#include "src/mem/hbm_channel.hh"
#include "src/sim/log.hh"

namespace gmoms
{

MemorySystem::MemorySystem(Engine& engine, const MemSubstrateConfig& cfg,
                           std::uint32_t num_ports,
                           const std::string& name_prefix,
                           int dram_tick_group)
    : cfg_(cfg)
{
    if (cfg_.channels == 0)
        fatal("MemorySystem needs at least one channel");
    if (cfg_.interleave_bytes < kLineBytes ||
        cfg_.interleave_bytes > kInterleaveBytes ||
        !isPow2(cfg_.interleave_bytes))
        fatal("MemorySystem interleave must be a power of two in [" +
              std::to_string(kLineBytes) + ", " +
              std::to_string(kInterleaveBytes) + "] bytes; got " +
              std::to_string(cfg_.interleave_bytes));
    channels_.reserve(cfg_.channels);
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        const std::string name = name_prefix + cfg_.channelName(c);
        if (cfg_.kind == MemKind::Hbm2)
            channels_.push_back(std::make_unique<HbmChannel>(
                engine, name, cfg_.timing, num_ports));
        else
            channels_.push_back(std::make_unique<DramChannel>(
                engine, name, cfg_.timing, num_ports));
        engine.add(channels_.back().get());
        // Channels qualify for parallel ticking: each one touches only
        // its own bank/bus state and the port queues it is the sole
        // registered endpoint of (clients live in other tick groups).
        engine.setTickGroup(channels_.back().get(), dram_tick_group);
    }
}

MemorySystem::MemorySystem(Engine& engine, const DramConfig& cfg,
                           std::uint32_t num_channels,
                           std::uint32_t num_ports,
                           const std::string& name_prefix,
                           int dram_tick_group)
    : MemorySystem(engine,
                   [&] {
                       MemSubstrateConfig s =
                           MemSubstrateConfig::ddr4(num_channels);
                       s.timing = cfg;
                       return s;
                   }(),
                   num_ports, name_prefix, dram_tick_group)
{
}

std::uint64_t
MemorySystem::totalBytesRead() const
{
    std::uint64_t total = 0;
    for (const auto& ch : channels_)
        total += ch->stats().bytes_read;
    return total;
}

std::uint64_t
MemorySystem::totalBytesWritten() const
{
    std::uint64_t total = 0;
    for (const auto& ch : channels_)
        total += ch->stats().bytes_written;
    return total;
}

bool
MemorySystem::idle() const
{
    for (const auto& ch : channels_)
        if (!ch->idle())
            return false;
    return true;
}

bool
MemPort::send(const MemReq& req)
{
    const std::uint32_t il = sys_->cfg_.interleave_bytes;
    const Addr last = req.addr + req.bytes - 1;
    if (req.addr / il != last / il)
        panic("MemPort request crosses interleave boundary; the issuer "
              "must split bursts at " + std::to_string(il) + " B");
    return sys_->channels_[sys_->channelOf(req.addr)]
        ->reqPort(port_).push(req);
}

bool
MemPort::canSend(Addr addr) const
{
    return sys_->channels_[sys_->channelOf(addr)]->reqPort(port_).canPush();
}

std::uint32_t
MemPort::interleaveBytes() const
{
    return sys_->cfg_.interleave_bytes;
}

std::optional<MemResp>
MemPort::receive()
{
    const std::uint32_t n = sys_->numChannels();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t c = (rr_ + i) % n;
        auto& q = sys_->channels_[c]->respPort(port_);
        if (q.canPop()) {
            rr_ = (c + 1) % n;
            return q.pop();
        }
    }
    return std::nullopt;
}

void
MemPort::bindClient(Component* c)
{
    const std::uint32_t n = sys_->numChannels();
    for (std::uint32_t ch = 0; ch < n; ++ch) {
        sys_->channels_[ch]->reqPort(port_).setProducer(c);
        sys_->channels_[ch]->respPort(port_).setConsumer(c);
    }
}

Cycle
MemPort::responseReadyCycle() const
{
    const std::uint32_t n = sys_->numChannels();
    Cycle next = kCycleNever;
    for (std::uint32_t c = 0; c < n; ++c)
        next = std::min(next,
                        sys_->channels_[c]->respPort(port_)
                            .peekReadyCycle());
    return next;
}

} // namespace gmoms
