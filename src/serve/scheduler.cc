#include "src/serve/scheduler.hh"

#include <algorithm>

#include "src/sim/log.hh"

namespace gmoms::serve
{

std::vector<std::string>
AdmissionQueue::tryAdmit(JobId id, const std::string& tenant,
                         std::uint32_t priority)
{
    std::vector<std::string> reasons;
    if (ready_.size() >= max_queue_depth_)
        reasons.push_back(
            "queue saturated: " + std::to_string(ready_.size()) +
            " jobs already waiting (max_queue_depth = " +
            std::to_string(max_queue_depth_) + "); retry later");
    const auto it = tenants_.find(tenant);
    const std::size_t in_system =
        it == tenants_.end() ? 0 : it->second.in_system;
    if (per_tenant_quota_ > 0 && in_system >= per_tenant_quota_)
        reasons.push_back(
            "tenant \"" + tenant + "\" at quota: " +
            std::to_string(in_system) +
            " jobs in the system (per_tenant_quota = " +
            std::to_string(per_tenant_quota_) + ")");
    if (!reasons.empty())
        return reasons;

    ready_.push_back(ReadyJob{id, tenant, priority});
    ++tenants_[tenant].in_system;
    return {};
}

std::optional<JobId>
AdmissionQueue::pop()
{
    if (ready_.empty())
        return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready_.size(); ++i) {
        const ReadyJob& a = ready_[i];
        const ReadyJob& b = ready_[best];
        if (a.priority != b.priority) {
            if (a.priority > b.priority)
                best = i;
            continue;
        }
        const std::uint64_t da = tenants_[a.tenant].dispatched;
        const std::uint64_t db = tenants_[b.tenant].dispatched;
        if (da != db) {
            if (da < db)
                best = i;
            continue;
        }
        if (a.id < b.id)
            best = i;
    }
    const ReadyJob job = ready_[best];
    ready_.erase(ready_.begin() +
                 static_cast<std::ptrdiff_t>(best));
    ++tenants_[job.tenant].dispatched;
    running_.emplace(job.id, job.tenant);
    ++running_total_;
    return job.id;
}

void
AdmissionQueue::complete(JobId id)
{
    const auto it = running_.find(id);
    if (it == running_.end())
        panic("AdmissionQueue::complete: job " + std::to_string(id) +
              " is not running");
    auto tenant = tenants_.find(it->second);
    if (tenant == tenants_.end() || tenant->second.in_system == 0)
        panic("AdmissionQueue::complete: tenant accounting underflow");
    --tenant->second.in_system;
    --running_total_;
    running_.erase(it);
}

std::uint64_t
AdmissionQueue::dispatched(const std::string& tenant) const
{
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.dispatched;
}

} // namespace gmoms::serve
