#include "src/serve/result_cache.hh"

#include "src/graph/reorder.hh"

namespace gmoms::serve
{

std::string
ResultCache::keyFor(const JobSpec& spec, std::uint64_t fingerprint)
{
    // Iterations are part of the key because spec 0 ("algorithm
    // default") and the explicit default value run the same simulation:
    // canonicalize to the effective cap so both spellings share one
    // entry.
    const std::uint32_t iters =
        spec.iterations ? spec.iterations
                        : (spec.algo == "PageRank" ? 10u : 1000u);
    return spec.dataset + "|" + preprocessingName(spec.prep) + "|" +
           spec.algo + "|s" + std::to_string(spec.source) + "|i" +
           std::to_string(iters) + "|f" + std::to_string(fingerprint);
}

std::uint64_t
ResultCache::slotBytes(const std::string& key, const Entry& e)
{
    return key.size() + e.replay.size() + sizeof(Entry) +
           sizeof(Slot) - sizeof(Entry);
}

std::optional<ResultCache::Entry>
ResultCache::get(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    it->second.last_use = ++use_clock_;
    return it->second.entry;
}

void
ResultCache::put(const std::string& key, const Entry& entry)
{
    Slot& slot = entries_[key];
    bytes_ -= slot.bytes;  // 0 for a fresh slot
    slot.entry = entry;
    slot.bytes = slotBytes(key, entry);
    slot.last_use = ++use_clock_;
    bytes_ += slot.bytes;
    ++stats_.insertions;
    evictOverBudget(key);
}

void
ResultCache::evictOverBudget(const std::string& keep_key)
{
    while (budget_ > 0 && bytes_ > budget_ && entries_.size() > 1) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep_key)
                continue;
            if (victim == entries_.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (victim == entries_.end())
            break;
        bytes_ -= victim->second.bytes;
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats s = stats_;
    s.entries = entries_.size();
    s.bytes = bytes_;
    s.budget_bytes = budget_;
    return s;
}

} // namespace gmoms::serve
