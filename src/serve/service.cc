#include "src/serve/service.hh"

#include <utility>

#include "src/accel/checkpoint.hh"
#include "src/accel/session.hh"
#include "src/check/check_config.hh"
#include "src/sim/log.hh"

namespace gmoms::serve
{

namespace
{

/** The fallback config the service constructor resolves once: the
 *  named preset with the fallback budget and the watchdog folded in. */
AccelConfig
resolveFallback(const ServiceConfig& cfg)
{
    AccelConfig fb = presetByName(cfg.fallback_preset);
    if (cfg.fallback_budget > 0)
        fb.max_cycles = cfg.fallback_budget;
    fb.checks.enabled = true;
    return fb;
}

/** The iteration cap the run will actually use (spec 0 = algorithm
 *  default), recorded in replay descriptors. */
std::uint32_t
effectiveIterations(const JobSpec& spec)
{
    if (spec.iterations)
        return spec.iterations;
    return spec.algo == "PageRank" ? 10 : 1000;
}

/** The attempt's replay recipe: enough to re-run the exact failing
 *  simulation from a fresh process (docs/EXPERIMENTS.md). */
std::string
replayFor(const JobSpec& spec, const AccelConfig& cfg,
          const std::string& preset)
{
    ReplayDescriptor rd;
    rd.dataset = spec.dataset;
    rd.prep = preprocessingName(spec.prep);
    rd.algo = spec.algo;
    rd.iterations = effectiveIterations(spec);
    rd.source = spec.source;
    rd.preset = preset;
    rd.config_fingerprint = configFingerprint(cfg);
    return rd.serialize();
}

} // namespace

JsonReport
ServiceStats::toJson() const
{
    JsonReport r;
    r.set("submitted", submitted)
        .set("rejected", rejected)
        .set("rate_limited", rate_limited)
        .set("completed", completed)
        .set("result_cache_completed", result_cache_completed)
        .set("degraded", degraded)
        .set("failed", failed)
        .set("retries", retries)
        .set("fallback_runs", fallback_runs)
        .set("rejection_rate", rejectionRate())
        .set("jobs_per_sec", jobsPerSecond())
        .set("wall_seconds", wall_seconds)
        .set("queued", queued)
        .set("running", running);
    appendLatency(r, "queue_wait", queue_wait);
    appendLatency(r, "prep", prep);
    appendLatency(r, "sim", sim);
    appendLatency(r, "total", total);
    r.set("cache_hits", cache.hits)
        .set("cache_misses", cache.misses)
        .set("cache_evictions", cache.evictions)
        .set("cache_bytes", cache.bytes);
    r.set("result_cache_hits", result_cache.hits)
        .set("result_cache_misses", result_cache.misses)
        .set("result_cache_insertions", result_cache.insertions)
        .set("result_cache_evictions", result_cache.evictions)
        .set("result_cache_entries", result_cache.entries)
        .set("result_cache_bytes", result_cache.bytes)
        .set("result_cache_hit_rate", result_cache.hitRate());
    r.set("rate_allowed", rate.allowed)
        .set("rate_limited_total", rate.limited)
        .set("rate_tenants", rate.tenants);
    r.set("checkpoint_hits", checkpoints.hits)
        .set("checkpoint_misses", checkpoints.misses)
        .set("checkpoint_forks", checkpoints.forks)
        .set("checkpoint_evictions", checkpoints.evictions)
        .set("checkpoint_entries", checkpoints.entries)
        .set("checkpoint_resident_bytes", checkpoints.resident_bytes)
        .set("memo_hits", checkpoints.memo_hits)
        .set("memo_misses", checkpoints.memo_misses);
    return r;
}

GraphService::GraphService(ServiceConfig cfg)
    : cfg_(cfg), fallback_config_(resolveFallback(cfg)),
      cache_(cfg.cache_budget_bytes),
      ckpt_pool_(cfg.enable_checkpoints
                     ? std::make_unique<CheckpointPool>(
                           cfg.checkpoint_budget_bytes)
                     : nullptr),
      result_cache_(cfg.enable_result_cache
                        ? std::make_unique<ResultCache>(
                              cfg.result_cache_budget_bytes)
                        : nullptr),
      limiter_(cfg.rate_limit_hz > 0
                   ? std::make_unique<RateLimiter>(cfg.rate_limit_hz,
                                                   cfg.rate_limit_burst)
                   : nullptr),
      pool_(cfg.workers),
      queue_(cfg.max_queue_depth, cfg.per_tenant_quota),
      paused_(cfg.start_paused)
{
}

GraphService::~GraphService()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closing_ = true;
    }
    drain();
    // The pool joins its workers after this (members declared before
    // pool_ stay alive until then; drain() already guaranteed no
    // drainer is still inside drainerLoop).
}

GraphService::Submitted
GraphService::submit(JobSpec spec)
{
    Submitted out;
    ValidatedJob valid = validateJobSpec(spec);

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    std::vector<std::string> reasons;
    if (closing_)
        reasons.push_back("service is shutting down");
    for (std::string& p : valid.problems)
        reasons.push_back(std::move(p));

    // Token-bucket pushback sits in front of the admission quotas: a
    // flooding tenant gets a 429-style rejection (with a retry hint)
    // before its requests contend for queue depth or quota slots.
    if (reasons.empty() && limiter_) {
        const RateLimiter::Decision d =
            limiter_->acquire(spec.tenant, lifetime_.elapsedSeconds());
        if (!d.allowed) {
            ++stats_.rejected;
            ++stats_.rate_limited;
            out.rate_limited = true;
            out.retry_after_seconds = d.retry_after_seconds;
            out.rejected.push_back(
                "tenant \"" + spec.tenant +
                "\" is rate limited (retry after " +
                std::to_string(d.retry_after_seconds) + " s)");
            return out;
        }
    }

    // Deterministic result cache: a repeat of an already-*Completed*
    // query returns its pinned result summary in O(1) — terminal at
    // submission, no admission, no simulation.
    std::string result_key;
    if (reasons.empty() && result_cache_) {
        result_key =
            ResultCache::keyFor(spec, configFingerprint(valid.config));
        if (const std::optional<ResultCache::Entry> hit =
                result_cache_->get(result_key)) {
            const JobId id = next_id_++;
            Job& job = jobs_[id];
            job.spec = std::move(spec);
            job.config = std::move(valid.config);
            job.result_key = std::move(result_key);
            JobRecord& rec = job.rec;
            rec.id = id;
            rec.tenant = job.spec.tenant;
            rec.dataset = job.spec.dataset;
            rec.algo = job.spec.algo;
            rec.priority = job.spec.priority;
            rec.state = JobState::Completed;
            rec.from_cache = true;
            rec.replay = hit->replay;
            rec.cycles = hit->cycles;
            rec.iterations = hit->iterations;
            rec.edges_processed = hit->edges_processed;
            rec.dram_bytes_read = hit->dram_bytes_read;
            rec.dram_bytes_written = hit->dram_bytes_written;
            rec.moms_hit_rate = hit->moms_hit_rate;
            rec.gteps = hit->gteps;
            rec.values_checksum = hit->values_checksum;
            completion_log_.push_back(id);
            ++stats_.completed;
            ++stats_.result_cache_completed;
            stats_.queue_wait.add(0.0);
            stats_.prep.add(0.0);
            stats_.sim.add(0.0);
            stats_.total.add(job.admitted.elapsedSeconds());
            out.id = id;
            out.from_cache = true;
            return out;
        }
    }

    if (reasons.empty())
        reasons = queue_.tryAdmit(next_id_, spec.tenant, spec.priority);
    if (!reasons.empty()) {
        ++stats_.rejected;
        out.rejected = std::move(reasons);
        return out;
    }

    const JobId id = next_id_++;
    Job& job = jobs_[id];
    job.spec = std::move(spec);
    job.config = std::move(valid.config);
    job.result_key = std::move(result_key);
    job.rec.id = id;
    job.rec.tenant = job.spec.tenant;
    job.rec.dataset = job.spec.dataset;
    job.rec.algo = job.spec.algo;
    job.rec.priority = job.spec.priority;
    job.admitted.restart();
    if (!paused_)
        spawnDrainersLocked();
    out.id = id;
    return out;
}

std::optional<JobRecord>
GraphService::poll(JobId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second.rec;
}

void
GraphService::resume()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    spawnDrainersLocked();
}

std::uint64_t
GraphService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
    spawnDrainersLocked();
    idle_cv_.wait(lock, [&] {
        return queue_.idle() && finished_.empty() &&
               active_drainers_ == 0;
    });
    return stats_.terminal();
}

std::vector<JobId>
GraphService::completionLog() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completion_log_;
}

ServiceStats
GraphService::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ServiceStats s = stats_;
    s.wall_seconds = lifetime_.elapsedSeconds();
    s.queued = queue_.queued();
    s.running = queue_.running();
    s.cache = cache_.stats();
    if (ckpt_pool_)
        s.checkpoints = ckpt_pool_->stats();
    if (result_cache_)
        s.result_cache = result_cache_->stats();
    if (limiter_)
        s.rate = limiter_->stats();
    return s;
}

void
GraphService::spawnDrainersLocked()
{
    while (active_drainers_ < pool_.workers() &&
           active_drainers_ < queue_.queued()) {
        ++active_drainers_;
        pool_.post([this] { drainerLoop(); });
    }
}

void
GraphService::publishReadyLocked()
{
    while (true) {
        const auto it = finished_.find(next_publish_);
        if (it == finished_.end())
            break;
        const JobId id = it->second;
        finished_.erase(it);
        ++next_publish_;
        completion_log_.push_back(id);

        const JobRecord& rec = jobs_.at(id).rec;
        switch (rec.state) {
          case JobState::Completed:
            ++stats_.completed;
            break;
          case JobState::Degraded:
            ++stats_.degraded;
            break;
          case JobState::Failed:
            ++stats_.failed;
            break;
          default:
            panic("published job " + std::to_string(id) +
                  " is not terminal");
        }
        stats_.queue_wait.add(rec.queue_seconds);
        stats_.prep.add(rec.prep_seconds);
        stats_.sim.add(rec.sim_seconds);
        stats_.total.add(rec.total_seconds);
    }
}

void
GraphService::runAttempt(const JobSpec& spec, const AccelConfig& cfg,
                         const DatasetPtr& dataset, JobRecord& rec,
                         const std::string& replay)
{
    ++rec.attempts;
    WallTimer timer;
    // The dataset arrives preprocessed from the cache, so the session
    // adds no preprocessing; sharing the pointer keeps the graph alive
    // across a concurrent cache eviction. The packed-CSR half of the
    // prep travels on the config instead (the cache only relabels), so
    // it still keys checkpoints, memos and fingerprints. With the
    // checkpoint pool on, the session is forked from a pooled warm
    // checkpoint instead of cold-built: repeat jobs share the
    // partition, and *identical* jobs replay the memoized result
    // without simulating. The replay context is set per fork
    // (result-neutral; the pooled checkpoint stores a neutral config).
    AccelConfig run_cfg = cfg;
    run_cfg.packed_edges = packedCsr(spec.prep);
    Session session =
        ckpt_pool_ ? ckpt_pool_->acquire(spec.dataset,
                                         preprocessingName(spec.prep),
                                         dataset, run_cfg,
                                         spec.algo == "SSSP")
                   : SessionBuilder().dataset(dataset).config(run_cfg)
                         .build();
    session.setReplayContext(replay);

    SessionResult res;
    if (spec.algo == "PageRank")
        res = session.pageRank(spec.iterations ? spec.iterations : 10);
    else if (spec.algo == "SCC")
        res = session.scc(spec.iterations ? spec.iterations : 1000);
    else if (spec.algo == "SSSP")
        res = session.sssp(spec.source,
                           spec.iterations ? spec.iterations : 1000);
    else if (spec.algo == "BFS")
        res = session.bfs(spec.source,
                          spec.iterations ? spec.iterations : 1000);
    else
        fatal("unknown algorithm " + spec.algo);  // caught upstream

    rec.sim_seconds = timer.elapsedSeconds();
    rec.cycles = res.run.cycles;
    rec.iterations = res.run.iterations;
    rec.edges_processed = res.run.edges_processed;
    rec.dram_bytes_read = res.run.dram_bytes_read;
    rec.dram_bytes_written = res.run.dram_bytes_written;
    rec.moms_hit_rate = res.run.moms_hit_rate;
    rec.gteps = res.gteps;
    rec.values_checksum = valuesChecksum(res.run.raw_values);
}

void
GraphService::drainerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!paused_) {
        const std::optional<JobId> popped = queue_.pop();
        if (!popped)
            break;
        const JobId id = *popped;
        Job& job = jobs_.at(id);
        job.dispatch_idx = dispatch_count_++;
        job.rec.state = JobState::Running;
        job.rec.queue_seconds = job.admitted.elapsedSeconds();

        // Everything the run needs, copied out so the simulation never
        // holds the service lock.
        JobRecord rec = job.rec;
        const JobSpec spec = job.spec;
        const AccelConfig requested = job.config;
        lock.unlock();

        std::uint64_t retries = 0;
        std::uint64_t fallback_runs = 0;
        WallTimer prep_timer;
        DatasetPtr dataset;
        rec.replay = replayFor(spec, requested,
                               spec.config ? "" : spec.preset);
        try {
            dataset = cache_.get(spec.dataset, spec.prep);
            rec.prep_seconds = prep_timer.elapsedSeconds();

            // 1 + max_retries attempts as requested, then (optionally)
            // one degraded attempt on the fallback preset.
            bool done = false;
            for (std::uint32_t attempt = 0;
                 attempt <= spec.max_retries && !done; ++attempt) {
                if (attempt > 0)
                    ++retries;
                try {
                    runAttempt(spec, requested, dataset, rec,
                               rec.replay);
                    rec.state = JobState::Completed;
                    rec.error.clear();
                    done = true;
                } catch (const CheckError& e) {
                    // Headline only: the multi-KB diagnostic dump does
                    // not belong in a serving record (dump_path keeps
                    // it when configured).
                    rec.error = e.reason();
                } catch (const std::exception& e) {
                    rec.error = e.what();
                }
            }
            if (!done && cfg_.enable_fallback) {
                ++fallback_runs;
                // The degraded attempt runs a different config, so its
                // record (and any dump) carries its own descriptor.
                rec.replay = replayFor(spec, fallback_config_,
                                       cfg_.fallback_preset);
                try {
                    runAttempt(spec, fallback_config_, dataset, rec,
                               rec.replay);
                    rec.state = JobState::Degraded;
                    rec.used_fallback = true;
                    done = true;
                } catch (const CheckError& e) {
                    rec.error = e.reason();
                } catch (const std::exception& e) {
                    rec.error = e.what();
                }
            }
            if (!done)
                rec.state = JobState::Failed;
        } catch (const std::exception& e) {
            rec.prep_seconds = prep_timer.elapsedSeconds();
            rec.state = JobState::Failed;
            rec.error = std::string("dataset build failed: ") +
                        e.what();
        }

        lock.lock();
        Job& finished_job = jobs_.at(id);
        rec.total_seconds = finished_job.admitted.elapsedSeconds();
        finished_job.rec = rec;
        // Only a *Completed* run is cacheable: it ran the keyed config
        // (a Degraded run executed the fallback preset instead).
        if (result_cache_ && rec.state == JobState::Completed &&
            !finished_job.result_key.empty()) {
            ResultCache::Entry entry;
            entry.cycles = rec.cycles;
            entry.iterations = rec.iterations;
            entry.edges_processed = rec.edges_processed;
            entry.dram_bytes_read = rec.dram_bytes_read;
            entry.dram_bytes_written = rec.dram_bytes_written;
            entry.moms_hit_rate = rec.moms_hit_rate;
            entry.gteps = rec.gteps;
            entry.values_checksum = rec.values_checksum;
            entry.replay = rec.replay;
            result_cache_->put(finished_job.result_key, entry);
        }
        stats_.retries += retries;
        stats_.fallback_runs += fallback_runs;
        queue_.complete(id);
        finished_[finished_job.dispatch_idx] = id;
        publishReadyLocked();
        if (queue_.idle() && finished_.empty())
            idle_cv_.notify_all();
    }
    --active_drainers_;
    if (active_drainers_ == 0 && queue_.idle() && finished_.empty())
        idle_cv_.notify_all();
}

} // namespace gmoms::serve
