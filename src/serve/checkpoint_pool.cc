#include "src/serve/checkpoint_pool.hh"

#include <sstream>

#include "src/accel/session.hh"

namespace gmoms::serve
{

namespace
{

std::string
poolKey(const std::string& dataset_tag, const std::string& prep,
        std::uint64_t fingerprint)
{
    std::ostringstream os;
    os << dataset_tag << '|' << prep << '|' << std::hex << fingerprint;
    return os.str();
}

} // namespace

Session
CheckpointPool::acquire(const std::string& dataset_tag,
                        const std::string& prep,
                        const DatasetPtr& dataset,
                        const AccelConfig& cfg, bool warm_weighted)
{
    const std::string key =
        poolKey(dataset_tag, prep, configFingerprint(cfg));

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        Session cold =
            SessionBuilder().dataset(dataset).config(cfg).build();
        SessionCheckpoint cp =
            SessionCheckpoint::capture(cold, warm_weighted);
        it = entries_.emplace(key, Entry{std::move(cp), 0}).first;
    } else {
        ++stats_.hits;
        // A hit may still need the weighted warm-up (first SSSP on a
        // key first used by a plain algorithm): re-capture, sharing
        // everything already built.
        if (warm_weighted) {
            Session warm = it->second.checkpoint.restore();
            it->second.checkpoint =
                SessionCheckpoint::capture(warm, true);
        }
    }
    it->second.last_use = ++use_clock_;
    ++stats_.forks;
    Session forked = it->second.checkpoint.restore();
    // Resident bytes grow over time (memo accretes results), so the
    // budget is re-audited on every acquire, not only on insertion.
    evictOverBudgetLocked(key);
    return forked;
}

void
CheckpointPool::evictOverBudgetLocked(const std::string& keep_key)
{
    if (budget_ == 0)
        return;
    std::uint64_t total = 0;
    for (const auto& [key, e] : entries_)
        total += e.checkpoint.residentBytes();
    while (total > budget_ && entries_.size() > 1) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep_key)
                continue;
            if (victim == entries_.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (victim == entries_.end())
            break;
        // Memo counters live inside the evicted entry: fold them into
        // the baseline so pool-wide stats stay monotonic.
        if (const auto& memo = victim->second.checkpoint.memo()) {
            stats_.memo_hits += memo->hits();
            stats_.memo_misses += memo->misses();
        }
        total -= victim->second.checkpoint.residentBytes();
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

CheckpointPool::Stats
CheckpointPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    s.entries = entries_.size();
    s.resident_bytes = 0;
    for (const auto& [key, e] : entries_) {
        s.resident_bytes += e.checkpoint.residentBytes();
        if (const auto& memo = e.checkpoint.memo()) {
            s.memo_hits += memo->hits();
            s.memo_misses += memo->misses();
        }
    }
    return s;
}

} // namespace gmoms::serve
