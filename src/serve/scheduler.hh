/**
 * @file
 * AdmissionQueue: bounded admission control + deterministic priority
 * scheduling with per-tenant fairness for the serving layer.
 *
 * This is deliberately a pure data structure (no threads, no clocks,
 * externally synchronized by GraphService's mutex): every decision is a
 * function of the submission/dispatch history alone, which is what
 * makes the service's dispatch order reproducible — and unit-testable
 * without a worker pool.
 *
 * Admission (tryAdmit) rejects with *reasons*, never silently drops:
 *  - the ready queue is bounded (max_queue_depth): saturation pushes
 *    back on submitters instead of buffering unboundedly;
 *  - each tenant may hold at most per_tenant_quota jobs in the system
 *    (queued + running): one tenant cannot monopolize the queue.
 *
 * Dispatch (pop) picks, deterministically:
 *  1. the highest priority value present,
 *  2. within it, the tenant with the fewest dispatches so far
 *     (deficit-style fairness: a monotone per-tenant dispatch counter),
 *  3. within that, the lowest job id (FIFO per tenant, and a total
 *     tie-break so the order never depends on map iteration).
 */

#ifndef GMOMS_SERVE_SCHEDULER_HH
#define GMOMS_SERVE_SCHEDULER_HH

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/job.hh"

namespace gmoms::serve
{

class AdmissionQueue
{
  public:
    AdmissionQueue(std::size_t max_queue_depth,
                   std::size_t per_tenant_quota)
        : max_queue_depth_(max_queue_depth),
          per_tenant_quota_(per_tenant_quota)
    {
    }

    /**
     * Admit job @p id (@p tenant, @p priority) into the ready queue.
     * Returns the empty vector on success, else every admission-control
     * reason that applies (the caller folds these into the structured
     * rejection).
     */
    std::vector<std::string> tryAdmit(JobId id,
                                      const std::string& tenant,
                                      std::uint32_t priority);

    /** Next job to dispatch per the policy above; nullopt when the
     *  ready queue is empty. Moves the job to running state. */
    std::optional<JobId> pop();

    /** Job @p id (dispatched earlier) reached a terminal state. */
    void complete(JobId id);

    std::size_t queued() const { return ready_.size(); }
    std::size_t running() const { return running_total_; }
    bool idle() const { return ready_.empty() && running_total_ == 0; }

    /** Dispatches so far for @p tenant (fairness counter; tests). */
    std::uint64_t dispatched(const std::string& tenant) const;

  private:
    struct ReadyJob
    {
        JobId id;
        std::string tenant;
        std::uint32_t priority;
    };

    struct TenantState
    {
        std::size_t in_system = 0;    //!< queued + running
        std::uint64_t dispatched = 0; //!< monotone fairness counter
    };

    const std::size_t max_queue_depth_;
    const std::size_t per_tenant_quota_;

    std::vector<ReadyJob> ready_;
    std::map<JobId, std::string> running_;  //!< id -> tenant
    std::size_t running_total_ = 0;
    std::map<std::string, TenantState> tenants_;
};

} // namespace gmoms::serve

#endif // GMOMS_SERVE_SCHEDULER_HH
