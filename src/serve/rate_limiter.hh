/**
 * @file
 * Per-tenant token-bucket rate limiting for the serving layer
 * (ISSUE 9): sits *in front of* the admission quotas, so a tenant that
 * floods the front end is pushed back with a structured 429-style
 * rejection (code "rate_limited" + a retry-after hint) before its
 * requests ever contend for queue depth or quota slots.
 *
 * Like AdmissionQueue this is deliberately a pure data structure: no
 * threads, no internal clock. The caller passes the current time (the
 * service uses its lifetime timer; tests pass explicit instants), so
 * every decision is a deterministic function of the call history —
 * unit-testable without sleeping.
 *
 * Semantics: each tenant owns a bucket of @ref burst tokens refilled
 * continuously at @ref rate_hz tokens/second. A request costs one
 * token; an empty bucket rejects with the exact time until the next
 * token accrues. rate_hz <= 0 disables the limiter (every request is
 * allowed and counted).
 */

#ifndef GMOMS_SERVE_RATE_LIMITER_HH
#define GMOMS_SERVE_RATE_LIMITER_HH

#include <cstdint>
#include <map>
#include <string>

namespace gmoms::serve
{

class RateLimiter
{
  public:
    /** @param rate_hz  steady-state tokens/second per tenant;
     *                  <= 0 disables limiting.
     *  @param burst    bucket capacity (max tokens banked while idle);
     *                  <= 0 picks max(1, rate_hz). */
    RateLimiter(double rate_hz, double burst);

    struct Decision
    {
        bool allowed = true;
        /** Seconds until one full token accrues; 0 when allowed. The
         *  429-style hint clients should wait before retrying. */
        double retry_after_seconds = 0;
    };

    /** Charge one token to @p tenant at time @p now_seconds (monotone
     *  per caller; regressions are clamped, never refunded). */
    Decision acquire(const std::string& tenant, double now_seconds);

    struct Stats
    {
        std::uint64_t allowed = 0;
        std::uint64_t limited = 0;
        std::uint64_t tenants = 0;  //!< distinct tenants seen
    };

    Stats stats() const;

    bool enabled() const { return rate_hz_ > 0; }
    double rateHz() const { return rate_hz_; }
    double burst() const { return burst_; }

  private:
    struct Bucket
    {
        double tokens = 0;
        double last_refill = 0;
    };

    const double rate_hz_;
    const double burst_;
    std::map<std::string, Bucket> buckets_;
    Stats stats_;
};

} // namespace gmoms::serve

#endif // GMOMS_SERVE_RATE_LIMITER_HH
