/**
 * @file
 * Byte-budgeted LRU pool of warm SessionCheckpoints, keyed by
 * (dataset tag, preprocessing, config fingerprint).
 *
 * GraphService acquires a forked Session per attempt instead of
 * cold-building one: the first job on a key pays the partition cost
 * and populates the checkpoint (a miss), every later job forks it in
 * O(1) (a hit + a fork). Because each checkpoint also carries a shared
 * result memo (see SessionMemo), a *repeat* job — same algorithm and
 * arguments on the same key — skips the simulation entirely and
 * replays the memoized, bit-identical SessionResult. Eviction is LRU
 * by approximate resident bytes, never evicting the entry just
 * touched.
 */

#ifndef GMOMS_SERVE_CHECKPOINT_POOL_HH
#define GMOMS_SERVE_CHECKPOINT_POOL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/accel/checkpoint.hh"
#include "src/serve/dataset_cache.hh"

namespace gmoms::serve
{

class CheckpointPool
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;       //!< acquire found a checkpoint
        std::uint64_t misses = 0;     //!< acquire had to build one
        std::uint64_t forks = 0;      //!< sessions forked (== acquires)
        std::uint64_t evictions = 0;  //!< entries dropped by budget
        std::uint64_t memo_hits = 0;    //!< runs served from the memo
        std::uint64_t memo_misses = 0;  //!< runs actually simulated
        std::uint64_t resident_bytes = 0;  //!< approximate, at query
        std::uint64_t entries = 0;
    };

    /** @param budget_bytes Resident-byte ceiling; 0 = unbounded. */
    explicit CheckpointPool(std::uint64_t budget_bytes)
        : budget_(budget_bytes)
    {
    }

    /**
     * Fork a warm Session for (@p dataset_tag, @p prep, @p cfg),
     * building and pooling the checkpoint on first use. @p dataset is
     * the preprocessed graph from the DatasetCache (the session adds
     * no further preprocessing). @p warm_weighted additionally warms
     * the weighted partition on the cold build (SSSP jobs). Thread-
     * safe; the cold build holds the pool lock (it is two orders of
     * magnitude cheaper than the simulation that follows).
     */
    Session acquire(const std::string& dataset_tag,
                    const std::string& prep, const DatasetPtr& dataset,
                    const AccelConfig& cfg, bool warm_weighted);

    Stats stats() const;

  private:
    struct Entry
    {
        SessionCheckpoint checkpoint;
        std::uint64_t last_use = 0;
    };

    void evictOverBudgetLocked(const std::string& keep_key);

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    const std::uint64_t budget_;
    std::uint64_t use_clock_ = 0;
    Stats stats_;
};

} // namespace gmoms::serve

#endif // GMOMS_SERVE_CHECKPOINT_POOL_HH
