#include "src/serve/dataset_cache.hh"

#include <cstdlib>
#include <utility>
#include <vector>

#include "src/accel/accel_config.hh"
#include "src/graph/datasets.hh"
#include "src/sim/log.hh"

namespace gmoms::serve
{

std::uint64_t
datasetBytes(const CooGraph& g)
{
    return sizeof(CooGraph) +
           static_cast<std::uint64_t>(g.numEdges()) * sizeof(Edge) +
           g.name.capacity();
}

DatasetCache::DatasetCache(std::uint64_t budget_bytes)
    : budget_(budget_bytes)
{
}

DatasetPtr
DatasetCache::get(const std::string& tag, Preprocessing prep,
                  std::uint32_t nd_hint)
{
    // Packing is a layout-time encoding: Packed and None (and
    // DbgHashPacked and DbgHash) relabel identically, so they share
    // one cached graph.
    prep = basePreprocessing(prep);
    const Key key{tag, static_cast<int>(prep), nd_hint};
    std::promise<DatasetPtr> build;
    std::shared_future<DatasetPtr> ready;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = cache_.try_emplace(key);
        if (inserted) {
            it->second.ready = build.get_future().share();
            ++misses_;
            builder = true;
        } else {
            ++hits_;
        }
        it->second.last_use = ++tick_;
        ready = it->second.ready;
    }

    if (!builder)
        return ready.get();

    try {
        const DatasetProfile& profile = datasetByTag(tag);
        CooGraph g = buildDataset(profile);
        const std::uint32_t nd =
            nd_hint ? nd_hint
                    : defaultIntervalsFor(g.numNodes(), g.numEdges())
                          .first;
        CooGraph out = applyPreprocessing(g, prep, nd);
        out.name = tag;
        DatasetPtr built =
            std::make_shared<const CooGraph>(std::move(out));
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = cache_.find(key);
            // The entry can only have left the map via a failed build,
            // and this build is the only one for the key — it is there.
            it->second.bytes = datasetBytes(*built);
            it->second.building = false;
            bytes_ += it->second.bytes;
            evictLocked(key);
        }
        build.set_value(built);
        return ready.get();
    } catch (...) {
        // Drop the failed key so a later call retries the build;
        // concurrent waiters still see the exception via the future.
        {
            std::lock_guard<std::mutex> lock(mu_);
            cache_.erase(key);
        }
        build.set_exception(std::current_exception());
        return ready.get();  // rethrows
    }
}

void
DatasetCache::evictLocked(const Key& keep)
{
    if (budget_ == 0)
        return;
    while (bytes_ > budget_) {
        auto victim = cache_.end();
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            if (it->second.building || it->first == keep)
                continue;
            if (victim == cache_.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (victim == cache_.end())
            return;  // nothing evictable: stay over budget
        bytes_ -= victim->second.bytes;
        ++evictions_;
        cache_.erase(victim);
    }
}

DatasetCache::Stats
DatasetCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = cache_.size();
    s.bytes = bytes_;
    s.budget_bytes = budget_;
    return s;
}

DatasetCache&
DatasetCache::process()
{
    static DatasetCache* instance = [] {
        std::uint64_t mb = 2048;
        if (const char* env = std::getenv("GMOMS_DATASET_CACHE_MB")) {
            char* end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 10);
            if (!end || *end != '\0' || env == end)
                fatal(std::string("GMOMS_DATASET_CACHE_MB=\"") + env +
                      "\" is not a number (MB; 0 = unbounded)");
            mb = v;
        }
        return new DatasetCache(mb * 1024 * 1024);
    }();
    return *instance;
}

} // namespace gmoms::serve
