/**
 * @file
 * serve::Protocol — the one parser/serializer for the serving wire
 * protocol (ISSUE 9 satellite), shared by the stdin JSON-lines loop,
 * the epoll TCP front end (src/net/) and bench_serve's client. Before
 * this module each front end hand-rolled its own stringly verb
 * dispatch; now the protocol is typed Request/Response structs plus
 * encode/decode functions, and adding a verb means touching exactly
 * one file.
 *
 * Two wire versions ride on one framing (one JSON object per line):
 *
 * v1 (PR 5, kept bit-compatible for existing clients): a bare request
 * object `{"op":"submit",...}`; responses carry `"op"` (echo) and
 * `"ok"`, with `"rejected":[...]` on refused submits and `"error"` on
 * protocol errors.
 *
 * v2 (this PR): every request carries `"v":2` and a client-chosen
 * stable `"request_id"` (echoed verbatim on the response, so pipelined
 * clients can match answers to questions without counting lines).
 * Responses are a tagged union on `"type"`:
 *   - `"ok"`                          — verb succeeded, no payload;
 *   - `"error"` + `"error":{"code","problems":[...]}`
 *                                     — accumulated-problems style, the
 *       validateJobSpec() philosophy applied to the wire: every decode
 *       or rejection reason in one response. Codes: `bad_request`,
 *       `rejected`, `rate_limited` (+ `retry_after_seconds`),
 *       `not_found`, `shutting_down`, `overloaded`;
 *   - `"result"` + `"result":{...}`   — verb payload (submit id, poll
 *       job, stats block, drain count).
 *
 * A request without `"v"` is v1 and is answered in v1 form; the
 * round-trip compatibility contract is pinned by
 * tests/test_serve_protocol.cc.
 */

#ifndef GMOMS_SERVE_PROTOCOL_HH
#define GMOMS_SERVE_PROTOCOL_HH

#include <string>
#include <vector>

#include "src/serve/service.hh"
#include "src/sim/report.hh"

namespace gmoms::serve
{

inline constexpr int kProtocolV1 = 1;
inline constexpr int kProtocolV2 = 2;

enum class Verb : std::uint8_t
{
    Submit,
    Poll,
    Stats,
    Drain,
    Quit,
    Unknown,
};

const char* verbName(Verb v);

/** A decoded request, independent of wire version. */
struct Request
{
    int v = kProtocolV1;
    std::string request_id;  //!< v2 only; echoed on the response
    Verb verb = Verb::Unknown;
    std::string op;      //!< raw op text (error echo for unknown verbs)
    JobSpec spec;        //!< Submit
    JobId poll_id = 0;   //!< Poll
};

/** decodeRequestLine outcome: the request plus *every* problem found
 *  (accumulated, not first-error). The request's v/request_id are
 *  salvaged even from a bad request so the error response can be
 *  versioned and matched. */
struct DecodedRequest
{
    Request req;
    std::vector<std::string> problems;

    bool ok() const { return problems.empty(); }
};

DecodedRequest decodeRequestLine(const std::string& line);

/** Serialize @p req for the wire (no trailing newline): the client
 *  half of the protocol, used by bench_serve and the tests. v1
 *  requests omit v/request_id. */
std::string encodeRequestLine(const Request& req);

/** A response, independent of wire version (the encoder renders the
 *  v1 or v2 shape from Request::v). */
struct Response
{
    enum class Kind : std::uint8_t
    {
        Ok,
        Error,
        Result,
    };

    Kind kind = Kind::Ok;
    int v = kProtocolV1;
    std::string request_id;
    std::string op;

    // Error only.
    std::string code;
    std::vector<std::string> problems;
    double retry_after_seconds = -1;  //!< >= 0 only when rate limited

    // Result payload fields (flattened into the object for v1, nested
    // under "result" for v2).
    JsonReport result;
};

std::string encodeResponseLine(const Response& r);

/** A JobRecord as the flat JSON block of poll responses. */
JsonReport jobRecordJson(const JobRecord& rec);

/**
 * Execute @p req against @p service — the single verb dispatcher
 * behind every front end. @p net_stats, when non-null, is appended to
 * stats responses under "net" (the TCP server's connection counters).
 * Quit returns Ok; the *caller* owns shutdown (stdin loop breaks, TCP
 * server drains).
 */
Response execute(GraphService& service, const Request& req,
                 const JsonReport* net_stats = nullptr);

/**
 * Full line -> line turn: decode, execute (or report decode problems),
 * encode. Sets @p quit_requested when the line was a well-formed quit.
 * This is the whole server-side protocol in one call; the stdin loop
 * and the TCP handler are both one-liners over it.
 */
std::string handleRequestLine(GraphService& service,
                              const std::string& line,
                              bool& quit_requested,
                              const JsonReport* net_stats = nullptr);

} // namespace gmoms::serve

#endif // GMOMS_SERVE_PROTOCOL_HH
