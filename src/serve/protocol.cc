#include "src/serve/protocol.hh"

#include <optional>
#include <sstream>

#include "src/obs/json_check.hh"

namespace gmoms::serve
{

namespace
{

/** Serialize a reason list as a JSON array of strings. */
std::string
jsonStringArray(const std::vector<std::string>& items)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << ",";
        JsonReport::writeEscaped(os, items[i]);
    }
    os << "]";
    return os.str();
}

std::string
joined(const std::vector<std::string>& items)
{
    std::string out;
    for (const std::string& s : items)
        out += (out.empty() ? "" : "; ") + s;
    return out;
}

std::optional<Preprocessing>
prepByName(const std::string& name)
{
    if (name == "none")
        return Preprocessing::None;
    if (name == "hash")
        return Preprocessing::Hash;
    if (name == "dbg")
        return Preprocessing::Dbg;
    if (name == "dbg+hash")
        return Preprocessing::DbgHash;
    if (name == "packed")
        return Preprocessing::Packed;
    if (name == "dbg+hash+packed")
        return Preprocessing::DbgHashPacked;
    return std::nullopt;
}

// Field readers in the accumulated-problems style: a bad field appends
// its problem and leaves @p out untouched, so one response lists every
// defect of the request (the validateJobSpec() philosophy on the wire).

template <typename T>
void
readNumber(const JsonValue& req, const std::string& key, T& out,
           std::vector<std::string>& problems)
{
    const JsonValue* v = req.find(key);
    if (!v)
        return;
    if (!v->isNumber() || v->number < 0) {
        problems.push_back("field \"" + key +
                           "\" must be a non-negative number");
        return;
    }
    out = static_cast<T>(v->number);
}

void
readString(const JsonValue& req, const std::string& key,
           std::string& out, std::vector<std::string>& problems)
{
    const JsonValue* v = req.find(key);
    if (!v)
        return;
    if (!v->isString()) {
        problems.push_back("field \"" + key + "\" must be a string");
        return;
    }
    out = v->string;
}

void
readBool(const JsonValue& req, const std::string& key, bool& out,
         std::vector<std::string>& problems)
{
    const JsonValue* v = req.find(key);
    if (!v)
        return;
    if (v->kind != JsonValue::Kind::Bool) {
        problems.push_back("field \"" + key + "\" must be a boolean");
        return;
    }
    out = v->boolean;
}

void
decodeSubmit(const JsonValue& obj, Request& req,
             std::vector<std::string>& problems)
{
    JobSpec& spec = req.spec;
    std::string prep = "dbg+hash";
    readString(obj, "tenant", spec.tenant, problems);
    readString(obj, "dataset", spec.dataset, problems);
    readString(obj, "algo", spec.algo, problems);
    readString(obj, "preset", spec.preset, problems);
    readString(obj, "prep", prep, problems);
    readNumber(obj, "iterations", spec.iterations, problems);
    readNumber(obj, "source", spec.source, problems);
    readNumber(obj, "priority", spec.priority, problems);
    readNumber(obj, "cycle_budget", spec.cycle_budget, problems);
    readNumber(obj, "max_retries", spec.max_retries, problems);
    readBool(obj, "checks", spec.checks, problems);
    readBool(obj, "telemetry", spec.telemetry, problems);
    readNumber(obj, "boards", spec.boards, problems);
    readString(obj, "cluster_mode", spec.cluster_mode, problems);
    readString(obj, "cluster_partitioner", spec.cluster_partitioner,
               problems);

    const std::optional<Preprocessing> p = prepByName(prep);
    if (!p)
        problems.push_back("unknown preprocessing \"" + prep +
                           "\" (none, hash, dbg, dbg+hash, packed, "
                           "dbg+hash+packed)");
    else
        spec.prep = *p;
}

} // namespace

const char*
verbName(Verb v)
{
    switch (v) {
      case Verb::Submit:
        return "submit";
      case Verb::Poll:
        return "poll";
      case Verb::Stats:
        return "stats";
      case Verb::Drain:
        return "drain";
      case Verb::Quit:
        return "quit";
      case Verb::Unknown:
        break;
    }
    return "?";
}

DecodedRequest
decodeRequestLine(const std::string& line)
{
    DecodedRequest out;
    Request& req = out.req;

    std::string parse_error;
    const std::optional<JsonValue> parsed =
        parseJson(line, &parse_error);
    if (!parsed) {
        req.op = "?";
        out.problems.push_back("bad JSON: " + parse_error);
        return out;
    }
    if (!parsed->isObject()) {
        req.op = "?";
        out.problems.push_back("request must be a JSON object");
        return out;
    }
    const JsonValue& obj = *parsed;

    // Version + request id first: even a defective request gets a
    // correctly versioned, matchable error response.
    if (const JsonValue* v = obj.find("v")) {
        if (v->isNumber() && v->number == kProtocolV2)
            req.v = kProtocolV2;
        else if (v->isNumber() && v->number == kProtocolV1)
            req.v = kProtocolV1;
        else
            out.problems.push_back(
                "unsupported protocol version \"v\" (expected 1 or 2)");
    }
    if (const JsonValue* rid = obj.find("request_id")) {
        if (rid->isString())
            req.request_id = rid->string;
        else
            out.problems.push_back(
                "field \"request_id\" must be a string");
    } else if (req.v == kProtocolV2) {
        out.problems.push_back(
            "v2 requests must carry a string \"request_id\"");
    }

    const JsonValue* op = obj.find("op");
    if (!op || !op->isString()) {
        req.op = "?";
        out.problems.push_back("request needs a string \"op\"");
        return out;
    }
    req.op = op->string;
    if (req.op == "submit")
        req.verb = Verb::Submit;
    else if (req.op == "poll")
        req.verb = Verb::Poll;
    else if (req.op == "stats")
        req.verb = Verb::Stats;
    else if (req.op == "drain")
        req.verb = Verb::Drain;
    else if (req.op == "quit")
        req.verb = Verb::Quit;
    else {
        out.problems.push_back("unknown op \"" + req.op +
                               "\" (submit, poll, stats, drain, quit)");
        return out;
    }

    if (req.verb == Verb::Submit) {
        decodeSubmit(obj, req, out.problems);
    } else if (req.verb == Verb::Poll) {
        const JsonValue* id = obj.find("id");
        if (!id || !id->isNumber() || id->number < 1)
            out.problems.push_back(
                "poll requires a positive numeric \"id\"");
        else
            req.poll_id = static_cast<JobId>(id->number);
    }
    return out;
}

std::string
encodeRequestLine(const Request& req)
{
    JsonReport r;
    if (req.v == kProtocolV2)
        r.set("v", static_cast<std::uint64_t>(kProtocolV2))
            .set("request_id", req.request_id);
    r.set("op", std::string(verbName(req.verb)));
    if (req.verb == Verb::Submit) {
        const JobSpec& spec = req.spec;
        r.set("tenant", spec.tenant)
            .set("dataset", spec.dataset)
            .set("algo", spec.algo)
            .set("prep", std::string(preprocessingName(spec.prep)))
            .set("iterations",
                 static_cast<std::uint64_t>(spec.iterations))
            .set("source", static_cast<std::uint64_t>(spec.source))
            .set("preset", spec.preset)
            .set("priority", static_cast<std::uint64_t>(spec.priority))
            .set("cycle_budget", spec.cycle_budget)
            .set("max_retries",
                 static_cast<std::uint64_t>(spec.max_retries))
            .set("checks", spec.checks)
            .set("telemetry", spec.telemetry)
            .set("boards", static_cast<std::uint64_t>(spec.boards))
            .set("cluster_mode", spec.cluster_mode)
            .set("cluster_partitioner", spec.cluster_partitioner);
    } else if (req.verb == Verb::Poll) {
        r.set("id", static_cast<std::uint64_t>(req.poll_id));
    }
    return r.str();
}

std::string
encodeResponseLine(const Response& resp)
{
    JsonReport r;
    if (resp.v == kProtocolV2) {
        r.set("v", static_cast<std::uint64_t>(kProtocolV2))
            .set("request_id", resp.request_id)
            .set("op", resp.op);
        switch (resp.kind) {
          case Response::Kind::Ok:
            r.set("type", std::string("ok"));
            break;
          case Response::Kind::Error: {
            r.set("type", std::string("error"));
            JsonReport err;
            err.set("code", resp.code)
                .set("problems",
                     JsonReport::Raw{jsonStringArray(resp.problems)});
            if (resp.retry_after_seconds >= 0)
                err.set("retry_after_seconds",
                        resp.retry_after_seconds);
            r.set("error", JsonReport::Raw{err.str()});
            break;
          }
          case Response::Kind::Result:
            r.set("type", std::string("result"))
                .set("result", JsonReport::Raw{resp.result.str()});
            break;
        }
        return r.str();
    }

    // v1: the PR-5 wire shape, bit-compatible for existing clients.
    r.set("op", resp.op).set("ok", resp.kind != Response::Kind::Error);
    if (resp.kind == Response::Kind::Error) {
        if (resp.code == "rejected" || resp.code == "rate_limited") {
            r.set("rejected",
                  JsonReport::Raw{jsonStringArray(resp.problems)});
            if (resp.retry_after_seconds >= 0)
                r.set("retry_after_seconds", resp.retry_after_seconds);
        } else {
            r.set("error", joined(resp.problems));
        }
    } else {
        for (const auto& [key, value] : resp.result.entries())
            r.set(key, value);
    }
    return r.str();
}

JsonReport
jobRecordJson(const JobRecord& rec)
{
    JsonReport r;
    r.set("id", static_cast<std::uint64_t>(rec.id))
        .set("tenant", rec.tenant)
        .set("dataset", rec.dataset)
        .set("algo", rec.algo)
        .set("priority", static_cast<std::uint64_t>(rec.priority))
        .set("state", std::string(jobStateName(rec.state)))
        .set("terminal", rec.terminal())
        .set("attempts", static_cast<std::uint64_t>(rec.attempts))
        .set("used_fallback", rec.used_fallback)
        .set("from_cache", rec.from_cache)
        .set("error", rec.error)
        .set("replay", rec.replay)
        .set("queue_seconds", rec.queue_seconds)
        .set("prep_seconds", rec.prep_seconds)
        .set("sim_seconds", rec.sim_seconds)
        .set("total_seconds", rec.total_seconds)
        .set("cycles", static_cast<std::uint64_t>(rec.cycles))
        .set("iterations", static_cast<std::uint64_t>(rec.iterations))
        .set("edges_processed",
             static_cast<std::uint64_t>(rec.edges_processed))
        .set("dram_bytes_read", rec.dram_bytes_read)
        .set("dram_bytes_written", rec.dram_bytes_written)
        .set("moms_hit_rate", rec.moms_hit_rate)
        .set("gteps", rec.gteps)
        .set("values_checksum", rec.values_checksum);
    return r;
}

Response
execute(GraphService& service, const Request& req,
        const JsonReport* net_stats)
{
    Response resp;
    resp.v = req.v;
    resp.request_id = req.request_id;
    resp.op = verbName(req.verb);

    switch (req.verb) {
      case Verb::Submit: {
        const GraphService::Submitted sub = service.submit(req.spec);
        if (sub.ok()) {
            resp.kind = Response::Kind::Result;
            resp.result.set("id", static_cast<std::uint64_t>(sub.id))
                .set("from_cache", sub.from_cache);
        } else {
            resp.kind = Response::Kind::Error;
            resp.code = sub.rate_limited ? "rate_limited" : "rejected";
            resp.problems = sub.rejected;
            if (sub.rate_limited)
                resp.retry_after_seconds = sub.retry_after_seconds;
        }
        break;
      }
      case Verb::Poll: {
        const std::optional<JobRecord> rec = service.poll(req.poll_id);
        if (rec) {
            resp.kind = Response::Kind::Result;
            resp.result.set("job",
                            JsonReport::Raw{jobRecordJson(*rec).str()});
        } else {
            resp.kind = Response::Kind::Error;
            resp.code = "not_found";
            resp.problems.push_back("unknown job id");
        }
        break;
      }
      case Verb::Stats: {
        resp.kind = Response::Kind::Result;
        resp.result.set(
            "stats", JsonReport::Raw{service.stats().toJson().str()});
        if (net_stats)
            resp.result.set("net", JsonReport::Raw{net_stats->str()});
        break;
      }
      case Verb::Drain: {
        resp.kind = Response::Kind::Result;
        resp.result.set("drained", service.drain());
        break;
      }
      case Verb::Quit:
        resp.kind = Response::Kind::Ok;
        break;
      case Verb::Unknown: {
        resp.kind = Response::Kind::Error;
        resp.code = "bad_request";
        resp.problems.push_back("unknown op \"" + req.op + "\"");
        break;
      }
    }
    return resp;
}

std::string
handleRequestLine(GraphService& service, const std::string& line,
                  bool& quit_requested, const JsonReport* net_stats)
{
    const DecodedRequest decoded = decodeRequestLine(line);
    if (!decoded.ok()) {
        Response resp;
        resp.v = decoded.req.v;
        resp.request_id = decoded.req.request_id;
        resp.op = decoded.req.op;
        resp.kind = Response::Kind::Error;
        resp.code = "bad_request";
        resp.problems = decoded.problems;
        return encodeResponseLine(resp);
    }
    if (decoded.req.verb == Verb::Quit)
        quit_requested = true;
    return encodeResponseLine(execute(service, decoded.req, net_stats));
}

} // namespace gmoms::serve
