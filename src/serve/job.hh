/**
 * @file
 * Job model of the serving layer (ISSUE 5 tentpole): what a tenant
 * submits, how it is validated up front, and what a terminal job looks
 * like.
 *
 * A JobSpec names everything one run needs — dataset + preprocessing,
 * algorithm, accelerator preset (or explicit config), priority and a
 * simulated-cycle deadline — so the service can vet the whole request
 * at admission time. validateJobSpec() accumulates *every* problem
 * (unknown dataset, bad algorithm, out-of-range source, and the full
 * AccelConfig::validateProblems() list of the resolved config) into one
 * structured rejection, mirroring the PR-4 validate() philosophy:
 * reject with the complete story instead of failing mid-run.
 *
 * Deadlines are expressed in *simulated cycles* (the accelerator's own
 * budget), not wall time: a cycle budget is deterministic, so a job
 * that blows it blows it identically on every worker count — the
 * property the retry/degrade policy and its tests rest on.
 */

#ifndef GMOMS_SERVE_JOB_HH
#define GMOMS_SERVE_JOB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/accel/accel_config.hh"
#include "src/graph/reorder.hh"

namespace gmoms::serve
{

/** Service-wide job handle, assigned at admission (monotone from 1). */
using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

/** One tenant request: everything needed to run one algorithm once. */
struct JobSpec
{
    /** Tenant name for fairness/quota accounting (required). */
    std::string tenant;

    /** Dataset tag from the Table II registry ("WT", "DB", ...). */
    std::string dataset;
    Preprocessing prep = Preprocessing::DbgHash;

    /** "PageRank", "SCC", "SSSP" or "BFS". */
    std::string algo;
    /** Iteration cap; 0 means the algorithm default (10 for PageRank,
     *  1000 for the convergence-bound kernels). */
    std::uint32_t iterations = 0;
    /** SSSP/BFS source node in the preprocessed dataset's id space. */
    NodeId source = 0;

    /** Named accelerator preset (see presetByName()); ignored when
     *  @ref config is set. */
    std::string preset = "paper18x16";
    /** Explicit configuration, overriding @ref preset. */
    std::optional<AccelConfig> config;

    /** Larger value = dispatched earlier (see AdmissionQueue). */
    std::uint32_t priority = 0;

    /**
     * Deadline as a simulated-cycle budget; 0 keeps the config's
     * max_cycles. A run that exhausts the budget is aborted by the
     * hardening layer (CheckError) and enters the retry/degrade path.
     */
    std::uint64_t cycle_budget = 0;

    /** Extra attempts with the *same* config after a failed run before
     *  the service degrades to its fallback preset. */
    std::uint32_t max_retries = 1;

    /** Run under the PR-4 watchdog (bit-exact either way; on by
     *  default so wedged jobs abort with a dump instead of hanging). */
    bool checks = true;
    /** Collect PR-3 telemetry for this job's simulation. */
    bool telemetry = false;

    // -- board topology (folded into the resolved config's cluster) ------

    /** Simulated boards: 1 = single board (default), 2-8 = multi-board
     *  cluster. The values checksum is identical either way (the
     *  cluster determinism contract, docs/MODEL.md). */
    std::uint32_t boards = 1;
    /** Coordination mode: "bsp" or "async" (ignored at boards == 1). */
    std::string cluster_mode = "bsp";
    /** Partitioner: "block-edges" or "round-robin" (ignored at
     *  boards == 1). */
    std::string cluster_partitioner = "block-edges";
};

/** Terminal (or in-flight) state of an admitted job. */
enum class JobState : std::uint8_t
{
    Queued,     //!< admitted, waiting for a worker
    Running,    //!< dispatched to a worker
    Completed,  //!< finished with the requested configuration
    Degraded,   //!< finished, but only on the fallback preset
    Failed,     //!< all attempts and the fallback (if any) failed
};

const char* jobStateName(JobState s);

/** What poll() returns: spec echo, lifecycle, latency breakdown and a
 *  compact result summary (full per-node values stay inside the run —
 *  the checksum is what cross-worker-count determinism is asserted
 *  on). */
struct JobRecord
{
    JobId id = kInvalidJob;
    std::string tenant;
    std::string dataset;
    std::string algo;
    std::uint32_t priority = 0;

    JobState state = JobState::Queued;
    std::uint32_t attempts = 0;      //!< runs started (incl. fallback)
    bool used_fallback = false;
    /** Completed straight from the deterministic result cache — no
     *  simulation ran; the result fields (and values_checksum) are the
     *  pinned cold-run values (src/serve/result_cache.hh). */
    bool from_cache = false;
    std::string error;               //!< last failure reason, if any
    /** ReplayDescriptor of the last attempt (the fallback config's
     *  once the job degrades): paste into a fresh process to re-run
     *  the exact simulation — deterministic, so a failing run's dump
     *  is restorable (see src/accel/checkpoint.hh). */
    std::string replay;

    // Latency breakdown (wall seconds).
    double queue_seconds = 0;  //!< admission -> dispatch
    double prep_seconds = 0;   //!< dataset build/fetch + partitioning
    double sim_seconds = 0;    //!< successful simulation run
    double total_seconds = 0;  //!< admission -> terminal

    // Result summary of the successful run.
    Cycle cycles = 0;
    std::uint32_t iterations = 0;
    EdgeId edges_processed = 0;
    std::uint64_t dram_bytes_read = 0;
    std::uint64_t dram_bytes_written = 0;
    double moms_hit_rate = 0;
    double gteps = 0;
    std::uint64_t values_checksum = 0;  //!< FNV-1a over raw values

    bool
    terminal() const
    {
        return state == JobState::Completed ||
               state == JobState::Degraded ||
               state == JobState::Failed;
    }
};

/**
 * Accelerator preset by service-facing name: "paper18x16", "shared",
 * "private", "nbc", or "degraded" (the small 4-PE config the service
 * falls back to). Throws FatalError on an unknown name listing the
 * known ones.
 */
AccelConfig presetByName(const std::string& name);

/** The names presetByName() accepts, for error messages and CLIs. */
const std::vector<std::string>& presetNames();

/** Outcome of up-front validation: the fully resolved config (preset
 *  applied, dataset-geometry intervals, budget and checks folded in)
 *  plus every problem found. The config is only meaningful when
 *  problems is empty. */
struct ValidatedJob
{
    AccelConfig config;
    std::vector<std::string> problems;

    bool ok() const { return problems.empty(); }
};

/**
 * Vet @p spec without running anything: tenant/algo/dataset/preset
 * checks, source bounds against the dataset profile, and the resolved
 * config's own validateProblems() — all problems in one list.
 */
ValidatedJob validateJobSpec(const JobSpec& spec);

/** FNV-1a 64-bit over @p values' bytes: the per-job result fingerprint
 *  used for cross-worker-count bit-identity checks. */
std::uint64_t valuesChecksum(const std::vector<std::uint32_t>& values);

} // namespace gmoms::serve

#endif // GMOMS_SERVE_JOB_HH
