#include "src/serve/job.hh"

#include <tuple>

#include "src/graph/datasets.hh"
#include "src/sim/log.hh"

namespace gmoms::serve
{

const char*
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Completed:
        return "completed";
      case JobState::Degraded:
        return "degraded";
      case JobState::Failed:
        return "failed";
    }
    return "?";
}

const std::vector<std::string>&
presetNames()
{
    static const std::vector<std::string> names = {
        "paper18x16", "shared", "private", "nbc", "degraded",
    };
    return names;
}

AccelConfig
presetByName(const std::string& name)
{
    if (name == "paper18x16")
        return AccelConfig::paper18x16TwoLevel();
    if (name == "shared")
        return AccelConfig::sharedMoms();
    if (name == "private")
        return AccelConfig::privateMoms();
    if (name == "nbc")
        return AccelConfig::traditionalNbc();
    if (name == "degraded")
        // The graceful-degradation target: smallest sane machine, cheap
        // enough that a job that blew its deadline on a big preset can
        // still finish (on the default cycle budget).
        return AccelConfig::preset(MomsConfig::twoLevel(4), /*pes=*/4,
                                   /*channels=*/2);
    std::string known;
    for (const std::string& n : presetNames())
        known += (known.empty() ? "" : ", ") + n;
    fatal("unknown accelerator preset \"" + name + "\" (known: " +
          known + ")");
}

ValidatedJob
validateJobSpec(const JobSpec& spec)
{
    ValidatedJob out;
    std::vector<std::string>& problems = out.problems;

    if (spec.tenant.empty())
        problems.push_back("tenant must be nonempty (per-tenant "
                           "fairness and quotas key on it)");

    const bool sourced = spec.algo == "SSSP" || spec.algo == "BFS";
    if (spec.algo != "PageRank" && spec.algo != "SCC" && !sourced)
        problems.push_back("unknown algorithm \"" + spec.algo +
                           "\" (expected PageRank, SCC, SSSP or BFS)");

    const DatasetProfile* profile = nullptr;
    try {
        profile = &datasetByTag(spec.dataset);
    } catch (const FatalError& e) {
        problems.push_back("unknown dataset tag \"" + spec.dataset +
                           "\"");
    }
    if (profile && sourced && spec.source >= profile->nodes())
        problems.push_back(
            "source node " + std::to_string(spec.source) +
            " is outside dataset " + spec.dataset + " (" +
            std::to_string(profile->nodes()) + " nodes)");

    // Resolve the configuration: explicit config wins over the preset.
    if (spec.config) {
        out.config = *spec.config;
    } else {
        try {
            out.config = presetByName(spec.preset);
        } catch (const FatalError& e) {
            problems.push_back(e.what());
        }
    }

    // Fold in what the service would run with: dataset-geometry
    // intervals (Session overrides nd/ns anyway), the cycle-budget
    // deadline and the watchdog — then collect the config's own
    // problems so the rejection carries the complete story.
    if (profile)
        std::tie(out.config.nd, out.config.ns) =
            defaultIntervalsFor(profile->nodes(), profile->edges());
    if (spec.cycle_budget > 0)
        out.config.max_cycles = spec.cycle_budget;
    out.config.checks.enabled = spec.checks;
    out.config.telemetry.enabled = spec.telemetry;

    // Board topology: the JobSpec fields are authoritative (like the
    // checks/telemetry toggles above). Range problems on boards are
    // caught by validateProblems() below.
    out.config.cluster.boards = spec.boards;
    if (spec.cluster_mode == "bsp")
        out.config.cluster.mode = ClusterConfig::Mode::Bsp;
    else if (spec.cluster_mode == "async")
        out.config.cluster.mode = ClusterConfig::Mode::Async;
    else
        problems.push_back("unknown cluster_mode \"" +
                           spec.cluster_mode +
                           "\" (expected bsp or async)");
    if (spec.cluster_partitioner == "block-edges")
        out.config.cluster.partitioner =
            ClusterConfig::Partitioner::BlockEdges;
    else if (spec.cluster_partitioner == "round-robin")
        out.config.cluster.partitioner =
            ClusterConfig::Partitioner::RoundRobin;
    else
        problems.push_back("unknown cluster_partitioner \"" +
                           spec.cluster_partitioner +
                           "\" (expected block-edges or round-robin)");
    if (spec.boards > 1 && spec.checks)
        // The per-board drivers coordinate through barrier/ghost waits
        // the single-board watchdog would misread as a hang; the
        // cluster path instead verifies its timed values against the
        // functional plane on every run (a stronger end-state check).
        out.config.checks.enabled = false;

    for (const std::string& p : out.config.validateProblems())
        problems.push_back("config: " + p);

    return out;
}

std::uint64_t
valuesChecksum(const std::vector<std::uint32_t>& values)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint32_t v : values)
        for (int byte = 0; byte < 4; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    return h;
}

} // namespace gmoms::serve
