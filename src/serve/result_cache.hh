/**
 * @file
 * Deterministic result cache for the serving layer (ISSUE 9 tentpole):
 * most real graph-query traffic repeats (same dataset, same algorithm,
 * same source), and every simulation here is deterministic, so a repeat
 * query need not simulate at all — the same way MOMS converts repeat
 * misses into merged subentries in the source paper, the result cache
 * converts repeat jobs into O(1) lookups.
 *
 * Key: `dataset|prep|algo|source|iterations|configFingerprint` — every
 * input that can change the result summary. configFingerprint()
 * (src/accel/checkpoint.hh) covers the resolved AccelConfig including
 * cluster topology, and deliberately *ignores* the bit-exactness knobs
 * (tick_threads, full_tick_engine): a result cached under one engine
 * mode is valid under the other because the engine-equivalence tests
 * pin them bit-identical. The cached value is the full JobRecord result
 * summary (cycles, edges, DRAM bytes, gteps, values_checksum, replay
 * descriptor), so a hit answers poll() exactly as the cold run did.
 *
 * Caching policy (enforced by the service, documented here):
 *  - only JobState::Completed results are inserted — a Degraded run
 *    executed the fallback config, not the keyed one, and a Failed run
 *    has no result;
 *  - lookups happen at submit time, so a repeat only hits once its
 *    first instance has *finished* (batch-mode bursts of the same spec
 *    all simulate; live repeat traffic hits).
 *
 * Byte-budgeted LRU like the DatasetCache: entries are tiny (a key
 * string + a fixed summary), the budget exists so a long-lived service
 * with unbounded key cardinality cannot grow without bound. The entry
 * just inserted or hit is never the next eviction victim. Thread-compat
 * like AdmissionQueue: externally synchronized by the service mutex.
 */

#ifndef GMOMS_SERVE_RESULT_CACHE_HH
#define GMOMS_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/serve/job.hh"

namespace gmoms::serve
{

class ResultCache
{
  public:
    /** The cached summary: every result field of JobRecord plus the
     *  replay descriptor of the run that produced it. */
    struct Entry
    {
        Cycle cycles = 0;
        std::uint32_t iterations = 0;
        EdgeId edges_processed = 0;
        std::uint64_t dram_bytes_read = 0;
        std::uint64_t dram_bytes_written = 0;
        double moms_hit_rate = 0;
        double gteps = 0;
        std::uint64_t values_checksum = 0;
        std::string replay;
    };

    /** @param budget_bytes byte ceiling; 0 = unbounded. */
    explicit ResultCache(std::uint64_t budget_bytes)
        : budget_(budget_bytes)
    {
    }

    /** The canonical cache key (documented in docs/MODEL.md). @p spec
     *  must be valid; @p fingerprint is configFingerprint() of the
     *  *resolved* config (ValidatedJob::config). */
    static std::string keyFor(const JobSpec& spec,
                              std::uint64_t fingerprint);

    /** Lookup + LRU touch. */
    std::optional<Entry> get(const std::string& key);

    /** Insert (or refresh) @p key, then evict LRU entries over budget
     *  (never the one just inserted). Deterministic repeat runs always
     *  produce the same entry, so refreshing is idempotent. */
    void put(const std::string& key, const Entry& entry);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;
        std::uint64_t budget_bytes = 0;

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total > 0
                       ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
        }
    };

    Stats stats() const;

  private:
    struct Slot
    {
        Entry entry;
        std::uint64_t bytes = 0;
        std::uint64_t last_use = 0;
    };

    static std::uint64_t slotBytes(const std::string& key,
                                   const Entry& e);
    void evictOverBudget(const std::string& keep_key);

    const std::uint64_t budget_;
    std::map<std::string, Slot> entries_;
    std::uint64_t bytes_ = 0;
    std::uint64_t use_clock_ = 0;
    Stats stats_;
};

} // namespace gmoms::serve

#endif // GMOMS_SERVE_RESULT_CACHE_HH
