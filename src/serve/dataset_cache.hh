/**
 * @file
 * DatasetCache: bounded, shared, immutable dataset store for the
 * serving layer and the bench sweeps.
 *
 * Replaces bench_common::loadDataset's unbounded process-lifetime
 * memoization with an LRU cache under an explicit byte budget: a
 * long-running service (or a long sweep over many datasets and
 * preprocessing variants) no longer grows memory without bound.
 *
 * Semantics:
 *  - Keyed by (tag, preprocessing, nd hint); the cached value is the
 *    fully built + preprocessed graph, shared immutably by pointer —
 *    every concurrent session/sweep worker references one build.
 *  - One build per key: the first caller of a missing key builds, every
 *    concurrent caller of the same key waits on that one build (the
 *    PR-2 once-per-key contract, preserved).
 *  - Eviction is LRU over *completed* entries and only drops the
 *    cache's reference: jobs still holding the shared_ptr keep their
 *    graph alive, so an eviction can never invalidate a running job.
 *  - A rebuilt entry is bit-identical to the evicted one (dataset
 *    builds are deterministic in their seed), so eviction is invisible
 *    to results — only to latency. test_serve pins this.
 *  - The most recently inserted entry is never evicted by its own
 *    insertion: a single dataset larger than the budget stays cached
 *    (over budget) until something newer lands.
 *
 * budget_bytes == 0 means unbounded (the old memoization behavior).
 */

#ifndef GMOMS_SERVE_DATASET_CACHE_HH
#define GMOMS_SERVE_DATASET_CACHE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "src/graph/coo.hh"
#include "src/graph/reorder.hh"

namespace gmoms::serve
{

using DatasetPtr = std::shared_ptr<const CooGraph>;

/** Estimated resident size of a built dataset (edge store dominates). */
std::uint64_t datasetBytes(const CooGraph& g);

class DatasetCache
{
  public:
    explicit DatasetCache(std::uint64_t budget_bytes = 0);

    /**
     * The preprocessed stand-in for Table II dataset @p tag (see
     * bench_common::loadDataset, which now delegates here): built on
     * first use with @p prep applied at interval size @p nd_hint (0 =
     * dataset-geometry default), then served from cache until evicted.
     */
    DatasetPtr get(const std::string& tag,
                   Preprocessing prep = Preprocessing::DbgHash,
                   std::uint32_t nd_hint = 0);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;      //!< builds started
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;     //!< currently cached keys
        std::uint64_t bytes = 0;       //!< sum of completed entries
        std::uint64_t budget_bytes = 0;
    };

    Stats stats() const;

    std::uint64_t budgetBytes() const { return budget_; }

    /**
     * Process-wide instance backing bench_common::loadDataset. Budget
     * from GMOMS_DATASET_CACHE_MB (default 2048 MB — roomy enough that
     * the bench suite never evicts and sweep outputs stay byte-stable,
     * bounded enough that a runaway sweep cannot eat the host).
     */
    static DatasetCache& process();

  private:
    struct Entry
    {
        std::shared_future<DatasetPtr> ready;
        std::uint64_t bytes = 0;   //!< 0 while still building
        std::uint64_t last_use = 0;
        bool building = true;
    };

    using Key = std::tuple<std::string, int, std::uint32_t>;

    /** Drop LRU completed entries until within budget; never touches
     *  in-flight builds or @p keep. Caller holds mu_. */
    void evictLocked(const Key& keep);

    const std::uint64_t budget_;

    mutable std::mutex mu_;
    std::map<Key, Entry> cache_;
    std::uint64_t bytes_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace gmoms::serve

#endif // GMOMS_SERVE_DATASET_CACHE_HH
