#include "src/serve/rate_limiter.hh"

#include <algorithm>

namespace gmoms::serve
{

RateLimiter::RateLimiter(double rate_hz, double burst)
    : rate_hz_(rate_hz),
      burst_(burst > 0 ? burst : std::max(1.0, rate_hz))
{
}

RateLimiter::Decision
RateLimiter::acquire(const std::string& tenant, double now_seconds)
{
    Decision d;
    if (rate_hz_ <= 0) {
        ++stats_.allowed;
        return d;
    }

    auto [it, fresh] = buckets_.try_emplace(tenant);
    Bucket& b = it->second;
    if (fresh) {
        // A new tenant starts with a full bucket: the first burst of a
        // well-behaved client is never punished.
        b.tokens = burst_;
        b.last_refill = now_seconds;
    }
    const double elapsed = std::max(0.0, now_seconds - b.last_refill);
    b.tokens = std::min(burst_, b.tokens + elapsed * rate_hz_);
    b.last_refill = std::max(b.last_refill, now_seconds);

    if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        ++stats_.allowed;
        return d;
    }
    d.allowed = false;
    d.retry_after_seconds = (1.0 - b.tokens) / rate_hz_;
    ++stats_.limited;
    return d;
}

RateLimiter::Stats
RateLimiter::stats() const
{
    Stats s = stats_;
    s.tenants = buckets_.size();
    return s;
}

} // namespace gmoms::serve
