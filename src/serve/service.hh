/**
 * @file
 * GraphService: the serving layer's front door (ISSUE 5 tentpole).
 *
 * Turns the library into a long-running multi-tenant service: tenants
 * submit JobSpecs; the service validates them up front (one structured
 * rejection listing every problem), applies admission control (bounded
 * queue, per-tenant quotas), schedules deterministically by priority
 * with per-tenant fairness (AdmissionQueue), shares datasets through a
 * byte-budgeted LRU DatasetCache, and runs each job on a
 * src/sim/parallel worker pool under the PR-4 watchdog with a
 * timeout -> retry -> degrade-to-fallback-preset policy. Per-job
 * latency (queue wait, prep, sim, total) feeds LatencyStats; stats()
 * exports p50/p95/p99 + throughput + rejection rate.
 *
 * Determinism contract (pinned by tests/test_serve.cc):
 *  - Per-job results are bit-identical for any worker count — each job
 *    runs on the re-entrant simulation core with a deterministic
 *    config, exactly as sweep() jobs do.
 *  - The *completion log* is ordered by dispatch index (a reorder
 *    buffer holds back out-of-order finishers), so in batch mode
 *    (start_paused: submit everything, then drain()) the full
 *    completion order is identical under GMOMS_JOBS=1/2/8. In live
 *    mode dispatch interleaves with arrivals, so the order reflects
 *    arrival timing — but every admitted job still ends terminally and
 *    publishes exactly once.
 *
 * Failure policy per job:
 *  1. up to 1 + max_retries attempts with the requested config; the
 *     cycle-budget deadline and the watchdog abort via CheckError;
 *  2. then, if the service has fallback enabled, one attempt on the
 *     fallback ("degraded") preset with the fallback budget ->
 *     JobState::Degraded on success;
 *  3. else JobState::Failed with the last error. Nothing is ever
 *     dropped: submitted == rejected + completed + degraded + failed.
 */

#ifndef GMOMS_SERVE_SERVICE_HH
#define GMOMS_SERVE_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/latency.hh"
#include "src/serve/checkpoint_pool.hh"
#include "src/serve/dataset_cache.hh"
#include "src/serve/job.hh"
#include "src/serve/rate_limiter.hh"
#include "src/serve/result_cache.hh"
#include "src/serve/scheduler.hh"
#include "src/sim/parallel.hh"
#include "src/sim/report.hh"

namespace gmoms::serve
{

struct ServiceConfig
{
    /** Worker threads; 0 = ThreadPool::defaultWorkers() (GMOMS_JOBS). */
    unsigned workers = 0;

    /** Admission control (see AdmissionQueue). */
    std::size_t max_queue_depth = 256;
    std::size_t per_tenant_quota = 64;  //!< 0 = unlimited

    /** Accept submissions but dispatch nothing until resume()/drain():
     *  batch mode, where completion order is fully deterministic. */
    bool start_paused = false;

    /** Dataset-cache byte budget; 0 = unbounded. */
    std::uint64_t cache_budget_bytes = 2048ull << 20;

    /** Serve repeat (dataset, prep, config) jobs from a pool of warm
     *  session checkpoints: the first job on a key pays the partition
     *  cost, later jobs fork the checkpoint, and *identical* jobs
     *  (same algo + args) replay the memoized, bit-identical result
     *  without re-simulating. Off = every attempt cold-builds (the
     *  pre-checkpoint behavior). */
    bool enable_checkpoints = true;
    /** Checkpoint-pool resident-byte budget; 0 = unbounded. */
    std::uint64_t checkpoint_budget_bytes = 1024ull << 20;

    /** Serve repeat queries from the deterministic result cache: a
     *  submit whose (dataset, prep, algo, source, iterations, config
     *  fingerprint) key already holds a *Completed* result returns the
     *  pinned values_checksum in O(1) without admission or simulation
     *  (ISSUE 9). Off = every submit simulates. */
    bool enable_result_cache = true;
    /** Result-cache byte budget; 0 = unbounded. Entries are ~200 B so
     *  the default holds hundreds of thousands of distinct queries. */
    std::uint64_t result_cache_budget_bytes = 64ull << 20;

    /** Per-tenant token-bucket rate limit ahead of the admission
     *  quotas; <= 0 disables (the default — admission depth/quota
     *  remain the only pushback). */
    double rate_limit_hz = 0;
    /** Bucket capacity; <= 0 = max(1, rate_limit_hz). */
    double rate_limit_burst = 0;

    /** Degrade-instead-of-fail: after all retries, run once on
     *  @ref fallback with @ref fallback_budget. */
    bool enable_fallback = true;
    /** Fallback preset name (presetByName). */
    std::string fallback_preset = "degraded";
    /** Cycle budget of the fallback attempt; 0 = the fallback
     *  config's own max_cycles (the generous library default). */
    std::uint64_t fallback_budget = 0;
};

/** Aggregate service counters + SLO latency distributions. */
struct ServiceStats
{
    std::uint64_t submitted = 0;  //!< submit() calls
    std::uint64_t rejected = 0;   //!< refused at admission
    std::uint64_t rate_limited = 0;  //!< subset of rejected (429s)
    std::uint64_t completed = 0;
    std::uint64_t result_cache_completed = 0;  //!< subset of completed
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;        //!< failed attempts re-tried
    std::uint64_t fallback_runs = 0;  //!< fallback attempts started

    LatencyStats queue_wait;
    LatencyStats prep;
    LatencyStats sim;
    LatencyStats total;

    double wall_seconds = 0;  //!< service lifetime at stats() time
    std::uint64_t queued = 0;   //!< admission snapshot at stats() time
    std::uint64_t running = 0;  //!< dispatched, not yet terminal
    DatasetCache::Stats cache;
    CheckpointPool::Stats checkpoints;  //!< zeros when pool disabled
    ResultCache::Stats result_cache;    //!< zeros when cache disabled
    RateLimiter::Stats rate;            //!< zeros when limiter off

    std::uint64_t terminal() const
    {
        return completed + degraded + failed;
    }
    double
    jobsPerSecond() const
    {
        return wall_seconds > 0
                   ? static_cast<double>(terminal()) / wall_seconds
                   : 0.0;
    }
    double
    rejectionRate() const
    {
        return submitted > 0
                   ? static_cast<double>(rejected) /
                         static_cast<double>(submitted)
                   : 0.0;
    }

    /**
     * THE one service-statistics serialization (ISSUE 9 satellite):
     * admission counters, latency percentiles, dataset cache,
     * checkpoint pool, result cache and rate limiter, as one flat JSON
     * block (the payload of BENCH_serve.json records and of every
     * protocol stats response). Schema documented in docs/MODEL.md.
     */
    JsonReport toJson() const;
};

class GraphService
{
  public:
    explicit GraphService(ServiceConfig cfg = {});
    /** Drains every admitted job, then joins the pool. */
    ~GraphService();

    GraphService(const GraphService&) = delete;
    GraphService& operator=(const GraphService&) = delete;

    /** submit() outcome: an id, or the full list of rejection
     *  reasons (spec problems and/or admission-control pushback). */
    struct Submitted
    {
        JobId id = kInvalidJob;
        std::vector<std::string> rejected;
        /** Refused by the per-tenant token bucket (a 429, not a quota
         *  rejection): retry_after_seconds says when to come back. */
        bool rate_limited = false;
        double retry_after_seconds = 0;
        /** Answered from the result cache: the id is terminal
         *  (Completed) already, no simulation was scheduled. */
        bool from_cache = false;

        bool ok() const { return id != kInvalidJob; }
    };

    /**
     * Validate + admit @p spec. Never throws on a bad job: every
     * problem comes back in Submitted::rejected. Thread-safe.
     */
    Submitted submit(JobSpec spec);

    /** Snapshot of an admitted job's record; nullopt for unknown ids
     *  (including rejected submissions, which get no id). */
    std::optional<JobRecord> poll(JobId id) const;

    /** Start dispatching (no-op unless start_paused). */
    void resume();

    /**
     * Run until every admitted job is terminal and published. Implies
     * resume(). New submissions during drain are allowed and drained
     * too. Returns the number of terminal jobs.
     */
    std::uint64_t drain();

    /** Ids in publication order (dispatch-ordered; see file header). */
    std::vector<JobId> completionLog() const;

    ServiceStats stats() const;

    DatasetCache& datasetCache() { return cache_; }
    /** Null when ServiceConfig::enable_checkpoints is false. */
    const CheckpointPool* checkpointPool() const
    {
        return ckpt_pool_.get();
    }
    /** Null when ServiceConfig::enable_result_cache is false. */
    const ResultCache* resultCache() const
    {
        return result_cache_.get();
    }
    unsigned workers() const { return pool_.workers(); }

  private:
    struct Job
    {
        JobSpec spec;
        AccelConfig config;  //!< resolved by validateJobSpec
        std::string result_key;  //!< ResultCache::keyFor, "" = uncachable
        JobRecord rec;
        WallTimer admitted;          //!< starts at admission
        std::uint64_t dispatch_idx = 0;
    };

    /** Worker body: dispatch-run-publish until the queue drains. */
    void drainerLoop();
    /** Spawn drainers up to min(workers, queued). Caller holds mu_. */
    void spawnDrainersLocked();
    /** Publish in dispatch order whatever finished. Caller holds mu_. */
    void publishReadyLocked();
    /** One simulation attempt; fills @p rec result fields on success.
     *  @p replay is the attempt's ReplayDescriptor serialization,
     *  prepended to any diagnostic dump the run produces. */
    void runAttempt(const JobSpec& spec, const AccelConfig& cfg,
                    const DatasetPtr& dataset, JobRecord& rec,
                    const std::string& replay);

    const ServiceConfig cfg_;
    const AccelConfig fallback_config_;
    DatasetCache cache_;
    std::unique_ptr<CheckpointPool> ckpt_pool_;  //!< null = disabled
    std::unique_ptr<ResultCache> result_cache_;  //!< null = disabled
    std::unique_ptr<RateLimiter> limiter_;       //!< null = disabled
    ThreadPool pool_;
    WallTimer lifetime_;

    mutable std::mutex mu_;
    std::condition_variable idle_cv_;
    AdmissionQueue queue_;
    std::map<JobId, Job> jobs_;
    JobId next_id_ = 1;
    bool paused_ = false;
    bool closing_ = false;
    unsigned active_drainers_ = 0;

    // Reorder buffer: dispatch_idx -> finished job, published in order.
    std::uint64_t dispatch_count_ = 0;
    std::uint64_t next_publish_ = 0;
    std::map<std::uint64_t, JobId> finished_;
    std::vector<JobId> completion_log_;

    // Aggregates (guarded by mu_).
    ServiceStats stats_;
};

} // namespace gmoms::serve

#endif // GMOMS_SERVE_SERVICE_HH
