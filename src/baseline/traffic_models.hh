/**
 * @file
 * DRAM traffic models for the Fig. 1 comparison: how many bytes each
 * kind of memory system moves for the same irregular source-read
 * sequence.
 *
 *  (a) traditional cache — lines fetched by a small cache over the
 *      sequential access trace;
 *  (b) scratchpad tiles — whole source tiles per (s, d) pair (computed
 *      by runScratchpad);
 *  (c) ideal infinite cache — each referenced line exactly once;
 *  (d) MOMS — measured from an accelerator run (lines_from_mem).
 */

#ifndef GMOMS_BASELINE_TRAFFIC_MODELS_HH
#define GMOMS_BASELINE_TRAFFIC_MODELS_HH

#include <cstdint>
#include <functional>

#include "src/graph/partition.hh"

namespace gmoms
{

/**
 * The source-node read trace of one edge-centric iteration: for each
 * destination interval, for each shard, each edge's source value
 * address (4 bytes at node id * 4). The callback receives node ids in
 * trace order.
 */
void forEachSourceRead(const PartitionedGraph& pg,
                       const std::function<void(NodeId)>& fn);

/** Bytes moved by a @p cache_bytes direct-mapped cache on the trace. */
std::uint64_t traditionalCacheTraffic(const PartitionedGraph& pg,
                                      std::uint64_t cache_bytes);

/** Bytes moved by an infinite cache: distinct lines touched, once. */
std::uint64_t idealCacheTraffic(const PartitionedGraph& pg);

} // namespace gmoms

#endif // GMOMS_BASELINE_TRAFFIC_MODELS_HH
