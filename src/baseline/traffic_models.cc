#include "src/baseline/traffic_models.hh"

#include <functional>
#include <unordered_set>
#include <vector>

#include "src/cache/cache_array.hh"

namespace gmoms
{

void
forEachSourceRead(const PartitionedGraph& pg,
                  const std::function<void(NodeId)>& fn)
{
    for (std::uint32_t d = 0; d < pg.qd(); ++d)
        for (std::uint32_t s = 0; s < pg.qs(); ++s)
            for (const Edge& e : pg.shardEdges(s, d))
                fn(e.src);
}

std::uint64_t
traditionalCacheTraffic(const PartitionedGraph& pg,
                        std::uint64_t cache_bytes)
{
    CacheArray cache(cache_bytes, 4);
    std::uint64_t lines = 0;
    forEachSourceRead(pg, [&](NodeId n) {
        const Addr line = lineOf(Addr{n} * 4);
        if (!cache.lookup(line)) {
            cache.fill(line);
            ++lines;
        }
    });
    return lines * kLineBytes;
}

std::uint64_t
idealCacheTraffic(const PartitionedGraph& pg)
{
    std::unordered_set<Addr> lines;
    forEachSourceRead(pg, [&](NodeId n) {
        lines.insert(lineOf(Addr{n} * 4));
    });
    return static_cast<std::uint64_t>(lines.size()) * kLineBytes;
}

} // namespace gmoms
