#include "src/baseline/fabgraph_model.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/types.hh"

namespace gmoms
{

FabGraphResult
modelFabGraph(const CooGraph& g, const FabGraphConfig& cfg)
{
    FabGraphResult r;
    const double n = static_cast<double>(g.numNodes());
    const double m = static_cast<double>(g.numEdges());
    const double dram_bw =
        cfg.num_channels * cfg.channel_bytes_per_cycle;

    // (1) Compute bound: all pipelines at initiation interval 1.
    const double compute =
        m / (cfg.pipelines * cfg.edges_per_pipeline_cycle);

    // (2) DRAM edge streaming: every edge read once per iteration
    //     (4 bytes compressed).
    const double dram_edges = 4.0 * m / dram_bw;

    // (3) DRAM vertex traffic: L2-resident fraction comes from URAM;
    //     the overflow is re-streamed once per destination sweep.
    const double resident =
        std::min(1.0, static_cast<double>(cfg.l2_capacity_nodes) / n);
    const double overflow_nodes = n * (1.0 - resident);
    const double q_l2 =
        std::ceil(n / static_cast<double>(cfg.l2_capacity_nodes));
    const double dram_vertices =
        (2.0 * n + overflow_nodes * q_l2) * 4.0 / dram_bw;

    // (4) Internal L1<->L2 transfers: each L1 destination tile pairs
    //     with every L2 source tile it consumes; with Q1 = N / L1 tiles
    //     and source tiles of L1 size moved per pair, the moved bytes
    //     grow ~ N^2 / L1 / L2 * min(L1,L2) — the quadratic on-chip
    //     term that saturates scaling on large graphs (Fig. 14).
    const double q1 = std::ceil(n / cfg.l1_tile_nodes);
    const double internal_bytes =
        q1 * std::min(n, static_cast<double>(cfg.l2_capacity_nodes)) *
        4.0;
    const double internal = internal_bytes / cfg.internal_bytes_per_cycle;

    r.cycles_per_iteration =
        std::max({compute, dram_edges, dram_vertices, internal});
    if (r.cycles_per_iteration == compute)
        r.bound = FabGraphResult::Bound::Compute;
    else if (r.cycles_per_iteration == dram_edges)
        r.bound = FabGraphResult::Bound::DramEdges;
    else if (r.cycles_per_iteration == dram_vertices)
        r.bound = FabGraphResult::Bound::DramVertices;
    else
        r.bound = FabGraphResult::Bound::Internal;

    r.gteps = m * cfg.modelled_freq_mhz /
              (r.cycles_per_iteration * 1e3);
    return r;
}

} // namespace gmoms
