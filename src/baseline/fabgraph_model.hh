/**
 * @file
 * Analytic throughput model of FabGraph [Shao et al., FPGA'19].
 *
 * The paper compares against FabGraph through its own theoretical model
 * (Equations (2)-(7) of the FabGraph paper), assuming ideal 16 GB/s per
 * DDR4 channel, integer PageRank (initiation interval 1) and no
 * SLR-related issues — i.e. an optimistic bound (Section V-D and
 * Fig. 14 caption). We reconstruct that model from FabGraph's
 * architecture: two-level vertex caching with large on-chip L2 (URAM)
 * source tiles and small L1 (BRAM) tiles; edges streamed from DRAM;
 * source tiles move L2 -> L1 once per (L1-tile, L2-tile) pair, which
 * makes the internal L1/L2 bandwidth the asymptotic bottleneck on large
 * graphs — exactly the effect Fig. 14 shows.
 */

#ifndef GMOMS_BASELINE_FABGRAPH_MODEL_HH
#define GMOMS_BASELINE_FABGRAPH_MODEL_HH

#include <cstdint>

#include "src/graph/coo.hh"

namespace gmoms
{

struct FabGraphConfig
{
    std::uint32_t num_channels = 4;
    /** Ideal per-channel bandwidth, bytes/cycle at the modelled clock
     *  (16 GB/s at 250 MHz = 64 B/cycle; deliberately optimistic). */
    double channel_bytes_per_cycle = 64;
    /** Processing pipelines (FabGraph uses 2 per memory channel). */
    std::uint32_t pipelines = 8;
    /** Edges per pipeline per cycle (integer PageRank, II = 1). */
    double edges_per_pipeline_cycle = 1.0;
    /** L2 vertex cache capacity in nodes (URAM budget). For our scaled
     *  datasets this is the paper's ~4M nodes / 8. */
    NodeId l2_capacity_nodes = 512 * 1024;
    /** L1 tile size in nodes. */
    NodeId l1_tile_nodes = 2048;
    /** Aggregate L1<->L2 on-chip bandwidth, bytes per cycle. */
    double internal_bytes_per_cycle = 128;
    double modelled_freq_mhz = 250.0;
};

struct FabGraphResult
{
    double cycles_per_iteration = 0;
    double gteps = 0;
    /** Which term bound the throughput. */
    enum class Bound { Compute, DramEdges, DramVertices, Internal };
    Bound bound = Bound::Compute;
};

/** Model one PageRank iteration over @p g (FabGraph supports PR/BFS-
 *  style kernels; the paper's comparison uses PageRank only). */
FabGraphResult modelFabGraph(const CooGraph& g, const FabGraphConfig& cfg);

} // namespace gmoms

#endif // GMOMS_BASELINE_FABGRAPH_MODEL_HH
