/**
 * @file
 * ForeGraph-style statically-scheduled scratchpad accelerator model
 * (the "tiles" baseline of Fig. 1b and Section I-A).
 *
 * The tiled approach buffers both the source and the destination
 * interval on chip and streams shards; every (source, destination)
 * interval pair requires the source tile to be (re)loaded, making node
 * traffic quadratic in the interval count and independent of how many
 * nodes are actually referenced. This model charges exactly that
 * traffic and converts it to time through the same DRAM bandwidth
 * parameters the MOMS system uses, overlapping compute and transfer.
 */

#ifndef GMOMS_BASELINE_SCRATCHPAD_ACCEL_HH
#define GMOMS_BASELINE_SCRATCHPAD_ACCEL_HH

#include <cstdint>

#include "src/graph/partition.hh"

namespace gmoms
{

struct ScratchpadConfig
{
    std::uint32_t num_pes = 16;
    /** Edges processed per PE per cycle. */
    double edges_per_pe_cycle = 1.0;
    /** Aggregate DRAM bandwidth in bytes per cycle (64 per channel). */
    double dram_bytes_per_cycle = 256;
    /** DRAM efficiency on long bursts (tiles stream well). */
    double burst_efficiency = 0.94;
    /** Skip shards whose source interval has no active nodes. */
    bool skip_inactive = true;
};

struct ScratchpadResult
{
    double cycles = 0;
    std::uint64_t node_bytes = 0;   //!< tile traffic (the quadratic term)
    std::uint64_t edge_bytes = 0;
    std::uint64_t total_bytes = 0;
    EdgeId edges_processed = 0;

    double
    gteps(double freq_mhz) const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(edges_processed) *
                                 freq_mhz / (cycles * 1e3);
    }
};

/**
 * Model @p iterations of edge-centric processing over @p pg.
 * Per iteration, per destination interval: load the destination tile,
 * load every source tile whose shard is nonempty, stream the shard
 * edges, write the destination tile back.
 */
ScratchpadResult runScratchpad(const PartitionedGraph& pg,
                               const ScratchpadConfig& cfg,
                               std::uint32_t iterations,
                               bool weighted_edges);

} // namespace gmoms

#endif // GMOMS_BASELINE_SCRATCHPAD_ACCEL_HH
