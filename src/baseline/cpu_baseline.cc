#include "src/baseline/cpu_baseline.hh"

#include <algorithm>
#include <atomic>
#include <functional>
#include <chrono>
#include <thread>

#include "src/algo/spec.hh"

namespace gmoms
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Run @p fn(t) on @p threads workers and join. */
void
parallelFor(std::uint32_t threads,
            const std::function<void(std::uint32_t)>& fn)
{
    if (threads <= 1) {
        fn(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        pool.emplace_back(fn, t);
    for (auto& th : pool)
        th.join();
}

/** Atomically lower @p target to @p value (relaxed min). */
bool
atomicMin(std::atomic<std::uint32_t>& target, std::uint32_t value)
{
    std::uint32_t cur = target.load(std::memory_order_relaxed);
    while (value < cur) {
        if (target.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed))
            return true;
    }
    return false;
}

} // namespace

CpuResult
cpuPageRank(const CooGraph& g, std::uint32_t iterations,
            std::uint32_t num_threads)
{
    CpuResult r;
    const NodeId n = g.numNodes();
    const std::vector<std::uint32_t> od = g.outDegrees();
    std::vector<double> pr(n, 1.0 / n);
    // Per-thread partial accumulators avoid atomics on doubles.
    std::vector<std::vector<double>> partial(
        num_threads, std::vector<double>(n, 0.0));

    const auto t0 = Clock::now();
    for (std::uint32_t it = 0; it < iterations; ++it) {
        parallelFor(num_threads, [&](std::uint32_t t) {
            auto& acc = partial[t];
            std::fill(acc.begin(), acc.end(), 0.0);
            const EdgeId lo = g.numEdges() * t / num_threads;
            const EdgeId hi = g.numEdges() * (t + 1) / num_threads;
            for (EdgeId e = lo; e < hi; ++e) {
                const Edge& edge = g.edges()[e];
                acc[edge.dst] += pr[edge.src] / od[edge.src];
            }
        });
        parallelFor(num_threads, [&](std::uint32_t t) {
            const NodeId lo =
                static_cast<NodeId>(std::uint64_t{n} * t / num_threads);
            const NodeId hi = static_cast<NodeId>(
                std::uint64_t{n} * (t + 1) / num_threads);
            for (NodeId v = lo; v < hi; ++v) {
                double sum = 0;
                for (std::uint32_t p = 0; p < num_threads; ++p)
                    sum += partial[p][v];
                pr[v] = 0.15 / n + 0.85 * sum;
            }
        });
    }
    r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    r.iterations = iterations;
    r.edges_processed = static_cast<EdgeId>(iterations) * g.numEdges();
    r.pagerank = std::move(pr);
    return r;
}

CpuResult
cpuScc(const CooGraph& g, std::uint32_t num_threads)
{
    CpuResult r;
    const NodeId n = g.numNodes();
    std::vector<std::atomic<std::uint32_t>> label(n);
    for (NodeId i = 0; i < n; ++i)
        label[i].store(i, std::memory_order_relaxed);

    const auto t0 = Clock::now();
    std::atomic<bool> changed{true};
    while (changed.load()) {
        changed.store(false);
        ++r.iterations;
        r.edges_processed += g.numEdges();
        parallelFor(num_threads, [&](std::uint32_t t) {
            const EdgeId lo = g.numEdges() * t / num_threads;
            const EdgeId hi = g.numEdges() * (t + 1) / num_threads;
            bool local_changed = false;
            for (EdgeId e = lo; e < hi; ++e) {
                const Edge& edge = g.edges()[e];
                const std::uint32_t s =
                    label[edge.src].load(std::memory_order_relaxed);
                if (atomicMin(label[edge.dst], s))
                    local_changed = true;
            }
            if (local_changed)
                changed.store(true);
        });
    }
    r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    r.values.resize(n);
    for (NodeId i = 0; i < n; ++i)
        r.values[i] = label[i].load();
    return r;
}

CpuResult
cpuSssp(const CooGraph& g, NodeId source, std::uint32_t num_threads)
{
    CpuResult r;
    const NodeId n = g.numNodes();
    std::vector<std::atomic<std::uint32_t>> dist(n);
    for (NodeId i = 0; i < n; ++i)
        dist[i].store(kInfDist, std::memory_order_relaxed);
    dist[source].store(0);

    const auto t0 = Clock::now();
    std::atomic<bool> changed{true};
    while (changed.load()) {
        changed.store(false);
        ++r.iterations;
        r.edges_processed += g.numEdges();
        parallelFor(num_threads, [&](std::uint32_t t) {
            const EdgeId lo = g.numEdges() * t / num_threads;
            const EdgeId hi = g.numEdges() * (t + 1) / num_threads;
            bool local_changed = false;
            for (EdgeId e = lo; e < hi; ++e) {
                const Edge& edge = g.edges()[e];
                const std::uint32_t ds =
                    dist[edge.src].load(std::memory_order_relaxed);
                if (ds == kInfDist)
                    continue;
                const std::uint64_t cand =
                    std::uint64_t{ds} + edge.weight;
                if (cand < kInfDist &&
                    atomicMin(dist[edge.dst],
                              static_cast<std::uint32_t>(cand)))
                    local_changed = true;
            }
            if (local_changed)
                changed.store(true);
        });
    }
    r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    r.values.resize(n);
    for (NodeId i = 0; i < n; ++i)
        r.values[i] = dist[i].load();
    return r;
}

} // namespace gmoms
