#include "src/baseline/scratchpad_accel.hh"

#include <algorithm>

namespace gmoms
{

ScratchpadResult
runScratchpad(const PartitionedGraph& pg, const ScratchpadConfig& cfg,
              std::uint32_t iterations, bool weighted_edges)
{
    ScratchpadResult r;
    const double edge_size = weighted_edges ? 8.0 : 4.0;

    for (std::uint32_t it = 0; it < iterations; ++it) {
        for (std::uint32_t d = 0; d < pg.qd(); ++d) {
            // Destination tile: read once, written back once.
            r.node_bytes += 2ull * 4 * pg.dstIntervalNodes(d);
            for (std::uint32_t s = 0; s < pg.qs(); ++s) {
                const EdgeId edges = pg.shardSize(s, d);
                if (edges == 0 && cfg.skip_inactive)
                    continue;
                // Source tile transferred whole, used or not (Fig. 1b).
                const NodeId s_base = static_cast<NodeId>(s) * pg.ns();
                const NodeId s_nodes = std::min<NodeId>(
                    pg.ns(), pg.numNodes() - s_base);
                r.node_bytes += 4ull * s_nodes;
                r.edge_bytes +=
                    static_cast<std::uint64_t>(edges * edge_size);
                r.edges_processed += edges;
            }
        }
    }
    r.total_bytes = r.node_bytes + r.edge_bytes;

    // Transfer and compute overlap; the slower one dominates.
    const double transfer_cycles =
        static_cast<double>(r.total_bytes) /
        (cfg.dram_bytes_per_cycle * cfg.burst_efficiency);
    const double compute_cycles =
        static_cast<double>(r.edges_processed) /
        (cfg.num_pes * cfg.edges_per_pe_cycle);
    r.cycles = std::max(transfer_cycles, compute_cycles);
    return r;
}

} // namespace gmoms
