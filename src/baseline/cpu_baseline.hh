/**
 * @file
 * Multithreaded CPU baseline (the Ligra/GraphMat stand-in of Fig. 16).
 *
 * Edge-centric, shared-memory implementations of the three paper
 * kernels, parallelized over edge ranges with std::thread and atomics.
 * Wall-clock time is measured and converted to GTEPS so Fig. 16 can
 * report a real CPU data point next to the simulated accelerator
 * (see DESIGN.md substitutions — this is not Ligra, but it is a real
 * measured CPU baseline with the same O(M)-per-iteration structure).
 */

#ifndef GMOMS_BASELINE_CPU_BASELINE_HH
#define GMOMS_BASELINE_CPU_BASELINE_HH

#include <cstdint>
#include <vector>

#include "src/graph/coo.hh"

namespace gmoms
{

struct CpuResult
{
    double seconds = 0;
    EdgeId edges_processed = 0;
    std::uint32_t iterations = 0;
    std::vector<double> pagerank;          //!< PageRank only
    std::vector<std::uint32_t> values;     //!< SCC/SSSP

    double
    gteps() const
    {
        return seconds == 0
                   ? 0.0
                   : static_cast<double>(edges_processed) / seconds /
                         1e9;
    }
};

CpuResult cpuPageRank(const CooGraph& g, std::uint32_t iterations,
                      std::uint32_t num_threads);

CpuResult cpuScc(const CooGraph& g, std::uint32_t num_threads);

CpuResult cpuSssp(const CooGraph& g, NodeId source,
                  std::uint32_t num_threads);

} // namespace gmoms

#endif // GMOMS_BASELINE_CPU_BASELINE_HH
