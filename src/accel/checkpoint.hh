/**
 * @file
 * Warm-session checkpoint/restore and deterministic replay descriptors.
 *
 * A SessionCheckpoint is a versioned snapshot of everything a warmed
 * Session carries *between* runs: the preprocessed graph views, their
 * partitions, the id-translation tables, the synthetic-weight seed and
 * the bound configuration. Because the simulator is deterministic, that
 * is the complete state — all microarchitectural state (MOMS/MSHR
 * contents, wake calendar, in-flight queues) is reconstructed exactly
 * by re-running, which is also what makes the attached result memo
 * sound: two runs of the same (dataset, prep, config, algo, args) are
 * bit-identical, so the first run's SessionResult can be replayed from
 * memory. restore()/fork() is copy-on-restore: the forked Session
 * shares every immutable view by shared_ptr and owns only its lazily
 * materialized remainder, so a fork costs O(1) regardless of graph
 * size.
 *
 * ReplayDescriptor is the restore side of watchdog/diagnostic dumps: a
 * one-line, versioned recipe (dataset tag, preprocessing, config
 * preset or fingerprint, algorithm + arguments, failure cycle) that a
 * developer — or tooling — can feed back through SessionBuilder to
 * deterministically re-execute a failed run up to the recorded cycle
 * ("time-travel debugging" without serializing the machine).
 */

#ifndef GMOMS_ACCEL_CHECKPOINT_HH
#define GMOMS_ACCEL_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/accel/session.hh"

namespace gmoms
{

/**
 * Order-independent digest of every AccelConfig field that can change
 * simulation results or run records. Deliberately EXCLUDES
 * tick_threads (results are bit-identical at any thread count) and
 * output-only knobs (dump paths, labels), so sessions differing only
 * in those share checkpoints. Unit-tested field-by-field in
 * tests/test_checkpoint.cc: any new result-relevant field must be
 * added here or that test's sensitivity sweep will miss it.
 */
std::uint64_t configFingerprint(const AccelConfig& cfg);

/**
 * Memoized results of one checkpointed (dataset, prep, config)
 * binding, shared by every Session forked from the same checkpoint.
 * Keys are algorithm descriptors ("PR:10", "SSSP:s4:i1000:w97", ...);
 * only successfully completed runs are stored (a CheckError aborts
 * before the store). Thread-safe: forks run concurrently in
 * GraphService workers.
 */
class SessionMemo
{
  public:
    std::optional<SessionResult> lookup(const std::string& key) const;
    void store(const std::string& key, const SessionResult& result);

    /** Approximate resident bytes of stored results. */
    std::size_t bytes() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, SessionResult> results_;
    std::size_t bytes_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

class SessionCheckpoint
{
  public:
    /** Snapshot layout version; bumped on any semantic change to what
     *  a checkpoint carries. restore() refuses other versions. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /**
     * Capture @p session. Warms the plain view (and, with
     * @p warm_weighted, the weighted one) so every fork starts fully
     * preprocessed, and attaches a shared result memo to @p session
     * so its later runs populate the cache too.
     */
    static SessionCheckpoint capture(Session& session,
                                     bool warm_weighted = false);

    /** Copy-on-restore fork: a Session sharing all immutable state. */
    Session restore() const;

    /** Approximate resident bytes (graph views + partitions + memo). */
    std::size_t residentBytes() const;

    /** Fingerprint of the captured config (pool key ingredient). */
    std::uint64_t fingerprint() const;

    const std::shared_ptr<SessionMemo>& memo() const;

  private:
    SessionCheckpoint() = default;

    struct State;
    std::shared_ptr<const State> state_;
};

/**
 * One-line, versioned recipe for deterministically re-executing a run
 * (recorded in JobRecords and appended to diagnostic dumps via
 * CheckConfig::replay_context). Only preset-named configurations are
 * reconstructable from the line alone; explicit configs are identified
 * by fingerprint for matching against a live config in code.
 */
struct ReplayDescriptor
{
    static constexpr std::uint32_t kVersion = 1;

    std::string dataset;      //!< dataset tag (e.g. "WT")
    std::string prep;         //!< Preprocessing name (e.g. "DbgHash")
    std::string algo;         //!< "PageRank" / "SCC" / "SSSP" / "BFS"
    std::uint32_t iterations = 0;
    NodeId source = 0;        //!< ORIGINAL id (SSSP/BFS)
    std::string preset;       //!< preset name; empty = explicit config
    std::uint64_t config_fingerprint = 0;
    Cycle fail_cycle = 0;     //!< 0 = unset (filled by dump site)

    /** "gmoms-replay v1 dataset=… prep=… algo=… …" */
    std::string serialize() const;
    /** Inverse of serialize(); nullopt on malformed/wrong version. */
    static std::optional<ReplayDescriptor> parse(const std::string& s);
};

} // namespace gmoms

#endif // GMOMS_ACCEL_CHECKPOINT_HH
