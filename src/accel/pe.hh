/**
 * @file
 * Out-of-order multithreaded processing element (Section IV-C, Fig. 9).
 *
 * A PE pulls a job (destination interval), initializes the interval's
 * node values into local BRAM, streams the active shards' edges via
 * DMA, dereferences source nodes through the MOMS treating every edge
 * as an independent suspended thread (Fig. 10), feeds the gather()
 * pipeline (with RAW stall modelling for the 4-cycle floating-point
 * PageRank kernel), and finally writes the interval back.
 *
 * Timing rules modelled per cycle:
 *  - at most one edge decoded/issued,
 *  - at most one value enters the gather pipeline (MOMS responses have
 *    priority over locally-served edges),
 *  - node init/writeback move up to nodes_per_cycle nodes,
 *  - a single outstanding node-init burst (in-order requirement,
 *    Section IV-D) but multiple tagged edge bursts.
 */

#ifndef GMOMS_ACCEL_PE_HH
#define GMOMS_ACCEL_PE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/accel/accel_config.hh"
#include "src/accel/scheduler.hh"
#include "src/algo/spec.hh"
#include "src/cache/moms_system.hh"
#include "src/mem/memory_system.hh"
#include "src/sim/engine.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/ring_deque.hh"

namespace gmoms
{

class ShadowMemory;

class Pe : public Component
{
  public:
    struct Stats
    {
        std::uint64_t jobs = 0;
        std::uint64_t edges_processed = 0;  //!< gather() executions
        std::uint64_t local_src_reads = 0;
        std::uint64_t moms_reads = 0;
        std::uint64_t moms_resps = 0;  //!< responses popped from the port
        std::uint64_t raw_stalls = 0;       //!< gather RAW hazard cycles
        std::uint64_t thread_stalls = 0;    //!< out of thread slots
        std::uint64_t moms_send_stalls = 0; //!< MOMS port backpressure
        std::uint64_t busy_cycles = 0;
        std::uint64_t idle_cycles = 0;
    };

    Pe(const Engine& engine, std::string name, std::uint32_t id,
       const AccelConfig& cfg, const AlgoSpec& spec, Scheduler& sched,
       MemPort dma, SourcePort& moms, BackingStore& store);

    void tick() override;

    /**
     * Quiescence: a PE may only sleep in states where a tick would do
     * nothing but bump busy_/idle_cycles (reconstructed by catchUp):
     * waiting on DMA responses, MOMS responses or port backpressure
     * with no decodable edge, no pending transition and no per-cycle
     * stall accounting (a parked MOMS response or non-empty decode
     * queue counts stalls every cycle, so those states stay active).
     */
    Cycle nextActivity() const override;
    void catchUp(Cycle upto) override;

    /** True when the PE holds no job and has no in-flight work. */
    bool idle() const { return phase_ == Phase::Idle; }

    const Stats& stats() const { return stats_; }

    /** Attach stall channels, series and the decode-queue probe to
     *  @p tele (stall group "pe"). A full MOMS port means different
     *  things per topology (die-crossing credits vs a busy private
     *  bank), so the cause of moms_send_stalls is topology-aware. */
    void registerTelemetry(Telemetry& tele);

    /** Attach the hardening layer's shadow functional memory; every
     *  MOMS source read, edge-burst payload and writeback is then
     *  verified against it. Null (the default) costs nothing. */
    void attachShadow(ShadowMemory* shadow) { shadow_ = shadow; }

    /** One-line state summary for watchdog diagnostic dumps. */
    std::string statusLine() const;

  private:
    enum class Phase { Idle, FetchPtrs, Init, Stream, Writeback };

    /** Phase-dependent part of nextActivity() (response arrivals are
     *  folded in by the caller). */
    Cycle phaseActivity() const;

    // DMA tag layout: [63:56] kind, [55:0] sequence/extra.
    enum class DmaKind : std::uint64_t
    {
        Ptr = 1, InitConst = 2, InitIn = 3, Edge = 4, Write = 5
    };
    static std::uint64_t
    dmaTag(DmaKind kind, std::uint64_t extra)
    {
        return (static_cast<std::uint64_t>(kind) << 56) | extra;
    }
    static DmaKind dmaKind(std::uint64_t tag)
    {
        return static_cast<DmaKind>(tag >> 56);
    }

    /** One burst of edges received from DRAM, pending decode. In the
     *  packed half-word CSR, cursor counts 16-bit half-words instead
     *  of words; segments are whole 64-byte lines (bursts split at
     *  line multiples), so decode state never crosses segments. */
    struct EdgeSegment
    {
        Addr addr = 0;            //!< first byte
        std::uint32_t words = 0;  //!< 32-bit words in the segment
        std::uint32_t cursor = 0; //!< next word (packed: half-word)
        std::uint32_t s = 0;      //!< source interval of the shard
        std::uint32_t open_dst = 0;  //!< packed: open destination
        bool has_open_dst = false;   //!< packed: selector seen yet
    };

    /** Shard chunks remaining to be requested. */
    struct ShardCursor
    {
        std::uint32_t s = 0;
        Addr addr = 0;
        std::uint64_t words_left = 0;
    };

    void startJob(const Job& job);
    void tickFetchPtrs();
    void tickInit();
    void tickStream();
    void tickWriteback();

    /** Handle DMA responses common to all phases. */
    void drainDmaResponses();

    /** True if a gather to @p dst_off would violate a RAW hazard. */
    bool rawHazard(std::uint32_t dst_off) const;

    /** Execute gather() into BRAM and record the hazard window. */
    void executeGather(std::uint32_t dst_off, std::uint32_t src_val,
                       std::uint32_t weight);

    // -- construction-time wiring ----------------------------------------
    const Engine& engine_;
    std::uint32_t id_;
    const AccelConfig* cfg_;
    const AlgoSpec* spec_;
    Scheduler* sched_;
    MemPort dma_;
    SourcePort* moms_;
    BackingStore* store_;
    ShadowMemory* shadow_ = nullptr;
    /** Burst-split granularity of the memory substrate (cached from
     *  dma_; HBM interleaves finer than DDR4's 2 KiB). */
    std::uint64_t il_ = kInterleaveBytes;

    // -- job state --------------------------------------------------------
    Phase phase_ = Phase::Idle;
    Job job_;
    bool updated_ = false;
    std::vector<std::uint64_t> bram_;
    std::vector<std::uint32_t> vconst_tmp_;

    // Pointer fetch.
    std::uint64_t ptr_bytes_requested_ = 0;
    std::uint64_t ptr_bytes_received_ = 0;

    // Node init streaming (one region at a time, up to
    // init_outstanding_bursts in flight). Bursts on different channels
    // may complete out of order; init_ooo_ holds completions ahead of
    // the in-order prefix (at most init_outstanding_bursts - 1
    // entries) because consumption is strictly sequential.
    bool init_const_stage_ = false;
    Addr init_region_base_ = 0;
    std::uint64_t init_bytes_total_ = 0;
    std::uint64_t init_bytes_requested_ = 0;
    std::uint64_t init_bytes_received_ = 0;
    std::uint64_t init_nodes_consumed_ = 0;
    std::uint32_t init_bursts_inflight_ = 0;
    std::vector<std::pair<Addr, std::uint32_t>> init_ooo_;

    // Edge streaming. edge_pending_ holds at most max_edge_bursts
    // entries (one per in-flight burst), so the flat map never grows
    // after construction; the rings stop allocating once their
    // high-water mark has been reached.
    RingDeque<ShardCursor> shards_;
    std::uint32_t edge_bursts_inflight_ = 0;
    std::uint64_t edge_burst_seq_ = 0;
    FlatMap<std::uint64_t, EdgeSegment> edge_pending_;
    RingDeque<EdgeSegment> decode_q_;

    // Thread bookkeeping (Fig. 10): weighted graphs use a free-ID queue
    // plus state memory; unweighted graphs use the destination offset
    // as the ID directly.
    std::vector<std::uint32_t> free_ids_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> thread_state_;
    std::uint32_t threads_outstanding_ = 0;

    std::optional<ReadResp> pending_resp_;

    // Gather pipeline hazard window: dst offsets with their retire
    // cycle.
    std::vector<std::pair<std::uint32_t, Cycle>> hazard_;

    // Writeback.
    std::uint64_t wb_nodes_written_ = 0;
    std::uint64_t wb_bytes_staged_ = 0;   //!< staged for the next burst
    Addr wb_burst_addr_ = 0;
    std::uint32_t wb_writes_unacked_ = 0;
    std::uint64_t wb_seq_ = 0;

    /** First cycle busy_/idle_cycles has not accounted for yet (full
     *  tick adds one per cycle; skipped cycles are applied in bulk). */
    Cycle cycle_accounted_until_ = 0;

    Stats stats_;
};

} // namespace gmoms

#endif // GMOMS_ACCEL_PE_HH
